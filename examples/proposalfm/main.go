// Proposal Financial Management — the first NASA application of Table 1:
// "an information system for tracking proposal financial information for
// outgoing (NASA) proposals [...] querying of aggregated and statistical
// information about the proposals such as proposal numbers by NASA
// division type, dollar amounts requested etc."
//
// The application is assembled exactly as the paper describes: ingest
// the proposal documents (Word-substitute RTF, HTML and plain text), and
// query by context.  The financial roll-up is computed client-side from
// the Budget sections — no schema was ever declared for the proposals.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"netmark"
	"netmark/internal/corpus"
)

func main() {
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()

	// The incoming proposal pile: 90 documents in three formats.
	gen := corpus.New(2026)
	for _, d := range gen.Proposals(90) {
		if _, err := nm.Ingest(d.Name, d.Data); err != nil {
			log.Fatalf("ingest %s: %v", d.Name, err)
		}
	}
	// Plus the division budget spreadsheet.
	sheet := gen.BudgetSpreadsheet(40)
	if _, err := nm.Ingest(sheet.Name, sheet.Data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d documents (%d nodes)\n\n", nm.Store().NumDocuments(), nm.Store().NumNodes())

	// Pull every Budget section; parse amount and division out of the
	// text on the client — "imposition of structure and semantics may be
	// done by clients as needed".
	res, err := nm.Query("context=Budget")
	if err != nil {
		log.Fatal(err)
	}
	type stat struct {
		count int
		total int64
	}
	byDivision := map[string]*stat{}
	for _, sec := range res.Sections {
		amount, division := parseBudget(sec.Content)
		if division == "" {
			continue
		}
		s := byDivision[division]
		if s == nil {
			s = &stat{}
			byDivision[division] = s
		}
		s.count++
		s.total += amount
	}

	divisions := make([]string, 0, len(byDivision))
	for d := range byDivision {
		divisions = append(divisions, d)
	}
	sort.Strings(divisions)
	fmt.Println("proposal dollars requested by NASA division:")
	fmt.Printf("  %-18s %-10s %-14s\n", "division", "proposals", "requested")
	var grand int64
	for _, d := range divisions {
		s := byDivision[d]
		fmt.Printf("  %-18s %-10d $%-13d\n", d, s.count, s.total)
		grand += s.total
	}
	fmt.Printf("  %-18s %-10s $%-13d\n\n", "TOTAL", "", grand)

	// Drill-down: high-risk proposals mentioning cryogenics.
	res, err = nm.Query("context=Risk+Assessment&content=Critical")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Risk Assessment sections mentioning \"Critical\": %d\n", res.Len())
	for i, sec := range res.Sections {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", res.Len()-3)
			break
		}
		fmt.Printf("  %s: %.80s...\n", sec.DocName, sec.Content)
	}
}

// parseBudget extracts "$N for the D division" from a Budget section.
func parseBudget(text string) (amount int64, division string) {
	words := strings.Fields(text)
	for i, w := range words {
		if strings.HasPrefix(w, "$") {
			if v, err := strconv.ParseInt(strings.Trim(w, "$.,"), 10, 64); err == nil {
				amount = v
			}
		}
		if w == "division." || w == "division" {
			if i > 0 {
				division = strings.TrimSpace(words[i-1])
			}
		}
	}
	return amount, division
}
