// Anomaly Tracking — the Table 1 application "that allows integrated
// querying of two NASA (web accessible) data sources that are
// essentially anomaly tracking databases", plus the §2.1.5 Lessons
// Learned source that "allows only 'Content search' kinds of queries".
//
// Tracker A is queried over real HTTP (a second NETMARK server, Fig 8's
// multi-server topology); tracker B is a full local source; the Lessons
// Learned server is capability-limited, so the router pushes down only
// the content portion of each query and applies the context residually —
// the paper's query augmentation, "all this is of course abstracted from
// the end user."
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"netmark"
	"netmark/internal/corpus"
)

func main() {
	// Three independent stores.
	trackerA := mustOpen()
	defer closeOrDie(trackerA)
	trackerB := mustOpen()
	defer closeOrDie(trackerB)
	lessons := mustOpen()
	defer closeOrDie(lessons)

	gen := corpus.New(99)
	loadAll(trackerA, gen.Anomalies(40))
	loadAll(trackerB, gen.Anomalies(40))
	loadAll(lessons, gen.LessonsLearned(30))

	// Tracker A is remote: expose it over HTTP and integrate by URL.
	srv, err := trackerA.HTTPServer()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Assemble the application: a declarative source list.  This is the
	// whole "integration middleware".
	app := mustOpen()
	defer closeOrDie(app)
	bank := netmark.NewDatabank("anomaly-tracking")
	bank.AddSource(netmark.NewHTTPSource("tracker-a", ts.URL, netmark.FullCapability))
	bank.AddSource(netmark.NewLocalSource("tracker-b", trackerB))
	bank.AddSource(netmark.NewLegacySource("lessons-learned", netmark.ContentOnly, lessons))
	if err := app.AddDatabank(bank); err != nil {
		log.Fatal(err)
	}

	// The paper's example query: Context=Title & Content=Engine.
	q := netmark.Query{Context: "Title", Content: "Engine"}
	m, err := app.QueryBank(context.Background(), "anomaly-tracking", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q across %d sources (%v):\n\n", q.Encode(), len(bank.Sources()), m.Elapsed)
	for _, sr := range m.PerSource {
		residual := ""
		if sr.Plan.HasResidual() {
			residual = fmt.Sprintf("  [pushdown %q, residual applied here]", sr.Plan.Pushdown.Encode())
		}
		if sr.Err != nil {
			fmt.Printf("  %-16s ERROR: %v\n", sr.Source, sr.Err)
			continue
		}
		fmt.Printf("  %-16s %d section(s) in %v%s\n", sr.Source, len(sr.Sections), sr.Elapsed, residual)
		for _, sec := range sr.Sections {
			fmt.Printf("      %s: %s\n", sec.DocName, sec.Content)
		}
	}
	fmt.Printf("\nintegrated result: %d sections, %d source errors\n",
		len(m.Sections()), len(m.Errs()))

	// Cross-source severity report: one more query, still no schemas.
	m, err = app.QueryBank(context.Background(), "anomaly-tracking",
		netmark.Query{Context: "Severity", Content: "Critical"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical anomalies across all trackers: %d\n", len(m.Sections()))
}

func mustOpen() *netmark.Netmark {
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		log.Fatal(err)
	}
	return nm
}

func loadAll(nm *netmark.Netmark, docs []corpus.Document) {
	for _, d := range docs {
		if _, err := nm.Ingest(d.Name, d.Data); err != nil {
			log.Fatalf("ingest %s: %v", d.Name, err)
		}
	}
}

// closeOrDie flushes a store on the way out; a failed final sync must
// fail the demo loudly rather than be silently dropped.
func closeOrDie(nm *netmark.Netmark) {
	if err := nm.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}
