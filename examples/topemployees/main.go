// Top Employees of NASA — the paper's §4 head-to-head discussion of the
// one case where GAV mediation shines: "Top Employees could be defined as
// say employees at NASA Ames with a performance rating of excellent,
// personnel at NASA Johnson with a performance score of 2 or better..."
//
// This example runs BOTH systems over the same three heterogeneous
// sources and prints what each required:
//
//   - the mediator answers one query against a virtual view, but needed a
//     registered schema per source, a view definition, and a mapping per
//     (view, source) pair;
//   - NETMARK needs none of that, but — exactly as the paper concedes —
//     "we will end up asking three different queries (corresponding to
//     the different NASA centers)", reconciling vocabulary client-side.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"netmark"
	"netmark/internal/mediator"
)

func main() {
	// Three centers, three heading vocabularies, three rating scales.
	ames := load("ames", map[string]string{
		"Employee": "Ada Vance", "Rating": "excellent",
	}, map[string]string{
		"Employee": "Bo Chen", "Rating": "good",
	}, map[string]string{
		"Employee": "Cy Diaz", "Rating": "excellent",
	})
	defer closeOrDie(ames)
	johnson := load("johnson", map[string]string{
		"Name": "Dee Flores", "Score": "1",
	}, map[string]string{
		"Name": "Ed Gray", "Score": "4",
	})
	defer closeOrDie(johnson)
	kennedy := load("kennedy", map[string]string{
		"Person": "Flo Hale", "Evaluation": "very good",
	}, map[string]string{
		"Person": "Gus Irwin", "Evaluation": "fair",
	})
	defer closeOrDie(kennedy)

	// ---- GAV mediator route ------------------------------------------
	med := mediator.New()
	register := func(src string, nm *netmark.Netmark, rel mediator.SourceRelation) {
		err := med.RegisterSource(&mediator.SourceSchema{
			Source: src, Relations: []mediator.SourceRelation{rel},
		}, mediator.NewDocAdapter(src, nm.Engine()))
		if err != nil {
			log.Fatal(err)
		}
	}
	register("ames", ames, mediator.SourceRelation{Name: "employees", Attrs: []string{"Employee", "Rating"}})
	register("johnson", johnson, mediator.SourceRelation{Name: "personnel", Attrs: []string{"Name", "Score"}})
	register("kennedy", kennedy, mediator.SourceRelation{Name: "staff", Attrs: []string{"Person", "Evaluation"}})
	if err := med.DefineView(&mediator.GlobalView{Name: "TopEmployees", Attrs: []string{"name", "merit"}}); err != nil {
		log.Fatal(err)
	}
	addMapping := func(src, rel, nameAttr, meritAttr string, filter func(mediator.Tuple) bool) {
		err := med.AddMapping(mediator.Mapping{
			View: "TopEmployees", Source: src, Relation: rel,
			AttrMap: map[string]string{"name": nameAttr, "merit": meritAttr},
			Filter:  filter,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	addMapping("ames", "employees", "Employee", "Rating",
		func(t mediator.Tuple) bool { return t["Rating"] == "excellent" })
	addMapping("johnson", "personnel", "Name", "Score",
		func(t mediator.Tuple) bool { return t["Score"] == "1" || t["Score"] == "2" })
	addMapping("kennedy", "staff", "Person", "Evaluation",
		func(t mediator.Tuple) bool {
			return t["Evaluation"] == "very good" || t["Evaluation"] == "excellent"
		})

	tuples, err := med.Query(context.Background(), "TopEmployees", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GAV mediator: SELECT * FROM TopEmployees")
	for _, t := range tuples {
		fmt.Printf("  %-12s merit=%-10s (from %s)\n", t["name"], t["merit"], t["_source"])
	}
	fmt.Printf("  artifacts the administrator authored: %d (schemas+view+mappings)\n\n",
		med.ArtifactCount())

	// ---- NETMARK route -----------------------------------------------
	// Three queries (one per center vocabulary), reconciled client-side.
	fmt.Println("NETMARK: three context queries, client-side qualification")
	type rule struct {
		nm        *netmark.Netmark
		nameCtx   string
		meritCtx  string
		qualifies func(string) bool
	}
	rules := []rule{
		{ames, "Employee", "Rating", func(m string) bool { return m == "excellent" }},
		{johnson, "Name", "Score", func(m string) bool { return m == "1" || m == "2" }},
		{kennedy, "Person", "Evaluation", func(m string) bool {
			return m == "very good" || m == "excellent"
		}},
	}
	total := 0
	for _, r := range rules {
		names, err := r.nm.Search(r.nameCtx, "")
		if err != nil {
			log.Fatal(err)
		}
		merits, err := r.nm.Search(r.meritCtx, "")
		if err != nil {
			log.Fatal(err)
		}
		meritByDoc := map[uint64]string{}
		for _, m := range merits {
			meritByDoc[m.DocID] = strings.TrimSpace(m.Content)
		}
		for _, n := range names {
			if r.qualifies(meritByDoc[n.DocID]) {
				fmt.Printf("  %-12s merit=%-10s (context %s/%s)\n",
					n.Content, meritByDoc[n.DocID], r.nameCtx, r.meritCtx)
				total++
			}
		}
	}
	fmt.Printf("  artifacts the administrator authored: 0 (queries are the application)\n\n")
	fmt.Printf("both routes agree on %d top employees; the trade is schema authoring\n", total)
	fmt.Println("up front (mediator) versus query phrasing per vocabulary (NETMARK) —")
	fmt.Println("the paper's claim is that the latter is the cheaper side of the trade.")
}

// load builds an in-memory instance holding one employee record document
// per map (headings become contexts).
func load(center string, records ...map[string]string) *netmark.Netmark {
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range records {
		var sb strings.Builder
		sb.WriteString("<html><body>")
		for k, v := range rec {
			sb.WriteString("<h2>" + k + "</h2><p>" + v + "</p>")
		}
		sb.WriteString("</body></html>")
		name := fmt.Sprintf("%s-emp%d.html", center, i)
		if _, err := nm.Ingest(name, []byte(sb.String())); err != nil {
			log.Fatal(err)
		}
	}
	return nm
}

// closeOrDie flushes a store on the way out; a failed final sync must
// fail the demo loudly rather than be silently dropped.
func closeOrDie(nm *netmark.Netmark) {
	if err := nm.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}
