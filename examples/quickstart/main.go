// Quickstart: ingest documents of several formats into a schema-less
// NETMARK store, run the paper's context/content queries, and compose
// the results into a new document with XSLT — all against the public
// netmark API.
package main

import (
	"fmt"
	"log"

	"netmark"
)

func main() {
	// An in-memory instance; pass Config{Dir: "..."} for a durable one.
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()

	// Ingest three different formats.  No schemas are declared anywhere:
	// every document lands in the same two universal tables.
	docs := map[string]string{
		"status.html": `<html><head><title>Weekly Status</title></head><body>
			<h1>Overview</h1><p>All shuttle systems nominal this week.</p>
			<h2>Budget</h2><p>Spend tracking at 97 percent of plan.</p>
			<h2>Risks</h2><p>Cryogenic valve sourcing remains the top risk.</p>
			</body></html>`,
		"memo.rtf": `{\rtf1 {\b Findings}\par The cryogenic valve passed retest.\par
			{\b Budget}\par Retest consumed \'2412K of reserve.\par}`,
		"plan.txt": "FLIGHT READINESS\n\nReview scheduled.\n\n1. Budget\n\nReserve stands at $90K after retest.\n",
	}
	for name, data := range docs {
		if _, err := nm.Ingest(name, []byte(data)); err != nil {
			log.Fatalf("ingest %s: %v", name, err)
		}
	}
	fmt.Printf("stored %d documents as %d nodes, zero schemas defined\n\n",
		nm.Store().NumDocuments(), nm.Store().NumNodes())

	// Context search: the Budget section of every document (Fig 6).
	res, err := nm.Query("context=Budget")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context=Budget —")
	for _, s := range res.Sections {
		fmt.Printf("  [%s] %s\n", s.DocName, s.Content)
	}

	// Combined context+content (the paper's §2.1.3 query form).
	res, err = nm.Query("context=Budget&content=reserve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontext=Budget&content=reserve — %d hit(s)\n", res.Len())
	for _, s := range res.Sections {
		fmt.Printf("  [%s] %s\n", s.DocName, s.Content)
	}

	// Result composition with XSLT (Fig 7): build a new briefing document
	// out of the query results.
	err = nm.RegisterStylesheet("briefing", `<xsl:stylesheet>
<xsl:template match="/">
  <briefing>
    <xsl:for-each select="//result">
      <xsl:sort select="@doc"/>
      <line source="{@doc}"><xsl:value-of select="content"/></line>
    </xsl:for-each>
  </briefing>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = nm.Query("context=Budget&xslt=briefing")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomposed document (context=Budget&xslt=briefing):")
	fmt.Println(netmark.TransformedXML(res))
}
