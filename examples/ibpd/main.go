// Integrated Budget Performance Document — the Table 1 application whose
// manual assembly "can take several weeks": "NETMARK was used to extract
// and integrate information from thousands of NASA task plans containing
// the required budget information and compose an integrated IBPD
// document."
//
// This example ingests a large pile of task plans, fires one context
// query, and composes the integrated document with an XSLT stylesheet —
// the entire application is the query plus the stylesheet.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"netmark"
	"netmark/internal/corpus"
)

const ibpdSheet = `<xsl:stylesheet>
<xsl:template match="/">
  <ibpd title="Integrated Budget Performance Document">
    <xsl:for-each select="//result">
      <xsl:sort select="@doc"/>
      <entry plan="{@doc}"><xsl:value-of select="content"/></entry>
    </xsl:for-each>
  </ibpd>
</xsl:template>
</xsl:stylesheet>`

func main() {
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()

	const plans = 1000
	gen := corpus.New(7)
	for _, d := range gen.TaskPlans(plans) {
		if _, err := nm.Ingest(d.Name, d.Data); err != nil {
			log.Fatalf("ingest %s: %v", d.Name, err)
		}
	}
	fmt.Printf("ingested %d task plans (%d nodes)\n", plans, nm.Store().NumNodes())

	if err := nm.RegisterStylesheet("ibpd", ibpdSheet); err != nil {
		log.Fatal(err)
	}
	res, err := nm.Query("context=Budget&xslt=ibpd")
	if err != nil {
		log.Fatal(err)
	}
	if res.Transformed == nil {
		log.Fatal("no composed document")
	}
	doc := netmark.TransformedXML(res)
	fmt.Printf("composed IBPD with %d budget entries (%d bytes of XML)\n",
		res.Len(), len(doc))

	out := filepath.Join(os.TempDir(), "ibpd.xml")
	if err := os.WriteFile(out, []byte(doc), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("written to %s\n\n", out)

	// Show the head of the document.
	lines := strings.SplitN(doc, "\n", 8)
	fmt.Println("document head:")
	for _, l := range lines[:min(7, len(lines))] {
		fmt.Println("  " + l)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
