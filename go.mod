module netmark

go 1.21
