GO ?= go

.PHONY: check fmt vet test race bench bench-smoke bench-json

# check is the CI gate: formatting, vet, the full suite under -race, and
# one pass of the serving and cold-kernel benchmarks as a smoke test.
check: fmt vet race bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-smoke runs each serving / cold-kernel / reopen benchmark case
# once: it proves the serving path, both caches, the write-heavy mixed
# workload, the accelerated query kernel and the snapshot reopen path
# still execute, without the cost of a timed benchmark run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkServeParallel|BenchmarkMixedWriteHeavy|BenchmarkColdContentSearch|BenchmarkReopen' -benchtime 1x .

# bench-json runs the perf-trajectory benchmark suite and records the
# results (parsed numbers + benchstat-parseable raw lines) in
# $(BENCH_OUT), so regressions are diffable across PRs.  Override the
# output file per PR: make bench-json BENCH_OUT=BENCH_PR5.json
BENCH_OUT ?= BENCH_PR4.json
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkColdContentSearch|BenchmarkMixedWriteHeavy|BenchmarkServeParallel|BenchmarkFig6|BenchmarkReopen' -benchmem -benchtime 2s . \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)
