GO ?= go

.PHONY: check fmt vet test race bench

# check is the CI gate: formatting, vet, and the full suite under -race.
check: fmt vet race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...
