GO ?= go

.PHONY: check fmt vet lint analyze test race bench bench-smoke bench-json bench-diff

# check is the local CI gate: formatting, vet, lint, the repo analyzer
# suite, the full suite under -race, and one pass of the serving and
# cold-kernel benchmarks as a smoke test.  CI runs the same targets
# split across parallel jobs (see .github/workflows/ci.yml).
check: fmt vet lint analyze race bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs staticcheck (or golangci-lint) when installed; the tools
# are not vendored, so a machine without them only loses the extra
# checks — go vet still gates.  CI always installs staticcheck.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "lint: staticcheck/golangci-lint not installed; skipping (go vet still runs)"; \
	fi

# analyze runs netmarkvet, the repo's own analyzer suite: lockcheck,
# lockscope, atomicmix, fsyncrename and cowview prove the concurrency
# and crash-safety invariants, the dataflow tier's errflow, ackorder,
# genbump and snapcover prove durability error routing, WAL-before-ack
# ordering, generation-counter coherence and snapshot field coverage,
# and the perf tier's hotalloc, boxcheck and aliascap keep the tagged
# hot read paths zero-alloc — all documented in CONTRIBUTING.md.  It is
# stdlib-only, so unlike lint it always runs.  Findings are gated
# against the committed ANALYZE_BASELINE.json: a known finding being
# worked off stays visible without failing the build, but any *new*
# finding fails.  The baseline is empty and should stay that way.
# govulncheck and the extra x/tools vet passes (nilness, shadow) join
# in when installed; CI always installs them.
analyze:
	$(GO) run ./cmd/netmarkvet -baseline ANALYZE_BASELINE.json
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "analyze: govulncheck not installed; skipping"; \
	fi
	@if command -v nilness >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v nilness) ./...; \
	else \
		echo "analyze: nilness not installed; skipping"; \
	fi
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./...; \
	else \
		echo "analyze: shadow not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-smoke runs each serving / cold-kernel / reopen benchmark case
# once: it proves the serving path, both caches, the write-heavy mixed
# workload, the accelerated query kernel and the snapshot reopen path
# still execute, without the cost of a timed benchmark run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkServeParallel|BenchmarkMixedWriteHeavy|BenchmarkColdContentSearch|BenchmarkReopen' -benchtime 1x .

# bench-json runs the perf-trajectory benchmark suite and records the
# results (parsed numbers + benchstat-parseable raw lines) in
# $(BENCH_OUT), so regressions are diffable across PRs.  Override the
# output file per PR: make bench-json BENCH_OUT=BENCH_PR6.json
BENCH_OUT ?= BENCH_PR5.json
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkColdContentSearch|BenchmarkMixedWriteHeavy|BenchmarkServeParallel|BenchmarkFig6|BenchmarkReopen' -benchmem -benchtime 2s . \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# bench-diff gates $(BENCH_OUT) against the newest committed
# BENCH_PR*.json — excluding $(BENCH_OUT) itself, so recording this
# PR's own baseline file never degrades into a self-comparison.  >2x
# ns/op on any serving/cold-kernel/reopen benchmark fails.  This is
# what the CI bench-regression job runs (with BENCH_OUT=BENCH_CI.json).
bench-diff:
	@base=$$(ls BENCH_PR*.json | grep -vx '$(BENCH_OUT)' | sort -V | tail -1); \
	if [ -z "$$base" ]; then echo "bench-diff: no committed baseline"; exit 1; fi; \
	echo "baseline: $$base"; \
	$(GO) run ./cmd/benchdiff -old $$base -new $(BENCH_OUT) -threshold 2
