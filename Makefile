GO ?= go

.PHONY: check fmt vet test race bench bench-smoke

# check is the CI gate: formatting, vet, the full suite under -race, and
# one pass of the concurrent-serving benchmark as a smoke test.
check: fmt vet race bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-smoke runs each BenchmarkServeParallel case once: it proves the
# serving path, the cache, and the mixed hot/cold/invalidating workload
# still execute, without the cost of a timed benchmark run.
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkServeParallel -benchtime 1x .
