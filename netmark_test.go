package netmark_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netmark"
)

// TestEndToEndPipeline drives the full Fig 2/3 process flow: a document
// dropped into the WebDAV folder is picked up by the daemon, converted
// by the SGML parser, stored schema-lessly, queried over HTTP with an
// XDB URL, and composed into a new document with XSLT.
func TestEndToEndPipeline(t *testing.T) {
	drop := t.TempDir()
	nm, err := netmark.Open(netmark.Config{DropDir: drop, PollInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()

	err = nm.RegisterStylesheet("compose", `<xsl:stylesheet>
<xsl:template match="/">
  <briefing><xsl:for-each select="//result">
    <item from="{@doc}"><xsl:value-of select="content"/></item>
  </xsl:for-each></briefing>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := nm.HTTPServer()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 1. Drop a document over WebDAV.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/dav/status.html",
		strings.NewReader(`<html><head><title>Weekly Status</title></head><body>
		<h1>Overview</h1><p>All systems nominal.</p>
		<h2>Budget</h2><p>Spend tracking at 97 percent of plan.</p></body></html>`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}

	// 2. The daemon picks it up.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go nm.Daemon().Run(ctx)
	deadline := time.After(3 * time.Second)
	for nm.Store().NumDocuments() == 0 {
		select {
		case <-deadline:
			t.Fatal("daemon never ingested the dropped file")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// 3. Query over HTTP with the URL-appended XDB syntax.
	get := func(u string) string {
		r, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		if r.StatusCode != 200 {
			t.Fatalf("GET %s = %d: %s", u, r.StatusCode, b)
		}
		return string(b)
	}
	body := get(ts.URL + "/xdb?context=Budget")
	if !strings.Contains(body, "97 percent") {
		t.Fatalf("query result: %s", body)
	}

	// 4. XSLT composition via the xslt= parameter (Fig 7).
	body = get(ts.URL + "/xdb?context=Budget&xslt=compose")
	if !strings.Contains(body, "<briefing>") || !strings.Contains(body, `from="status.html"`) {
		t.Fatalf("composed result: %s", body)
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	nm, err := netmark.Open(netmark.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	if _, err := nm.Ingest("memo.rtf", []byte(`{\rtf1 {\b Findings}\par The valve leaked.\par}`)); err != nil {
		t.Fatal(err)
	}
	res, err := nm.Query("context=Findings")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !strings.Contains(res.Sections[0].Content, "valve") {
		t.Fatalf("result = %+v", res.Sections)
	}
	secs, err := nm.Search("Findings", "valve")
	if err != nil || len(secs) != 1 {
		t.Fatalf("Search: %v %v", secs, err)
	}
}

func TestPublicAPIDatabankAcrossInstances(t *testing.T) {
	// Two independent stores, one databank — integration "on the fly".
	a, err := netmark.Open(netmark.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := netmark.Open(netmark.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Ingest("a.html", []byte(`<html><body><h2>Title</h2><p>Engine fault A-17</p></body></html>`))
	b.Ingest("b.html", []byte(`<html><body><h2>Title</h2><p>Sensor drift B-3</p></body></html>`))

	bank := netmark.NewDatabank("anomalies")
	bank.AddSource(netmark.NewLocalSource("tracker-a", a))
	bank.AddSource(netmark.NewLegacySource("tracker-b", netmark.ContentOnly, b))
	if err := a.AddDatabank(bank); err != nil {
		t.Fatal(err)
	}
	m, err := a.QueryBank(context.Background(), "anomalies", netmark.Query{Context: "Title"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sections()) != 2 {
		t.Fatalf("sections = %v", m.Sections())
	}
}

func TestPersistentInstanceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	nm, err := netmark.Open(netmark.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nm.Ingest("p.txt", []byte("SUMMARY\n\ndurable content here\n")); err != nil {
		t.Fatal(err)
	}
	if err := nm.Close(); err != nil {
		t.Fatal(err)
	}
	nm2, err := netmark.Open(netmark.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer nm2.Close()
	res, err := nm2.Query("content=durable")
	if err != nil || res.Len() != 1 {
		t.Fatalf("after reopen: %v %v", res, err)
	}
}

func TestIngestFile(t *testing.T) {
	nm, _ := netmark.Open(netmark.Config{})
	defer nm.Close()
	path := filepath.Join(t.TempDir(), "doc.html")
	os.WriteFile(path, []byte(`<html><body><h1>FromDisk</h1><p>x</p></body></html>`), 0o644)
	if _, err := nm.IngestFile(path); err != nil {
		t.Fatal(err)
	}
	res, err := nm.Query("context=FromDisk")
	if err != nil || res.Len() != 1 {
		t.Fatalf("ingest file: %v %v", res, err)
	}
}

func TestCreateDatabankFromSpec(t *testing.T) {
	nm, _ := netmark.Open(netmark.Config{})
	defer nm.Close()
	nm.Ingest("x.html", []byte(`<html><body><h2>Status</h2><p>green</p></body></html>`))
	if _, err := nm.CreateDatabank([]byte(`{
		"name": "selfbank",
		"sources": [{"type": "local", "name": "self"}]
	}`)); err != nil {
		t.Fatal(err)
	}
	m, err := nm.QueryBank(context.Background(), "selfbank", netmark.Query{Context: "Status"})
	if err != nil || len(m.Sections()) != 1 {
		t.Fatalf("spec bank: %v %v", m, err)
	}
	if _, err := nm.QueryBank(context.Background(), "ghost", netmark.Query{Context: "Status"}); err == nil {
		t.Fatal("unknown bank accepted")
	}
}
