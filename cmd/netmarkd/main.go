// Command netmarkd runs a NETMARK server: the schema-less XML store, the
// HTTP/WebDAV access layer, the drop-folder ingestion daemon, and any
// databanks declared in spec files.
//
// Usage:
//
//	netmarkd -addr :8080 -dir ./data -drop ./drop \
//	         -bank pfm.json -bank anomaly.json \
//	         -stylesheet ibpd=ibpd.xsl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netmark"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "storage directory (empty = in-memory)")
	drop := flag.String("drop", "", "drop folder watched by the ingestion daemon")
	poll := flag.Duration("poll", time.Second, "drop folder poll interval")
	cacheBytes := flag.Int64("cache-bytes", 0,
		"query result cache cap in bytes (0 = default 64 MiB, negative = disabled)")
	nodeCacheBytes := flag.Int64("node-cache-bytes", 0,
		"decoded-node cache cap in bytes (0 = default 32 MiB, negative = disabled)")
	queryWorkers := flag.Int("query-workers", 0,
		"section materialisation workers per query (0 = GOMAXPROCS, 1 = serial)")
	snapshots := flag.Bool("snapshots", true,
		"load/save derived-index snapshots at checkpoints; disable to force the full-scan rebuild on open")
	var banks stringList
	flag.Var(&banks, "bank", "databank spec JSON file (repeatable)")
	var sheets stringList
	flag.Var(&sheets, "stylesheet", "name=file stylesheet registration (repeatable)")
	flag.Parse()

	nm, err := netmark.Open(netmark.Config{
		Dir: *dir, DropDir: *drop, PollInterval: *poll,
		CacheBytes: *cacheBytes, NodeCacheBytes: *nodeCacheBytes, QueryWorkers: *queryWorkers,
		DisableSnapshots: !*snapshots,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()

	for _, spec := range banks {
		data, err := os.ReadFile(spec)
		if err != nil {
			log.Fatalf("bank spec %s: %v", spec, err)
		}
		if _, err := nm.CreateDatabank(data); err != nil {
			log.Fatalf("bank spec %s: %v", spec, err)
		}
		log.Printf("databank loaded from %s", spec)
	}
	for _, s := range sheets {
		name, file, ok := strings.Cut(s, "=")
		if !ok {
			log.Fatalf("stylesheet flag needs name=file, got %q", s)
		}
		src, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("stylesheet %s: %v", file, err)
		}
		if err := nm.RegisterStylesheet(name, string(src)); err != nil {
			log.Fatalf("stylesheet %s: %v", file, err)
		}
		log.Printf("stylesheet %q loaded from %s", name, file)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("netmarkd listening on %s (store=%s drop=%s)", *addr, orMem(*dir), orNone(*drop))
	if err := nm.Serve(ctx, *addr); err != nil && ctx.Err() == nil {
		log.Fatalf("serve: %v", err)
	}
	fmt.Println("netmarkd: shut down cleanly")
}

func orMem(s string) string {
	if s == "" {
		return "(in-memory)"
	}
	return s
}

func orNone(s string) string {
	if s == "" {
		return "(disabled)"
	}
	return s
}
