// Command nmquery runs an XDB query against a NETMARK store and prints
// the matching sections.
//
// Usage:
//
//	nmquery -dir ./data 'context=Budget&content=propulsion'
//	nmquery -dir ./data -xslt compose.xsl 'context=Budget'
//	nmquery -url http://host:8080 'content=shuttle&scope=document'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"netmark"
	"netmark/internal/databank"
	"netmark/internal/sgml"
)

func main() {
	dir := flag.String("dir", "", "storage directory of a local store")
	url := flag.String("url", "", "query a remote netmarkd instead of a local store")
	xsltFile := flag.String("xslt", "", "stylesheet file for result composition")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: nmquery [-dir DIR | -url URL] 'context=...&content=...'")
	}
	raw := flag.Arg(0)

	q, err := netmark.ParseQuery(raw)
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	if *url != "" {
		src := databank.NewHTTPSource("remote", *url, databank.Full)
		res, err := src.Query(context.Background(), q)
		if err != nil {
			log.Fatalf("remote query: %v", err)
		}
		printSections(res.Sections, res.Docs)
		return
	}
	if *dir == "" {
		log.Fatal("nmquery: one of -dir or -url is required")
	}
	nm, err := netmark.Open(netmark.Config{Dir: *dir})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()
	if *xsltFile != "" {
		src, err := os.ReadFile(*xsltFile)
		if err != nil {
			log.Fatalf("stylesheet: %v", err)
		}
		if err := nm.RegisterStylesheet("cli", string(src)); err != nil {
			log.Fatalf("stylesheet: %v", err)
		}
		q.XSLT = "cli"
	}
	res, err := nm.Engine().Execute(q)
	if err != nil {
		log.Fatalf("execute: %v", err)
	}
	if res.Transformed != nil {
		fmt.Println(sgml.SerializeIndent(res.Transformed))
		return
	}
	printSections(res.Sections, res.Docs)
}

func printSections(secs []netmark.Section, docs []*netmark.DocInfo) {
	for _, d := range docs {
		fmt.Printf("document %-30s title=%q format=%s\n", d.FileName, d.Title, d.Format)
	}
	for _, s := range secs {
		fmt.Printf("== %s  (doc %s)\n%s\n\n", s.Context, s.DocName, s.Content)
	}
	fmt.Printf("%d result(s)\n", len(secs)+len(docs))
}
