// Command benchdiff compares two benchmark recordings produced by
// cmd/benchjson and fails (exit 1) when any benchmark present in both
// regressed beyond a threshold — the CI bench-regression gate:
//
//	go run ./cmd/benchdiff -old BENCH_PR4.json -new BENCH_CI.json -threshold 2
//
// ns/op and allocs/op are compared, and only for benchmarks matching
// -match, so one noisy micro-benchmark cannot veto a merge.  Both
// thresholds are deliberately loose: committed baselines come from
// whatever machine recorded them, so the gate catches algorithmic
// regressions (2x and worse), not hardware skew.  Allocs/op barely
// varies across machines, but benchmarks whose op counts depend on
// cache hit rates still drift with CPU count, so the same 2x default
// applies.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"netmark/internal/benchfmt"
)

// defaultMatch covers the serving / cold-kernel / reopen trajectory
// benchmarks recorded in every BENCH_PR*.json.
const defaultMatch = "BenchmarkServeParallel|BenchmarkColdContentSearch|BenchmarkMixedWriteHeavy|BenchmarkReopen"

type row struct {
	name      string
	oldNs     float64
	newNs     float64
	ratio     float64
	regressed bool // ns/op grew beyond the time threshold

	oldAllocs      float64
	newAllocs      float64
	allocRatio     float64 // 0 when either recording lacks allocs/op
	allocRegressed bool    // allocs/op grew beyond the alloc threshold
}

// gomaxprocsSuffix is the "-N" the benchmark framework appends to every
// name.  Baselines are recorded on whatever machine the developer had,
// so pairing must ignore it — a 1-CPU recording says
// "BenchmarkMixedWriteHeavy" where a 4-vCPU CI runner says
// "BenchmarkMixedWriteHeavy-4".
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// diff pairs benchmarks by GOMAXPROCS-normalised name and flags every
// matched one whose ns/op grew by more than threshold or whose
// allocs/op grew by more than allocThreshold.  Allocations are only
// compared when both recordings report them (benchmarks without
// ReportAllocs leave the field zero).
func diff(oldRep, newRep *benchfmt.Report, match *regexp.Regexp, threshold, allocThreshold float64) []row {
	old := make(map[string]benchfmt.Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		old[normalizeName(b.Name)] = b
	}
	var rows []row
	for _, nb := range newRep.Benchmarks {
		name := normalizeName(nb.Name)
		if !match.MatchString(name) {
			continue
		}
		ob, ok := old[name]
		if !ok || ob.NsPerOp <= 0 || nb.NsPerOp <= 0 {
			continue
		}
		r := row{
			name:  name,
			oldNs: ob.NsPerOp,
			newNs: nb.NsPerOp,
			ratio: nb.NsPerOp / ob.NsPerOp,
		}
		r.regressed = r.ratio > threshold
		if ob.AllocsPerOp > 0 && nb.AllocsPerOp > 0 {
			r.oldAllocs = ob.AllocsPerOp
			r.newAllocs = nb.AllocsPerOp
			r.allocRatio = nb.AllocsPerOp / ob.AllocsPerOp
			r.allocRegressed = r.allocRatio > allocThreshold
		}
		rows = append(rows, r)
	}
	return rows
}

func render(rows []row, threshold float64) (string, bool) {
	var sb strings.Builder
	regressed := false
	if len(rows) == 0 {
		// An empty overlap proves nothing, which for a gate means FAIL:
		// a renamed benchmark must come with a refreshed baseline, not a
		// silently green job.
		sb.WriteString("benchdiff: no comparable benchmarks (name overlap empty) — refresh the baseline\n")
		return sb.String(), true
	}
	for _, r := range rows {
		verdict := "ok"
		if r.regressed {
			verdict = fmt.Sprintf("REGRESSED (> %.2gx)", threshold)
			regressed = true
		}
		fmt.Fprintf(&sb, "%-60s %14.0f -> %14.0f ns/op  %5.2fx  %s\n",
			r.name, r.oldNs, r.newNs, r.ratio, verdict)
		if r.allocRegressed {
			fmt.Fprintf(&sb, "%-60s %14.0f -> %14.0f allocs/op  %5.2fx  ALLOCS REGRESSED\n",
				r.name, r.oldAllocs, r.newAllocs, r.allocRatio)
			regressed = true
		}
	}
	return sb.String(), regressed
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file (e.g. newest committed BENCH_PR*.json)")
	newPath := flag.String("new", "", "candidate benchjson file (e.g. BENCH_CI.json)")
	threshold := flag.Float64("threshold", 2.0, "fail when new ns/op exceeds old by more than this factor")
	allocThreshold := flag.Float64("alloc-threshold", 2.0, "fail when new allocs/op exceeds old by more than this factor")
	match := flag.String("match", defaultMatch, "regexp of benchmark names to gate")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old OLD.json -new NEW.json [-threshold 2] [-match regexp]")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -match:", err)
		os.Exit(2)
	}
	oldRep, err := benchfmt.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := benchfmt.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	out, regressed := render(diff(oldRep, newRep, re, *threshold, *allocThreshold), *threshold)
	fmt.Printf("benchdiff: %s (%s/%s) vs %s (%s/%s), threshold %.2gx\n",
		*oldPath, oldRep.GOOS, oldRep.GoVersion, *newPath, newRep.GOOS, newRep.GoVersion, *threshold)
	fmt.Print(out)
	if regressed {
		fmt.Println("benchdiff: FAIL — performance regression detected")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}
