package main

import (
	"regexp"
	"strings"
	"testing"

	"netmark/internal/benchfmt"
)

func report(ns map[string]float64) *benchfmt.Report {
	rep := &benchfmt.Report{GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64"}
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{Name: name, Runs: 10, NsPerOp: v})
	}
	return rep
}

// TestInjectedSlowdownFails is the gate's proof of life: a 2x+ slowdown
// on a gated benchmark must fail, a mild one must not.
func TestInjectedSlowdownFails(t *testing.T) {
	match := regexp.MustCompile(defaultMatch)
	base := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-4": 6_400_000,
		"BenchmarkServeParallel/hot/cached-4":    50_000,
		"BenchmarkReopen/snapshot/docs=8-4":      2_000_000,
	})

	// Injected 2.5x regression on the cold kernel.
	slow := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-4": 16_000_000,
		"BenchmarkServeParallel/hot/cached-4":    50_000,
		"BenchmarkReopen/snapshot/docs=8-4":      2_000_000,
	})
	out, regressed := render(diff(base, slow, match, 2.0, 2.0), 2.0)
	if !regressed {
		t.Fatalf("2.5x slowdown not flagged:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "BenchmarkColdContentSearch/optimized") {
		t.Fatalf("regression not named:\n%s", out)
	}

	// 1.5x drift stays under the 2x gate (hardware skew tolerance).
	drift := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-4": 9_600_000,
		"BenchmarkServeParallel/hot/cached-4":    75_000,
		"BenchmarkReopen/snapshot/docs=8-4":      2_000_000,
	})
	if out, regressed := render(diff(base, drift, match, 2.0, 2.0), 2.0); regressed {
		t.Fatalf("1.5x drift wrongly flagged:\n%s", out)
	}
}

// TestUnmatchedBenchmarksIgnored: benchmarks outside -match or missing
// from the baseline never gate the build.
func TestUnmatchedBenchmarksIgnored(t *testing.T) {
	match := regexp.MustCompile(defaultMatch)
	base := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-4": 6_400_000,
	})
	cand := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-4": 6_400_000,
		"BenchmarkAdd-4":                         9_999_999_999, // not gated
		"BenchmarkReopen/scan/docs=32-4":         5_000_000,     // gated but no baseline
	})
	rows := diff(base, cand, match, 2.0, 2.0)
	if len(rows) != 1 || rows[0].name != "BenchmarkColdContentSearch/optimized" {
		t.Fatalf("rows = %+v", rows)
	}
	if _, regressed := render(rows, 2.0); regressed {
		t.Fatal("unmatched benchmarks gated the build")
	}
}

// TestGomaxprocsSuffixPairing: a baseline recorded on a 1-CPU machine
// has no "-N" suffix while a multi-core CI runner emits one; pairing
// must still match, or the gate never compares anything.
func TestGomaxprocsSuffixPairing(t *testing.T) {
	match := regexp.MustCompile(defaultMatch)
	base := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-serial": 6_000_000, // 1-CPU recording
		"BenchmarkMixedWriteHeavy":                    80_000,
	})
	ci := report(map[string]float64{
		"BenchmarkColdContentSearch/optimized-serial-4": 19_000_000, // 4-vCPU runner, 3.2x
		"BenchmarkMixedWriteHeavy-4":                    90_000,
	})
	rows := diff(base, ci, match, 2.0, 2.0)
	if len(rows) != 2 {
		t.Fatalf("suffix-skewed names not paired: %+v", rows)
	}
	out, regressed := render(rows, 2.0)
	if !regressed || !strings.Contains(out, "BenchmarkColdContentSearch/optimized-serial") {
		t.Fatalf("regression lost across suffix skew:\n%s", out)
	}
}

// TestEmptyOverlap: disjoint recordings must FAIL the gate — an empty
// comparison proves nothing, and a benchmark rename has to arrive with
// a refreshed baseline rather than a silently green job.
func TestEmptyOverlap(t *testing.T) {
	match := regexp.MustCompile(defaultMatch)
	out, regressed := render(diff(report(nil), report(map[string]float64{
		"BenchmarkReopen/snapshot/docs=8-4": 1,
	}), match, 2.0, 2.0), 2.0)
	if !regressed || !strings.Contains(out, "no comparable benchmarks") {
		t.Fatalf("empty overlap mishandled: %v %q", regressed, out)
	}
}

func reportWithAllocs(vals map[string][2]float64) *benchfmt.Report {
	rep := &benchfmt.Report{GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64"}
	for name, v := range vals {
		rep.Benchmarks = append(rep.Benchmarks,
			benchfmt.Benchmark{Name: name, Runs: 10, NsPerOp: v[0], AllocsPerOp: v[1]})
	}
	return rep
}

// TestInjectedAllocRegressionFails: a benchmark whose time holds steady
// but whose allocs/op more than doubles must fail the gate — allocation
// regressions show up as GC pressure in production long before they
// show up as wall time on an idle CI runner.
func TestInjectedAllocRegressionFails(t *testing.T) {
	match := regexp.MustCompile(defaultMatch)
	base := reportWithAllocs(map[string][2]float64{
		"BenchmarkServeParallel/hot/cached-4": {50_000, 120},
		"BenchmarkReopen/snapshot/docs=8-4":   {2_000_000, 900},
	})
	// Same speed, 3x the allocations on the serving path.
	leaky := reportWithAllocs(map[string][2]float64{
		"BenchmarkServeParallel/hot/cached-4": {50_000, 360},
		"BenchmarkReopen/snapshot/docs=8-4":   {2_000_000, 900},
	})
	out, regressed := render(diff(base, leaky, match, 2.0, 2.0), 2.0)
	if !regressed {
		t.Fatalf("3x alloc regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "ALLOCS REGRESSED") || !strings.Contains(out, "BenchmarkServeParallel/hot/cached") {
		t.Fatalf("alloc regression not named:\n%s", out)
	}

	// Mild alloc drift passes.
	drift := reportWithAllocs(map[string][2]float64{
		"BenchmarkServeParallel/hot/cached-4": {50_000, 180},
		"BenchmarkReopen/snapshot/docs=8-4":   {2_000_000, 900},
	})
	if out, regressed := render(diff(base, drift, match, 2.0, 2.0), 2.0); regressed {
		t.Fatalf("1.5x alloc drift wrongly flagged:\n%s", out)
	}

	// Baselines without allocs/op never alloc-gate (old recordings).
	noAllocBase := report(map[string]float64{
		"BenchmarkServeParallel/hot/cached-4": 50_000,
	})
	if out, regressed := render(diff(noAllocBase, leaky, match, 2.0, 2.0), 2.0); regressed {
		t.Fatalf("alloc gate fired without a baseline:\n%s", out)
	}
}
