// Command nmingest bulk-loads documents into a NETMARK store through the
// concurrent batch-ingestion pipeline: parse/upmark fans across workers,
// a single ordered writer feeds the store, and each batch costs one WAL
// group-commit.
//
// Usage:
//
//	nmingest -dir ./data report.html memo.rtf budget.csv deck.slides
//	nmingest -dir ./data -gen proposals -n 500          # synthetic corpus
//	nmingest -dir ./data -workers 8 -batch 256 docs/*.html
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netmark"
	"netmark/internal/corpus"
)

func main() {
	dir := flag.String("dir", "", "storage directory (required)")
	gen := flag.String("gen", "", "generate a synthetic corpus instead: proposals|taskplans|anomalies|lessons|mixed")
	n := flag.Int("n", 100, "number of synthetic documents")
	seed := flag.Int64("seed", 42, "synthetic corpus seed")
	workers := flag.Int("workers", 0, "parse/upmark worker count (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "documents per WAL group-commit batch (0 = default)")
	flag.Parse()

	if *dir == "" {
		log.Fatal("nmingest: -dir is required (an in-memory store would vanish on exit)")
	}
	nm, err := netmark.Open(netmark.Config{
		Dir:             *dir,
		IngestWorkers:   *workers,
		IngestBatchSize: *batch,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	// Close flushes and syncs the WAL; a failure here means the final
	// writes may not be durable, which a durable-store CLI must not hide.
	defer func() {
		if err := nm.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()

	if *gen != "" {
		g := corpus.New(*seed)
		var docs []corpus.Document
		switch *gen {
		case "proposals":
			docs = g.Proposals(*n)
		case "taskplans":
			docs = g.TaskPlans(*n)
		case "anomalies":
			docs = g.Anomalies(*n)
		case "lessons":
			docs = g.LessonsLearned(*n)
		case "mixed":
			docs = g.Mixed(*n)
		default:
			log.Fatalf("unknown corpus %q", *gen)
		}
		batch := make([]netmark.Doc, len(docs))
		for i, d := range docs {
			batch[i] = netmark.Doc{Name: d.Name, Data: d.Data}
		}
		for _, r := range nm.IngestBatch(batch) {
			if r.Err != nil {
				log.Fatalf("ingest %s: %v", r.Name, r.Err)
			}
		}
		fmt.Printf("ingested %d synthetic %s documents\n", len(docs), *gen)
		return
	}

	if flag.NArg() == 0 {
		log.Fatal("nmingest: no files given (and no -gen)")
	}
	var paths []string
	for _, pattern := range flag.Args() {
		matches, err := filepath.Glob(pattern)
		if err != nil || len(matches) == 0 {
			matches = []string{pattern}
		}
		paths = append(paths, matches...)
	}
	ok, failed := 0, 0
	for _, r := range nm.IngestFiles(paths) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.Name, r.Err)
			failed++
			continue
		}
		fmt.Printf("ok   %s -> doc %d\n", r.Name, r.DocID)
		ok++
	}
	fmt.Printf("ingested %d, failed %d; store now holds %d documents / %d nodes\n",
		ok, failed, nm.Store().NumDocuments(), nm.Store().NumNodes())
	if failed > 0 {
		os.Exit(1)
	}
}
