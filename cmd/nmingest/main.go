// Command nmingest bulk-loads documents into a NETMARK store.
//
// Usage:
//
//	nmingest -dir ./data report.html memo.rtf budget.csv deck.slides
//	nmingest -dir ./data -gen proposals -n 500     # synthetic corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netmark"
	"netmark/internal/corpus"
)

func main() {
	dir := flag.String("dir", "", "storage directory (required)")
	gen := flag.String("gen", "", "generate a synthetic corpus instead: proposals|taskplans|anomalies|lessons|mixed")
	n := flag.Int("n", 100, "number of synthetic documents")
	seed := flag.Int64("seed", 42, "synthetic corpus seed")
	flag.Parse()

	if *dir == "" {
		log.Fatal("nmingest: -dir is required (an in-memory store would vanish on exit)")
	}
	nm, err := netmark.Open(netmark.Config{Dir: *dir})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer nm.Close()

	if *gen != "" {
		g := corpus.New(*seed)
		var docs []corpus.Document
		switch *gen {
		case "proposals":
			docs = g.Proposals(*n)
		case "taskplans":
			docs = g.TaskPlans(*n)
		case "anomalies":
			docs = g.Anomalies(*n)
		case "lessons":
			docs = g.LessonsLearned(*n)
		case "mixed":
			docs = g.Mixed(*n)
		default:
			log.Fatalf("unknown corpus %q", *gen)
		}
		for _, d := range docs {
			if _, err := nm.Ingest(d.Name, d.Data); err != nil {
				log.Fatalf("ingest %s: %v", d.Name, err)
			}
		}
		fmt.Printf("ingested %d synthetic %s documents\n", len(docs), *gen)
		return
	}

	if flag.NArg() == 0 {
		log.Fatal("nmingest: no files given (and no -gen)")
	}
	ok, failed := 0, 0
	for _, pattern := range flag.Args() {
		matches, err := filepath.Glob(pattern)
		if err != nil || len(matches) == 0 {
			matches = []string{pattern}
		}
		for _, path := range matches {
			id, err := nm.IngestFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("ok   %s -> doc %d\n", path, id)
			ok++
		}
	}
	fmt.Printf("ingested %d, failed %d; store now holds %d documents / %d nodes\n",
		ok, failed, nm.Store().NumDocuments(), nm.Store().NumNodes())
	if failed > 0 {
		os.Exit(1)
	}
}
