// Command benchjson converts `go test -bench` output on stdin into a
// JSON record on stdout, preserving the raw benchmark lines (the format
// benchstat parses) alongside the parsed per-benchmark numbers, so perf
// trajectories can be committed and diffed across PRs:
//
//	go test -run xxx -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole output document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw holds the verbatim benchmark lines; feed them to benchstat.
	Raw []string `json:"raw"`
}

func main() {
	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rep.Raw = append(rep.Raw, line)
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkX/case-8   100   123 ns/op   9 hits   456 B/op   7 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
