// Command benchjson converts `go test -bench` output on stdin into a
// JSON record on stdout, preserving the raw benchmark lines (the format
// benchstat parses) alongside the parsed per-benchmark numbers, so perf
// trajectories can be committed and diffed across PRs:
//
//	go test -run xxx -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Compare two recordings with cmd/benchdiff.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"netmark/internal/benchfmt"
)

func main() {
	rep := benchfmt.Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rep.Raw = append(rep.Raw, line)
		if b, ok := benchfmt.ParseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
