// Command nmbench regenerates every table and figure of the paper's
// evaluation plus the design ablations, printing the same rows/series
// the paper reports.
//
// Usage:
//
//	nmbench                    # run everything
//	nmbench -exp fig1,table1   # run a subset
//	nmbench -scale 3           # triple the workload sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netmark/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "comma list: table1,fig1,fig6,fig7,fig8,ablations")
	scale := flag.Int("scale", 1, "workload size multiplier")
	flag.Parse()
	if *scale < 1 {
		*scale = 1
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, fn func() (string, error)) {
		if !all && !want[name] {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("-", 72))
	}

	run("table1", func() (string, error) {
		_, report, err := experiments.Table1()
		return report, err
	})
	run("fig1", func() (string, error) {
		return experiments.Fig1([]int{1, 2, 4, 8, 16, 32, 64, 128, 256}, 4)
	})
	run("fig6", func() (string, error) {
		_, report, err := experiments.Fig6([]int{100 * *scale, 300 * *scale, 1000 * *scale})
		return report, err
	})
	run("fig7", func() (string, error) {
		return experiments.Fig7(200 * *scale)
	})
	run("fig8", func() (string, error) {
		_, report, err := experiments.Fig8([]int{1, 2, 4, 8, 16, 32}, 20**scale)
		return report, err
	})
	run("ablations", func() (string, error) {
		var sb strings.Builder
		for _, fn := range []func(int) (string, error){
			experiments.AblationRowidTraversal,
			experiments.AblationUniversalVsShred,
			experiments.AblationTextIndexVsScan,
		} {
			out, err := fn(100 * *scale)
			if err != nil {
				return "", err
			}
			sb.WriteString(out)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	})
}
