// Command nmsql is a SQL shell over the ORDBMS substrate — the
// administrative face of NETMARK's "intelligent storage".  It can inspect
// a store's universal tables or act as a standalone relational engine.
//
// Usage:
//
//	nmsql -dir ./data 'SELECT filename, nnodes FROM DOC ORDER BY nnodes DESC LIMIT 5'
//	echo 'SELECT COUNT(*) FROM XML' | nmsql -dir ./data
//	nmsql -dir ./scratch -i          # interactive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"netmark/internal/ordbms"
	"netmark/internal/sqlx"
)

func main() {
	dir := flag.String("dir", "", "storage directory (empty = in-memory scratch)")
	interactive := flag.Bool("i", false, "interactive shell")
	flag.Parse()

	eng, err := ordbms.Open(ordbms.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	// Close checkpoints and syncs; losing its error would hide a failed
	// final flush from the operator.
	defer func() {
		if err := eng.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}()
	db := sqlx.New(eng)

	run := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		res, err := db.Exec(stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		printResult(res)
	}

	if flag.NArg() > 0 {
		for _, stmt := range flag.Args() {
			run(stmt)
		}
		return
	}
	if !*interactive {
		// Read statements from stdin, one per line (\ continues).
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var pending strings.Builder
		for sc.Scan() {
			line := sc.Text()
			if strings.HasSuffix(line, "\\") {
				pending.WriteString(strings.TrimSuffix(line, "\\"))
				pending.WriteByte(' ')
				continue
			}
			pending.WriteString(line)
			run(pending.String())
			pending.Reset()
		}
		return
	}
	fmt.Println("nmsql — SQL over the NETMARK ORDBMS (tables:", strings.Join(eng.TableNames(), ", "), ")")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("nmsql> ")
	for sc.Scan() {
		run(sc.Text())
		fmt.Print("nmsql> ")
	}
}

func printResult(res *sqlx.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d row(s) affected)\n", res.Affected)
		return
	}
	widths := make([]int, len(res.Columns))
	cells := make([][]string, 0, len(res.Rows)+1)
	header := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		header[i] = c
		widths[i] = len(c)
	}
	cells = append(cells, header)
	for _, row := range res.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
			if len(line[i]) > 60 {
				line[i] = line[i][:57] + "..."
			}
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for r, line := range cells {
		for i, cell := range line {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
		if r == 0 {
			for _, w := range widths {
				fmt.Print(strings.Repeat("-", w) + "  ")
			}
			fmt.Println()
		}
	}
	fmt.Printf("(%d row(s), plan: %s)\n", len(res.Rows), res.Plan)
}
