package main

import (
	"reflect"
	"testing"
)

func TestDedupeMergesSamePosition(t *testing.T) {
	in := []finding{
		{File: "a.go", Line: 3, Column: 2, Analyzer: "ackorder", Message: "ack before commit"},
		{File: "a.go", Line: 3, Column: 2, Analyzer: "errflow", Message: "error dropped"},
		{File: "a.go", Line: 9, Column: 1, Analyzer: "errflow", Message: "error dropped"},
		{File: "b.go", Line: 3, Column: 2, Analyzer: "lockcheck", Message: "not held"},
	}
	got := dedupe(in)
	want := []finding{
		{File: "a.go", Line: 3, Column: 2, Analyzer: "ackorder,errflow", Message: "ack before commit; error dropped"},
		{File: "a.go", Line: 9, Column: 1, Analyzer: "errflow", Message: "error dropped"},
		{File: "b.go", Line: 3, Column: 2, Analyzer: "lockcheck", Message: "not held"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dedupe:\n got %+v\nwant %+v", got, want)
	}
}

func TestDedupeKeepsDistinctPositions(t *testing.T) {
	in := []finding{
		{File: "a.go", Line: 3, Column: 2, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 3, Column: 7, Analyzer: "x", Message: "m"},
	}
	if got := dedupe(in); len(got) != 2 {
		t.Fatalf("dedupe merged distinct columns: %+v", got)
	}
}

func TestApplyBaseline(t *testing.T) {
	findings := []finding{
		{File: "a.go", Line: 10, Analyzer: "hotalloc", Message: "make allocates"},
		{File: "b.go", Line: 5, Analyzer: "boxcheck", Message: "boxes int"},
	}
	baseline := []finding{
		// Same file/analyzer/message at a drifted line still matches.
		{File: "a.go", Line: 99, Analyzer: "hotalloc", Message: "make allocates"},
		// A worked-off entry that no longer fires.
		{File: "c.go", Line: 1, Analyzer: "errflow", Message: "gone"},
	}
	fresh, stale := applyBaseline(findings, baseline)
	if fresh != 1 {
		t.Fatalf("fresh = %d, want 1", fresh)
	}
	if !findings[0].Baselined || findings[1].Baselined {
		t.Fatalf("baselined flags wrong: %+v", findings)
	}
	if len(stale) != 1 || stale[0].File != "c.go" {
		t.Fatalf("stale = %+v", stale)
	}
}

func TestApplyBaselineCountsDuplicates(t *testing.T) {
	findings := []finding{
		{File: "a.go", Line: 1, Analyzer: "x", Message: "m"},
		{File: "a.go", Line: 2, Analyzer: "x", Message: "m"},
	}
	baseline := []finding{{File: "a.go", Line: 1, Analyzer: "x", Message: "m"}}
	fresh, stale := applyBaseline(findings, baseline)
	if fresh != 1 || len(stale) != 0 {
		t.Fatalf("fresh = %d stale = %v, want 1 fresh (one duplicate grandfathered)", fresh, stale)
	}
}
