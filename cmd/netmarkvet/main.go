// Command netmarkvet is the repo's analyzer suite: it type-checks
// every package in the module once and runs the ten netmark-specific
// passes (lockcheck, lockscope, atomicmix, fsyncrename, vfsonly,
// cowview, errflow, ackorder, genbump, snapcover) that encode our
// concurrency, crash-safety, durability-ordering, fault-injectability,
// and cache-coherence invariants.
// See internal/analysis for the annotation convention and
// CONTRIBUTING.md for the invariants themselves.
//
// Usage:
//
//	netmarkvet [-list] [-json] [-v] [dir ...]
//
// With no arguments it analyzes every package under the current
// module.  Diagnostics are deterministic — sorted by file, line,
// column, analyzer — and printed compiler-style to stderr; -json
// mirrors them as a JSON array on stdout for editors and CI
// annotations.  -v reports per-analyzer wall time.  Exit status is 1
// if any diagnostic is reported, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"netmark/internal/analysis"
	"netmark/internal/analysis/ackorder"
	"netmark/internal/analysis/atomicmix"
	"netmark/internal/analysis/cowview"
	"netmark/internal/analysis/errflow"
	"netmark/internal/analysis/fsyncrename"
	"netmark/internal/analysis/genbump"
	"netmark/internal/analysis/lockcheck"
	"netmark/internal/analysis/lockscope"
	"netmark/internal/analysis/snapcover"
	"netmark/internal/analysis/vfsonly"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	lockscope.Analyzer,
	atomicmix.Analyzer,
	fsyncrename.Analyzer,
	vfsonly.Analyzer,
	cowview.Analyzer,
	errflow.Analyzer,
	ackorder.Analyzer,
	genbump.Analyzer,
	snapcover.Analyzer,
}

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout (text still goes to stderr)")
	verbose := flag.Bool("v", false, "report per-analyzer wall time")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netmarkvet [-list] [-json] [-v] [dir ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dirs := flag.Args()
	if len(dirs) == 0 {
		root, err := moduleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
		dirs, err = packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmarkvet:", err)
		os.Exit(2)
	}
	loadStart := time.Now()
	// One load for the whole module: every package is parsed and
	// type-checked exactly once and shared by all ten analyzers (and
	// by the interprocedural summaries, which need cross-package
	// bodies).
	mod, err := loader.LoadModule(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netmarkvet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	var diags []analysis.Diagnostic
	times := make(map[string]time.Duration)
	loadErrs := 0
	for _, pkg := range mod.Packages {
		ds, err := analysis.RunAnalyzersTimed(pkg, analyzers, func(name string, d time.Duration) {
			times[name] += d
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "netmarkvet: %s: %v\n", pkg.Dir, err)
			loadErrs++
			continue
		}
		diags = append(diags, ds...)
	}

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		findings = append(findings, finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  strings.TrimPrefix(d.Message, d.Analyzer+": "),
		})
	}
	// Deterministic output across packages: file, line, column,
	// analyzer, message.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *verbose {
		fmt.Fprintf(os.Stderr, "netmarkvet: loaded %d packages in %v\n", len(mod.Packages), loadTime.Round(time.Millisecond))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "netmarkvet: %-12s %8v\n", a.Name, times[a.Name].Round(time.Millisecond))
		}
	}
	// Compiler-style text on stderr so CI logs and humans see findings
	// even when stdout carries JSON.
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
	}
	switch {
	case loadErrs > 0:
		os.Exit(2)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "netmarkvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}

// packageDirs lists every directory under root holding non-test .go
// files, skipping testdata, vendor, and dot directories.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
