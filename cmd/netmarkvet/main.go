// Command netmarkvet is the repo's analyzer suite: it type-checks
// every package in the module once and runs the thirteen
// netmark-specific passes (lockcheck, lockscope, atomicmix,
// fsyncrename, vfsonly, cowview, errflow, ackorder, genbump,
// snapcover, hotalloc, boxcheck, aliascap) that encode our
// concurrency, crash-safety, durability-ordering, fault-
// injectability, cache-coherence, and zero-allocation invariants.
// See internal/analysis for the annotation convention and
// CONTRIBUTING.md for the invariants themselves.
//
// Usage:
//
//	netmarkvet [-list] [-json] [-v] [-baseline file] [dir ...]
//
// With no arguments it analyzes every package under the current
// module.  Diagnostics are deterministic — sorted by file, line,
// column, analyzer — with paths relative to the module root, and
// findings reported by several analyzers at the same position are
// merged into one line carrying the analyzer list.  Text goes
// compiler-style to stderr; -json mirrors the findings as a JSON
// array on stdout for editors and CI annotations.  -v reports
// per-analyzer wall time.
//
// -baseline compares findings against a committed JSON baseline
// (ANALYZE_BASELINE.json): findings present in the baseline are
// reported but grandfathered — only *new* findings fail the run, so
// CI stays red on regressions while a known finding is worked off.
// Baseline entries that no longer fire are reported so the file can
// be pruned.
//
// Exit status is 1 if any (non-grandfathered) diagnostic is reported,
// 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"netmark/internal/analysis"
	"netmark/internal/analysis/ackorder"
	"netmark/internal/analysis/aliascap"
	"netmark/internal/analysis/atomicmix"
	"netmark/internal/analysis/boxcheck"
	"netmark/internal/analysis/cowview"
	"netmark/internal/analysis/errflow"
	"netmark/internal/analysis/fsyncrename"
	"netmark/internal/analysis/genbump"
	"netmark/internal/analysis/hotalloc"
	"netmark/internal/analysis/lockcheck"
	"netmark/internal/analysis/lockscope"
	"netmark/internal/analysis/snapcover"
	"netmark/internal/analysis/vfsonly"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	lockscope.Analyzer,
	atomicmix.Analyzer,
	fsyncrename.Analyzer,
	vfsonly.Analyzer,
	cowview.Analyzer,
	errflow.Analyzer,
	ackorder.Analyzer,
	genbump.Analyzer,
	snapcover.Analyzer,
	hotalloc.Analyzer,
	boxcheck.Analyzer,
	aliascap.Analyzer,
}

// finding is the -json wire form of one diagnostic.  After dedupe,
// Analyzer may carry a comma-joined list and Message the matching
// "; "-joined messages.  Baselined marks findings grandfathered by
// -baseline.
type finding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// dedupe merges findings reported by multiple analyzers at the same
// file:line:col into one entry, joining the analyzer names with ","
// and the messages with "; " in analyzer order.  Input must already
// be sorted by file, line, column, analyzer, message.
func dedupe(findings []finding) []finding {
	out := findings[:0]
	for _, f := range findings {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.File == f.File && prev.Line == f.Line && prev.Column == f.Column {
				prev.Analyzer += "," + f.Analyzer
				prev.Message += "; " + f.Message
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// baselineKey identifies a finding across line drift: unrelated edits
// move line numbers, so the baseline matches on file, analyzer list,
// and message only.
func baselineKey(f finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// applyBaseline marks findings present in the baseline file as
// grandfathered and returns the number of fresh (non-baselined)
// findings plus the baseline entries that no longer fire.
func applyBaseline(findings []finding, baseline []finding) (fresh int, stale []finding) {
	known := make(map[string]int)
	for _, b := range baseline {
		known[baselineKey(b)]++
	}
	for i := range findings {
		k := baselineKey(findings[i])
		if known[k] > 0 {
			known[k]--
			findings[i].Baselined = true
		} else {
			fresh++
		}
	}
	for _, b := range baseline {
		if known[baselineKey(b)] > 0 {
			known[baselineKey(b)]--
			stale = append(stale, b)
		}
	}
	return fresh, stale
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout (text still goes to stderr)")
	verbose := flag.Bool("v", false, "report per-analyzer wall time")
	baselinePath := flag.String("baseline", "", "JSON findings baseline; only findings not in it fail the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netmarkvet [-list] [-json] [-v] [-baseline file] [dir ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dirs := flag.Args()
	rootFrom := "."
	if len(dirs) > 0 {
		rootFrom = dirs[0]
	}
	root, err := moduleRoot(rootFrom)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmarkvet:", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		dirs, err = packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmarkvet:", err)
		os.Exit(2)
	}
	loadStart := time.Now()
	// One load for the whole module: every package is parsed and
	// type-checked exactly once and shared by all ten analyzers (and
	// by the interprocedural summaries, which need cross-package
	// bodies).
	mod, err := loader.LoadModule(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netmarkvet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	var diags []analysis.Diagnostic
	times := make(map[string]time.Duration)
	loadErrs := 0
	for _, pkg := range mod.Packages {
		ds, err := analysis.RunAnalyzersTimed(pkg, analyzers, func(name string, d time.Duration) {
			times[name] += d
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "netmarkvet: %s: %v\n", pkg.Dir, err)
			loadErrs++
			continue
		}
		diags = append(diags, ds...)
	}

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		file := pos.Filename
		// Module-relative paths: stable across checkouts, so the
		// committed baseline and CI artifacts stay comparable.
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			File:     file,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  strings.TrimPrefix(d.Message, d.Analyzer+": "),
		})
	}
	// Deterministic output across packages: file, line, column,
	// analyzer, message.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	findings = dedupe(findings)

	fresh := len(findings)
	var stale []finding
	if *baselinePath != "" {
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
		fresh, stale = applyBaseline(findings, baseline)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "netmarkvet: loaded %d packages in %v\n", len(mod.Packages), loadTime.Round(time.Millisecond))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "netmarkvet: %-12s %8v\n", a.Name, times[a.Name].Round(time.Millisecond))
		}
	}
	// Compiler-style text on stderr so CI logs and humans see findings
	// even when stdout carries JSON.
	for _, f := range findings {
		suffix := ""
		if f.Baselined {
			suffix = " (baselined)"
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message, suffix)
	}
	for _, b := range stale {
		fmt.Fprintf(os.Stderr, "netmarkvet: baseline entry no longer fires (prune it): %s: %s: %s\n", b.File, b.Analyzer, b.Message)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
	}
	switch {
	case loadErrs > 0:
		os.Exit(2)
	case fresh > 0:
		fmt.Fprintf(os.Stderr, "netmarkvet: %d finding(s)\n", fresh)
		os.Exit(1)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "netmarkvet: %d baselined finding(s), none new\n", len(findings))
	}
}

// loadBaseline reads a JSON findings array written by a previous
// `netmarkvet -json` run (an empty array is a clean baseline).
func loadBaseline(path string) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var out []finding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}

// packageDirs lists every directory under root holding non-test .go
// files, skipping testdata, vendor, and dot directories.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
