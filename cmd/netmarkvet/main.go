// Command netmarkvet is the repo's analyzer suite: it type-checks every
// package in the module and runs the five netmark-specific passes
// (lockcheck, lockscope, atomicmix, fsyncrename, cowview) that encode
// our concurrency and crash-safety invariants.  See
// internal/analysis for the annotation convention and CONTRIBUTING.md
// for the invariants themselves.
//
// Usage:
//
//	netmarkvet [-list] [dir ...]
//
// With no arguments it analyzes every package under the current
// module.  Exit status is 1 if any diagnostic is reported, 2 on load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"netmark/internal/analysis"
	"netmark/internal/analysis/atomicmix"
	"netmark/internal/analysis/cowview"
	"netmark/internal/analysis/fsyncrename"
	"netmark/internal/analysis/lockcheck"
	"netmark/internal/analysis/lockscope"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	lockscope.Analyzer,
	atomicmix.Analyzer,
	fsyncrename.Analyzer,
	cowview.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netmarkvet [-list] [dir ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dirs := flag.Args()
	if len(dirs) == 0 {
		root, err := moduleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
		dirs, err = packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmarkvet:", err)
			os.Exit(2)
		}
	}

	var (
		diags    []analysis.Diagnostic
		loadErrs int
	)
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmarkvet:", err)
		os.Exit(2)
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netmarkvet: %s: %v\n", dir, err)
			loadErrs++
			continue
		}
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netmarkvet: %s: %v\n", dir, err)
			loadErrs++
			continue
		}
		for _, d := range ds {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s: %s\n", pos, d.Message)
		}
		diags = append(diags, ds...)
	}
	switch {
	case loadErrs > 0:
		os.Exit(2)
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "netmarkvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}

// packageDirs lists every directory under root holding non-test .go
// files, skipping testdata, vendor, and dot directories.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
