package netmark_test

import (
	"fmt"
	"log"

	"netmark"
)

// ExampleOpen shows the minimal ingest-and-query loop.
func ExampleOpen() {
	nm, err := netmark.Open(netmark.Config{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer nm.Close()

	_, err = nm.Ingest("memo.rtf", []byte(`{\rtf1 {\b Findings}\par The valve passed retest.\par}`))
	if err != nil {
		log.Fatal(err)
	}
	res, err := nm.Query("context=Findings")
	if err != nil {
		log.Fatal(err)
	}
	for _, sec := range res.Sections {
		fmt.Printf("%s: %s\n", sec.Context, sec.Content)
	}
	// Output:
	// Findings: The valve passed retest.
}

// ExampleNetmark_Search shows the combined context+content predicate —
// the paper's Context=Technology Gap & Content=Shrinking form.
func ExampleNetmark_Search() {
	nm, _ := netmark.Open(netmark.Config{})
	defer nm.Close()
	nm.Ingest("r.html", []byte(`<html><body>
		<h2>Technology Gap</h2><p>The gap is shrinking.</p>
		<h2>Schedule</h2><p>On track.</p></body></html>`))

	secs, _ := nm.Search("Technology Gap", "shrinking")
	fmt.Println(len(secs), secs[0].Context)
	// Output:
	// 1 Technology Gap
}

// ExampleParseQuery shows the URL-appended XDB query syntax.
func ExampleParseQuery() {
	q, _ := netmark.ParseQuery("context=Budget&content=propulsion&limit=5")
	fmt.Println(q.Context, q.Content, q.Limit)
	// Output:
	// Budget propulsion 5
}
