// Package netmark is a Go reproduction of "Lean Middleware" (Maluf, Bell
// & Ashish, SIGMOD 2005) — NASA's NETMARK system: schema-less enterprise
// data integration without heavy-weight middleware.
//
// Every document (HTML, RTF "Word" files, plain-text reports,
// spreadsheets, slide decks, arbitrary XML) is automatically "upmarked"
// into context/content XML and decomposed into two universal relational
// tables inside a from-scratch ORDBMS with physical RowID links.  Queries
// are context/content searches appended to a URL (XDB Query), result
// composition uses an XSLT subset, and multi-source integration is a
// declarative Databank with per-source capability negotiation — no
// per-source schemas, no global views, no mappings.
//
// Quickstart:
//
//	nm, _ := netmark.Open(netmark.Config{})        // in-memory instance
//	defer nm.Close()
//	nm.Ingest("report.html", htmlBytes)            // any format
//	res, _ := nm.Query("context=Budget&content=propulsion")
//	for _, sec := range res.Sections { fmt.Println(sec.Context, sec.Content) }
//
// Bulk loads go through the concurrent batch pipeline instead:
//
//	results := nm.IngestBatch([]netmark.Doc{{Name: "a.html", Data: a}, ...})
//
// See README.md for the system inventory, the experiment harness
// (cmd/nmbench and the root benchmarks), and operational notes.
package netmark

import (
	"netmark/internal/core"
	"netmark/internal/databank"
	"netmark/internal/sgml"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// Config configures an instance.  The zero value is a volatile in-memory
// instance.
type Config = core.Config

// DefaultCacheBytes is the query result cache cap used when Config
// leaves CacheBytes zero (negative CacheBytes disables the cache).
const DefaultCacheBytes = core.DefaultCacheBytes

// Netmark is a running NETMARK instance.
type Netmark = core.Netmark

// Open creates or reopens an instance.
func Open(cfg Config) (*Netmark, error) { return core.Open(cfg) }

// Query is a parsed XDB query (Context/Content/XSLT/limit).
type Query = xdb.Query

// Result is an executed query's result set.
type Result = xdb.Result

// ParseQuery parses the URL form ("context=Budget&content=engine").
func ParseQuery(raw string) (Query, error) { return xdb.Parse(raw) }

// Doc is one raw input document for IngestBatch.
type Doc = core.Doc

// IngestResult reports one batch document's outcome, in input order.
type IngestResult = core.IngestResult

// Section is one context/content search hit.
type Section = xmlstore.Section

// DocInfo is stored-document metadata.
type DocInfo = xmlstore.DocInfo

// Databank is a declared multi-source integration application.
type Databank = databank.Databank

// Capability declares what a source can evaluate natively.
type Capability = databank.Capability

// Source is one databank information source.
type Source = databank.Source

// Full and ContentOnly are the common capability sets.
var (
	FullCapability = databank.Full
	ContentOnly    = databank.ContentOnly
)

// NewDatabank assembles a databank programmatically.
func NewDatabank(name string) *Databank { return databank.New(name) }

// NewLocalSource wraps a local instance's engine as a databank source.
func NewLocalSource(name string, nm *Netmark) Source {
	return databank.NewLocalSource(name, nm.Engine())
}

// NewLegacySource wraps an engine behind restricted capabilities
// (simulating search-limited legacy servers).
func NewLegacySource(name string, caps Capability, nm *Netmark) Source {
	return databank.NewLegacySource(name, caps, nm.Engine())
}

// NewHTTPSource points a databank at a remote NETMARK server.
func NewHTTPSource(name, baseURL string, caps Capability) Source {
	return databank.NewHTTPSource(name, baseURL, caps)
}

// ResultXML renders a result set in the XML wire format.
func ResultXML(r *Result) string { return sgml.SerializeIndent(r.XML()) }

// TransformedXML renders a result's XSLT-composed document, or "" when
// the query named no stylesheet.
func TransformedXML(r *Result) string {
	if r.Transformed == nil {
		return ""
	}
	return sgml.SerializeIndent(r.Transformed)
}
