package xslt

import (
	"fmt"
	"sort"
	"strings"

	"netmark/internal/sgml"
)

// Stylesheet is a compiled set of template rules.
type Stylesheet struct {
	templates []*template
}

type template struct {
	match    string // "/", element name, "name1|name2", "*", "text()"
	priority int    // computed: exact name 2, wildcard 1
	body     *sgml.Node
}

// ParseStylesheet compiles an XSLT document.  Both the conventional
// xsl:-prefixed form and a prefix-free form are accepted.
func ParseStylesheet(src string) (*Stylesheet, error) {
	tree, err := sgml.ParseString(src, sgml.ModeXML)
	if err != nil {
		return nil, err
	}
	root := firstElement(tree)
	if root == nil {
		return nil, fmt.Errorf("xslt: stylesheet has no root element")
	}
	if localName(root.Name) != "stylesheet" && localName(root.Name) != "transform" {
		return nil, fmt.Errorf("xslt: root element %q is not a stylesheet", root.Name)
	}
	sheet := &Stylesheet{}
	for _, t := range root.ChildElements() {
		if localName(t.Name) != "template" {
			continue
		}
		match, ok := t.Attr("match")
		if !ok || strings.TrimSpace(match) == "" {
			return nil, fmt.Errorf("xslt: template without match attribute")
		}
		for _, m := range strings.Split(match, "|") {
			m = strings.TrimSpace(m)
			prio := 2
			if m == "*" || m == "text()" {
				prio = 1
			}
			sheet.templates = append(sheet.templates, &template{match: m, priority: prio, body: t})
		}
	}
	if len(sheet.templates) == 0 {
		return nil, fmt.Errorf("xslt: stylesheet defines no templates")
	}
	return sheet, nil
}

func firstElement(doc *sgml.Node) *sgml.Node {
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == sgml.ElementNode {
			return c
		}
	}
	return nil
}

// localName strips an xsl: style prefix.
func localName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// isInstruction reports whether an element is an XSLT instruction and
// returns its local name.
func isInstruction(n *sgml.Node) (string, bool) {
	if n.Kind != sgml.ElementNode {
		return "", false
	}
	ln := localName(n.Name)
	if n.Name == ln {
		// Prefix-free instructions are recognised by the reserved names.
		switch ln {
		case "apply-templates", "value-of", "for-each", "if", "copy-of",
			"text", "attribute", "sort", "element", "comment":
			return ln, true
		}
		return "", false
	}
	return ln, true
}

// Transform applies the stylesheet to a document and returns the result
// tree (a DocumentNode).
func (s *Stylesheet) Transform(doc *sgml.Node) (*sgml.Node, error) {
	out := &sgml.Node{Kind: sgml.DocumentNode, Name: "#document"}
	// A bare element is treated as the root: "/" templates match it via
	// the isRoot flag, so callers need not wrap their trees.
	if err := s.applyTo(doc, out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformToString runs Transform and serialises the result.
func (s *Stylesheet) TransformToString(doc *sgml.Node) (string, error) {
	out, err := s.Transform(doc)
	if err != nil {
		return "", err
	}
	return sgml.SerializeIndent(out), nil
}

// applyTo processes one source node: find the best template, instantiate
// it; fall back to the built-in rules.
func (s *Stylesheet) applyTo(src *sgml.Node, out *sgml.Node, isRoot bool) error {
	t := s.bestTemplate(src, isRoot)
	if t == nil {
		// Built-in rules: recurse for root/elements, copy text.
		switch src.Kind {
		case sgml.TextNode:
			out.AppendChild(sgml.NewText(src.Data))
			return nil
		case sgml.DocumentNode, sgml.ElementNode:
			for c := src.FirstChild; c != nil; c = c.NextSibling {
				if err := s.applyTo(c, out, false); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}
	return s.instantiate(t.body, src, out)
}

func (s *Stylesheet) bestTemplate(src *sgml.Node, isRoot bool) *template {
	var best *template
	for _, t := range s.templates {
		if !templateMatches(t.match, src, isRoot) {
			continue
		}
		if best == nil || t.priority > best.priority {
			best = t
		}
	}
	return best
}

func templateMatches(match string, n *sgml.Node, isRoot bool) bool {
	switch match {
	case "/":
		return isRoot || n.Kind == sgml.DocumentNode
	case "*":
		return n.Kind == sgml.ElementNode
	case "text()":
		return n.Kind == sgml.TextNode
	}
	// Path suffix matching: "section/context" matches a context whose
	// parent is a section.
	parts := strings.Split(match, "/")
	cur := n
	for i := len(parts) - 1; i >= 0; i-- {
		if cur == nil || cur.Kind != sgml.ElementNode || cur.Name != parts[i] {
			return false
		}
		cur = cur.Parent
	}
	return true
}

// instantiate walks a template body, copying literals and executing
// instructions against the current source node.
func (s *Stylesheet) instantiate(body *sgml.Node, src *sgml.Node, out *sgml.Node) error {
	for c := body.FirstChild; c != nil; c = c.NextSibling {
		if err := s.instantiateNode(c, src, out); err != nil {
			return err
		}
	}
	return nil
}

func (s *Stylesheet) instantiateNode(tn *sgml.Node, src *sgml.Node, out *sgml.Node) error {
	switch tn.Kind {
	case sgml.TextNode:
		if strings.TrimSpace(tn.Data) != "" {
			out.AppendChild(sgml.NewText(tn.Data))
		}
		return nil
	case sgml.ElementNode:
		if name, ok := isInstruction(tn); ok {
			return s.execInstruction(name, tn, src, out)
		}
		// Literal result element: copy, interpolate {expr} in attributes.
		el := sgml.NewElement(tn.Name)
		for _, a := range tn.Attrs {
			el.SetAttr(a.Name, interpolate(a.Value, src))
		}
		out.AppendChild(el)
		return s.instantiate(tn, src, el)
	default:
		return nil
	}
}

// interpolate substitutes {path} attribute value templates.
func interpolate(v string, src *sgml.Node) string {
	if !strings.Contains(v, "{") {
		return v
	}
	var sb strings.Builder
	for {
		open := strings.IndexByte(v, '{')
		if open < 0 {
			sb.WriteString(v)
			return sb.String()
		}
		close := strings.IndexByte(v[open:], '}')
		if close < 0 {
			sb.WriteString(v)
			return sb.String()
		}
		sb.WriteString(v[:open])
		sb.WriteString(EvalStringOn(src, v[open+1:open+close]))
		v = v[open+close+1:]
	}
}

func (s *Stylesheet) execInstruction(name string, tn *sgml.Node, src *sgml.Node, out *sgml.Node) error {
	switch name {
	case "value-of":
		sel, _ := tn.Attr("select")
		val, err := EvalString(src, sel)
		if err != nil {
			return err
		}
		if val != "" {
			out.AppendChild(sgml.NewText(val))
		}
		return nil

	case "text":
		out.AppendChild(sgml.NewText(tn.Text()))
		return nil

	case "apply-templates":
		sel, has := tn.Attr("select")
		var targets []*sgml.Node
		if has {
			var err error
			targets, err = Select(src, sel)
			if err != nil {
				return err
			}
		} else {
			targets = src.Children()
		}
		for _, t := range targets {
			if err := s.applyTo(t, out, false); err != nil {
				return err
			}
		}
		return nil

	case "for-each":
		sel, has := tn.Attr("select")
		if !has {
			return fmt.Errorf("xslt: for-each requires select")
		}
		targets, err := Select(src, sel)
		if err != nil {
			return err
		}
		// Optional nested sort instruction.
		if sortEl := findChildInstruction(tn, "sort"); sortEl != nil {
			key, _ := sortEl.Attr("select")
			order, _ := sortEl.Attr("order")
			sortNodes(targets, key, order == "descending")
		}
		for _, t := range targets {
			if err := s.instantiate(tn, t, out); err != nil {
				return err
			}
		}
		return nil

	case "sort":
		// Handled by the enclosing for-each.
		return nil

	case "if":
		test, has := tn.Attr("test")
		if !has {
			return fmt.Errorf("xslt: if requires test")
		}
		ok, err := evalTest(src, test)
		if err != nil {
			return err
		}
		if ok {
			return s.instantiate(tn, src, out)
		}
		return nil

	case "copy-of":
		sel, _ := tn.Attr("select")
		targets, err := Select(src, sel)
		if err != nil {
			return err
		}
		for _, t := range targets {
			out.AppendChild(t.Clone())
		}
		return nil

	case "attribute":
		aname, has := tn.Attr("name")
		if !has {
			return fmt.Errorf("xslt: attribute requires name")
		}
		// Value: either nested value-of or literal text.
		var buf strings.Builder
		tmp := sgml.NewElement("#attr")
		if err := s.instantiate(tn, src, tmp); err != nil {
			return err
		}
		buf.WriteString(tmp.Text())
		out.SetAttr(aname, buf.String())
		return nil

	case "element":
		ename, has := tn.Attr("name")
		if !has {
			return fmt.Errorf("xslt: element requires name")
		}
		el := sgml.NewElement(interpolate(ename, src))
		out.AppendChild(el)
		return s.instantiate(tn, src, el)

	case "comment":
		out.AppendChild(&sgml.Node{Kind: sgml.CommentNode, Data: tn.Text()})
		return nil
	}
	return fmt.Errorf("xslt: unsupported instruction %q", name)
}

func findChildInstruction(tn *sgml.Node, want string) *sgml.Node {
	for _, c := range tn.ChildElements() {
		if name, ok := isInstruction(c); ok && name == want {
			return c
		}
	}
	return nil
}

func sortNodes(ns []*sgml.Node, key string, desc bool) {
	keyOf := func(n *sgml.Node) string {
		if key == "" {
			return n.Text()
		}
		return EvalStringOn(n, key)
	}
	sort.SliceStable(ns, func(i, j int) bool {
		a, b := keyOf(ns[i]), keyOf(ns[j])
		if desc {
			return a > b
		}
		return a < b
	})
}

// evalTest evaluates an if test: "path" (existence), "path='lit'" or
// "path!='lit'".
func evalTest(src *sgml.Node, test string) (bool, error) {
	test = strings.TrimSpace(test)
	if i := strings.Index(test, "!="); i >= 0 {
		l, r := strings.TrimSpace(test[:i]), unquote(strings.TrimSpace(test[i+2:]))
		return EvalStringOn(src, l) != r, nil
	}
	if i := strings.Index(test, "="); i >= 0 {
		l, r := strings.TrimSpace(test[:i]), unquote(strings.TrimSpace(test[i+1:]))
		return EvalStringOn(src, l) == r, nil
	}
	if strings.HasPrefix(test, "@") {
		_, ok := src.Attr(test[1:])
		return ok, nil
	}
	got, err := Select(src, test)
	if err != nil {
		return false, err
	}
	return len(got) > 0, nil
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
