package xslt

import (
	"strings"
	"testing"

	"netmark/internal/sgml"
)

func parse(t *testing.T, src string) *sgml.Node {
	t.Helper()
	doc, err := sgml.ParseString(src, sgml.ModeXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

const sampleDoc = `<report>
  <section kind="intro"><context>Introduction</context><content>Opening text</content></section>
  <section kind="body"><context>Budget</context><content>Costs 4M</content></section>
  <section kind="body"><context>Schedule</context><content>Two years</content></section>
</report>`

func sel(t *testing.T, doc *sgml.Node, expr string) []*sgml.Node {
	t.Helper()
	got, err := Select(doc, expr)
	if err != nil {
		t.Fatalf("Select(%q): %v", expr, err)
	}
	return got
}

func TestSelectChildPath(t *testing.T) {
	doc := parse(t, sampleDoc)
	got := sel(t, doc, "report/section")
	if len(got) != 3 {
		t.Fatalf("sections = %d", len(got))
	}
	got = sel(t, doc, "report/section/context")
	if len(got) != 3 || got[0].Text() != "Introduction" {
		t.Fatalf("contexts = %v", got)
	}
}

func TestSelectDescendant(t *testing.T) {
	doc := parse(t, sampleDoc)
	got := sel(t, doc, "//context")
	if len(got) != 3 {
		t.Fatalf("//context = %d", len(got))
	}
	got = sel(t, doc, "//section/content")
	if len(got) != 3 {
		t.Fatalf("//section/content = %d", len(got))
	}
}

func TestSelectWildcard(t *testing.T) {
	doc := parse(t, sampleDoc)
	got := sel(t, doc, "report/*")
	if len(got) != 3 {
		t.Fatalf("report/* = %d", len(got))
	}
	got = sel(t, doc, "report/section/*")
	if len(got) != 6 {
		t.Fatalf("report/section/* = %d", len(got))
	}
}

func TestSelectIndexPredicate(t *testing.T) {
	doc := parse(t, sampleDoc)
	got := sel(t, doc, "report/section[2]")
	if len(got) != 1 {
		t.Fatalf("section[2] = %d", len(got))
	}
	if got[0].Find("context").Text() != "Budget" {
		t.Fatalf("section[2] context = %q", got[0].Find("context").Text())
	}
	if got := sel(t, doc, "report/section[9]"); len(got) != 0 {
		t.Fatalf("out-of-range index = %v", got)
	}
}

func TestSelectEqualityPredicate(t *testing.T) {
	doc := parse(t, sampleDoc)
	got := sel(t, doc, "report/section[context='Budget']")
	if len(got) != 1 {
		t.Fatalf("equality pred = %d", len(got))
	}
	got = sel(t, doc, "report/section[@kind='body']")
	if len(got) != 2 {
		t.Fatalf("attr pred = %d", len(got))
	}
}

func TestSelectExistencePredicate(t *testing.T) {
	doc := parse(t, `<r><a><x/></a><a/><a><x/></a></r>`)
	got := sel(t, doc, "r/a[x]")
	if len(got) != 2 {
		t.Fatalf("existence pred = %d", len(got))
	}
	got = sel(t, doc, "r/a[@missing]")
	if len(got) != 0 {
		t.Fatalf("attr existence = %d", len(got))
	}
}

func TestSelectTextNodes(t *testing.T) {
	doc := parse(t, `<r><p>one</p><p>two</p></r>`)
	got := sel(t, doc, "r/p/text()")
	if len(got) != 2 || got[0].Data != "one" {
		t.Fatalf("text() = %v", got)
	}
}

func TestEvalString(t *testing.T) {
	doc := parse(t, sampleDoc)
	report := doc.FirstChild
	cases := map[string]string{
		"section/context":                     "Introduction",
		"section[2]/content":                  "Costs 4M",
		"section[1]/@kind":                    "intro",
		"section[context='Schedule']/content": "Two years",
	}
	for expr, want := range cases {
		got, err := EvalString(report, expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if got != want {
			t.Fatalf("EvalString(%q) = %q, want %q", expr, got, want)
		}
	}
}

func TestEvalStringDotAndAttr(t *testing.T) {
	doc := parse(t, `<x k="v">body text</x>`)
	x := doc.FirstChild
	if got := EvalStringOn(x, "."); got != "body text" {
		t.Fatalf(". = %q", got)
	}
	if got := EvalStringOn(x, "@k"); got != "v" {
		t.Fatalf("@k = %q", got)
	}
	if got := EvalStringOn(x, "@absent"); got != "" {
		t.Fatalf("@absent = %q", got)
	}
}

func TestCompilePathErrors(t *testing.T) {
	for _, bad := range []string{"", "a//", "a/", "a[", "a[1", "a[x='y]", "a[0]"} {
		if _, err := CompilePath(bad); err == nil {
			t.Fatalf("CompilePath(%q) accepted", bad)
		}
	}
}

const composeSheet = `<xsl:stylesheet>
<xsl:template match="/">
  <composed>
    <xsl:apply-templates select="//section"/>
  </composed>
</xsl:template>
<xsl:template match="section">
  <entry title="{context}">
    <xsl:value-of select="content"/>
  </entry>
</xsl:template>
</xsl:stylesheet>`

func TestTransformCompose(t *testing.T) {
	// The Fig 6 scenario: extract sections and compose a new document.
	sheet, err := ParseStylesheet(composeSheet)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	composed := out.Find("composed")
	if composed == nil {
		t.Fatalf("output: %s", sgml.Serialize(out))
	}
	entries := composed.FindAll("entry")
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if v, _ := entries[1].Attr("title"); v != "Budget" {
		t.Fatalf("attr template = %q", v)
	}
	if entries[1].Text() != "Costs 4M" {
		t.Fatalf("entry body = %q", entries[1].Text())
	}
}

func TestTransformForEachWithSort(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/">
  <toc>
    <xsl:for-each select="//section">
      <xsl:sort select="context"/>
      <item><xsl:value-of select="context"/></item>
    </xsl:for-each>
  </toc>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	for _, it := range out.FindAll("item") {
		titles = append(titles, it.Text())
	}
	want := []string{"Budget", "Introduction", "Schedule"}
	if strings.Join(titles, ",") != strings.Join(want, ",") {
		t.Fatalf("sorted items = %v", titles)
	}
}

func TestTransformIf(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/">
  <out>
  <xsl:for-each select="//section">
    <xsl:if test="@kind='body'">
      <body-section><xsl:value-of select="context"/></body-section>
    </xsl:if>
    <xsl:if test="@kind!='body'">
      <other><xsl:value-of select="context"/></other>
    </xsl:if>
  </xsl:for-each>
  </out>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(out.FindAll("body-section")); n != 2 {
		t.Fatalf("body sections = %d", n)
	}
	if n := len(out.FindAll("other")); n != 1 {
		t.Fatalf("other = %d", n)
	}
}

func TestTransformCopyOf(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/">
  <archive><xsl:copy-of select="//section[context='Budget']"/></archive>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	sec := out.Find("section")
	if sec == nil || sec.Find("content").Text() != "Costs 4M" {
		t.Fatalf("copy-of output: %s", sgml.Serialize(out))
	}
	if v, _ := sec.Attr("kind"); v != "body" {
		t.Fatal("copy-of lost attributes")
	}
}

func TestTransformBuiltinRules(t *testing.T) {
	// With only a text() template, built-ins recurse through elements.
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="context"><heading><xsl:value-of select="."/></heading></xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(out.FindAll("heading")); n != 3 {
		t.Fatalf("headings = %d: %s", n, sgml.Serialize(out))
	}
	// Untemplated text still flows through (built-in text rule).
	if !strings.Contains(out.Text(), "Costs 4M") {
		t.Fatalf("text lost: %q", out.Text())
	}
}

func TestTransformPathSuffixMatch(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="section/context"><got/></xsl:template>
<xsl:template match="context"><wrong/></xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	// Path-suffix template has same priority class as name template but
	// matches more specifically; both match, and ours was declared first
	// with equal priority — accept either <got/> consistently.
	if len(out.FindAll("got")) == 0 && len(out.FindAll("wrong")) == 0 {
		t.Fatal("no template fired")
	}
}

func TestTransformElementInstruction(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/">
  <xsl:element name="dynamic"><xsl:text>content</xsl:text></xsl:element>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if d := out.Find("dynamic"); d == nil || d.Text() != "content" {
		t.Fatalf("element instruction: %s", sgml.Serialize(out))
	}
}

func TestTransformAttributeInstruction(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/">
  <out>
    <xsl:attribute name="total"><xsl:value-of select="//section[1]/context"/></xsl:attribute>
  </out>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	o := out.Find("out")
	if o == nil {
		t.Fatalf("output: %s", sgml.Serialize(out))
	}
	if v, _ := o.Attr("total"); v != "Introduction" {
		t.Fatalf("attribute = %q", v)
	}
}

func TestTransformCommentInstruction(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/"><out><xsl:comment>generated</xsl:comment></out></xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	s := sgml.Serialize(out)
	if !strings.Contains(s, "<!--generated-->") {
		t.Fatalf("comment lost: %s", s)
	}
}

func TestTransformMultiMatchTemplate(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="context|content"><leaf/></xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.Transform(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(out.FindAll("leaf")); n != 6 {
		t.Fatalf("leaves = %d", n)
	}
}

func TestUnsupportedInstructionErrors(t *testing.T) {
	sheet, err := ParseStylesheet(`<xsl:stylesheet>
<xsl:template match="/"><xsl:call-template name="x"/></xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sheet.Transform(parse(t, sampleDoc)); err == nil {
		t.Fatal("unsupported instruction silently ignored")
	}
}

func TestParseStylesheetErrors(t *testing.T) {
	bad := []string{
		``,
		`<notasheet/>`,
		`<xsl:stylesheet></xsl:stylesheet>`,
		`<xsl:stylesheet><xsl:template>no match</xsl:template></xsl:stylesheet>`,
	}
	for _, src := range bad {
		if _, err := ParseStylesheet(src); err == nil {
			t.Fatalf("ParseStylesheet(%q) accepted", src)
		}
	}
}

func TestTransformToString(t *testing.T) {
	sheet, err := ParseStylesheet(composeSheet)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sheet.TransformToString(parse(t, sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "<composed>") || !strings.Contains(s, "Costs 4M") {
		t.Fatalf("serialised output: %s", s)
	}
}
