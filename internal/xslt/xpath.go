// Package xslt implements the XSLT-subset transformation engine NETMARK
// uses for result composition: "we may also specify an XSLT stylesheet
// which specifies how the results are to be formatted and composed into a
// new document" (§2.1.3, Fig 7).  It substitutes for the Xalan processor
// [13] the paper uses.
//
// The supported surface is what result composition needs: template rules
// with match patterns, apply-templates, value-of, for-each, if, copy-of,
// attribute, text, sort — driven by an XPath-lite expression language
// (child paths, //, wildcards, attributes, text(), positional and
// equality predicates).
package xslt

import (
	"fmt"
	"strconv"
	"strings"

	"netmark/internal/sgml"
)

// Path is a compiled XPath-lite expression.
type Path struct {
	Absolute bool
	Steps    []Step
	raw      string
}

// Step is one location step.
type Step struct {
	// Axis: "child" (default), "descendant" (//), "self" (.), "parent" (..)
	Axis string
	// Name matches an element name; "*" any element; "#text" text();
	// "@x" selects the attribute x (terminal step only).
	Name string
	// Predicates filter the step's result.
	Preds []Pred
}

// Pred is a step predicate.
type Pred struct {
	// Index predicate when > 0 (1-based).
	Index int
	// Equality predicate Left = Right when Left != "".  Left is a
	// relative path or "@attr" or "text()"; Right is a literal.
	Left  string
	Right string
	// Existence predicate when Exists != "" (path that must be non-empty).
	Exists string
}

// CompilePath parses an XPath-lite expression.
func CompilePath(expr string) (*Path, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, fmt.Errorf("xslt: empty path")
	}
	p := &Path{raw: expr}
	s := expr
	nextAxis := "child"
	switch {
	case strings.HasPrefix(s, "//"):
		p.Absolute = true
		nextAxis = "descendant"
		s = s[2:]
		if s == "" {
			return nil, fmt.Errorf("xslt: bare // in %q", expr)
		}
	case strings.HasPrefix(s, "/"):
		p.Absolute = true
		s = s[1:]
		// "/" alone selects the root.
	}
	for s != "" {
		first, rest, err := cutStep(s)
		if err != nil {
			return nil, err
		}
		st, err := parseStep(first)
		if err != nil {
			return nil, fmt.Errorf("xslt: %q: %w", expr, err)
		}
		if st.Axis == "" {
			st.Axis = nextAxis
		}
		p.Steps = append(p.Steps, st)
		nextAxis = "child"
		switch {
		case strings.HasPrefix(rest, "//"):
			nextAxis = "descendant"
			rest = rest[2:]
			if rest == "" {
				return nil, fmt.Errorf("xslt: trailing // in %q", expr)
			}
		case strings.HasPrefix(rest, "/"):
			rest = rest[1:]
			if rest == "" {
				return nil, fmt.Errorf("xslt: trailing / in %q", expr)
			}
		}
		s = rest
	}
	return p, nil
}

// cutStep splits the next step (respecting [..] brackets) from the rest.
func cutStep(s string) (string, string, error) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return "", "", fmt.Errorf("xslt: unbalanced ] in %q", s)
			}
		case '/':
			if depth == 0 {
				return s[:i], s[i:], nil
			}
		}
	}
	if depth != 0 {
		return "", "", fmt.Errorf("xslt: unbalanced [ in %q", s)
	}
	return s, "", nil
}

func parseStep(s string) (Step, error) {
	st := Step{}
	// Extract predicates.
	for {
		open := strings.IndexByte(s, '[')
		if open < 0 {
			break
		}
		close := matchBracket(s, open)
		if close < 0 {
			return st, fmt.Errorf("unterminated predicate in %q", s)
		}
		pred, err := parsePred(s[open+1 : close])
		if err != nil {
			return st, err
		}
		st.Preds = append(st.Preds, pred)
		s = s[:open] + s[close+1:]
	}
	s = strings.TrimSpace(s)
	switch {
	case s == ".":
		st.Axis, st.Name = "self", "*"
	case s == "..":
		st.Axis, st.Name = "parent", "*"
	case s == "text()":
		st.Name = "#text"
	case strings.HasPrefix(s, "@"):
		st.Name = s
	case s == "*":
		st.Name = "*"
	case s == "":
		return st, fmt.Errorf("empty step")
	default:
		st.Name = s
	}
	return st, nil
}

func matchBracket(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func parsePred(s string) (Pred, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return Pred{}, fmt.Errorf("predicate index %d must be positive", n)
		}
		return Pred{Index: n}, nil
	}
	if eq := strings.Index(s, "="); eq >= 0 {
		left := strings.TrimSpace(s[:eq])
		right := strings.TrimSpace(s[eq+1:])
		if len(right) >= 2 && (right[0] == '\'' || right[0] == '"') && right[len(right)-1] == right[0] {
			right = right[1 : len(right)-1]
		} else {
			return Pred{}, fmt.Errorf("predicate value must be quoted: %q", s)
		}
		return Pred{Left: left, Right: right}, nil
	}
	return Pred{Exists: s}, nil
}

// Select evaluates the path against a context node and returns the
// selected nodes in document order.
func Select(ctx *sgml.Node, expr string) ([]*sgml.Node, error) {
	p, err := CompilePath(expr)
	if err != nil {
		return nil, err
	}
	return p.Select(ctx), nil
}

// Select evaluates the compiled path from ctx.
func (p *Path) Select(ctx *sgml.Node) []*sgml.Node {
	start := ctx
	if p.Absolute {
		start = ctx.Root()
	}
	cur := []*sgml.Node{start}
	for _, st := range p.Steps {
		var next []*sgml.Node
		for _, n := range cur {
			next = append(next, st.apply(n)...)
		}
		cur = dedupeNodes(next)
	}
	return cur
}

func (st Step) apply(n *sgml.Node) []*sgml.Node {
	var cand []*sgml.Node
	switch st.Axis {
	case "self":
		cand = []*sgml.Node{n}
	case "parent":
		if n.Parent != nil {
			cand = []*sgml.Node{n.Parent}
		}
	case "descendant":
		n.Walk(func(x *sgml.Node) bool {
			if x != n && st.matches(x) {
				cand = append(cand, x)
			}
			return true
		})
		return st.filter(cand)
	default: // child
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if st.matches(c) {
				cand = append(cand, c)
			}
		}
	}
	if st.Axis == "self" || st.Axis == "parent" {
		// Name filter still applies for non-wildcards.
		if st.Name != "*" {
			var out []*sgml.Node
			for _, c := range cand {
				if st.matches(c) {
					out = append(out, c)
				}
			}
			cand = out
		}
	}
	return st.filter(cand)
}

func (st Step) matches(n *sgml.Node) bool {
	switch {
	case st.Name == "#text":
		return n.Kind == sgml.TextNode
	case strings.HasPrefix(st.Name, "@"):
		// Attribute steps are resolved by EvalString; for Select they
		// match the owning element.
		_, ok := n.Attr(st.Name[1:])
		return n.Kind == sgml.ElementNode && ok
	case st.Name == "*":
		return n.Kind == sgml.ElementNode
	default:
		return n.Kind == sgml.ElementNode && n.Name == st.Name
	}
}

func (st Step) filter(cand []*sgml.Node) []*sgml.Node {
	out := cand
	for _, pr := range st.Preds {
		out = pr.filter(out)
	}
	return out
}

func (pr Pred) filter(cand []*sgml.Node) []*sgml.Node {
	if pr.Index > 0 {
		if pr.Index <= len(cand) {
			return cand[pr.Index-1 : pr.Index]
		}
		return nil
	}
	var out []*sgml.Node
	for _, n := range cand {
		if pr.holds(n) {
			out = append(out, n)
		}
	}
	return out
}

func (pr Pred) holds(n *sgml.Node) bool {
	if pr.Exists != "" {
		got, err := Select(n, pr.Exists)
		if err != nil {
			return false
		}
		if len(got) > 0 {
			return true
		}
		// Attribute existence.
		if strings.HasPrefix(pr.Exists, "@") {
			_, ok := n.Attr(pr.Exists[1:])
			return ok
		}
		return false
	}
	val := EvalStringOn(n, pr.Left)
	return val == pr.Right
}

// EvalString evaluates an expression to its string value: attribute
// lookups, text() and node text.
func EvalString(ctx *sgml.Node, expr string) (string, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return "", fmt.Errorf("xslt: empty expression")
	}
	return EvalStringOn(ctx, expr), nil
}

// EvalStringOn is EvalString without error plumbing (bad paths yield "").
func EvalStringOn(ctx *sgml.Node, expr string) string {
	expr = strings.TrimSpace(expr)
	switch {
	case expr == ".":
		return ctx.Text()
	case expr == "text()":
		var parts []string
		for c := ctx.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == sgml.TextNode {
				parts = append(parts, c.Data)
			}
		}
		return strings.TrimSpace(strings.Join(parts, " "))
	case strings.HasPrefix(expr, "@"):
		v, _ := ctx.Attr(expr[1:])
		return v
	}
	// Path ending in @attr: select owners, read the attribute.
	if i := strings.LastIndex(expr, "/@"); i >= 0 {
		owners, err := Select(ctx, expr[:i])
		if err != nil || len(owners) == 0 {
			return ""
		}
		v, _ := owners[0].Attr(expr[i+2:])
		return v
	}
	got, err := Select(ctx, expr)
	if err != nil || len(got) == 0 {
		return ""
	}
	if got[0].Kind == sgml.TextNode {
		return strings.TrimSpace(got[0].Data)
	}
	return got[0].Text()
}

func dedupeNodes(ns []*sgml.Node) []*sgml.Node {
	seen := make(map[*sgml.Node]bool, len(ns))
	out := ns[:0]
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
