// Package corpus generates deterministic synthetic document collections
// that stand in for the NASA corpora the paper's applications were built
// on: outgoing proposals (Proposal Financial Management), budget task
// plans (the Integrated Budget Performance Document), anomaly records
// (Anomaly Tracking) and Lessons Learned pages.
//
// The generators reproduce the structural statistics that matter for the
// experiments: section headings drawn from small controlled vocabularies
// (so context searches have meaningful selectivity), body text with
// overlapping term distributions across sources (so content searches span
// sources), and a mix of file formats exercising every upmark converter.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Document is one generated source file, ready for ingestion.
type Document struct {
	Name string
	Data []byte
}

// Generator produces documents deterministically from a seed.
type Generator struct {
	rng *rand.Rand
}

// New creates a generator; equal seeds yield identical corpora.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var (
	divisions = []string{"Science", "Engineering", "Aeronautics", "Exploration", "Space Operations"}
	centers   = []string{"Ames", "Johnson", "Kennedy", "Goddard", "Langley"}
	systems   = []string{"Engine", "Avionics", "Thermal Protection", "Guidance", "Life Support", "Propulsion"}
	severity  = []string{"Low", "Moderate", "High", "Critical"}
	nouns     = []string{
		"shuttle", "orbiter", "payload", "telemetry", "trajectory", "booster",
		"sensor", "actuator", "manifold", "turbine", "nozzle", "airframe",
		"mission", "milestone", "deliverable", "schedule", "budget", "contract",
	}
	verbs = []string{
		"analyzed", "integrated", "measured", "validated", "simulated",
		"reviewed", "procured", "assembled", "tested", "documented",
	}
	adjectives = []string{
		"cryogenic", "redundant", "nominal", "anomalous", "composite",
		"preliminary", "critical", "baseline", "revised", "shrinking",
	}
)

// sentence builds a plausible technical sentence.
func (g *Generator) sentence() string {
	return fmt.Sprintf("The %s %s was %s during the %s %s review.",
		g.pick(adjectives), g.pick(nouns), g.pick(verbs), g.pick(adjectives), g.pick(nouns))
}

func (g *Generator) paragraph(sentences int) string {
	parts := make([]string, sentences)
	for i := range parts {
		parts[i] = g.sentence()
	}
	return strings.Join(parts, " ")
}

func (g *Generator) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// titleCase capitalises the first letter of each word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// dollars produces a request amount between $100K and $20M.
func (g *Generator) dollars() int {
	return (g.rng.Intn(199) + 1) * 100_000
}

// proposalSections is the heading vocabulary of a NASA proposal.
var proposalSections = []string{
	"Abstract", "Technical Approach", "Budget", "Schedule",
	"Risk Assessment", "Management Plan", "Facilities",
}

// Proposal generates one proposal document.  Formats rotate across rtf,
// html and text so the full upmark path is exercised.
func (g *Generator) Proposal(i int) Document {
	division := divisions[i%len(divisions)]
	amount := g.dollars()
	title := fmt.Sprintf("Proposal %04d: %s %s Initiative", i, titleCase(g.pick(adjectives)), titleCase(g.pick(nouns)))
	switch i % 3 {
	case 0:
		return Document{Name: fmt.Sprintf("proposal-%04d.rtf", i), Data: []byte(g.proposalRTF(title, division, amount))}
	case 1:
		return Document{Name: fmt.Sprintf("proposal-%04d.html", i), Data: []byte(g.proposalHTML(title, division, amount))}
	default:
		return Document{Name: fmt.Sprintf("proposal-%04d.txt", i), Data: []byte(g.proposalText(title, division, amount))}
	}
}

// Proposals generates n proposals.
func (g *Generator) Proposals(n int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.Proposal(i)
	}
	return out
}

func (g *Generator) proposalBody(division string, amount int) map[string]string {
	return map[string]string{
		"Abstract":           g.paragraph(3),
		"Technical Approach": g.paragraph(5),
		"Budget": fmt.Sprintf("We request $%d for the %s division. %s",
			amount, division, g.paragraph(2)),
		"Schedule":        fmt.Sprintf("The period of performance is %d months. %s", 12+g.rng.Intn(36), g.paragraph(2)),
		"Risk Assessment": fmt.Sprintf("Overall risk is %s. %s", g.pick(severity), g.paragraph(2)),
		"Management Plan": g.paragraph(3),
		"Facilities":      fmt.Sprintf("Work is performed at NASA %s. %s", g.pick(centers), g.paragraph(1)),
	}
}

func (g *Generator) proposalRTF(title, division string, amount int) string {
	body := g.proposalBody(division, amount)
	var sb strings.Builder
	sb.WriteString(`{\rtf1\ansi` + "\n")
	sb.WriteString(`{\b ` + title + `}\par` + "\n")
	for _, sec := range proposalSections {
		sb.WriteString(`{\b ` + sec + `}\par` + "\n")
		sb.WriteString(body[sec] + `\par` + "\n")
	}
	sb.WriteString("}")
	return sb.String()
}

func (g *Generator) proposalHTML(title, division string, amount int) string {
	body := g.proposalBody(division, amount)
	var sb strings.Builder
	sb.WriteString("<html><head><title>" + title + "</title></head><body>\n")
	for _, sec := range proposalSections {
		sb.WriteString("<h2>" + sec + "</h2>\n<p>" + body[sec] + "</p>\n")
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

func (g *Generator) proposalText(title, division string, amount int) string {
	body := g.proposalBody(division, amount)
	var sb strings.Builder
	sb.WriteString(strings.ToUpper(title) + "\n\n")
	for i, sec := range proposalSections {
		sb.WriteString(fmt.Sprintf("%d. %s\n\n%s\n\n", i+1, sec, body[sec]))
	}
	return sb.String()
}

// DeepReport generates one deeply structured XML engineering report:
// sections headed by <heading> CONTEXT nodes whose bodies are long runs
// of sibling blocks, each nesting paragraphs several levels deep.  The
// shape stresses the §2.1.4 traversal kernel — resolving a text hit to
// its governing context crosses the sibling run, and materialising a
// section descends every nested block — which flat HTML corpora never
// do.  sections controls the heading count, width the sibling blocks per
// section, depth the nesting under each block.
func (g *Generator) DeepReport(i, sections, width, depth int) Document {
	var sb strings.Builder
	sb.WriteString("<report>\n")
	for s := 0; s < sections; s++ {
		fmt.Fprintf(&sb, "<heading>%s %s Review %d</heading>\n",
			titleCase(g.pick(adjectives)), g.pick(systems), s)
		for w := 0; w < width; w++ {
			for d := 0; d < depth; d++ {
				sb.WriteString("<block>")
			}
			sb.WriteString("<para>" + g.sentence() + "</para>")
			for d := 0; d < depth; d++ {
				sb.WriteString("</block>")
			}
			sb.WriteString("\n")
		}
	}
	sb.WriteString("</report>")
	return Document{Name: fmt.Sprintf("deep-%04d.xml", i), Data: []byte(sb.String())}
}

// DeepReports generates n deep reports.
func (g *Generator) DeepReports(n, sections, width, depth int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.DeepReport(i, sections, width, depth)
	}
	return out
}

// TaskPlan generates one budget task plan (the IBPD inputs: "thousands of
// NASA task plans containing the required budget information").
func (g *Generator) TaskPlan(i int) Document {
	center := centers[i%len(centers)]
	title := fmt.Sprintf("Task Plan %05d (%s)", i, center)
	amount := g.dollars()
	var sb strings.Builder
	sb.WriteString("<html><head><title>" + title + "</title></head><body>\n")
	sb.WriteString("<h2>Objective</h2><p>" + g.paragraph(2) + "</p>\n")
	sb.WriteString(fmt.Sprintf("<h2>Budget</h2><p>FY allocation of $%d at NASA %s for the %s effort.</p>\n",
		amount, center, g.pick(nouns)))
	sb.WriteString("<h2>Milestones</h2><ul>")
	for m := 0; m < 3; m++ {
		sb.WriteString("<li>" + g.sentence() + "</li>")
	}
	sb.WriteString("</ul>\n</body></html>")
	return Document{Name: fmt.Sprintf("taskplan-%05d.html", i), Data: []byte(sb.String())}
}

// TaskPlans generates n task plans.
func (g *Generator) TaskPlans(n int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.TaskPlan(i)
	}
	return out
}

// Anomaly generates one anomaly-tracking record.
func (g *Generator) Anomaly(i int) Document {
	sys := g.pick(systems)
	sev := g.pick(severity)
	title := fmt.Sprintf("Anomaly %05d: %s irregularity", i, sys)
	var sb strings.Builder
	sb.WriteString("<html><head><title>" + title + "</title></head><body>\n")
	sb.WriteString("<h2>Title</h2><p>" + title + "</p>\n")
	sb.WriteString("<h2>System</h2><p>" + sys + "</p>\n")
	sb.WriteString("<h2>Severity</h2><p>" + sev + "</p>\n")
	sb.WriteString("<h2>Description</h2><p>" + g.paragraph(3) + "</p>\n")
	sb.WriteString("<h2>Corrective Action</h2><p>" + g.paragraph(2) + "</p>\n")
	sb.WriteString("</body></html>")
	return Document{Name: fmt.Sprintf("anomaly-%05d.html", i), Data: []byte(sb.String())}
}

// Anomalies generates n anomaly records.
func (g *Generator) Anomalies(n int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.Anomaly(i)
	}
	return out
}

// LessonLearned generates one Lessons Learned page (the content-only
// legacy source of §2.1.5).
func (g *Generator) LessonLearned(i int) Document {
	sys := g.pick(systems)
	title := fmt.Sprintf("Lesson %04d: %s practices", i, sys)
	var sb strings.Builder
	sb.WriteString("<html><head><title>" + title + "</title></head><body>\n")
	sb.WriteString("<h2>Title</h2><p>" + title + "</p>\n")
	sb.WriteString("<h2>Lesson</h2><p>" + g.paragraph(4) + "</p>\n")
	sb.WriteString("<h2>Recommendation</h2><p>" + g.paragraph(2) + "</p>\n")
	sb.WriteString("</body></html>")
	return Document{Name: fmt.Sprintf("lesson-%04d.html", i), Data: []byte(sb.String())}
}

// LessonsLearned generates n lessons.
func (g *Generator) LessonsLearned(n int) []Document {
	out := make([]Document, n)
	for i := range out {
		out[i] = g.LessonLearned(i)
	}
	return out
}

// BudgetSpreadsheet generates a CSV roll-up used by the financial
// examples.
func (g *Generator) BudgetSpreadsheet(rows int) Document {
	var sb strings.Builder
	sb.WriteString("Project,Division,Center,Amount\n")
	for i := 0; i < rows; i++ {
		sb.WriteString(fmt.Sprintf("Project-%03d,%s,%s,%d\n",
			i, divisions[i%len(divisions)], g.pick(centers), g.dollars()))
	}
	return Document{Name: "budget-rollup.csv", Data: []byte(sb.String())}
}

// Mixed generates a blended corpus of all document types, n total.
func (g *Generator) Mixed(n int) []Document {
	out := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, g.Proposal(i))
		case 1:
			out = append(out, g.TaskPlan(i))
		case 2:
			out = append(out, g.Anomaly(i))
		default:
			out = append(out, g.LessonLearned(i))
		}
	}
	return out
}
