package corpus

import (
	"bytes"
	"strings"
	"testing"

	"netmark/internal/docform"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Proposals(10)
	b := New(42).Proposals(10)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("doc %d differs across equal seeds", i)
		}
	}
	c := New(43).Proposals(10)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Data, c[i].Data) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestProposalsRotateFormats(t *testing.T) {
	docs := New(1).Proposals(9)
	formats := map[string]int{}
	for _, d := range docs {
		ext := d.Name[strings.LastIndexByte(d.Name, '.')+1:]
		formats[ext]++
	}
	if formats["rtf"] != 3 || formats["html"] != 3 || formats["txt"] != 3 {
		t.Fatalf("formats = %v", formats)
	}
}

func TestEveryGeneratedDocumentConverts(t *testing.T) {
	gen := New(7)
	var docs []Document
	docs = append(docs, gen.Proposals(6)...)
	docs = append(docs, gen.TaskPlans(4)...)
	docs = append(docs, gen.Anomalies(4)...)
	docs = append(docs, gen.LessonsLearned(4)...)
	docs = append(docs, gen.BudgetSpreadsheet(10))
	docs = append(docs, gen.Mixed(8)...)
	for _, d := range docs {
		tree, meta, err := docform.Convert(d.Name, d.Data)
		if err != nil {
			t.Fatalf("%s does not convert: %v", d.Name, err)
		}
		if tree.Name != "document" {
			t.Fatalf("%s: root %q", d.Name, tree.Name)
		}
		if meta.Title == "" {
			t.Fatalf("%s: empty title", d.Name)
		}
	}
}

func TestProposalsCarryRequiredSections(t *testing.T) {
	for _, d := range New(3).Proposals(6) {
		tree, _, err := docform.Convert(d.Name, d.Data)
		if err != nil {
			t.Fatal(err)
		}
		var heads []string
		for _, ctx := range tree.FindAll("context") {
			heads = append(heads, ctx.Text())
		}
		joined := strings.Join(heads, "|")
		for _, want := range []string{"Abstract", "Budget", "Schedule", "Risk Assessment"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("%s missing %q section (has %v)", d.Name, want, heads)
			}
		}
	}
}

func TestTaskPlansHaveBudgetAmounts(t *testing.T) {
	for _, d := range New(5).TaskPlans(5) {
		if !bytes.Contains(d.Data, []byte("Budget")) || !bytes.Contains(d.Data, []byte("$")) {
			t.Fatalf("%s lacks budget data", d.Name)
		}
	}
}

func TestAnomalyFieldsPresent(t *testing.T) {
	for _, d := range New(6).Anomalies(5) {
		for _, f := range []string{"Title", "System", "Severity", "Description", "Corrective Action"} {
			if !bytes.Contains(d.Data, []byte(f)) {
				t.Fatalf("%s missing field %s", d.Name, f)
			}
		}
	}
}

func TestBudgetSpreadsheetShape(t *testing.T) {
	d := New(8).BudgetSpreadsheet(12)
	lines := strings.Split(strings.TrimSpace(string(d.Data)), "\n")
	if len(lines) != 13 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[0] != "Project,Division,Center,Amount" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestMixedCoversAllTypes(t *testing.T) {
	docs := New(9).Mixed(12)
	kinds := map[string]bool{}
	for _, d := range docs {
		switch {
		case strings.HasPrefix(d.Name, "proposal"):
			kinds["proposal"] = true
		case strings.HasPrefix(d.Name, "taskplan"):
			kinds["taskplan"] = true
		case strings.HasPrefix(d.Name, "anomaly"):
			kinds["anomaly"] = true
		case strings.HasPrefix(d.Name, "lesson"):
			kinds["lesson"] = true
		}
	}
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
}
