package webdav

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"netmark/internal/databank"
	"netmark/internal/ordbms"
	"netmark/internal/vfs"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

func newEngine(t testing.TB) *xdb.Engine {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return xdb.NewEngine(s)
}

func testServer(t *testing.T) (*Server, *httptest.Server, *xdb.Engine) {
	t.Helper()
	e := newEngine(t)
	if _, err := e.Store().StoreRaw("r.html", []byte(
		`<html><head><title>R</title></head><body><h1>Budget</h1><p>Costs $9M total.</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	banks := databank.NewRegistry()
	bank := databank.New("app")
	bank.AddSource(databank.NewLocalSource("local", e))
	if err := banks.Add(bank); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(e, banks, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, e
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestXDBEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	code, body := get(t, ts.URL+"/xdb?context=Budget")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, "Costs $9M") || !strings.Contains(body, `doc="r.html"`) {
		t.Fatalf("body: %s", body)
	}
	// Bad query.
	code, _ = get(t, ts.URL+"/xdb?bogus=1")
	if code != 400 {
		t.Fatalf("bad query status = %d", code)
	}
}

func TestCapabilitiesEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	code, body := get(t, ts.URL+"/capabilities")
	if code != 200 || body != "context+content+phrase+prefix" {
		t.Fatalf("capabilities: %d %q", code, body)
	}
}

func TestBankEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	code, body := get(t, ts.URL+"/bank/app?context=Budget")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, `source="local"`) {
		t.Fatalf("missing attribution: %s", body)
	}
	code, _ = get(t, ts.URL+"/bank/ghost?context=Budget")
	if code != 404 {
		t.Fatalf("ghost bank = %d", code)
	}
}

func TestDocsAndDocEndpoints(t *testing.T) {
	_, ts, e := testServer(t)
	code, body := get(t, ts.URL+"/docs")
	if code != 200 || !strings.Contains(body, `name="r.html"`) {
		t.Fatalf("/docs: %d %s", code, body)
	}
	info, err := e.Store().DocumentByName("r.html")
	if err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts.URL+"/doc/"+itoa(info.DocID))
	if code != 200 || !strings.Contains(body, "Costs $9M") {
		t.Fatalf("/doc: %d %s", code, body)
	}
	code, _ = get(t, ts.URL+"/doc/99999")
	if code != 404 {
		t.Fatalf("missing doc = %d", code)
	}
	// DELETE removes it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/doc/"+itoa(info.DocID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if e.Store().NumDocuments() != 0 {
		t.Fatal("document not deleted")
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

func davReq(t *testing.T, method, url, body string, hdr map[string]string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestDAVPutGetDelete(t *testing.T) {
	_, ts, _ := testServer(t)
	code, _ := davReq(t, http.MethodPut, ts.URL+"/dav/drop/report.txt", "HEADING\n\nbody\n", nil)
	if code != 201 {
		t.Fatalf("PUT = %d", code)
	}
	code, body := davReq(t, http.MethodGet, ts.URL+"/dav/drop/report.txt", "", nil)
	if code != 200 || body != "HEADING\n\nbody\n" {
		t.Fatalf("GET = %d %q", code, body)
	}
	code, _ = davReq(t, http.MethodDelete, ts.URL+"/dav/drop/report.txt", "", nil)
	if code != 204 {
		t.Fatalf("DELETE = %d", code)
	}
	code, _ = davReq(t, http.MethodGet, ts.URL+"/dav/drop/report.txt", "", nil)
	if code != 404 {
		t.Fatalf("GET after delete = %d", code)
	}
}

func TestDAVOptionsAndMkcol(t *testing.T) {
	_, ts, _ := testServer(t)
	req, _ := http.NewRequest(http.MethodOptions, ts.URL+"/dav/", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("DAV") != "1" {
		t.Fatalf("DAV header = %q", resp.Header.Get("DAV"))
	}
	code, _ := davReq(t, "MKCOL", ts.URL+"/dav/newdir", "", nil)
	if code != 201 {
		t.Fatalf("MKCOL = %d", code)
	}
}

func TestDAVPropfind(t *testing.T) {
	_, ts, _ := testServer(t)
	davReq(t, http.MethodPut, ts.URL+"/dav/a.txt", "xx", nil)
	davReq(t, http.MethodPut, ts.URL+"/dav/b.txt", "yyy", nil)
	code, body := davReq(t, "PROPFIND", ts.URL+"/dav/", "", map[string]string{"Depth": "1"})
	if code != 207 {
		t.Fatalf("PROPFIND = %d", code)
	}
	if !strings.Contains(body, "a.txt") || !strings.Contains(body, "b.txt") {
		t.Fatalf("multistatus missing entries: %s", body)
	}
	if !strings.Contains(body, "D:collection") {
		t.Fatalf("root not marked collection: %s", body)
	}
	// Depth 0 excludes children.
	_, body0 := davReq(t, "PROPFIND", ts.URL+"/dav/", "", map[string]string{"Depth": "0"})
	if strings.Contains(body0, "a.txt") {
		t.Fatalf("depth 0 leaked children: %s", body0)
	}
}

func TestDAVPathTraversalBlocked(t *testing.T) {
	s, _, _ := testServer(t)
	// Direct unit check of the mapper (the HTTP layer cleans the URL
	// before our handler sees it, so exercise davPath itself).
	if _, err := s.davPath("/dav/../../etc/passwd"); err == nil {
		p, _ := s.davPath("/dav/../../etc/passwd")
		if !strings.HasPrefix(p, s.davDir) {
			t.Fatalf("traversal escaped root: %s", p)
		}
	}
}

func TestMergedXMLReportsSourceErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Store().StoreRaw("ok.html", []byte(
		`<html><body><h1>S</h1><p>fine</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	bank := databank.New("partial")
	bank.AddSource(databank.NewLocalSource("good", e))
	bank.AddSource(explodingSource{})
	m, err := bank.Query(context.Background(), xdb.Query{Context: "S"})
	if err != nil {
		t.Fatal(err)
	}
	xml := MergedXML(m)
	out := xml.FindAll("result")
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	errs := xml.FindAll("source-error")
	if len(errs) != 1 {
		t.Fatalf("source errors = %d", len(errs))
	}
	if v, _ := errs[0].Attr("source"); v != "boom" {
		t.Fatalf("error attribution = %q", v)
	}
}

type explodingSource struct{}

func (explodingSource) Name() string                      { return "boom" }
func (explodingSource) Capabilities() databank.Capability { return databank.Full }
func (explodingSource) Query(context.Context, xdb.Query) (*xdb.Result, error) {
	return nil, fmt.Errorf("source exploded")
}

func TestStylesheetUploadAndUse(t *testing.T) {
	_, ts, _ := testServer(t)
	sheet := `<xsl:stylesheet>
<xsl:template match="/">
  <summary><xsl:for-each select="//result"><s><xsl:value-of select="content"/></s></xsl:for-each></summary>
</xsl:template>
</xsl:stylesheet>`
	code, _ := davReq(t, http.MethodPut, ts.URL+"/xslt/summary", sheet, nil)
	if code != 201 {
		t.Fatalf("upload = %d", code)
	}
	code, body := get(t, ts.URL+"/xdb?context=Budget&xslt=summary")
	if code != 200 || !strings.Contains(body, "<summary>") {
		t.Fatalf("styled query: %d %s", code, body)
	}
	// Invalid sheet rejected.
	code, _ = davReq(t, http.MethodPut, ts.URL+"/xslt/bad", "<notasheet/>", nil)
	if code != 400 {
		t.Fatalf("bad sheet = %d", code)
	}
	// Existence probe.
	code, _ = get(t, ts.URL+"/xslt/summary")
	if code != 200 {
		t.Fatalf("probe = %d", code)
	}
	code, _ = get(t, ts.URL+"/xslt/ghost")
	if code != 404 {
		t.Fatalf("ghost probe = %d", code)
	}
}

func TestRemoteHTTPSourceAgainstServer(t *testing.T) {
	// A second NETMARK instance queries the first through HTTPSource —
	// the Fig 8 multi-server topology.
	_, ts, _ := testServer(t)
	src := databank.NewHTTPSource("remote", ts.URL, databank.Full)
	res, err := src.Query(context.Background(), xdb.Query{Context: "Budget"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 1 || !strings.Contains(res.Sections[0].Content, "$9M") {
		t.Fatalf("remote sections = %+v", res.Sections)
	}
	caps, err := databank.DiscoverCapabilities(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if caps != databank.Full {
		t.Fatalf("discovered caps = %v", caps)
	}
}

// faultTestServer is testServer over a durable store on a FaultFS, so
// degraded-mode behaviour can be provoked with real injected faults.
func faultTestServer(t *testing.T) (*httptest.Server, *xdb.Engine, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(nil)
	db, err := ordbms.Open(ordbms.Options{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	e := xdb.NewEngine(st)
	if _, err := st.StoreRaw("r.html", []byte(
		`<html><head><title>R</title></head><body><h1>Budget</h1><p>Costs $9M total.</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(e, databank.NewRegistry(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, e, ffs
}

// TestDegradedModeServesReadsRejectsWrites drives the store into
// degraded mode with a real WAL fsync fault and checks the HTTP
// surface end to end: searches keep answering 200, writes answer 503
// with Retry-After, /healthz stays up while /readyz flips, /stats
// reports the health section, and a successful checkpoint restores
// write service.
func TestDegradedModeServesReadsRejectsWrites(t *testing.T) {
	ts, e, ffs := faultTestServer(t)
	store := e.Store()

	// Healthy baseline.
	code, body := get(t, ts.URL+"/readyz")
	if code != 200 {
		t.Fatalf("healthy /readyz = %d %s", code, body)
	}

	// Break the WAL fsync and fail a commit: the store degrades.
	ffs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "*.nmlog"})
	if _, err := store.StoreRaw("x.txt", []byte("T\n\nbody\n")); err != nil {
		t.Fatal(err)
	}
	if err := store.DB().Commit(); err == nil {
		t.Fatal("commit through broken fsync succeeded")
	}
	if !store.Health().Degraded {
		t.Fatal("store not degraded after failed commit")
	}

	// Reads keep serving.
	code, body = get(t, ts.URL+"/xdb?context=Budget")
	if code != 200 || !strings.Contains(body, "Costs $9M") {
		t.Fatalf("degraded search = %d %s", code, body)
	}
	info, err := store.DocumentByName("r.html")
	if err != nil {
		t.Fatal(err)
	}
	code, _ = get(t, ts.URL+"/doc/"+itoa(info.DocID))
	if code != 200 {
		t.Fatalf("degraded GET /doc = %d", code)
	}

	// Writes are refused with 503 + Retry-After, never silently acked.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/doc/"+itoa(info.DocID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded DELETE = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded DELETE missing Retry-After")
	}
	code, _ = davReq(t, http.MethodPut, ts.URL+"/dav/drop/a.txt", "T\n\nb\n", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded DAV PUT = %d, want 503", code)
	}

	// Health endpoints: process alive, service not ready.
	code, _ = get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("degraded /healthz = %d", code)
	}
	code, _ = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", code)
	}
	code, body = get(t, ts.URL+"/stats")
	if code != 200 || !strings.Contains(body, `"degraded": true`) ||
		!strings.Contains(body, `"write_errors": 1`) ||
		!strings.Contains(body, `"reason": "wal commit`) {
		t.Fatalf("degraded /stats = %d %s", code, body)
	}

	// Clear the fault; a successful checkpoint restores write service.
	ffs.ClearFaults()
	if err := store.DB().Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	code, _ = get(t, ts.URL+"/readyz")
	if code != 200 {
		t.Fatalf("healed /readyz = %d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/doc/"+itoa(info.DocID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("healed DELETE = %d, want 204", resp.StatusCode)
	}
}

// TestFailedCommitNeverAcked: a write whose WAL commit fails must not
// answer 2xx — the client would believe the change is durable when it
// is not.  DELETE /doc is the commit-acknowledged write path.
func TestFailedCommitNeverAcked(t *testing.T) {
	ts, e, ffs := faultTestServer(t)
	info, err := e.Store().DocumentByName("r.html")
	if err != nil {
		t.Fatal(err)
	}
	// The next WAL fsync (the delete's commit) fails once.
	ffs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "*.nmlog", Times: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/doc/"+itoa(info.DocID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		t.Fatalf("failed commit acked with %d %s", resp.StatusCode, body)
	}
}
