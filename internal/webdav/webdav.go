// Package webdav implements NETMARK's network face: the HTTP query
// endpoint ("HTTP provides an extremely simple yet powerful mechanism for
// users and clients to access NETMARK", §2.1.2 — XDB queries are appended
// to a URL) and the WebDAV subset used for drop-folder ingestion
// ("Communication between the user folders and the NETMARK server is done
// using WebDAV [12]").
//
// Endpoints:
//
//	GET  /xdb?context=...&content=...&xslt=...   query the local store
//	GET  /capabilities                           capability discovery
//	GET  /stats                                  WAL/pool/cache counters
//	GET  /bank/{name}?...                        databank fan-out query
//	GET  /docs                                   list stored documents
//	GET  /doc/{id}                               reconstructed document
//	     /dav/...                                WebDAV: OPTIONS, GET,
//	                                             PUT, DELETE, MKCOL,
//	                                             PROPFIND (depth 0/1)
//
// The server is hardened for concurrent production traffic: per-endpoint
// method enforcement, read/write/idle timeouts, streamed (not
// string-buffered) XML responses, and graceful drain on shutdown so
// in-flight queries complete instead of being dropped.
package webdav

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"netmark/internal/databank"
	"netmark/internal/sgml"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// Default timeouts for the hardened http.Server.  Zero-valued Server
// fields fall back to these.
const (
	DefaultReadTimeout   = 30 * time.Second
	DefaultWriteTimeout  = 60 * time.Second
	DefaultIdleTimeout   = 2 * time.Minute
	DefaultShutdownGrace = 15 * time.Second
)

// Server is the NETMARK HTTP server.
type Server struct {
	engine *xdb.Engine
	banks  *databank.Registry
	davDir string
	mux    *http.ServeMux

	// ReadTimeout/WriteTimeout/IdleTimeout harden the listener against
	// slow or stalled clients; ShutdownGrace bounds how long Serve waits
	// for in-flight requests to drain after its context is cancelled.
	// Set before Serve; zero values use the Default* constants.
	ReadTimeout   time.Duration
	WriteTimeout  time.Duration
	IdleTimeout   time.Duration
	ShutdownGrace time.Duration
}

// NewServer builds a server.  davDir is the drop-folder root exposed over
// WebDAV (created if missing); empty disables the DAV tree.
func NewServer(engine *xdb.Engine, banks *databank.Registry, davDir string) (*Server, error) {
	s := &Server{engine: engine, banks: banks, davDir: davDir, mux: http.NewServeMux()}
	if davDir != "" {
		if err := os.MkdirAll(davDir, 0o755); err != nil {
			return nil, fmt.Errorf("webdav: create dav root: %w", err)
		}
	}
	s.mux.HandleFunc("/xdb", s.handleXDB)
	s.mux.HandleFunc("/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/bank/", s.handleBank)
	s.mux.HandleFunc("/docs", s.handleDocs)
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/xslt/", s.handleStylesheet)
	if davDir != "" {
		s.mux.HandleFunc("/dav/", s.handleDAV)
	}
	return s, nil
}

// Handler returns the http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Handle registers an extension endpoint on the server's mux (embedders
// add health checks, debug hooks, and the like).  Register before Serve.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// allowOnly enforces an endpoint's method set, answering 405 with an
// Allow header otherwise.  HEAD rides along wherever GET is allowed
// (net/http discards the body), so probes and health checks keep
// working.
func allowOnly(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m || (r.Method == http.MethodHead && m == http.MethodGet) {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// writeXML streams a tree to the client instead of materialising the
// serialized document in memory first.
func writeXML(w http.ResponseWriter, n *sgml.Node) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	sgml.WriteIndent(w, n)
}

func (s *Server) handleXDB(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	q, err := xdb.Parse(r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// ExecuteInto streams uncached results and writes the memoized body
	// for cache hits; execution errors surface before any bytes go out,
	// so a 500 is only valid while the response is still unwritten (an
	// error after the first byte means the client went away mid-stream).
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	cw := &countingWriter{w: w}
	if err := s.engine.ExecuteInto(q, cw); err != nil && cw.n == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// countingWriter tracks whether any response bytes have gone out.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write sits on every response chunk of a streamed query result; it
// must forward without per-chunk allocation.
//
// netmarkvet:hotpath
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// retryAfterSeconds is the Retry-After hint sent with every degraded
// 503: long enough to shed load, short enough that clients probe again
// soon after an operator clears the fault and a checkpoint restores
// write service.
const retryAfterSeconds = "30"

// rejectIfDegraded answers 503 + Retry-After when the store is in
// degraded read-only mode, reporting whether it wrote the response.
// Write endpoints call it first; read endpoints never do — degraded
// mode exists precisely so reads keep flowing.
func (s *Server) rejectIfDegraded(w http.ResponseWriter) bool {
	h := s.engine.Store().Health()
	if !h.Degraded {
		return false
	}
	w.Header().Set("Retry-After", retryAfterSeconds)
	http.Error(w, "store degraded (read-only): "+h.Reason, http.StatusServiceUnavailable)
	return true
}

// storeError maps a store-write error onto the response: degraded-mode
// errors are 503 + Retry-After (the client should retry elsewhere or
// later), vanished documents 404, everything else 500.
func storeError(w http.ResponseWriter, err error) {
	if xmlstore.IsDegraded(err) {
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), docErrStatus(err))
}

// handleHealthz is the liveness probe: 200 whenever the process is up
// and serving, degraded or not (restarting the process does not fix a
// full disk).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 503 while the store is degraded,
// so load balancers stop routing writes here (reads-only replicas can
// still be addressed directly; /stats carries the detail).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	h := s.engine.Store().Health()
	if h.Degraded {
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "degraded: "+h.Reason, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, databank.Full.String())
}

// Stats is the /stats payload: storage, WAL, buffer-pool, and query-cache
// counters in one snapshot, so operators can watch cache efficiency and
// commit behaviour under live traffic.
type Stats struct {
	Documents  int64  `json:"documents"`
	Nodes      int64  `json:"nodes"`
	Generation uint64 `json:"generation"`

	DocsIngested  uint64 `json:"docs_ingested"`
	NodesInserted uint64 `json:"nodes_inserted"`

	// Health reports degraded read-only mode: while degraded the node
	// keeps serving reads, writes answer 503, and /readyz fails so load
	// balancers route writes elsewhere.
	Health struct {
		Degraded    bool   `json:"degraded"`
		Reason      string `json:"reason,omitempty"`
		Since       string `json:"since,omitempty"`
		WriteErrors uint64 `json:"write_errors"`
	} `json:"health"`

	WAL struct {
		Appends  uint64 `json:"appends"`
		Syncs    uint64 `json:"syncs"`
		Replayed int    `json:"replayed"`
	} `json:"wal"`

	// Snapshot reports how this process's store came up and how its
	// checkpoint snapshots are faring: loaded=true means reopen skipped
	// the full-corpus scan; fallback names why it could not.
	Snapshot struct {
		Enabled       bool   `json:"enabled"`
		Loaded        bool   `json:"loaded"`
		Fallback      string `json:"fallback,omitempty"`
		Saves         uint64 `json:"saves"`
		SaveErrors    uint64 `json:"save_errors"`
		DerivedTables int    `json:"derived_tables"`
	} `json:"snapshot"`

	Pool struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
	} `json:"pool"`

	Cache struct {
		Enabled   bool   `json:"enabled"`
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Coalesced uint64 `json:"coalesced"`
		Evictions uint64 `json:"evictions"`
		Stale     uint64 `json:"stale"`
		Entries   int    `json:"entries"`
		Bytes     int64  `json:"bytes"`
		Capacity  int64  `json:"capacity"`
	} `json:"cache"`

	NodeCache struct {
		Enabled   bool   `json:"enabled"`
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Entries   int    `json:"entries"`
		Bytes     int64  `json:"bytes"`
		Capacity  int64  `json:"capacity"`
	} `json:"node_cache"`

	// TextIndex reports the inverted index's block-compressed posting
	// storage: bytes is what the id lists cost resident, and
	// compression_ratio is the multiple a flat 8-bytes-per-id layout
	// would cost instead.
	TextIndex struct {
		Terms            int     `json:"terms"`
		Postings         int     `json:"postings"`
		Blocks           int     `json:"blocks"`
		TailIDs          int     `json:"tail_ids"`
		DeadIDs          int     `json:"dead_ids"`
		Bytes            int64   `json:"bytes"`
		CompressionRatio float64 `json:"compression_ratio"`
	} `json:"textindex"`
}

// Snapshot gathers the current counters.
func (s *Server) Snapshot() Stats {
	store := s.engine.Store()
	var st Stats
	st.Documents = store.NumDocuments()
	st.Nodes = store.NumNodes()
	st.Generation = store.Generation()
	st.DocsIngested, st.NodesInserted = store.Stats()
	h := store.Health()
	st.Health.Degraded = h.Degraded
	st.Health.Reason = h.Reason
	if !h.Since.IsZero() {
		st.Health.Since = h.Since.UTC().Format(time.RFC3339)
	}
	st.Health.WriteErrors = h.WriteErrors
	st.WAL.Appends, st.WAL.Syncs = store.DB().WALStats()
	st.WAL.Replayed = store.DB().Replayed
	st.Pool.Hits, st.Pool.Misses, st.Pool.Evictions = store.DB().Pool().Stats()
	ss := store.SnapshotStats()
	st.Snapshot.Enabled = ss.Enabled
	st.Snapshot.Loaded = ss.Loaded
	st.Snapshot.Fallback = ss.Fallback
	st.Snapshot.Saves = ss.Saves
	st.Snapshot.SaveErrors = ss.SaveErrors
	st.Snapshot.DerivedTables = store.DB().DerivedLoads
	if cs, ok := s.engine.CacheStats(); ok {
		st.Cache.Enabled = true
		st.Cache.Hits = cs.Hits
		st.Cache.Misses = cs.Misses
		st.Cache.Coalesced = cs.Coalesced
		st.Cache.Evictions = cs.Evictions
		st.Cache.Stale = cs.Stale
		st.Cache.Entries = cs.Entries
		st.Cache.Bytes = cs.Bytes
		st.Cache.Capacity = cs.Capacity
	}
	ti := store.TextIndexStats()
	st.TextIndex.Terms = ti.Terms
	st.TextIndex.Postings = ti.Postings
	st.TextIndex.Blocks = ti.Blocks
	st.TextIndex.TailIDs = ti.TailIDs
	st.TextIndex.DeadIDs = ti.DeadIDs
	st.TextIndex.Bytes = ti.BytesResident
	st.TextIndex.CompressionRatio = ti.CompressionRatio
	if ns, ok := store.NodeCacheStats(); ok {
		st.NodeCache.Enabled = true
		st.NodeCache.Hits = ns.Hits
		st.NodeCache.Misses = ns.Misses
		st.NodeCache.Evictions = ns.Evictions
		st.NodeCache.Entries = ns.Entries
		st.NodeCache.Bytes = ns.Bytes
		st.NodeCache.Capacity = ns.Capacity
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/bank/")
	if name == "" || s.banks == nil {
		http.Error(w, "no such databank", http.StatusNotFound)
		return
	}
	bank := s.banks.Get(name)
	if bank == nil {
		http.Error(w, "no such databank", http.StatusNotFound)
		return
	}
	q, err := xdb.Parse(r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := bank.Query(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeXML(w, MergedXML(m))
}

// MergedXML renders a databank result with per-source attribution.
func MergedXML(m *databank.Merged) *sgml.Node {
	root := sgml.NewElement("results")
	root.SetAttr("databank-elapsed", m.Elapsed.String())
	n := 0
	for _, sr := range m.PerSource {
		if sr.Err != nil {
			el := sgml.NewElement("source-error")
			el.SetAttr("source", sr.Source)
			el.AppendChild(sgml.NewText(sr.Err.Error()))
			root.AppendChild(el)
			continue
		}
		for _, sec := range sr.Sections {
			el := sgml.NewElement("result")
			el.SetAttr("source", sr.Source)
			el.SetAttr("doc", sec.DocName)
			el.SetAttr("doc-title", sec.DocTitle)
			ctx := sgml.NewElement("context")
			ctx.AppendChild(sgml.NewText(sec.Context))
			el.AppendChild(ctx)
			content := sgml.NewElement("content")
			content.AppendChild(sgml.NewText(sec.Content))
			el.AppendChild(content)
			root.AppendChild(el)
			n++
		}
		for _, d := range sr.Docs {
			el := sgml.NewElement("document")
			el.SetAttr("source", sr.Source)
			el.SetAttr("name", d.FileName)
			el.SetAttr("title", d.Title)
			root.AppendChild(el)
			n++
		}
	}
	root.SetAttr("count", strconv.Itoa(n))
	return root
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	docs, err := s.engine.Store().Documents()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	root := sgml.NewElement("documents")
	root.SetAttr("count", strconv.Itoa(len(docs)))
	for _, d := range docs {
		el := sgml.NewElement("document")
		el.SetAttr("id", strconv.FormatUint(d.DocID, 10))
		el.SetAttr("name", d.FileName)
		el.SetAttr("title", d.Title)
		el.SetAttr("format", d.Format)
		el.SetAttr("nodes", strconv.FormatInt(d.NNodes, 10))
		root.AppendChild(el)
	}
	writeXML(w, root)
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/doc/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad document id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		tree, err := s.engine.Store().Reconstruct(id)
		if err != nil {
			http.Error(w, err.Error(), docErrStatus(err))
			return
		}
		writeXML(w, tree)
	case http.MethodDelete:
		if err := s.engine.Store().DeleteDocument(id); err != nil {
			// 404 only when the document is genuinely gone; an I/O error
			// mid-delete leaves it half-removed and must read as a server
			// failure, not a missing resource; degraded mode is 503 +
			// Retry-After.
			storeError(w, err)
			return
		}
		// Make the delete durable before acknowledging it: a crash after
		// the 204 must not resurrect the document on WAL replay.  A
		// failed commit must never turn into a 2xx — the document's
		// removal is not durable and the store has degraded.
		if err := s.engine.Store().DB().Commit(); err != nil {
			storeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// docErrStatus maps a store error to the right status for /doc/{id}:
// vanished documents are 404, anything else (I/O, corruption) is 500.
func docErrStatus(err error) int {
	if xmlstore.IsGone(err) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// handleStylesheet lets clients register result-composition stylesheets
// over HTTP (PUT /xslt/{name}), completing the Fig 7 loop: upload a
// sheet, then query with xslt={name}.
func (s *Server) handleStylesheet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/xslt/")
	if name == "" || strings.ContainsAny(name, "/\\") {
		http.Error(w, "bad stylesheet name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.engine.RegisterStylesheet(name, string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		if s.engine.Stylesheet(name) == nil {
			http.Error(w, "no such stylesheet", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "registered")
	default:
		w.Header().Set("Allow", "GET, PUT, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// davPath maps a /dav/ URL to a filesystem path, rejecting traversal.
func (s *Server) davPath(urlPath string) (string, error) {
	rel := strings.TrimPrefix(urlPath, "/dav/")
	rel = path.Clean("/" + rel)[1:] // normalise, strip leading /
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("webdav: path escapes root")
	}
	return filepath.Join(s.davDir, filepath.FromSlash(rel)), nil
}

func (s *Server) handleDAV(w http.ResponseWriter, r *http.Request) {
	fsPath, err := s.davPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	switch r.Method {
	case http.MethodOptions:
		w.Header().Set("DAV", "1")
		w.Header().Set("Allow", "OPTIONS, GET, PUT, DELETE, MKCOL, PROPFIND")
		w.WriteHeader(http.StatusOK)
	case http.MethodGet, http.MethodHead:
		// Stream from disk: drop-folder files can be hundreds of MB and
		// must not be buffered whole per request.  ServeContent handles
		// ranges, HEAD, and conditional requests.
		f, err := os.Open(fsPath)
		if err != nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil || st.IsDir() {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		// The server-wide WriteTimeout is sized for API responses; a large
		// file on a slow link legitimately outlives it.  Lift the write
		// deadline for this download only.
		http.NewResponseController(w).SetWriteDeadline(time.Time{})
		http.ServeContent(w, r, st.Name(), st.ModTime(), f)
	case http.MethodPut:
		// Accepting a drop-folder upload promises eventual ingestion;
		// while the store cannot persist anything, honest behaviour is
		// to refuse the upload and let the client retry elsewhere.
		if s.rejectIfDegraded(w) {
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := os.MkdirAll(filepath.Dir(fsPath), 0o755); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := os.WriteFile(fsPath, body, 0o644); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if s.rejectIfDegraded(w) {
			return
		}
		if err := os.Remove(fsPath); err != nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case "MKCOL":
		if s.rejectIfDegraded(w) {
			return
		}
		if err := os.MkdirAll(fsPath, 0o755); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case "PROPFIND":
		s.handlePropfind(w, r, fsPath)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handlePropfind implements depth 0/1 PROPFIND with the core properties
// (displayname, getcontentlength, resourcetype).
func (s *Server) handlePropfind(w http.ResponseWriter, r *http.Request, fsPath string) {
	st, err := os.Stat(fsPath)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	depth := r.Header.Get("Depth")
	if depth == "" {
		depth = "1"
	}
	type entry struct {
		href string
		st   os.FileInfo
	}
	entries := []entry{{href: r.URL.Path, st: st}}
	if depth != "0" && st.IsDir() {
		files, err := os.ReadDir(fsPath)
		if err == nil {
			for _, f := range files {
				fi, err := f.Info()
				if err != nil {
					continue
				}
				entries = append(entries, entry{
					href: path.Join(r.URL.Path, f.Name()),
					st:   fi,
				})
			}
		}
	}
	ms := sgml.NewElement("D:multistatus")
	ms.SetAttr("xmlns:D", "DAV:")
	for _, e := range entries {
		resp := sgml.NewElement("D:response")
		href := sgml.NewElement("D:href")
		href.AppendChild(sgml.NewText(e.href))
		resp.AppendChild(href)
		prop := sgml.NewElement("D:prop")
		dn := sgml.NewElement("D:displayname")
		dn.AppendChild(sgml.NewText(e.st.Name()))
		prop.AppendChild(dn)
		rt := sgml.NewElement("D:resourcetype")
		if e.st.IsDir() {
			rt.AppendChild(sgml.NewElement("D:collection"))
		}
		prop.AppendChild(rt)
		if !e.st.IsDir() {
			cl := sgml.NewElement("D:getcontentlength")
			cl.AppendChild(sgml.NewText(strconv.FormatInt(e.st.Size(), 10)))
			prop.AppendChild(cl)
		}
		stat := sgml.NewElement("D:propstat")
		stat.AppendChild(prop)
		status := sgml.NewElement("D:status")
		status.AppendChild(sgml.NewText("HTTP/1.1 200 OK"))
		stat.AppendChild(status)
		resp.AppendChild(stat)
		ms.AppendChild(resp)
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(207) // Multi-Status
	io.WriteString(w, `<?xml version="1.0" encoding="utf-8"?>`+"\n")
	sgml.WriteIndent(w, ms)
}

func orDefault(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

// Serve listens on addr and runs the hardened server until ctx is
// cancelled, then drains gracefully: in-flight requests get up to
// ShutdownGrace to complete before connections are forced closed.
// Returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Serve over an existing listener (tests and embedders
// that need the bound address before traffic starts).  The listener is
// closed when ServeListener returns.
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadTimeout:       orDefault(s.ReadTimeout, DefaultReadTimeout),
		ReadHeaderTimeout: orDefault(s.ReadTimeout, DefaultReadTimeout),
		WriteTimeout:      orDefault(s.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       orDefault(s.IdleTimeout, DefaultIdleTimeout),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		grace := orDefault(s.ShutdownGrace, DefaultShutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		err := srv.Shutdown(sctx)
		if err != nil {
			// Grace expired with handlers still running: force-close the
			// stragglers so callers can safely tear the store down after
			// Serve returns.
			srv.Close()
		}
		<-errc // reap the serve goroutine (returns http.ErrServerClosed)
		return err
	case err := <-errc:
		return err
	}
}
