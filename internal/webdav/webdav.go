// Package webdav implements NETMARK's network face: the HTTP query
// endpoint ("HTTP provides an extremely simple yet powerful mechanism for
// users and clients to access NETMARK", §2.1.2 — XDB queries are appended
// to a URL) and the WebDAV subset used for drop-folder ingestion
// ("Communication between the user folders and the NETMARK server is done
// using WebDAV [12]").
//
// Endpoints:
//
//	GET  /xdb?context=...&content=...&xslt=...   query the local store
//	GET  /capabilities                           capability discovery
//	GET  /bank/{name}?...                        databank fan-out query
//	GET  /docs                                   list stored documents
//	GET  /doc/{id}                               reconstructed document
//	     /dav/...                                WebDAV: OPTIONS, GET,
//	                                             PUT, DELETE, MKCOL,
//	                                             PROPFIND (depth 0/1)
package webdav

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netmark/internal/databank"
	"netmark/internal/sgml"
	"netmark/internal/xdb"
)

// Server is the NETMARK HTTP server.
type Server struct {
	engine *xdb.Engine
	banks  *databank.Registry
	davDir string
	mux    *http.ServeMux
}

// NewServer builds a server.  davDir is the drop-folder root exposed over
// WebDAV (created if missing); empty disables the DAV tree.
func NewServer(engine *xdb.Engine, banks *databank.Registry, davDir string) (*Server, error) {
	s := &Server{engine: engine, banks: banks, davDir: davDir, mux: http.NewServeMux()}
	if davDir != "" {
		if err := os.MkdirAll(davDir, 0o755); err != nil {
			return nil, fmt.Errorf("webdav: create dav root: %w", err)
		}
	}
	s.mux.HandleFunc("/xdb", s.handleXDB)
	s.mux.HandleFunc("/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("/bank/", s.handleBank)
	s.mux.HandleFunc("/docs", s.handleDocs)
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/xslt/", s.handleStylesheet)
	if davDir != "" {
		s.mux.HandleFunc("/dav/", s.handleDAV)
	}
	return s, nil
}

// Handler returns the http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleXDB(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q, err := xdb.Parse(r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.engine.Execute(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	if res.Transformed != nil {
		io.WriteString(w, sgml.SerializeIndent(res.Transformed))
		return
	}
	io.WriteString(w, sgml.SerializeIndent(res.XML()))
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, databank.Full.String())
}

func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/bank/")
	if name == "" || s.banks == nil {
		http.Error(w, "no such databank", http.StatusNotFound)
		return
	}
	bank := s.banks.Get(name)
	if bank == nil {
		http.Error(w, "no such databank", http.StatusNotFound)
		return
	}
	q, err := xdb.Parse(r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := bank.Query(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, sgml.SerializeIndent(MergedXML(m)))
}

// MergedXML renders a databank result with per-source attribution.
func MergedXML(m *databank.Merged) *sgml.Node {
	root := sgml.NewElement("results")
	root.SetAttr("databank-elapsed", m.Elapsed.String())
	n := 0
	for _, sr := range m.PerSource {
		if sr.Err != nil {
			el := sgml.NewElement("source-error")
			el.SetAttr("source", sr.Source)
			el.AppendChild(sgml.NewText(sr.Err.Error()))
			root.AppendChild(el)
			continue
		}
		for _, sec := range sr.Sections {
			el := sgml.NewElement("result")
			el.SetAttr("source", sr.Source)
			el.SetAttr("doc", sec.DocName)
			el.SetAttr("doc-title", sec.DocTitle)
			ctx := sgml.NewElement("context")
			ctx.AppendChild(sgml.NewText(sec.Context))
			el.AppendChild(ctx)
			content := sgml.NewElement("content")
			content.AppendChild(sgml.NewText(sec.Content))
			el.AppendChild(content)
			root.AppendChild(el)
			n++
		}
		for _, d := range sr.Docs {
			el := sgml.NewElement("document")
			el.SetAttr("source", sr.Source)
			el.SetAttr("name", d.FileName)
			el.SetAttr("title", d.Title)
			root.AppendChild(el)
			n++
		}
	}
	root.SetAttr("count", strconv.Itoa(n))
	return root
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	docs, err := s.engine.Store().Documents()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	root := sgml.NewElement("documents")
	root.SetAttr("count", strconv.Itoa(len(docs)))
	for _, d := range docs {
		el := sgml.NewElement("document")
		el.SetAttr("id", strconv.FormatUint(d.DocID, 10))
		el.SetAttr("name", d.FileName)
		el.SetAttr("title", d.Title)
		el.SetAttr("format", d.Format)
		el.SetAttr("nodes", strconv.FormatInt(d.NNodes, 10))
		root.AppendChild(el)
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, sgml.SerializeIndent(root))
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/doc/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad document id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		tree, err := s.engine.Store().Reconstruct(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		io.WriteString(w, sgml.SerializeIndent(tree))
	case http.MethodDelete:
		if err := s.engine.Store().DeleteDocument(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleStylesheet lets clients register result-composition stylesheets
// over HTTP (PUT /xslt/{name}), completing the Fig 7 loop: upload a
// sheet, then query with xslt={name}.
func (s *Server) handleStylesheet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/xslt/")
	if name == "" || strings.ContainsAny(name, "/\\") {
		http.Error(w, "bad stylesheet name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.engine.RegisterStylesheet(name, string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		if s.engine.Stylesheet(name) == nil {
			http.Error(w, "no such stylesheet", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "registered")
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// davPath maps a /dav/ URL to a filesystem path, rejecting traversal.
func (s *Server) davPath(urlPath string) (string, error) {
	rel := strings.TrimPrefix(urlPath, "/dav/")
	rel = path.Clean("/" + rel)[1:] // normalise, strip leading /
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("webdav: path escapes root")
	}
	return filepath.Join(s.davDir, filepath.FromSlash(rel)), nil
}

func (s *Server) handleDAV(w http.ResponseWriter, r *http.Request) {
	fsPath, err := s.davPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	switch r.Method {
	case http.MethodOptions:
		w.Header().Set("DAV", "1")
		w.Header().Set("Allow", "OPTIONS, GET, PUT, DELETE, MKCOL, PROPFIND")
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		b, err := os.ReadFile(fsPath)
		if err != nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(b)
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := os.MkdirAll(filepath.Dir(fsPath), 0o755); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := os.WriteFile(fsPath, body, 0o644); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if err := os.Remove(fsPath); err != nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case "MKCOL":
		if err := os.MkdirAll(fsPath, 0o755); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case "PROPFIND":
		s.handlePropfind(w, r, fsPath)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handlePropfind implements depth 0/1 PROPFIND with the core properties
// (displayname, getcontentlength, resourcetype).
func (s *Server) handlePropfind(w http.ResponseWriter, r *http.Request, fsPath string) {
	st, err := os.Stat(fsPath)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	depth := r.Header.Get("Depth")
	if depth == "" {
		depth = "1"
	}
	type entry struct {
		href string
		st   os.FileInfo
	}
	entries := []entry{{href: r.URL.Path, st: st}}
	if depth != "0" && st.IsDir() {
		files, err := os.ReadDir(fsPath)
		if err == nil {
			for _, f := range files {
				fi, err := f.Info()
				if err != nil {
					continue
				}
				entries = append(entries, entry{
					href: path.Join(r.URL.Path, f.Name()),
					st:   fi,
				})
			}
		}
	}
	ms := sgml.NewElement("D:multistatus")
	ms.SetAttr("xmlns:D", "DAV:")
	for _, e := range entries {
		resp := sgml.NewElement("D:response")
		href := sgml.NewElement("D:href")
		href.AppendChild(sgml.NewText(e.href))
		resp.AppendChild(href)
		prop := sgml.NewElement("D:prop")
		dn := sgml.NewElement("D:displayname")
		dn.AppendChild(sgml.NewText(e.st.Name()))
		prop.AppendChild(dn)
		rt := sgml.NewElement("D:resourcetype")
		if e.st.IsDir() {
			rt.AppendChild(sgml.NewElement("D:collection"))
		}
		prop.AppendChild(rt)
		if !e.st.IsDir() {
			cl := sgml.NewElement("D:getcontentlength")
			cl.AppendChild(sgml.NewText(strconv.FormatInt(e.st.Size(), 10)))
			prop.AppendChild(cl)
		}
		stat := sgml.NewElement("D:propstat")
		stat.AppendChild(prop)
		status := sgml.NewElement("D:status")
		status.AppendChild(sgml.NewText("HTTP/1.1 200 OK"))
		stat.AppendChild(status)
		resp.AppendChild(stat)
		ms.AppendChild(resp)
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(207) // Multi-Status
	io.WriteString(w, `<?xml version="1.0" encoding="utf-8"?>`+"\n")
	io.WriteString(w, sgml.SerializeIndent(ms))
}

// Serve runs the server until ctx is cancelled.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		return srv.Close()
	case err := <-errc:
		return err
	}
}
