package webdav

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netmark/internal/ordbms"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// TestGracefulDrain verifies that cancelling Serve's context lets an
// in-flight request finish (srv.Shutdown) instead of killing its
// connection (the old srv.Close behaviour).
func TestGracefulDrain(t *testing.T) {
	e := newEngine(t)
	s, err := NewServer(e, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	s.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "drained")
	}))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ServeListener(ctx, ln) }()

	type reply struct {
		code int
		body string
		err  error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		replies <- reply{code: resp.StatusCode, body: string(b), err: err}
	}()

	<-started // request is in the handler
	cancel()  // shut the server down while the request is in flight

	// The server must not return until the request drains.
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", r.err)
	}
	if r.code != 200 || r.body != "drained" {
		t.Fatalf("in-flight request got %d %q", r.code, r.body)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve = %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// New connections are refused after shutdown.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, e := testServer(t)
	e.EnableCache(1 << 20)

	// One miss then one hit.
	for i := 0; i < 2; i++ {
		if code, body := get(t, ts.URL+"/xdb?context=Budget"); code != 200 {
			t.Fatalf("query %d: %d %s", i, code, body)
		}
	}
	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("/stats = %d: %s", code, body)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if st.Documents != 1 || st.Nodes == 0 {
		t.Fatalf("store counters: %+v", st)
	}
	if !st.Cache.Enabled || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.Pool.Hits == 0 {
		t.Fatalf("pool counters missing: %+v", st.Pool)
	}
	if st.Generation == 0 {
		t.Fatalf("generation not bumped by ingest: %+v", st)
	}
	// The ingested document must show up in the text-index storage
	// counters, and the derived sizes must be self-consistent.
	ti := st.TextIndex
	if ti.Terms == 0 || ti.Postings == 0 || ti.Bytes == 0 {
		t.Fatalf("textindex counters empty: %+v", ti)
	}
	if ti.CompressionRatio <= 0 {
		t.Fatalf("textindex compression ratio missing: %+v", ti)
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts, _ := testServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/docs"},
		{http.MethodDelete, "/docs"},
		{http.MethodPost, "/capabilities"},
		{http.MethodPut, "/stats"},
		{http.MethodPost, "/xdb?context=Budget"},
		{http.MethodPost, "/bank/app?context=Budget"},
		{http.MethodPost, "/doc/1"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s = %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Fatalf("%s %s: no Allow header", c.method, c.path)
		}
	}
}

// TestDeleteDurableAcrossCrash: DELETE /doc/{id} answers 204 only after
// the delete is WAL-synced, so a crash (abandoning the DB without Close)
// must not resurrect the document on replay.
func TestDeleteDurableAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	store, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	// Persist the catalog (table + index definitions) like a long-lived
	// server would have; the WAL carries everything after this point.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res := store.StoreBatch([]xmlstore.BatchDoc{{
		Name: "r.html",
		Data: []byte(`<html><head><title>R</title></head><body><h1>Budget</h1><p>$9M</p></body></html>`),
	}}, 1)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	docID := res[0].DocID

	s, err := NewServer(xdb.NewEngine(store), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodDelete, fmt.Sprintf("/doc/%d", docID), nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 204 {
		t.Fatalf("DELETE = %d: %s", rec.Code, rec.Body)
	}
	// Crash: abandon db without Close — only WAL-synced state survives.

	db2, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	store2, err := xmlstore.Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	if n := store2.NumDocuments(); n != 0 {
		t.Fatalf("deleted document resurrected after crash: %d documents", n)
	}
	if secs, err := store2.ContextSearch("Budget"); err != nil || len(secs) != 0 {
		t.Fatalf("search after replay: %d sections, err=%v", len(secs), err)
	}
}

// TestDAVGetRejectsDirectory: the streamed GET path must not serve
// directories.
func TestDAVGetRejectsDirectory(t *testing.T) {
	_, ts, _ := testServer(t)
	if code, _ := davReq(t, "MKCOL", ts.URL+"/dav/adir", "", nil); code != 201 {
		t.Fatalf("MKCOL = %d", code)
	}
	code, _ := davReq(t, http.MethodGet, ts.URL+"/dav/adir", "", nil)
	if code != 404 {
		t.Fatalf("GET on directory = %d, want 404", code)
	}
}

// TestConcurrentServing hammers the handler from many goroutines with
// mixed reads, stylesheet registrations, ingests, and deletes — the
// -race umbrella for the serving layer.
func TestConcurrentServing(t *testing.T) {
	_, ts, e := testServer(t)
	e.EnableCache(1 << 20)

	const sheet = `<xsl:stylesheet><xsl:template match="/">
<summary><xsl:for-each select="//result"><s><xsl:value-of select="content"/></s></xsl:for-each></summary>
</xsl:template></xsl:stylesheet>`

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	// do issues a request without t.Fatal (unlike davReq): these run on
	// load goroutines, where FailNow is off-limits.
	do := func(method, url, body string) (int, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Readers: hot query, stats, docs listing.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				for _, p := range []string{"/xdb?context=Budget", "/stats", "/docs", "/capabilities"} {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						fail("GET %s: %v", p, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						fail("GET %s = %d", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	// Writers: stylesheet churn + ingest/delete churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 30; j++ {
			code, err := do(http.MethodPut, ts.URL+"/xslt/churn", sheet)
			if err != nil || code != 201 {
				fail("PUT /xslt/churn = %d, %v", code, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 15; j++ {
			name := fmt.Sprintf("extra%d.html", j)
			id, err := e.Store().StoreRaw(name,
				[]byte(`<html><head><title>X</title></head><body><h1>Budget</h1><p>more money</p></body></html>`))
			if err != nil {
				fail("ingest: %v", err)
				return
			}
			code, err := do(http.MethodDelete, fmt.Sprintf("%s/doc/%d", ts.URL, id), "")
			if err != nil || code != 204 {
				fail("DELETE doc %d = %d, %v", id, code, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The base document must have survived the churn.
	code, body := get(t, ts.URL+"/xdb?context=Budget")
	if code != 200 || !strings.Contains(body, "Costs $9M") {
		t.Fatalf("final query: %d %s", code, body)
	}
}

// TestHeadAllowedOnReadEndpoints: HEAD must ride along with GET (health
// checks and probes), with the body discarded by net/http.
func TestHeadAllowedOnReadEndpoints(t *testing.T) {
	_, ts, _ := testServer(t)
	for _, p := range []string{"/xdb?context=Budget", "/capabilities", "/stats", "/docs"} {
		resp, err := http.Head(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("HEAD %s = %d, want 200", p, resp.StatusCode)
		}
	}
}
