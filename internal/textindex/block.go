package textindex

// Block-compressed posting-list storage.
//
// A posting list's ids live in two tiers: sealed blocks of up to
// blockSize ids, delta+varint encoded with a maxID skip entry, and a
// small uncompressed sorted tail that absorbs in-place appends.  When
// the tail reaches blockSize ids that all sort after the last sealed
// block it is sealed into new blocks; a tail that overlaps sealed
// ranges (out-of-order inserts, rare — RowIDs almost always ascend) is
// folded in by a full rebuild once it outgrows its slack.  Removals of
// block-resident ids tombstone into a sorted dead list and trigger a
// compaction once tombstones reach a quarter of the physical ids.
//
// Readers never decode under the index lock: they capture a view (four
// slice headers) under a brief RLock and iterate outside it.  That is
// safe because every published byte is immutable — blocks are never
// mutated after encoding, and the tail/dead slices are either replaced
// wholesale (copy-on-write) or appended to strictly past the highest
// index any previously captured view can reach.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// blockSize is the number of ids per sealed block.  128 keeps a decoded
// block in two cache lines' worth of uint64s while making the maxID
// skip list 128x smaller than the ids it covers.
const blockSize = 128

// sealChunk is how many tail ids accumulate before the tail is folded
// into the block tier (merging with a partial final block).  Smaller
// values shrink the uncompressed tails at the cost of re-encoding each
// id up to blockSize/sealChunk times on ingest.
const sealChunk = 32

// blockOverhead approximates the in-memory bookkeeping cost of one
// sealed block (maxID + count + slice header) for the stats report.
const blockOverhead = 40

// block is an immutable run of strictly ascending ids: a varint first
// id followed by varint deltas.  maxID is the skip entry — a seek for
// id > maxID passes the block without decoding it.
type block struct {
	maxID uint64
	n     int
	data  []byte
}

// encodeBlock seals ids (sorted, non-empty) into a block.
func encodeBlock(ids []uint64) block {
	data := make([]byte, 0, 2*len(ids))
	prev := uint64(0)
	for _, id := range ids {
		if d := id - prev; d < 0x80 {
			data = append(data, byte(d))
		} else {
			data = binary.AppendUvarint(data, d)
		}
		prev = id
	}
	return block{maxID: ids[len(ids)-1], n: len(ids), data: data}
}

// decodeBlock appends the block's ids to dst.  The one-byte-delta fast
// path matters: ids are packed RowIDs, so most deltas are a handful of
// slots and fit one varint byte.
func decodeBlock(b block, dst []uint64) []uint64 {
	id := uint64(0)
	data := b.data
	off := 0
	for i := 0; i < b.n; i++ {
		if c := data[off]; c < 0x80 {
			id += uint64(c)
			off++
		} else {
			d, n := binary.Uvarint(data[off:])
			id += d
			off += n
		}
		dst = append(dst, id)
	}
	return dst
}

// checkBlock verifies an untrusted (snapshot-loaded) block: exactly n
// strictly ascending ids encoded in exactly len(data) bytes, ending at
// maxID.  Everything after load trusts these invariants — decodeBlock
// has no bounds checks of its own and seekGE trusts maxID — so a block
// that fails here must be rejected, not installed.
func checkBlock(b block) error {
	if b.n <= 0 {
		return fmt.Errorf("textindex: empty block")
	}
	id := uint64(0)
	off := 0
	for i := 0; i < b.n; i++ {
		if off >= len(b.data) {
			return fmt.Errorf("textindex: block truncated at id %d/%d", i, b.n)
		}
		d, n := binary.Uvarint(b.data[off:])
		if n <= 0 {
			return fmt.Errorf("textindex: bad varint at block byte %d", off)
		}
		off += n
		prev := id
		id += d
		if i > 0 && id <= prev {
			return fmt.Errorf("textindex: block ids not strictly ascending")
		}
	}
	if off != len(b.data) {
		return fmt.Errorf("textindex: %d trailing block bytes", len(b.data)-off)
	}
	if id != b.maxID {
		return fmt.Errorf("textindex: block maxID %d != last id %d", b.maxID, id)
	}
	return nil
}

// rebuildBlocks re-encodes a full sorted id list into sealed blocks
// plus an uncompressed remainder tail.
func rebuildBlocks(ids []uint64) ([]block, []uint64) {
	var blocks []block
	for len(ids) >= blockSize {
		blocks = append(blocks, encodeBlock(ids[:blockSize]))
		ids = ids[blockSize:]
	}
	if len(ids) == 0 {
		return blocks, nil
	}
	return blocks, append([]uint64(nil), ids...)
}

// view is an immutable snapshot of one posting list's id storage,
// captured under the index lock and iterated after it is released.
type view struct {
	blocks []block
	tail   []uint64
	dead   []uint64
	live   int
}

// iter walks a view's live ids in ascending order, merging the sealed
// block stream with the tail and skipping tombstones.  One block at a
// time is decoded into a reusable buffer; seekGE skips whole blocks by
// maxID without decoding them.
type iter struct {
	v  view
	bi int // index of the block decoded into buf (-1: none yet)
	// buf is refilled in place for every decoded block; aliases must
	// not outlive the current block.
	// netmarkvet:arena
	buf []uint64
	pi  int // cursor into buf
	ti  int // cursor into tail
	di  int // cursor into dead
	cur uint64
	has bool
}

func newIter(v view) *iter {
	it := &iter{v: v, bi: -1}
	it.settle()
	return it
}

// head returns the current live id without consuming it.
func (it *iter) head() (uint64, bool) { return it.cur, it.has }

// advance moves past the current id.
func (it *iter) advance() {
	if it.has {
		it.settle()
	}
}

// settle pulls the next live id off the merged streams into cur.
func (it *iter) settle() {
	for {
		id, ok := it.rawNext()
		if !ok {
			it.has = false
			return
		}
		if it.isDead(id) {
			continue
		}
		it.cur, it.has = id, true
		return
	}
}

// rawNext merges the block stream and the tail, tombstones included.
func (it *iter) rawNext() (uint64, bool) {
	bid, bok := it.blockHead()
	tok := it.ti < len(it.v.tail)
	switch {
	case !bok && !tok:
		return 0, false
	case bok && tok && bid == it.v.tail[it.ti]:
		// ids are unique across the two streams by construction; fold a
		// (never expected) equal pair into one emission defensively
		it.pi++
		it.ti++
		return bid, true
	case bok && (!tok || bid < it.v.tail[it.ti]):
		it.pi++
		return bid, true
	default:
		id := it.v.tail[it.ti]
		it.ti++
		return id, true
	}
}

// blockHead returns the next undelivered id of the block stream,
// decoding the next block when the current one is exhausted.
func (it *iter) blockHead() (uint64, bool) {
	for it.pi >= len(it.buf) {
		if it.bi+1 >= len(it.v.blocks) {
			return 0, false
		}
		it.bi++
		it.buf = decodeBlock(it.v.blocks[it.bi], it.buf[:0])
		it.pi = 0
	}
	return it.buf[it.pi], true
}

// isDead reports whether id is tombstoned.  Ids arrive ascending, so
// the dead cursor only ever moves forward.
func (it *iter) isDead(id uint64) bool {
	d := it.v.dead
	for it.di < len(d) && d[it.di] < id {
		it.di++
	}
	return it.di < len(d) && d[it.di] == id
}

// seekGE positions the iterator at the first live id >= target.  Blocks
// whose maxID proves they end before the target are skipped undecoded.
func (it *iter) seekGE(target uint64) {
	if it.has && it.cur >= target {
		return
	}
	if it.pi < len(it.buf) && it.buf[len(it.buf)-1] >= target {
		// target falls inside the currently decoded block
		it.pi += sort.Search(len(it.buf)-it.pi, func(k int) bool { return it.buf[it.pi+k] >= target })
	} else {
		// skip whole blocks by maxID, then decode the first candidate
		lo := it.bi + 1
		j := lo + sort.Search(len(it.v.blocks)-lo, func(k int) bool { return it.v.blocks[lo+k].maxID >= target })
		it.buf, it.pi = it.buf[:0], 0
		it.bi = j - 1
		if j < len(it.v.blocks) {
			it.bi = j
			it.buf = decodeBlock(it.v.blocks[j], it.buf)
			it.pi = sort.Search(len(it.buf), func(k int) bool { return it.buf[k] >= target })
		}
	}
	it.ti += sort.Search(len(it.v.tail)-it.ti, func(k int) bool { return it.v.tail[it.ti+k] >= target })
	it.settle()
}

// materializeView appends every live id of v to dst in order.  The
// common shape — no tombstones, tail strictly after the sealed blocks —
// skips the merging iterator and decodes straight through.
func materializeView(v view, dst []uint64) []uint64 {
	if len(v.dead) == 0 &&
		(len(v.tail) == 0 || len(v.blocks) == 0 || v.tail[0] > v.blocks[len(v.blocks)-1].maxID) {
		for _, b := range v.blocks {
			dst = decodeBlock(b, dst)
		}
		return append(dst, v.tail...)
	}
	for it := newIter(v); ; it.advance() {
		id, ok := it.head()
		if !ok {
			return dst
		}
		dst = append(dst, id)
	}
}

// intersectViews returns the ids present in every view.  views[0] must
// be the smallest (driver) list; the others are sought by skip entry,
// so only their candidate blocks are ever decoded — a rare term
// intersected against a stop-word-sized list costs O(|rare| log
// |blocks|) block probes, not a decode of the whole long list.
func intersectViews(views []view) []uint64 {
	its := make([]*iter, len(views))
	for i, v := range views {
		its[i] = newIter(v)
	}
	out := make([]uint64, 0, views[0].live)
	for {
		x, ok := stepIntersect(its)
		if !ok {
			return out
		}
		out = append(out, x)
	}
}

// mergeViews k-way merges the views' live ids into one sorted,
// deduplicated list using a min-heap of block iterators, so an OR or
// prefix over many terms decodes each block exactly once and never
// materialises per-term copies.
func mergeViews(views []view) []uint64 {
	if len(views) == 0 {
		return nil
	}
	if len(views) == 1 {
		if views[0].live == 0 {
			return nil
		}
		return materializeView(views[0], make([]uint64, 0, views[0].live))
	}
	total := 0
	for _, v := range views {
		total += v.live
	}
	x := mergeIter(views)
	out := make([]uint64, 0, total)
	for {
		id, ok := x.Next()
		if !ok {
			break
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// siftDown restores the min-heap property (ordered by head id) at i.
func siftDown(h []*iter, i int) {
	for {
		m := i
		if l := 2*i + 1; l < len(h) && h[l].cur < h[m].cur {
			m = l
		}
		if r := 2*i + 2; r < len(h) && h[r].cur < h[m].cur {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
