package textindex

import (
	"fmt"
	"testing"
)

// A warm iterator step — block decode into the reused scratch buffer,
// tombstone skip, heap/gallop bookkeeping — must not allocate: the
// whole point of the streaming API is that a capped scan over a huge
// posting list costs the constructor and nothing per id.
func TestIterNextZeroAlloc(t *testing.T) {
	ix := New()
	const docs = 4000
	for id := uint64(1); id <= docs; id++ {
		text := "alpha beta"
		if id%3 == 0 {
			text = "alpha beta gamma"
		}
		ix.Add(id, text)
	}
	// Tombstones exercise the isDead path of every step.
	for id := uint64(5); id <= docs; id += 17 {
		ix.Remove(id)
	}

	cases := map[string]func() *IDIter{
		"LookupIter": func() *IDIter { return ix.LookupIter("alpha") },
		"AndIter":    func() *IDIter { return ix.AndIter("alpha gamma") },
		"OrIter":     func() *IDIter { return ix.OrIter("beta gamma") },
		"PrefixIter": func() *IDIter { return ix.PrefixIter("al") },
	}
	for name, mk := range cases {
		it := mk()
		// The constructor decodes the first block of each list into the
		// iterator's scratch buffer; steps after that reuse it.
		if _, ok := it.Next(); !ok {
			t.Fatalf("%s: empty stream", name)
		}
		if n := testing.AllocsPerRun(1000, func() { it.Next() }); n != 0 {
			t.Errorf("%s.Next = %.2f allocs/op, want 0", name, n)
		}
	}
}

// The streaming drain of a multi-block intersection must cost a bounded
// handful of allocations total (iterators + scratch buffers), however
// long the lists are.
func TestIterDrainBoundedAllocs(t *testing.T) {
	ix := New()
	for id := uint64(1); id <= 3000; id++ {
		ix.Add(id, fmt.Sprintf("common word%d", id%7))
	}
	n := testing.AllocsPerRun(10, func() {
		it := ix.AndIter("common word3")
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	})
	// Constructor cost only — tokenizer scratch, captured views, two
	// iters and their decode buffers — constant in the list length
	// (3000 ids would mean thousands of allocs if the drain leaked
	// per-id or per-block work).
	if n > 32 {
		t.Errorf("full drain = %.1f allocs, want constant constructor cost", n)
	}
}
