package textindex

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// buildIndex fills an index with a small synthetic corpus, including a
// multi-call id (positions restart per call) and removed ids.
func buildIndex() *Index {
	ix := New()
	docs := []string{
		"the liquid oxygen turbopump showed cryogenic stress fractures",
		"budget request for the cryogenic test stand",
		"turbine blade review: cryogenic turbopump redesign",
		"the quick brown fox jumps over the lazy dog",
		"liquid hydrogen feed line pressure anomaly",
	}
	for i, d := range docs {
		ix.Add(uint64(1000+i*7), d)
	}
	ix.Add(1000, "appendix: turbopump cavitation margins") // second Add, same id
	ix.Remove(1021)                                        // fox doc vanishes
	return ix
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix := buildIndex()
	buf := ix.AppendSnapshot([]byte("prefix"))
	if !bytes.HasPrefix(buf, []byte("prefix")) {
		t.Fatal("AppendSnapshot must extend the given buffer")
	}
	tail := []byte("trailing-bytes")
	got, n, err := LoadSnapshot(append(buf[len("prefix"):], tail...))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-len("prefix") {
		t.Fatalf("consumed %d bytes, want %d (must stop before trailing data)", n, len(buf)-len("prefix"))
	}

	if got.Docs() != ix.Docs() || got.Terms() != ix.Terms() {
		t.Fatalf("docs/terms = %d/%d, want %d/%d", got.Docs(), got.Terms(), ix.Docs(), ix.Terms())
	}
	for _, q := range []string{"cryogenic", "turbopump", "liquid", "fox", "absent"} {
		if !reflect.DeepEqual(got.Lookup(q), ix.Lookup(q)) {
			t.Fatalf("Lookup(%q) diverges: %v vs %v", q, got.Lookup(q), ix.Lookup(q))
		}
		if got.DF(q) != ix.DF(q) {
			t.Fatalf("DF(%q) diverges", q)
		}
	}
	for _, q := range []string{"cryogenic turbopump", "liquid oxygen", "budget request"} {
		if !reflect.DeepEqual(got.And(q), ix.And(q)) {
			t.Fatalf("And(%q) diverges", q)
		}
		if !reflect.DeepEqual(got.Or(q), ix.Or(q)) {
			t.Fatalf("Or(%q) diverges", q)
		}
		if !reflect.DeepEqual(got.Phrase(q), ix.Phrase(q)) {
			t.Fatalf("Phrase(%q) diverges: %v vs %v", q, got.Phrase(q), ix.Phrase(q))
		}
		if got.QueryGen(q) != ix.QueryGen(q) {
			t.Fatalf("QueryGen(%q) diverges (per-term gens must survive the round trip)", q)
		}
	}
	if !reflect.DeepEqual(got.Prefix("turb"), ix.Prefix("turb")) {
		t.Fatal("Prefix diverges")
	}

	// The loaded index must keep evolving identically: same mutation on
	// both sides yields the same lookups and a working Remove (byID was
	// rebuilt from the posting lists).
	ix.Add(5000, "cryogenic margins")
	got.Add(5000, "cryogenic margins")
	if !reflect.DeepEqual(got.Lookup("cryogenic"), ix.Lookup("cryogenic")) {
		t.Fatal("post-load Add diverges")
	}
	ix.Remove(1000)
	got.Remove(1000)
	if !reflect.DeepEqual(got.Lookup("turbopump"), ix.Lookup("turbopump")) {
		t.Fatal("post-load Remove diverges")
	}
	if got.Docs() != ix.Docs() {
		t.Fatalf("post-mutation docs = %d, want %d", got.Docs(), ix.Docs())
	}
}

func TestSnapshotTruncated(t *testing.T) {
	ix := buildIndex()
	buf := ix.AppendSnapshot(nil)
	for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
		if _, _, err := LoadSnapshot(buf[:cut]); err == nil && cut < len(buf) {
			// A short prefix can only decode cleanly if it happens to end
			// exactly on a record boundary covering the whole term count —
			// impossible for a strict prefix of a valid snapshot.
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	buf := New().AppendSnapshot(nil)
	got, n, err := LoadSnapshot(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("empty round trip: %v (n=%d)", err, n)
	}
	if got.Docs() != 0 || got.Terms() != 0 {
		t.Fatal("empty index not empty after round trip")
	}
	if got.Lookup("anything") != nil {
		t.Fatal("lookup on empty loaded index")
	}
}

// TestSnapshotCorruptBlocksError: mangled v2 payloads must surface as
// decode errors (the store falls back to its scan rebuild), never as
// panics — the file-level CRC upstream does not protect against a
// writer bug producing internally inconsistent blocks.
func TestSnapshotCorruptBlocksError(t *testing.T) {
	ix := New()
	for id := uint64(1); id <= 400; id++ {
		ix.Add(id, "alpha beta")
	}
	if ix.Stats().Blocks == 0 {
		t.Fatal("setup: no sealed blocks")
	}
	buf := ix.AppendSnapshot(nil)
	for cut := 0; cut < len(buf); cut += 7 {
		mangled := append([]byte(nil), buf...)
		mangled[cut] ^= 0x55
		got, _, err := LoadSnapshot(mangled) // must not panic
		if err != nil {
			continue
		}
		// A flip that decodes cleanly (e.g. inside a position value) must
		// still yield a structurally sound index.
		if got.Docs() < 0 || got.Terms() < 0 {
			t.Fatalf("corrupt load at byte %d produced broken index", cut)
		}
		got.Lookup("alpha")
		got.And("alpha beta")
	}
	// Truncations through the block region must error, not panic.
	for cut := 1; cut < len(buf); cut += 13 {
		if _, _, err := LoadSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	// A block-length varint >= 2^63 wraps negative as an int: the bounds
	// check must compare in uint64 and reject it, not slice-panic.
	crafted := binary.AppendUvarint(nil, 0) // genCounter
	crafted = binary.AppendUvarint(crafted, 1)
	crafted = binary.AppendUvarint(crafted, 1) // len("a")
	crafted = append(crafted, 'a')
	crafted = binary.AppendUvarint(crafted, 1)     // gen
	crafted = binary.AppendUvarint(crafted, 1)     // nblocks
	crafted = binary.AppendUvarint(crafted, 1)     // n
	crafted = binary.AppendUvarint(crafted, 1)     // maxID
	crafted = binary.AppendUvarint(crafted, 1<<63) // dlen: wraps int negative
	if _, _, err := LoadSnapshot(crafted); err == nil {
		t.Fatal("2^63 block length decoded cleanly")
	}
}
