package textindex

// Streaming query iterators.
//
// Lookup/And/Or/Prefix materialize the whole result slice before the
// caller sees the first id.  For callers that stream — section scans
// that stop early, decode loops that reuse one chunk buffer — that
// materialization is pure allocation overhead: the result can be the
// size of the corpus while the caller only ever holds a page of it.
// IDIter exposes the same block-skipping intersection and min-heap
// merge kernels one id at a time, over the same immutable views
// captured under the same brief RLock, so a streaming caller allocates
// nothing per id beyond the iterator itself.
//
// The kernels are shared: intersectViews and mergeViews in block.go
// are loops over stepIntersect/stepMerge, so the randomized equivalence
// tests that exercise the materializing API validate the streaming one
// too.

import (
	"sort"
	"strings"
)

// IDIter streams the ids of a query result in ascending order.  The
// zero value is an exhausted iterator.  An IDIter is single-use and not
// safe for concurrent use; it reads immutable view storage, so holding
// one open never blocks writers.
type IDIter struct {
	its     []*iter // intersect: its[0] drives; merge: min-heap by head id
	merge   bool
	last    uint64 // last id emitted in merge mode (for dedup)
	started bool
}

// Next returns the next result id, or false when the stream is done.
//
// netmarkvet:hotpath
func (x *IDIter) Next() (uint64, bool) {
	if x == nil || len(x.its) == 0 {
		return 0, false
	}
	if !x.merge {
		return stepIntersect(x.its)
	}
	for {
		id, ok := stepMerge(&x.its)
		if !ok {
			return 0, false
		}
		if x.started && id == x.last {
			continue
		}
		x.started, x.last = true, id
		return id, true
	}
}

// stepIntersect emits the next id present in every iterator.  its[0] is
// the driver (smallest list); the rest are sought by block maxID, so
// only candidate blocks decode.  When an iterator disagrees, the driver
// gallops straight to the blocker's head.
func stepIntersect(its []*iter) (uint64, bool) {
	drv := its[0]
outer:
	for {
		x, ok := drv.head()
		if !ok {
			return 0, false
		}
		for _, it := range its[1:] {
			it.seekGE(x)
			y, ok := it.head()
			if !ok {
				return 0, false
			}
			if y != x {
				drv.seekGE(y)
				continue outer
			}
		}
		drv.advance()
		return x, true
	}
}

// stepMerge pops the minimum head id off the iterator heap, advancing
// its owner and dropping it when exhausted.  Duplicate ids across lists
// come out as repeated emissions; callers dedup.
func stepMerge(h *[]*iter) (uint64, bool) {
	s := *h
	if len(s) == 0 {
		return 0, false
	}
	it := s[0]
	id, _ := it.head()
	it.advance()
	if _, ok := it.head(); !ok {
		s[0] = s[len(s)-1]
		s = s[:len(s)-1]
		*h = s
	}
	siftDown(s, 0)
	return id, true
}

// intersectIter wraps sorted views (smallest first) as a streaming
// intersection.  A single view streams through the same kernel — the
// inner loop is empty.
func intersectIter(views []view) *IDIter {
	if len(views) == 0 {
		return &IDIter{}
	}
	its := make([]*iter, len(views))
	for i, v := range views {
		its[i] = newIter(v)
	}
	return &IDIter{its: its}
}

// mergeIter wraps views as a streaming deduplicated union.
func mergeIter(views []view) *IDIter {
	h := make([]*iter, 0, len(views))
	for _, v := range views {
		it := newIter(v)
		if _, ok := it.head(); ok {
			h = append(h, it)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	return &IDIter{its: h, merge: true}
}

// LookupIter streams the ids containing term, in ascending order.
func (ix *Index) LookupIter(term string) *IDIter {
	term = normTerm(term)
	if term == "" {
		return &IDIter{}
	}
	ix.mu.RLock()
	var v view
	if got := ix.terms.Get(term); len(got) > 0 {
		v = got[0].view()
	}
	ix.mu.RUnlock()
	if v.live == 0 {
		return &IDIter{}
	}
	return intersectIter([]view{v})
}

// AndIter streams the intersection of the query's terms.  Views are
// captured under the read lock exactly as And does; the skip-driven
// intersection runs outside it, one id per Next call.
func (ix *Index) AndIter(query string) *IDIter {
	return intersectIter(ix.andViews(query))
}

// OrIter streams the deduplicated union of the query's terms.
func (ix *Index) OrIter(query string) *IDIter {
	return mergeIter(ix.orViews(query))
}

// PrefixIter streams the deduplicated union of every term starting
// with p.
func (ix *Index) PrefixIter(p string) *IDIter {
	return mergeIter(ix.prefixViews(p))
}

// andViews captures one view per query term under a brief RLock and
// sorts them smallest-live first so the rarest term drives.  A query
// with no tokens or with a term absent from the index returns nil —
// the intersection is empty either way.
func (ix *Index) andViews(query string) []view {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	views := make([]view, 0, len(toks))
	ix.mu.RLock()
	for _, tok := range toks {
		got := ix.terms.Get(tok.Term)
		if len(got) == 0 {
			ix.mu.RUnlock()
			return nil
		}
		views = append(views, got[0].view())
	}
	ix.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].live < views[j].live })
	return views
}

// orViews captures the non-empty views of the query's terms under one
// brief RLock hold.
func (ix *Index) orViews(query string) []view {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	views := make([]view, 0, len(toks))
	ix.mu.RLock()
	for _, tok := range toks {
		if got := ix.terms.Get(tok.Term); len(got) > 0 && got[0].live > 0 {
			views = append(views, got[0].view())
		}
	}
	ix.mu.RUnlock()
	return views
}

// prefixViews captures the non-empty views of every term starting with
// p under one brief RLock hold.
func (ix *Index) prefixViews(p string) []view {
	p = strings.ToLower(strings.TrimSpace(p))
	if p == "" {
		return nil
	}
	var views []view
	ix.mu.RLock()
	ix.terms.AscendPrefixFunc(p,
		func(k string) bool { return strings.HasPrefix(k, p) },
		func(_ string, vals []*postingList) bool {
			for _, pl := range vals {
				if pl.live > 0 {
					views = append(views, pl.view())
				}
			}
			return true
		})
	ix.mu.RUnlock()
	return views
}
