package textindex

// Property tests: the block-compressed posting lists must answer every
// query family exactly like a brute-force reference model, across
// randomized insert/remove/re-insert sequences that exercise block
// sealing, out-of-order tails, tombstoning, compaction, and revival.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// refModel is the brute-force reference: the token sequence of every
// live id, queried by scanning.
type refModel struct {
	docs map[uint64][]string
}

func newRefModel() *refModel { return &refModel{docs: make(map[uint64][]string)} }

func (m *refModel) add(id uint64, text string) {
	toks := Tokenize(text)
	terms := make([]string, len(toks))
	for i, tok := range toks {
		terms[i] = tok.Term
	}
	m.docs[id] = append(m.docs[id], terms...)
}

func (m *refModel) remove(id uint64) { delete(m.docs, id) }

func (m *refModel) ids(match func(terms []string) bool) []uint64 {
	var out []uint64
	for id, terms := range m.docs {
		if match(terms) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *refModel) lookup(term string) []uint64 {
	return m.ids(func(terms []string) bool {
		for _, t := range terms {
			if t == term {
				return true
			}
		}
		return false
	})
}

func (m *refModel) and(query string) []uint64 {
	toks := Tokenize(query)
	return m.ids(func(terms []string) bool {
		for _, tok := range toks {
			found := false
			for _, t := range terms {
				if t == tok.Term {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
}

func (m *refModel) or(query string) []uint64 {
	toks := Tokenize(query)
	return m.ids(func(terms []string) bool {
		for _, tok := range toks {
			for _, t := range terms {
				if t == tok.Term {
					return true
				}
			}
		}
		return false
	})
}

func (m *refModel) prefix(p string) []uint64 {
	p = strings.ToLower(p)
	return m.ids(func(terms []string) bool {
		for _, t := range terms {
			if strings.HasPrefix(t, p) {
				return true
			}
		}
		return false
	})
}

func (m *refModel) phrase(query string) []uint64 {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	want := make([]string, len(toks))
	for i, tok := range toks {
		want[i] = tok.Term
	}
	return m.ids(func(terms []string) bool {
	starts:
		for s := 0; s+len(want) <= len(terms); s++ {
			for i, w := range want {
				if terms[s+i] != w {
					continue starts
				}
			}
			return true
		}
		return false
	})
}

// eqIDs compares treating nil and empty as equal (the index returns nil
// for no matches, the model returns nil too, but guard anyway).
func eqIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyCompressedListEquivalence runs randomized mutation
// sequences and cross-checks every query family against the reference
// after each phase.  The id space and vocabulary are sized to force
// multi-block lists, tail overlap (out-of-order ids), tombstone
// compaction, and tombstone revival.
func TestPropertyCompressedListEquivalence(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "alphabet", "gambit", "веста", "第"}
	queries := []string{
		"alpha", "beta", "alphabet", "第", "absent",
		"alpha beta", "beta gamma delta", "alpha absent",
		"alpha beta gamma",
	}
	prefixes := []string{"al", "g", "в", "absent", "alpha"}
	phrases := []string{"alpha beta", "beta gamma", "gamma alpha beta"}

	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			ix := New()
			model := newRefModel()
			live := make([]uint64, 0, 2048)    // ids currently indexed
			removed := make([]uint64, 0, 1024) // ids removed at least once
			nextID := uint64(1)

			makeText := func() string {
				k := r.Intn(4) + 1
				var sb strings.Builder
				for i := 0; i < k; i++ {
					if i > 0 {
						sb.WriteByte(' ')
					}
					sb.WriteString(vocab[r.Intn(len(vocab))])
				}
				return sb.String()
			}
			addID := func(id uint64) {
				text := makeText()
				ix.Add(id, text)
				model.add(id, text)
				live = append(live, id)
			}

			drain := func(x *IDIter) []uint64 {
				var out []uint64
				for {
					id, ok := x.Next()
					if !ok {
						return out
					}
					out = append(out, id)
				}
			}
			check := func(stage string) {
				t.Helper()
				for _, q := range queries {
					// Lookup normalises to the first token; mirror that.
					if got, want := ix.Lookup(q), model.lookup(normTerm(q)); !eqIDs(got, want) {
						t.Fatalf("%s: Lookup(%q) = %v, want %v", stage, q, got, want)
					}
					if got, want := ix.And(q), model.and(q); !eqIDs(got, want) {
						t.Fatalf("%s: And(%q) = %v, want %v", stage, q, got, want)
					}
					if got, want := ix.Or(q), model.or(q); !eqIDs(got, want) {
						t.Fatalf("%s: Or(%q) = %v, want %v", stage, q, got, want)
					}
					// Streaming iterators must emit exactly the materialized
					// results, id for id.
					if got, want := drain(ix.LookupIter(q)), model.lookup(normTerm(q)); !eqIDs(got, want) {
						t.Fatalf("%s: LookupIter(%q) = %v, want %v", stage, q, got, want)
					}
					if got, want := drain(ix.AndIter(q)), model.and(q); !eqIDs(got, want) {
						t.Fatalf("%s: AndIter(%q) = %v, want %v", stage, q, got, want)
					}
					if got, want := drain(ix.OrIter(q)), model.or(q); !eqIDs(got, want) {
						t.Fatalf("%s: OrIter(%q) = %v, want %v", stage, q, got, want)
					}
				}
				for _, p := range prefixes {
					if got, want := ix.Prefix(p), model.prefix(p); !eqIDs(got, want) {
						t.Fatalf("%s: Prefix(%q) = %v, want %v", stage, p, got, want)
					}
					if got, want := drain(ix.PrefixIter(p)), model.prefix(p); !eqIDs(got, want) {
						t.Fatalf("%s: PrefixIter(%q) = %v, want %v", stage, p, got, want)
					}
				}
				for _, p := range phrases {
					if got, want := ix.Phrase(p), model.phrase(p); !eqIDs(got, want) {
						t.Fatalf("%s: Phrase(%q) = %v, want %v", stage, p, got, want)
					}
				}
				if ix.Docs() != len(model.docs) {
					t.Fatalf("%s: Docs() = %d, want %d", stage, ix.Docs(), len(model.docs))
				}
				for _, w := range vocab {
					if got, want := ix.DF(w), len(model.lookup(w)); got != want {
						t.Fatalf("%s: DF(%q) = %d, want %d", stage, w, got, want)
					}
				}
			}

			const phases, opsPerPhase = 5, 400
			for phase := 0; phase < phases; phase++ {
				for op := 0; op < opsPerPhase; op++ {
					switch p := r.Intn(100); {
					case p < 55: // fresh ascending id — the common RowID pattern
						addID(nextID)
						nextID++
					case p < 65: // fresh out-of-order id — forces tail overlap
						id := uint64(r.Int63n(int64(nextID))) + 1
						if _, ok := model.docs[id]; ok {
							continue
						}
						addID(id)
					case p < 90: // remove a live id — tombstones + compaction
						if len(live) == 0 {
							continue
						}
						i := r.Intn(len(live))
						id := live[i]
						if _, ok := model.docs[id]; !ok {
							live = append(live[:i], live[i+1:]...)
							continue
						}
						ix.Remove(id)
						model.remove(id)
						live = append(live[:i], live[i+1:]...)
						removed = append(removed, id)
					default: // re-insert a previously removed id — revival
						if len(removed) == 0 {
							continue
						}
						i := r.Intn(len(removed))
						id := removed[i]
						if _, ok := model.docs[id]; ok {
							continue
						}
						addID(id)
					}
				}
				check(fmt.Sprintf("phase %d", phase))
			}

			// The sequences above must actually have exercised the block
			// machinery, or the equivalence proves nothing.
			st := ix.Stats()
			if st.Blocks == 0 {
				t.Fatalf("property run never sealed a block: %+v", st)
			}

			// And the whole state must survive a v2 snapshot round trip.
			loaded, _, err := LoadSnapshot(ix.AppendSnapshot(nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				if !reflect.DeepEqual(loaded.And(q), ix.And(q)) || !reflect.DeepEqual(loaded.Or(q), ix.Or(q)) {
					t.Fatalf("snapshot round trip diverges on %q", q)
				}
			}
		})
	}
}
