package textindex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"hello", []string{"hello"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"space-shuttle v2.0", []string{"space", "shuttle", "v2", "0"}},
		{"  multiple   spaces  ", []string{"multiple", "spaces"}},
		{"ÜBER café", []string{"über", "café"}},
		{"123 456", []string{"123", "456"}},
		// Combining marks extend the current token: the NFD spelling of
		// "cafés" (e + U+0301) must not split at the mark.
		{"cafe\u0301s society", []string{"cafe\u0301s", "society"}},
		// Script boundaries flush, and Han ideographs are unigrams.
		{"abc日本語def", []string{"abc", "日", "本", "語", "def"}},
		{"東京tower", []string{"東", "京", "tower"}},
		{"第3章", []string{"第", "3", "章"}},
		{"한국어 텍스트", []string{"한국어", "텍스트"}},
		{"ひらがなとカタカナ", []string{"ひらがなと", "カタカナ"}},
		{"서울2024", []string{"서울", "2024"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		var terms []string
		for _, tok := range got {
			terms = append(terms, tok.Term)
		}
		if len(terms) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, terms, c.want)
		}
		for i := range terms {
			if terms[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, terms, c.want)
			}
		}
	}
}

func TestTokenizePositionsAreSequential(t *testing.T) {
	toks := Tokenize("one two three four")
	for i, tok := range toks {
		if tok.Pos != uint32(i) {
			t.Fatalf("token %d has pos %d", i, tok.Pos)
		}
	}
}

func TestLookupBasic(t *testing.T) {
	ix := New()
	ix.Add(1, "the space shuttle launched")
	ix.Add(2, "budget report for the shuttle program")
	ix.Add(3, "unrelated document about parsers")

	got := ix.Lookup("shuttle")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Lookup(shuttle) = %v", got)
	}
	if got := ix.Lookup("SHUTTLE"); len(got) != 2 {
		t.Fatalf("case-insensitive lookup failed: %v", got)
	}
	if got := ix.Lookup("absent"); got != nil {
		t.Fatalf("Lookup(absent) = %v", got)
	}
	if got := ix.Lookup(""); got != nil {
		t.Fatalf("Lookup(empty) = %v", got)
	}
}

func TestAndOr(t *testing.T) {
	ix := New()
	ix.Add(1, "engine anomaly detected")
	ix.Add(2, "engine nominal")
	ix.Add(3, "anomaly in the guidance system")

	and := ix.And("engine anomaly")
	if len(and) != 1 || and[0] != 1 {
		t.Fatalf("And = %v", and)
	}
	or := ix.Or("engine anomaly")
	if len(or) != 3 {
		t.Fatalf("Or = %v", or)
	}
	if got := ix.And("engine missing"); got != nil {
		t.Fatalf("And with absent term = %v", got)
	}
}

func TestPhrase(t *testing.T) {
	ix := New()
	ix.Add(1, "the technology gap is shrinking")
	ix.Add(2, "gap in technology assessments") // both words, wrong order
	ix.Add(3, "technology gap widening")

	got := ix.Phrase("technology gap")
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Phrase = %v", got)
	}
	if got := ix.Phrase("shrinking"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("single-term phrase = %v", got)
	}
}

func TestPrefix(t *testing.T) {
	ix := New()
	ix.Add(1, "propulsion")
	ix.Add(2, "proposal")
	ix.Add(3, "protocol")
	ix.Add(4, "budget")

	got := ix.Prefix("prop")
	if len(got) != 2 {
		t.Fatalf("Prefix(prop) = %v", got)
	}
	if got := ix.Prefix("pro"); len(got) != 3 {
		t.Fatalf("Prefix(pro) = %v", got)
	}
	if got := ix.Prefix("z"); got != nil {
		t.Fatalf("Prefix(z) = %v", got)
	}
}

func TestRemove(t *testing.T) {
	ix := New()
	ix.Add(1, "alpha beta")
	ix.Add(2, "beta gamma")
	ix.Remove(1)
	if got := ix.Lookup("alpha"); got != nil {
		t.Fatalf("alpha survives remove: %v", got)
	}
	if got := ix.Lookup("beta"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("beta postings wrong after remove: %v", got)
	}
	if ix.Docs() != 1 {
		t.Fatalf("docs = %d", ix.Docs())
	}
	// Removing again is a no-op.
	ix.Remove(1)
	if ix.Docs() != 1 {
		t.Fatalf("double remove changed docs: %d", ix.Docs())
	}
}

func TestDFAndStats(t *testing.T) {
	ix := New()
	ix.Add(1, "x y")
	ix.Add(2, "x")
	ix.Add(3, "x y z")
	if ix.DF("x") != 3 || ix.DF("y") != 2 || ix.DF("z") != 1 || ix.DF("w") != 0 {
		t.Fatalf("DF: x=%d y=%d z=%d w=%d", ix.DF("x"), ix.DF("y"), ix.DF("z"), ix.DF("w"))
	}
	if ix.Terms() != 3 {
		t.Fatalf("terms = %d", ix.Terms())
	}
	if ix.Docs() != 3 {
		t.Fatalf("docs = %d", ix.Docs())
	}
}

func TestIDsSortedEvenWithOutOfOrderAdds(t *testing.T) {
	ix := New()
	ids := []uint64{50, 10, 90, 30, 70, 20}
	for _, id := range ids {
		ix.Add(id, "common")
	}
	got := ix.Lookup("common")
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("postings unsorted: %v", got)
	}
	if len(got) != len(ids) {
		t.Fatalf("lost postings: %v", got)
	}
}

// Property: Lookup agrees with a naive reference implementation over
// random tiny corpora.
func TestQuickAgainstNaiveSearch(t *testing.T) {
	words := []string{"engine", "budget", "shuttle", "anomaly", "gap", "risk", "plan"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		docs := make(map[uint64]string)
		ix := New()
		for id := uint64(1); id <= uint64(n%20)+2; id++ {
			k := r.Intn(5) + 1
			var sb strings.Builder
			for i := 0; i < k; i++ {
				sb.WriteString(words[r.Intn(len(words))])
				sb.WriteByte(' ')
			}
			docs[id] = sb.String()
			ix.Add(id, docs[id])
		}
		for _, w := range words {
			var want []uint64
			for id, text := range docs {
				if strings.Contains(text, w) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := ix.Lookup(w)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: And(a b) == intersection of Lookup(a) and Lookup(b).
func TestQuickAndIsIntersection(t *testing.T) {
	f := func(assign []uint8) bool {
		ix := New()
		for i, mask := range assign {
			id := uint64(i + 1)
			var parts []string
			if mask&1 != 0 {
				parts = append(parts, "aterm")
			}
			if mask&2 != 0 {
				parts = append(parts, "bterm")
			}
			if len(parts) > 0 {
				ix.Add(id, strings.Join(parts, " "))
			}
		}
		a, b := ix.Lookup("aterm"), ix.Lookup("bterm")
		inA := make(map[uint64]bool)
		for _, id := range a {
			inA[id] = true
		}
		var want []uint64
		for _, id := range b {
			if inA[id] {
				want = append(want, id)
			}
		}
		got := ix.And("aterm bterm")
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAddLookup(t *testing.T) {
	ix := New()
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				ix.Add(uint64(w*1000+i), fmt.Sprintf("worker %d doc %d shared", w, i))
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			for i := 0; i < 200; i++ {
				ix.Lookup("shared")
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ix.Lookup("shared")); got != 800 {
		t.Fatalf("shared postings = %d", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Add(uint64(i), "the quick brown fox jumps over the lazy dog near the riverbank")
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New()
	for i := 0; i < 50000; i++ {
		ix.Add(uint64(i), fmt.Sprintf("document %d mentions shuttle and engine terms", i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Lookup("shuttle")
	}
}

// TestBlockSealAndSkip drives one term through many sealed blocks and
// checks that lookups and skip-driven intersections stay exact.
func TestBlockSealAndSkip(t *testing.T) {
	ix := New()
	const n = 1000
	for id := uint64(1); id <= n; id++ {
		text := "common"
		if id%97 == 0 {
			text = "common rare"
		}
		ix.Add(id, text)
	}
	st := ix.Stats()
	if st.Blocks < n/blockSize-1 {
		t.Fatalf("expected sealed blocks, stats = %+v", st)
	}
	if got := ix.Lookup("common"); len(got) != n || got[0] != 1 || got[n-1] != n {
		t.Fatalf("Lookup(common) len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
	and := ix.And("common rare")
	if len(and) != n/97 {
		t.Fatalf("And(common rare) = %d ids, want %d", len(and), n/97)
	}
	for _, id := range and {
		if id%97 != 0 {
			t.Fatalf("unexpected intersection id %d", id)
		}
	}
	if st.CompressionRatio < 2 {
		t.Fatalf("dense ascending ids should compress >2x, got %.2f (%+v)", st.CompressionRatio, st)
	}
}

// TestOutOfOrderTailOverlap inserts ids below already-sealed blocks so
// the tail overlaps sealed ranges, then forces the overflow rebuild.
func TestOutOfOrderTailOverlap(t *testing.T) {
	ix := New()
	// Seal several blocks of high ids first.
	for id := uint64(10000); id < 10000+5*blockSize; id++ {
		ix.Add(id, "w")
	}
	// Now add low ids: they land in the tail, which can never seal past
	// the existing blocks; growing it past 4*blockSize forces a rebuild.
	for id := uint64(1); id <= 5*blockSize; id++ {
		ix.Add(id, "w")
	}
	got := ix.Lookup("w")
	if len(got) != 10*blockSize {
		t.Fatalf("len = %d, want %d", len(got), 10*blockSize)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ids unsorted after overlap rebuild")
	}
	if got[0] != 1 || got[len(got)-1] != 10000+5*blockSize-1 {
		t.Fatalf("range wrong: first=%d last=%d", got[0], got[len(got)-1])
	}
}

// TestTombstoneCompaction removes most of a sealed term and checks the
// tombstones are folded away while queries stay exact.
func TestTombstoneCompaction(t *testing.T) {
	ix := New()
	const n = 600
	for id := uint64(1); id <= n; id++ {
		ix.Add(id, "victim keeper")
	}
	for id := uint64(1); id <= n; id++ {
		if id%3 != 0 {
			ix.Remove(id)
		}
	}
	st := ix.Stats()
	if st.DeadIDs > n/4 {
		t.Fatalf("tombstones not compacted: %+v", st)
	}
	got := ix.Lookup("victim")
	if len(got) != n/3 {
		t.Fatalf("len = %d, want %d", len(got), n/3)
	}
	for _, id := range got {
		if id%3 != 0 {
			t.Fatalf("removed id %d still visible", id)
		}
	}
	if df := ix.DF("keeper"); df != n/3 {
		t.Fatalf("DF = %d, want %d", df, n/3)
	}
}

// TestReinsertTombstonedID removes a block-resident id and re-adds it:
// the tombstone must be revived, not duplicated.
func TestReinsertTombstonedID(t *testing.T) {
	ix := New()
	for id := uint64(1); id <= 2*blockSize; id++ {
		ix.Add(id, "stable flux")
	}
	ix.Remove(7) // inside the first sealed block
	if got := ix.Lookup("flux"); len(got) != 2*blockSize-1 {
		t.Fatalf("after remove: %d ids", len(got))
	}
	ix.Add(7, "stable flux phoenix")
	got := ix.Lookup("flux")
	if len(got) != 2*blockSize {
		t.Fatalf("after re-add: %d ids, want %d", len(got), 2*blockSize)
	}
	seen := 0
	for _, id := range got {
		if id == 7 {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("id 7 appears %d times", seen)
	}
	if got := ix.Lookup("phoenix"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("phoenix = %v", got)
	}
	if got := ix.And("stable flux phoenix"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("And over revived id = %v", got)
	}
}

// TestPhraseAcrossBlocks checks phrase adjacency still works when the
// candidate ids live in sealed blocks.
func TestPhraseAcrossBlocks(t *testing.T) {
	ix := New()
	for id := uint64(1); id <= 3*blockSize; id++ {
		if id%2 == 0 {
			ix.Add(id, "liquid oxygen tank")
		} else {
			ix.Add(id, "oxygen liquid reversed")
		}
	}
	got := ix.Phrase("liquid oxygen")
	if len(got) != 3*blockSize/2 {
		t.Fatalf("Phrase = %d ids, want %d", len(got), 3*blockSize/2)
	}
	for _, id := range got {
		if id%2 != 0 {
			t.Fatalf("wrong-order doc %d matched phrase", id)
		}
	}
}

// TestCJKPhraseSearch: Han unigrams make unsegmented CJK text
// searchable via phrase adjacency.
func TestCJKPhraseSearch(t *testing.T) {
	ix := New()
	ix.Add(1, "東京の報告")
	ix.Add(2, "京東の報告") // reversed ideographs
	if got := ix.Phrase("東京"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Phrase(東京) = %v", got)
	}
	if got := ix.Lookup("東"); len(got) != 2 {
		t.Fatalf("Lookup(東) = %v", got)
	}
}
