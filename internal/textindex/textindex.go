// Package textindex implements the inverted full-text index that fronts
// NETMARK's keyword search (§2.1.4 of the paper: "the keyword-based
// context and content search is performed by first querying the text
// index for the search key").  It substitutes for Oracle Text in the
// original system.
//
// The index maps lowercased terms to block-compressed posting lists of
// document/node IDs with token positions, supporting boolean AND/OR,
// phrase and prefix queries.  IDs are opaque uint64s; the XML store
// uses packed physical RowIDs so a text hit leads directly to the page
// holding the node.  Posting lists are stored as delta+varint blocks
// with per-block maxID skip entries (see block.go): intersections seek
// by skip entry and decode only candidate blocks, and resident memory
// is a fraction of the flat []uint64 layout the index used before.
//
// # Tokenizer contract
//
// Tokenize lowercases and splits on anything that is not a letter,
// digit, or combining mark.  Combining marks (Unicode Mn/Mc/Me) extend
// the current token, so decomposed accents ("e" + U+0301) stay inside
// one term; no Unicode normalisation is performed, so NFC and NFD
// spellings of the same word index as distinct terms.  Script
// boundaries flush: a transition between Han, Hiragana, Katakana,
// Hangul, and everything else ends the current token, and Han
// ideographs are additionally emitted as single-rune tokens (unigrams)
// so unsegmented CJK text is searchable — a multi-ideograph query
// matches via phrase adjacency over the unigram positions.  Letter/
// digit transitions within one script do not flush ("v2" is one term).
// Positions count tokens, not bytes.
package textindex

import (
	"sort"
	"strings"
	"sync"
	"unicode"

	"netmark/internal/btree"
)

// Token is one term occurrence produced by the tokenizer.
type Token struct {
	Term string
	Pos  uint32
}

// Rune classes whose boundaries end a token (see the package comment's
// tokenizer contract).
const (
	classOther = iota // Latin, Cyrillic, Greek, digits, ... — run-based
	classHan          // unigrams
	classHiragana
	classKatakana
	classHangul
)

func runeClass(r rune) int {
	switch {
	case unicode.Is(unicode.Han, r):
		return classHan
	case unicode.Is(unicode.Hiragana, r):
		return classHiragana
	case unicode.Is(unicode.Katakana, r):
		return classKatakana
	case unicode.Is(unicode.Hangul, r):
		return classHangul
	default:
		return classOther
	}
}

// Tokenize splits text into lowercase terms per the tokenizer contract
// in the package comment.  Position counts tokens, not bytes, so phrase
// queries can check adjacency.
func Tokenize(text string) []Token {
	var out []Token
	var b strings.Builder
	pos := uint32(0)
	last := classOther
	flush := func() {
		if b.Len() > 0 {
			out = append(out, Token{Term: b.String(), Pos: pos})
			pos++
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			c := runeClass(r)
			if c != last {
				flush()
			}
			b.WriteRune(unicode.ToLower(r))
			last = c
			if c == classHan {
				flush()
			}
		case unicode.IsMark(r) && b.Len() > 0:
			// combining marks extend the current token (NFD accents)
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// postingList stores, for one term, the block-compressed sorted ids
// that contain it (see block.go for the storage invariants) and per-id
// token positions.
type postingList struct {
	// blocks/tail/dead are published to captured views (see view()):
	// mutation methods must replace the slices, never write elements in
	// place, or a concurrent reader holding a view sees torn state.
	blocks []block             // netmarkvet:cow netmarkvet:snap — sealed, immutable, ascending non-overlapping runs
	tail   []uint64            // netmarkvet:cow netmarkvet:snap — sorted uncompressed append area
	dead   []uint64            // netmarkvet:cow netmarkvet:snap — sorted tombstones; always ids resident in blocks
	live   int                 // id count net of tombstones; netmarkvet:snap
	pos    map[uint64][]uint32 // netmarkvet:snap
	// gen is the term's mutation generation: assigned from the index-wide
	// monotonic counter on every posting insert or removal.  Result caches
	// fold the gens of a query's terms into their keys, so a write that
	// never touches those terms leaves the cached results reachable —
	// per-document invalidation collapsed to term granularity.
	// netmarkvet:snap
	gen uint64
}

func (pl *postingList) view() view {
	return view{blocks: pl.blocks, tail: pl.tail, dead: pl.dead, live: pl.live}
}

func (pl *postingList) add(id uint64, p uint32) {
	if pl.pos == nil {
		pl.pos = make(map[uint64][]uint32)
	}
	if _, seen := pl.pos[id]; !seen {
		pl.insertID(id)
	}
	pl.pos[id] = append(pl.pos[id], p)
}

// insertID adds a not-currently-live id.  A tombstoned id is revived in
// place (it is still physically present in a block); everything else
// lands in the tail — appended when it sorts last (the common RowID
// pattern), copy-on-write inserted otherwise so captured views stay
// valid.
//
// netmarkvet:mutator
func (pl *postingList) insertID(id uint64) {
	pl.live++
	if i := searchIDs(pl.dead, id); i < len(pl.dead) && pl.dead[i] == id {
		nd := make([]uint64, 0, len(pl.dead)-1)
		nd = append(nd, pl.dead[:i]...)
		pl.dead = append(nd, pl.dead[i+1:]...)
		return
	}
	if n := len(pl.tail); n == 0 || pl.tail[n-1] < id {
		pl.tail = append(pl.tail, id)
	} else {
		i := searchIDs(pl.tail, id)
		nt := make([]uint64, 0, len(pl.tail)+1)
		nt = append(nt, pl.tail[:i]...)
		nt = append(nt, id)
		pl.tail = append(nt, pl.tail[i:]...)
	}
	pl.maybeSeal()
}

// maybeSeal compresses a grown tail into sealed blocks.  The tail is
// sealed as soon as it reaches sealChunk ids, merging with a partial
// final block when one exists — each id is re-encoded at most
// blockSize/sealChunk times, and steady-state tails stay under
// sealChunk ids instead of hoarding up to a block's worth of
// uncompressed uint64s per term.  A tail that overlaps sealed ranges
// (out-of-order ids) cannot be sealed without breaking the blocks'
// ascending invariant; it is given slack and then folded in by a full
// rebuild.
//
// netmarkvet:mutator
func (pl *postingList) maybeSeal() {
	if len(pl.tail) < sealChunk {
		return
	}
	if len(pl.blocks) > 0 && pl.tail[0] <= pl.blocks[len(pl.blocks)-1].maxID {
		if len(pl.tail) >= 4*blockSize {
			pl.compact()
		}
		return
	}
	// Merge a partial final block with the tail, then re-chunk.  The
	// blocks slice is replaced, not mutated: captured views keep reading
	// the old (immutable) blocks.  Tombstoned ids inside the re-encoded
	// block stay physically present, which the dead list relies on.
	keep := len(pl.blocks)
	ids := pl.tail
	if keep > 0 && pl.blocks[keep-1].n < blockSize {
		keep--
		last := pl.blocks[keep]
		merged := decodeBlock(last, make([]uint64, 0, last.n+len(ids)))
		ids = append(merged, ids...)
	}
	nb := make([]block, keep, keep+len(ids)/blockSize+1)
	copy(nb, pl.blocks[:keep])
	for len(ids) > 0 {
		n := len(ids)
		if n > blockSize {
			n = blockSize
		}
		nb = append(nb, encodeBlock(ids[:n]))
		ids = ids[n:]
	}
	pl.blocks = nb
	pl.tail = nil
}

// remove drops id, replacing (never editing) the published slices.
//
// netmarkvet:mutator
func (pl *postingList) remove(id uint64) {
	if pl.pos == nil {
		return
	}
	if _, ok := pl.pos[id]; !ok {
		return
	}
	delete(pl.pos, id)
	pl.live--
	if i := searchIDs(pl.tail, id); i < len(pl.tail) && pl.tail[i] == id {
		nt := make([]uint64, 0, len(pl.tail)-1)
		nt = append(nt, pl.tail[:i]...)
		nt = append(nt, pl.tail[i+1:]...)
		if len(nt) == 0 {
			nt = nil
		}
		pl.tail = nt
		// a tail removal shrinks live without adding a tombstone, so the
		// dead fraction can still cross the threshold
		pl.maybeCompact()
		return
	}
	// block-resident: tombstone now, reclaim space once tombstones reach
	// a quarter of the physical ids
	i := searchIDs(pl.dead, id)
	nd := make([]uint64, 0, len(pl.dead)+1)
	nd = append(nd, pl.dead[:i]...)
	nd = append(nd, id)
	pl.dead = append(nd, pl.dead[i:]...)
	pl.maybeCompact()
}

func (pl *postingList) maybeCompact() {
	if physical := pl.live + len(pl.dead); len(pl.dead) >= blockSize/4 && len(pl.dead)*4 >= physical {
		pl.compact()
	}
}

// compact rebuilds the list as freshly sealed blocks over exactly the
// live ids, dropping tombstones and folding in an overlapping tail.
// Captured views keep reading the replaced (immutable) storage.
//
// netmarkvet:mutator
func (pl *postingList) compact() {
	ids := materializeView(pl.view(), make([]uint64, 0, pl.live))
	pl.blocks, pl.tail = rebuildBlocks(ids)
	pl.dead = nil
}

func searchIDs(s []uint64, id uint64) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= id })
}

// Index is the inverted index.  Safe for concurrent use.
type Index struct {
	// mu protects the in-memory term btree; queries capture posting
	// views under it and release it before scoring, so it is never held
	// across anything blocking.  netmarkvet:hot
	mu sync.RWMutex
	// netmarkvet:snap netmarkvet:gen genCounter
	terms *btree.Tree[string, *postingList] // guarded by mu; term -> single posting list
	byID  map[uint64][]string               // guarded by mu; reverse map for Remove
	docs  int                               // guarded by mu
	// genCounter is the monotonic source for posting-list generations;
	// values are never reused, so a term that vanishes and reappears gets
	// a generation distinct from every one it ever had.  Guarded by mu.
	// netmarkvet:snap
	genCounter uint64
}

// New creates an empty index.
func New() *Index {
	return &Index{
		terms: btree.New[string, *postingList](strings.Compare),
		byID:  make(map[uint64][]string),
	}
}

// Add indexes text under id.  Calling Add twice with the same id extends
// the entry (positions continue from zero per call; use one call per id
// for phrase correctness).
func (ix *Index) Add(id uint64, text string) {
	ix.AddTokens(id, Tokenize(text))
}

// AddTokens indexes pre-tokenized text under id.  Tokenization is the
// CPU-bound half of Add; batch ingestion runs it in parse workers and
// hands the tokens here so only the posting-list insert runs under the
// index lock.
func (ix *Index) AddTokens(id uint64, toks []Token) {
	if len(toks) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.byID[id]; !seen {
		ix.docs++
	}
	for _, tok := range toks {
		pl := ix.getOrCreateLocked(tok.Term)
		if pl.pos == nil {
			pl.pos = make(map[uint64][]uint32)
		}
		if _, exists := pl.pos[id]; !exists {
			ix.byID[id] = append(ix.byID[id], tok.Term)
		}
		pl.add(id, tok.Pos)
		ix.genCounter++
		pl.gen = ix.genCounter
	}
}

func (ix *Index) getOrCreateLocked(term string) *postingList {
	if got := ix.terms.Get(term); len(got) > 0 {
		return got[0]
	}
	pl := &postingList{}
	ix.terms.Insert(term, pl)
	return pl
}

// Remove deletes every posting for id.
func (ix *Index) Remove(id uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	terms, ok := ix.byID[id]
	if !ok {
		return
	}
	for _, t := range terms {
		if got := ix.terms.Get(t); len(got) > 0 {
			got[0].remove(id)
			ix.genCounter++
			got[0].gen = ix.genCounter
			if got[0].live == 0 {
				ix.terms.DeleteKey(t)
			}
		}
	}
	delete(ix.byID, id)
	ix.docs--
}

// Docs returns the number of distinct indexed IDs.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs
}

// Terms returns the number of distinct terms.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.terms.Keys()
}

// DF returns the document frequency of term (how many IDs contain it).
func (ix *Index) DF(term string) int {
	term = normTerm(term)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if got := ix.terms.Get(term); len(got) > 0 {
		return got[0].live
	}
	return 0
}

func normTerm(t string) string {
	toks := Tokenize(t)
	if len(toks) == 0 {
		return ""
	}
	return toks[0].Term
}

// QueryGen folds the mutation generations of every term a query depends
// on into one fingerprint (FNV-1a over the per-term gens; absent terms
// contribute zero).  Two calls return the same value iff none of the
// query's posting lists changed in between, so result caches can key on
// it: a write that never touches the query's terms leaves cached results
// for the query reachable, while any posting insert or removal — a new
// document containing a term, a deleted document that contained one —
// makes every stale key unreachable.
func (ix *Index) QueryGen(query string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	ix.mu.RLock()
	for _, tok := range Tokenize(query) {
		var g uint64
		if got := ix.terms.Get(tok.Term); len(got) > 0 {
			g = got[0].gen
		}
		h = (h ^ g) * prime64
	}
	ix.mu.RUnlock()
	return h
}

// Lookup returns the sorted IDs containing term.
func (ix *Index) Lookup(term string) []uint64 {
	term = normTerm(term)
	if term == "" {
		return nil
	}
	ix.mu.RLock()
	var v view
	if got := ix.terms.Get(term); len(got) > 0 {
		v = got[0].view()
	}
	ix.mu.RUnlock()
	if v.live == 0 {
		return nil
	}
	return materializeView(v, make([]uint64, 0, v.live))
}

// And returns IDs containing every term.  The query string is tokenized,
// so And("space shuttle") intersects the two terms.
//
// Only list views (slice headers over immutable storage) are captured
// under the read lock; the skip-driven intersection runs outside it, so
// a long multi-term intersection over large lists never starves writers.
// The smallest list drives and the others are sought by block maxID —
// only their candidate blocks are decoded.  The result reflects some
// interleaving of concurrent writes — the same guarantee the traversal
// kernel already gives, since rows can vanish between the index probe
// and the heap fetch anyway.
func (ix *Index) And(query string) []uint64 {
	views := ix.andViews(query)
	if len(views) == 0 {
		return nil
	}
	if len(views) == 1 {
		return materializeView(views[0], make([]uint64, 0, views[0].live))
	}
	return intersectViews(views)
}

// Or returns IDs containing any term of the query.  The matching list
// views are captured under one short read-lock hold; the k-way merge
// over block iterators runs outside the lock and decodes each block
// exactly once.
func (ix *Index) Or(query string) []uint64 {
	return mergeViews(ix.orViews(query))
}

// Phrase returns IDs where the query terms occur adjacently in order.
func (ix *Index) Phrase(query string) []uint64 {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return ix.Lookup(toks[0].Term)
	}
	candidates := ix.And(query)
	if len(candidates) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	plists := make([]*postingList, len(toks))
	for i, tok := range toks {
		got := ix.terms.Get(tok.Term)
		if len(got) == 0 {
			return nil
		}
		plists[i] = got[0]
	}
	var res []uint64
	for _, id := range candidates {
		first := plists[0].pos[id]
		for _, start := range first {
			ok := true
			for i := 1; i < len(plists); i++ {
				if !containsPos(plists[i].pos[id], start+uint32(i)) {
					ok = false
					break
				}
			}
			if ok {
				res = append(res, id)
				break
			}
		}
	}
	return res
}

// Prefix returns IDs containing any term starting with p.  Matching
// list views are captured under the lock and k-way merged outside it,
// like Or.
func (ix *Index) Prefix(p string) []uint64 {
	return mergeViews(ix.prefixViews(p))
}

// Stats describes the posting-list storage: how many ids sit in sealed
// compressed blocks versus the uncompressed tails, how many tombstones
// are pending compaction, and what the whole id storage costs resident
// versus the flat 8-bytes-per-id layout it replaced.  Token positions
// (needed for phrase queries) are not part of the id storage and are
// not counted.
type Stats struct {
	Terms    int // distinct terms
	Postings int // live (term, id) pairs
	Blocks   int // sealed compressed blocks
	TailIDs  int // ids in uncompressed tails
	DeadIDs  int // tombstones awaiting compaction

	BlockBytes        int64   // encoded bytes across all blocks
	BytesResident     int64   // blocks + bookkeeping + tails + tombstones
	UncompressedBytes int64   // 8 bytes per physical id (the old layout)
	CompressionRatio  float64 // UncompressedBytes / BytesResident
}

// Stats walks the term tree and sums the posting-list storage counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Terms: ix.terms.Keys()}
	ix.terms.Ascend(func(_ string, pls []*postingList) bool {
		pl := pls[0]
		st.Postings += pl.live
		physical := len(pl.tail)
		for _, b := range pl.blocks {
			st.Blocks++
			st.BlockBytes += int64(len(b.data))
			physical += b.n
		}
		st.TailIDs += len(pl.tail)
		st.DeadIDs += len(pl.dead)
		st.UncompressedBytes += int64(8 * physical)
		return true
	})
	st.BytesResident = st.BlockBytes + int64(st.Blocks)*blockOverhead + int64(8*(st.TailIDs+st.DeadIDs))
	if st.BytesResident > 0 {
		st.CompressionRatio = float64(st.UncompressedBytes) / float64(st.BytesResident)
	}
	return st
}

func containsPos(ps []uint32, want uint32) bool {
	for _, p := range ps {
		if p == want {
			return true
		}
	}
	return false
}
