// Package textindex implements the inverted full-text index that fronts
// NETMARK's keyword search (§2.1.4 of the paper: "the keyword-based
// context and content search is performed by first querying the text
// index for the search key").  It substitutes for Oracle Text in the
// original system.
//
// The index maps lowercased terms to posting lists of document/node IDs
// with token positions, supporting boolean AND/OR, phrase and prefix
// queries.  IDs are opaque uint64s; the XML store uses packed physical
// RowIDs so a text hit leads directly to the page holding the node.
package textindex

import (
	"sort"
	"strings"
	"sync"
	"unicode"

	"netmark/internal/btree"
)

// Token is one term occurrence produced by the tokenizer.
type Token struct {
	Term string
	Pos  uint32
}

// Tokenize splits text into lowercase terms of letters and digits.
// Position counts tokens, not bytes, so phrase queries can check
// adjacency.
func Tokenize(text string) []Token {
	var out []Token
	var b strings.Builder
	pos := uint32(0)
	flush := func() {
		if b.Len() > 0 {
			out = append(out, Token{Term: b.String(), Pos: pos})
			pos++
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// postingList stores, for one term, the sorted IDs that contain it and
// per-ID token positions.
type postingList struct {
	ids []uint64
	pos map[uint64][]uint32
	// gen is the term's mutation generation: assigned from the index-wide
	// monotonic counter on every posting insert or removal.  Result caches
	// fold the gens of a query's terms into their keys, so a write that
	// never touches those terms leaves the cached results reachable —
	// per-document invalidation collapsed to term granularity.
	gen uint64
}

func (pl *postingList) add(id uint64, p uint32) {
	if pl.pos == nil {
		pl.pos = make(map[uint64][]uint32)
	}
	if _, seen := pl.pos[id]; !seen {
		// IDs almost always arrive in ascending order (sequential node
		// inserts); fall back to sorted insert otherwise.
		if n := len(pl.ids); n == 0 || pl.ids[n-1] < id {
			pl.ids = append(pl.ids, id)
		} else {
			i := sort.Search(n, func(i int) bool { return pl.ids[i] >= id })
			pl.ids = append(pl.ids, 0)
			copy(pl.ids[i+1:], pl.ids[i:])
			pl.ids[i] = id
		}
	}
	pl.pos[id] = append(pl.pos[id], p)
}

func (pl *postingList) remove(id uint64) {
	if pl.pos == nil {
		return
	}
	if _, ok := pl.pos[id]; !ok {
		return
	}
	delete(pl.pos, id)
	i := sort.Search(len(pl.ids), func(i int) bool { return pl.ids[i] >= id })
	if i < len(pl.ids) && pl.ids[i] == id {
		copy(pl.ids[i:], pl.ids[i+1:])
		pl.ids = pl.ids[:len(pl.ids)-1]
	}
}

// Index is the inverted index.  Safe for concurrent use.
type Index struct {
	mu    sync.RWMutex
	terms *btree.Tree[string, *postingList] // term -> single posting list
	byID  map[uint64][]string               // reverse map for Remove
	docs  int
	// genCounter is the monotonic source for posting-list generations;
	// values are never reused, so a term that vanishes and reappears gets
	// a generation distinct from every one it ever had.
	genCounter uint64
}

// New creates an empty index.
func New() *Index {
	return &Index{
		terms: btree.New[string, *postingList](strings.Compare),
		byID:  make(map[uint64][]string),
	}
}

// Add indexes text under id.  Calling Add twice with the same id extends
// the entry (positions continue from zero per call; use one call per id
// for phrase correctness).
func (ix *Index) Add(id uint64, text string) {
	ix.AddTokens(id, Tokenize(text))
}

// AddTokens indexes pre-tokenized text under id.  Tokenization is the
// CPU-bound half of Add; batch ingestion runs it in parse workers and
// hands the tokens here so only the posting-list insert runs under the
// index lock.
func (ix *Index) AddTokens(id uint64, toks []Token) {
	if len(toks) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.byID[id]; !seen {
		ix.docs++
	}
	for _, tok := range toks {
		pl := ix.getOrCreateLocked(tok.Term)
		if pl.pos == nil {
			pl.pos = make(map[uint64][]uint32)
		}
		if _, exists := pl.pos[id]; !exists {
			ix.byID[id] = append(ix.byID[id], tok.Term)
		}
		pl.add(id, tok.Pos)
		ix.genCounter++
		pl.gen = ix.genCounter
	}
}

func (ix *Index) getOrCreateLocked(term string) *postingList {
	if got := ix.terms.Get(term); len(got) > 0 {
		return got[0]
	}
	pl := &postingList{}
	ix.terms.Insert(term, pl)
	return pl
}

// Remove deletes every posting for id.
func (ix *Index) Remove(id uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	terms, ok := ix.byID[id]
	if !ok {
		return
	}
	for _, t := range terms {
		if got := ix.terms.Get(t); len(got) > 0 {
			got[0].remove(id)
			ix.genCounter++
			got[0].gen = ix.genCounter
			if len(got[0].ids) == 0 {
				ix.terms.DeleteKey(t)
			}
		}
	}
	delete(ix.byID, id)
	ix.docs--
}

// Docs returns the number of distinct indexed IDs.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs
}

// Terms returns the number of distinct terms.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.terms.Keys()
}

// DF returns the document frequency of term (how many IDs contain it).
func (ix *Index) DF(term string) int {
	term = normTerm(term)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if got := ix.terms.Get(term); len(got) > 0 {
		return len(got[0].ids)
	}
	return 0
}

func normTerm(t string) string {
	toks := Tokenize(t)
	if len(toks) == 0 {
		return ""
	}
	return toks[0].Term
}

// QueryGen folds the mutation generations of every term a query depends
// on into one fingerprint (FNV-1a over the per-term gens; absent terms
// contribute zero).  Two calls return the same value iff none of the
// query's posting lists changed in between, so result caches can key on
// it: a write that never touches the query's terms leaves cached results
// for the query reachable, while any posting insert or removal — a new
// document containing a term, a deleted document that contained one —
// makes every stale key unreachable.
func (ix *Index) QueryGen(query string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	ix.mu.RLock()
	for _, tok := range Tokenize(query) {
		var g uint64
		if got := ix.terms.Get(tok.Term); len(got) > 0 {
			g = got[0].gen
		}
		h = (h ^ g) * prime64
	}
	ix.mu.RUnlock()
	return h
}

// Lookup returns the sorted IDs containing term.
func (ix *Index) Lookup(term string) []uint64 {
	term = normTerm(term)
	if term == "" {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if got := ix.terms.Get(term); len(got) > 0 {
		return append([]uint64(nil), got[0].ids...)
	}
	return nil
}

// And returns IDs containing every term.  The query string is tokenized,
// so And("space shuttle") intersects the two terms.
//
// Only the smallest posting list is copied under the read lock; every
// further intersection re-acquires the lock briefly per list, so a long
// multi-term intersection over large lists never starves writers the way
// holding one lock across the whole merge did.  The result therefore
// reflects some interleaving of concurrent writes — the same guarantee
// the traversal kernel already gives, since rows can vanish between the
// index probe and the heap fetch anyway.
func (ix *Index) And(query string) []uint64 {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	ix.mu.RLock()
	pls := make([]*postingList, 0, len(toks))
	for _, tok := range toks {
		got := ix.terms.Get(tok.Term)
		if len(got) == 0 {
			ix.mu.RUnlock()
			return nil
		}
		pls = append(pls, got[0])
	}
	sort.Slice(pls, func(i, j int) bool { return len(pls[i].ids) < len(pls[j].ids) })
	res := append([]uint64(nil), pls[0].ids...)
	ix.mu.RUnlock()
	for _, pl := range pls[1:] {
		ix.mu.RLock()
		res = intersectInto(res, pl.ids)
		ix.mu.RUnlock()
		if len(res) == 0 {
			break
		}
	}
	return res
}

// Or returns IDs containing any term of the query.  The matching lists
// are copied under one short read-lock hold; the k-way merge runs outside
// the lock, replacing the old map+sort dedup (O(n) map inserts plus an
// O(n log n) sort) with a linear merge over the already-sorted lists.
func (ix *Index) Or(query string) []uint64 {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	lists := make([][]uint64, 0, len(toks))
	ix.mu.RLock()
	for _, tok := range toks {
		if got := ix.terms.Get(tok.Term); len(got) > 0 && len(got[0].ids) > 0 {
			lists = append(lists, append([]uint64(nil), got[0].ids...))
		}
	}
	ix.mu.RUnlock()
	return mergeSorted(lists)
}

// Phrase returns IDs where the query terms occur adjacently in order.
func (ix *Index) Phrase(query string) []uint64 {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return ix.Lookup(toks[0].Term)
	}
	candidates := ix.And(query)
	if len(candidates) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	plists := make([]*postingList, len(toks))
	for i, tok := range toks {
		got := ix.terms.Get(tok.Term)
		if len(got) == 0 {
			return nil
		}
		plists[i] = got[0]
	}
	var res []uint64
	for _, id := range candidates {
		first := plists[0].pos[id]
		for _, start := range first {
			ok := true
			for i := 1; i < len(plists); i++ {
				if !containsPos(plists[i].pos[id], start+uint32(i)) {
					ok = false
					break
				}
			}
			if ok {
				res = append(res, id)
				break
			}
		}
	}
	return res
}

// Prefix returns IDs containing any term starting with p.  Matching
// lists are copied under the lock and k-way merged outside it, like Or.
func (ix *Index) Prefix(p string) []uint64 {
	p = strings.ToLower(strings.TrimSpace(p))
	if p == "" {
		return nil
	}
	var lists [][]uint64
	ix.mu.RLock()
	ix.terms.AscendPrefixFunc(p,
		func(k string) bool { return strings.HasPrefix(k, p) },
		func(_ string, vals []*postingList) bool {
			for _, pl := range vals {
				if len(pl.ids) > 0 {
					lists = append(lists, append([]uint64(nil), pl.ids...))
				}
			}
			return true
		})
	ix.mu.RUnlock()
	return mergeSorted(lists)
}

// intersectInto intersects res (privately owned by the caller) with the
// sorted list l, writing the survivors into res's prefix.  When l is much
// longer than res it gallops — a binary search per survivor candidate —
// instead of scanning l linearly, so intersecting a rare term against a
// stop-word-sized list costs O(|res| log |l|).
func intersectInto(res, l []uint64) []uint64 {
	out := res[:0]
	if len(res) == 0 || len(l) == 0 {
		return out
	}
	if len(l) >= 8*len(res) {
		j := 0
		for _, x := range res {
			j += sort.Search(len(l)-j, func(k int) bool { return l[j+k] >= x })
			if j >= len(l) {
				break
			}
			if l[j] == x {
				out = append(out, x)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(res) && j < len(l) {
		switch {
		case res[i] < l[j]:
			i++
		case res[i] > l[j]:
			j++
		default:
			out = append(out, res[i])
			i++
			j++
		}
	}
	return out
}

// mergeSorted merges sorted ID lists into one sorted, deduplicated
// list by pairwise rounds — O(total log k), with each round a linear
// two-way merge — so a prefix matching thousands of terms never pays a
// per-element scan over every cursor.  The lists are owned by the
// caller (already copied out of the index).
func mergeSorted(lists [][]uint64) []uint64 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	for len(lists) > 1 {
		merged := lists[:0]
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				merged = append(merged, lists[i])
				break
			}
			merged = append(merged, mergeTwo(lists[i], lists[i+1]))
		}
		lists = merged
	}
	return lists[0]
}

// mergeTwo merges two sorted, deduplicated lists, dropping duplicates
// across them.
func mergeTwo(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func containsPos(ps []uint32, want uint32) bool {
	for _, p := range ps {
		if p == want {
			return true
		}
	}
	return false
}
