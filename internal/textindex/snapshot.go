package textindex

// Posting-list (de)serialisation.  The index is derived state — the heap
// is the durable truth — but rebuilding it on every open costs a full
// corpus scan, so the XML store checkpoints it inside the engine's
// checkpoint critical section and reloads it on open when the snapshot's
// stamps prove the heap has not moved (see xmlstore's snapshot).
//
// Encoding: terms in tree (sorted) order; IDs are ascending within a
// posting list, so they delta-varint-pack well (IDs are packed physical
// RowIDs, which cluster by page).  Token positions are stored verbatim
// per ID — phrase queries need them and they are not guaranteed sorted
// across multiple Add calls for the same ID.

import (
	"encoding/binary"
	"fmt"
	"strings"

	"netmark/internal/btree"
)

// AppendSnapshot serialises the index onto buf and returns the extended
// slice.  The encoding is self-delimiting: LoadSnapshot reports how many
// bytes it consumed, so callers can embed the index inside a larger
// snapshot payload.
func (ix *Index) AppendSnapshot(buf []byte) []byte {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	buf = binary.AppendUvarint(buf, ix.genCounter)
	buf = binary.AppendUvarint(buf, uint64(ix.terms.Keys()))
	ix.terms.Ascend(func(term string, pls []*postingList) bool {
		pl := pls[0]
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, pl.gen)
		buf = binary.AppendUvarint(buf, uint64(len(pl.ids)))
		prev := uint64(0)
		for _, id := range pl.ids {
			buf = binary.AppendUvarint(buf, id-prev)
			prev = id
		}
		for _, id := range pl.ids {
			pos := pl.pos[id]
			buf = binary.AppendUvarint(buf, uint64(len(pos)))
			for _, p := range pos {
				buf = binary.AppendUvarint(buf, uint64(p))
			}
		}
		return true
	})
	return buf
}

// LoadSnapshot decodes an index serialised by AppendSnapshot from the
// front of data, returning the rebuilt index and the number of bytes
// consumed.
func LoadSnapshot(data []byte) (*Index, int, error) {
	off := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("textindex: truncated snapshot at byte %d", off)
		}
		off += n
		return v, nil
	}
	ix := New()
	var err error
	if ix.genCounter, err = uv(); err != nil {
		return nil, 0, err
	}
	nTerms, err := uv()
	if err != nil {
		return nil, 0, err
	}
	// Terms were serialised in tree order: bulk-build the term tree
	// instead of paying a descent per insert.
	tb := btree.NewBuilder[string, *postingList](strings.Compare, btree.DefaultOrder)
	for t := uint64(0); t < nTerms; t++ {
		tlen, err := uv()
		if err != nil {
			return nil, 0, err
		}
		if off+int(tlen) > len(data) {
			return nil, 0, fmt.Errorf("textindex: truncated term at byte %d", off)
		}
		term := string(data[off : off+int(tlen)])
		off += int(tlen)
		pl := &postingList{}
		if pl.gen, err = uv(); err != nil {
			return nil, 0, err
		}
		nids, err := uv()
		if err != nil {
			return nil, 0, err
		}
		if nids > uint64(len(data)) { // every id costs >= 1 byte
			return nil, 0, fmt.Errorf("textindex: implausible posting count %d", nids)
		}
		pl.ids = make([]uint64, nids)
		pl.pos = make(map[uint64][]uint32, nids)
		id := uint64(0)
		for i := range pl.ids {
			d, err := uv()
			if err != nil {
				return nil, 0, err
			}
			id += d
			pl.ids[i] = id
		}
		// Per-ID position slices are carved from shared backing arrays:
		// one allocation per chunk instead of one per (term, id) pair.
		var backing []uint32
		for _, id := range pl.ids {
			npos, err := uv()
			if err != nil {
				return nil, 0, err
			}
			if uint64(cap(backing)-len(backing)) < npos {
				n := 1024
				if int(npos) > n {
					n = int(npos)
				}
				backing = make([]uint32, 0, n)
			}
			start := len(backing)
			backing = backing[:start+int(npos)]
			pos := backing[start : start+int(npos) : start+int(npos)]
			for i := range pos {
				p, err := uv()
				if err != nil {
					return nil, 0, err
				}
				pos[i] = uint32(p)
			}
			pl.pos[id] = pos
			ix.byID[id] = append(ix.byID[id], term)
		}
		tb.Append(term, []*postingList{pl})
	}
	ix.terms = tb.Tree()
	ix.docs = len(ix.byID)
	return ix, off, nil
}
