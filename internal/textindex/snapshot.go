package textindex

// Posting-list (de)serialisation.  The index is derived state — the heap
// is the durable truth — but rebuilding it on every open costs a full
// corpus scan, so the XML store checkpoints it inside the engine's
// checkpoint critical section and reloads it on open when the snapshot's
// stamps prove the heap has not moved (see xmlstore's snapshot).
//
// The current (v2) encoding shares one codec with the in-memory layout:
// sealed blocks are written verbatim (their bytes are already
// delta+varint packed), followed by the uncompressed tail and tombstone
// lists as delta varints, so a snapshot save is mostly a copy and a
// load rebuilds each posting list without re-encoding anything.  Token
// positions are stored verbatim per live id — phrase queries need them
// and they are not guaranteed sorted across multiple Add calls for the
// same ID.
//
// The legacy v1 encoding (flat delta-varint id lists, from before
// posting lists were block-compressed) is not decoded: v1 files also
// predate the current tokenizer contract, so the store treats them as
// version skew and falls back to the scan rebuild, which retokenizes
// every document (see xmlstore's snapshot version check).

import (
	"encoding/binary"
	"fmt"
	"strings"

	"netmark/internal/btree"
)

// AppendSnapshot serialises the index onto buf in the v2 (block) format
// and returns the extended slice.  The encoding is self-delimiting:
// LoadSnapshot reports how many bytes it consumed, so callers can embed
// the index inside a larger snapshot payload.
//
// netmarkvet:snap-encode
func (ix *Index) AppendSnapshot(buf []byte) []byte {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	buf = binary.AppendUvarint(buf, ix.genCounter)
	buf = binary.AppendUvarint(buf, uint64(ix.terms.Keys()))
	ix.terms.Ascend(func(term string, pls []*postingList) bool {
		pl := pls[0]
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, pl.gen)
		buf = binary.AppendUvarint(buf, uint64(len(pl.blocks)))
		for _, b := range pl.blocks {
			buf = binary.AppendUvarint(buf, uint64(b.n))
			buf = binary.AppendUvarint(buf, b.maxID)
			buf = binary.AppendUvarint(buf, uint64(len(b.data)))
			buf = append(buf, b.data...)
		}
		buf = appendDeltaIDs(buf, pl.tail)
		buf = appendDeltaIDs(buf, pl.dead)
		// positions keyed by live id, in ascending id order
		for it := newIter(pl.view()); ; it.advance() {
			id, ok := it.head()
			if !ok {
				break
			}
			pos := pl.pos[id]
			buf = binary.AppendUvarint(buf, uint64(len(pos)))
			for _, p := range pos {
				buf = binary.AppendUvarint(buf, uint64(p))
			}
		}
		return true
	})
	return buf
}

func appendDeltaIDs(buf []byte, ids []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := uint64(0)
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id-prev)
		prev = id
	}
	return buf
}

// LoadSnapshot decodes a v2 index serialised by AppendSnapshot from the
// front of data, returning the rebuilt index and the number of bytes
// consumed.  Block payloads are copied into shared arenas (not aliased)
// so the caller's snapshot buffer — which also carries positions and
// every other derived structure — can be released to the GC, and every
// block is validated before anything trusts its framing: decodeBlock
// has no bounds checks and seekGE trusts maxID, so a corrupt block that
// slipped past the file CRC must surface here as an error (the store
// falls back to the scan rebuild), never as a panic at Open.
//
// netmarkvet:snap-decode
// netmarkvet:ignore lockcheck — builds a fresh index nothing else can
// reach until it returns
func LoadSnapshot(data []byte) (*Index, int, error) {
	off := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("textindex: truncated snapshot at byte %d", off)
		}
		off += n
		return v, nil
	}
	readDeltaIDs := func() ([]uint64, error) {
		n, err := uv()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) { // every id costs >= 1 byte
			return nil, fmt.Errorf("textindex: implausible id count %d", n)
		}
		if n == 0 {
			return nil, nil
		}
		ids := make([]uint64, n)
		id := uint64(0)
		for i := range ids {
			d, err := uv()
			if err != nil {
				return nil, err
			}
			if i > 0 && d == 0 {
				return nil, fmt.Errorf("textindex: id list not strictly ascending at byte %d", off)
			}
			id += d
			ids[i] = id
		}
		return ids, nil
	}
	ix := New()
	var err error
	if ix.genCounter, err = uv(); err != nil {
		return nil, 0, err
	}
	nTerms, err := uv()
	if err != nil {
		return nil, 0, err
	}
	// Terms were serialised in tree order: bulk-build the term tree
	// instead of paying a descent per insert.
	tb := btree.NewBuilder[string, *postingList](strings.Compare, btree.DefaultOrder)
	var arena []byte // shared backing for copied block payloads
	for t := uint64(0); t < nTerms; t++ {
		tlen, err := uv()
		if err != nil {
			return nil, 0, err
		}
		// compare in uint64: int(tlen) of a huge varint wraps negative
		// and would bypass the bound
		if tlen > uint64(len(data)-off) {
			return nil, 0, fmt.Errorf("textindex: truncated term at byte %d", off)
		}
		term := string(data[off : off+int(tlen)])
		off += int(tlen)
		pl := &postingList{}
		if pl.gen, err = uv(); err != nil {
			return nil, 0, err
		}
		nBlocks, err := uv()
		if err != nil {
			return nil, 0, err
		}
		if nBlocks > uint64(len(data)) {
			return nil, 0, fmt.Errorf("textindex: implausible block count %d", nBlocks)
		}
		physical := 0
		if nBlocks > 0 {
			prevMax := uint64(0)
			pl.blocks = make([]block, nBlocks)
			for i := range pl.blocks {
				n, err := uv()
				if err != nil {
					return nil, 0, err
				}
				maxID, err := uv()
				if err != nil {
					return nil, 0, err
				}
				dlen, err := uv()
				if err != nil {
					return nil, 0, err
				}
				// every encoded id costs at least one byte, so n > dlen
				// cannot describe a real block; bounds compare in uint64
				// because int(dlen) of a huge varint wraps negative
				if n == 0 || dlen == 0 || dlen > uint64(len(data)-off) || n > dlen {
					return nil, 0, fmt.Errorf("textindex: corrupt block header at byte %d", off)
				}
				if cap(arena)-len(arena) < int(dlen) {
					c := 1 << 16
					if int(dlen) > c {
						c = int(dlen)
					}
					arena = make([]byte, 0, c)
				}
				start := len(arena)
				arena = append(arena, data[off:off+int(dlen)]...)
				b := block{
					maxID: maxID,
					n:     int(n),
					data:  arena[start : start+int(dlen) : start+int(dlen)],
				}
				if err := checkBlock(b); err != nil {
					return nil, 0, err
				}
				// seekGE skips blocks by maxID, which needs the blocks
				// themselves to be mutually ascending: each block's first
				// id (its leading delta from zero) must follow the
				// previous block's maxID.
				first, _ := binary.Uvarint(b.data)
				if i > 0 && first <= prevMax {
					return nil, 0, fmt.Errorf("textindex: blocks out of order for %q", term)
				}
				prevMax = b.maxID
				pl.blocks[i] = b
				off += int(dlen)
				physical += int(n)
			}
		}
		if pl.tail, err = readDeltaIDs(); err != nil {
			return nil, 0, err
		}
		if pl.dead, err = readDeltaIDs(); err != nil {
			return nil, 0, err
		}
		physical += len(pl.tail)
		pl.live = physical - len(pl.dead)
		if pl.live < 0 {
			return nil, 0, fmt.Errorf("textindex: more tombstones than ids for %q", term)
		}
		pl.pos = make(map[uint64][]uint32, pl.live)
		// Per-id position slices are carved from shared backing arrays:
		// one allocation per chunk instead of one per (term, id) pair.
		var backing []uint32
		for it := newIter(pl.view()); ; it.advance() {
			id, ok := it.head()
			if !ok {
				break
			}
			npos, err := uv()
			if err != nil {
				return nil, 0, err
			}
			if npos > uint64(len(data)) {
				return nil, 0, fmt.Errorf("textindex: implausible position count %d", npos)
			}
			if uint64(cap(backing)-len(backing)) < npos {
				n := 1024
				if int(npos) > n {
					n = int(npos)
				}
				backing = make([]uint32, 0, n)
			}
			start := len(backing)
			backing = backing[:start+int(npos)]
			pos := backing[start : start+int(npos) : start+int(npos)]
			for i := range pos {
				p, err := uv()
				if err != nil {
					return nil, 0, err
				}
				pos[i] = uint32(p)
			}
			pl.pos[id] = pos
			ix.byID[id] = append(ix.byID[id], term)
		}
		tb.Append(term, []*postingList{pl})
	}
	ix.terms = tb.Tree()
	ix.docs = len(ix.byID)
	return ix, off, nil
}
