// Package benchfmt holds the parsed representation of `go test -bench`
// output shared by cmd/benchjson (which records it as JSON) and
// cmd/benchdiff (which compares two recordings and flags regressions).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole recorded document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw holds the verbatim benchmark lines; feed them to benchstat.
	Raw []string `json:"raw"`
}

// ParseLine parses one result line:
//
//	BenchmarkX/case-8   100   123 ns/op   9 hits   456 B/op   7 allocs/op
func ParseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// ReadFile loads a report recorded by cmd/benchjson.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
