package xmlstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"netmark/internal/docform"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// flatNode is the intermediate record the tree flattener emits before the
// two-pass insert.
type flatNode struct {
	nodeID  uint64
	class   sgml.NodeClass
	name    string
	data    string
	attrs   string
	ordinal int

	parent, prev, next, child int // indexes into the flat slice; -1 = none
	rid                       ordbms.RowID
}

// preparedDoc is a document that has been through the CPU-bound half of
// ingestion — flattening, row construction, record encoding, text
// tokenization — and is ready for its ordered write into the store.  The
// batch pipeline builds preparedDocs in parallel workers; the single
// writer goroutine consumes them.
type preparedDoc struct {
	meta  docform.Meta
	docID uint64
	flat  []flatNode
	rows  []ordbms.Row // pass-1 rows (links zeroed)
	recs  [][]byte     // pre-encoded pass-1 records
	offs  [][]int      // per-record column payload offsets (for link patches)
	toks  [][]textindex.Token
	// governs[i] is the flat index of node i's governing CONTEXT (-1 =
	// none), precomputed in the parse workers so the derived
	// node→context index is a batch of map inserts, not a walk.
	governs []int32
}

// prepareDocument runs every part of StoreDocument that does not touch
// the tables: it picks the root element, flattens the tree, reserves the
// node-ID block, builds and encodes the pass-1 rows, and pre-tokenizes
// TEXT node data for the content index.  It is safe to call from many
// goroutines concurrently; only the ID reservation takes a lock.
func (s *Store) prepareDocument(meta docform.Meta, tree *sgml.Node, cfg *sgml.Config, docID uint64) (*preparedDoc, error) {
	if tree == nil {
		return nil, fmt.Errorf("xmlstore: nil document tree")
	}
	if cfg == nil {
		cfg = sgml.XMLConfig()
	}
	root := tree
	if root.Kind == sgml.DocumentNode {
		// Skip prolog; store from the root element.
		for c := root.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == sgml.ElementNode {
				root = c
				break
			}
		}
		if root.Kind == sgml.DocumentNode {
			return nil, fmt.Errorf("xmlstore: document %q has no root element", meta.FileName)
		}
	}

	flat := flattenTree(root, cfg)
	if len(flat) == 0 {
		return nil, fmt.Errorf("xmlstore: document %q flattened to no nodes", meta.FileName)
	}
	base := s.reserveNodeIDs(len(flat))
	for i := range flat {
		flat[i].nodeID = base + uint64(i)
	}

	p := &preparedDoc{
		meta:  meta,
		docID: docID,
		flat:  flat,
		rows:  make([]ordbms.Row, len(flat)),
		recs:  make([][]byte, len(flat)),
		offs:  make([][]int, len(flat)),
		toks:  make([][]textindex.Token, len(flat)),
	}
	for i := range flat {
		fn := &flat[i]
		row := ordbms.Row{
			ordbms.I(int64(fn.nodeID)),
			ordbms.I(int64(docID)),
			ordbms.I(int64(fn.class)),
			ordbms.S(fn.name),
			ordbms.S(fn.data),
			ordbms.I(int64(fn.ordinal)),
			ordbms.I(parentNodeID(flat, fn)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.S(fn.attrs),
		}
		p.rows[i] = row
		p.recs[i], p.offs[i] = ordbms.EncodeRowOffsets(row)
		if fn.class == sgml.ClassText {
			p.toks[i] = textindex.Tokenize(fn.data)
		}
	}
	p.governs = governingContexts(flat)
	return p, nil
}

// governingContexts resolves, for every flattened node, the flat index of
// its governing CONTEXT (-1 = none) using the memoized recurrence
// equivalent to the §2.1.4 pointer-chasing walk:
//
//	govern(n) = prev != nil ? (prev is CONTEXT ? prev : govern(prev))
//	          : parent != nil ? (parent is CONTEXT ? parent : govern(parent))
//	          : none
//
// The resolution is iterative (an explicit chain instead of recursion) so
// documents with ten-thousand-sibling runs cannot blow the stack, and
// memoized so the whole document costs O(nodes).
func governingContexts(flat []flatNode) []int32 {
	const unresolved = -2
	out := make([]int32, len(flat))
	for i := range out {
		out[i] = unresolved
	}
	var chain []int32
	for i := range flat {
		if out[i] != unresolved {
			continue
		}
		chain = chain[:0]
		j := int32(i)
		for {
			if out[j] != unresolved {
				break
			}
			pred := flat[j].prev
			if pred < 0 {
				pred = flat[j].parent
			}
			switch {
			case pred < 0:
				out[j] = -1
			case flat[pred].class == sgml.ClassContext:
				out[j] = int32(pred)
			case out[pred] != unresolved:
				out[j] = out[pred]
			default:
				chain = append(chain, j)
				j = int32(pred)
				continue
			}
			break
		}
		for k := len(chain) - 1; k >= 0; k-- {
			jj := chain[k]
			pred := flat[jj].prev
			if pred < 0 {
				pred = flat[jj].parent
			}
			out[jj] = out[pred]
		}
	}
	return out
}

// storePrepared performs the ordered write of a prepared document: the
// two-pass insert into the XML table and the DOC row.  Pass two patches
// the four 8-byte link payloads directly in the cached encodings and
// updates the records in place, so the writer never re-reads or
// re-encodes what pass one just wrote.
func (s *Store) storePrepared(p *preparedDoc) (err error) {
	// On success the generation bump belongs to indexPrepared — bumping
	// here, before the derived indexes hold the document, would let a
	// racing query cache an index-incomplete result under the *final*
	// generation, pinning the stale answer until an unrelated write.  A
	// failed pass gets no indexPrepared call, so rows already inserted or
	// half-patched invalidate here.
	defer func() {
		if err != nil {
			s.bumpGeneration()
			// The document never became queryable, so no cached result
			// can have stamped it; make sure no gen entry lingers.
			s.pruneDocGeneration(p.docID)
		}
	}()
	flat := p.flat

	// Pass 1: insert with null links.
	for i := range flat {
		rid, err := s.xml.InsertPrepared(p.rows[i], p.recs[i])
		if err != nil {
			return fmt.Errorf("xmlstore: insert node %d of %q: %w", flat[i].nodeID, p.meta.FileName, err)
		}
		flat[i].rid = rid
	}

	// Pass 2: patch physical links byte-for-byte (fixed-width payloads,
	// unindexed columns — the record layout cannot change).  Each patch
	// also fences the node cache: a concurrent query may have fetched and
	// cached the pass-1 row (links still zeroed) between the two passes.
	for i := range flat {
		fn := &flat[i]
		rec, offs := p.recs[i], p.offs[i]
		putRID(rec[offs[xmlColParentRowID]:], linkRID(flat, fn.parent))
		putRID(rec[offs[xmlColPrevRowID]:], linkRID(flat, fn.prev))
		putRID(rec[offs[xmlColNextRowID]:], linkRID(flat, fn.next))
		putRID(rec[offs[xmlColChildRowID]:], linkRID(flat, fn.child))
		if err := s.xml.UpdateInPlace(fn.rid, rec); err != nil {
			return fmt.Errorf("xmlstore: patch links of node %d: %w", fn.nodeID, err)
		}
		if c := s.nodes; c != nil {
			c.invalidate(fn.rid)
		}
	}

	// DOC row last: it carries the root RowID.
	docRow := ordbms.Row{
		ordbms.I(int64(p.docID)),
		ordbms.S(p.meta.FileName),
		ordbms.I(time.Now().Unix()),
		ordbms.I(int64(p.meta.Size)),
		ordbms.S(p.meta.Format),
		ordbms.S(p.meta.Title),
		ordbms.B(ridToBytes(flat[0].rid)),
		ordbms.I(int64(len(flat))),
	}
	if _, err := s.doc.Insert(docRow); err != nil {
		return fmt.Errorf("xmlstore: insert DOC row for %q: %w", p.meta.FileName, err)
	}

	s.statsMu.Lock()
	s.docsIngested++
	s.nodesInserted += uint64(len(flat))
	s.statsMu.Unlock()
	return nil
}

// indexPrepared feeds a stored document's TEXT and CONTEXT nodes into
// the derived indexes.  The indexes carry their own locks, so this stage
// runs concurrently with the writer storing the next document.
func (s *Store) indexPrepared(p *preparedDoc) {
	// Governing-context entries land first: a text hit can only be found
	// once its posting exists, and by then its ctxIdx entry must answer.
	s.ctxIdxMu.Lock()
	for i := range p.flat {
		fn := &p.flat[i]
		if fn.class != sgml.ClassText {
			continue
		}
		if g := p.governs[i]; g >= 0 {
			s.ctxIdx[fn.rid] = p.flat[g].rid
		} else {
			s.ctxIdx[fn.rid] = ordbms.ZeroRowID
		}
	}
	s.ctxIdxMu.Unlock()
	for i := range p.flat {
		fn := &p.flat[i]
		switch fn.class {
		case sgml.ClassText:
			s.content.AddTokens(fn.rid.Uint64(), p.toks[i])
		case sgml.ClassContext:
			s.addContextKey(fn.data, fn.rid)
		}
	}
	// The ingest's generation bumps: only now are tables AND derived
	// indexes consistent, so only now may a query snapshot the new
	// generations and cache what it sees.
	s.bumpGeneration()
	s.bumpDocGeneration(p.docID)
}

// putRID writes a RowID's 8-byte packed form into b — the single
// definition of the link-column layout (ridToBytes and bytesToRID are
// its inverses/wrappers).
func putRID(b []byte, rid ordbms.RowID) {
	v := rid.Uint64()
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// reserveDocIDs allocates a contiguous block of document IDs and returns
// the first.  The batch pipeline reserves one block per batch up front so
// document IDs always follow submission order.
func (s *Store) reserveDocIDs(n int) uint64 {
	s.mu.Lock()
	base := s.nextDocID
	s.nextDocID += uint64(n)
	s.mu.Unlock()
	return base
}

// reserveNodeIDs allocates a contiguous block of node IDs.
func (s *Store) reserveNodeIDs(n int) uint64 {
	s.mu.Lock()
	base := s.nextNodeID
	s.nextNodeID += uint64(n)
	s.mu.Unlock()
	return base
}

// StoreDocument decomposes a parsed document tree into the universal XML
// table and records its metadata in DOC.  The classification config maps
// element names to the five node classes; sgml.XMLConfig() is right for
// upmarked documents.
//
// The insert is two-pass: pass one writes every node with null links and
// collects the physical RowIDs the heap assigned; pass two patches the
// parent/sibling/child link columns in place (links are fixed-width, so
// rows never move and RowIDs stay valid).  StoreBatch runs the same
// pipeline with the preparation fanned across workers.
func (s *Store) StoreDocument(meta docform.Meta, tree *sgml.Node, cfg *sgml.Config) (uint64, error) {
	// Fail fast while degraded: no point parsing and flattening a
	// document the engine will refuse to persist.
	if err := s.db.Writable(); err != nil {
		return 0, err
	}
	p, err := s.prepareDocument(meta, tree, cfg, s.reserveDocIDs(1))
	if err != nil {
		return 0, err
	}
	// The checkpoint barrier spans table writes and derived indexing, so
	// a snapshot never serialises the gap between them.
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if err := s.storePrepared(p); err != nil {
		return 0, err
	}
	s.indexPrepared(p)
	return p.docID, nil
}

// StoreRaw converts raw file bytes (any supported format) and stores the
// result — the full NETMARK ingest path in one call.
func (s *Store) StoreRaw(name string, data []byte) (uint64, error) {
	tree, meta, err := docform.Convert(name, data)
	if err != nil {
		return 0, err
	}
	return s.StoreDocument(meta, tree, sgml.XMLConfig())
}

func parentNodeID(flat []flatNode, fn *flatNode) int64 {
	if fn.parent < 0 {
		return 0
	}
	return int64(flat[fn.parent].nodeID)
}

func linkRID(flat []flatNode, idx int) ordbms.RowID {
	if idx < 0 {
		return ordbms.ZeroRowID
	}
	return flat[idx].rid
}

// flattenTree walks the tree in document order, recording structural
// relationships as slice indexes.  Node IDs are assigned afterwards from
// a reserved block, so the walk itself takes no locks and can run in
// parallel preparation workers.
func flattenTree(root *sgml.Node, cfg *sgml.Config) []flatNode {
	var flat []flatNode
	var walk func(n *sgml.Node, parent int) int
	walk = func(n *sgml.Node, parent int) int {
		if n.Kind != sgml.ElementNode && n.Kind != sgml.TextNode {
			return -1 // comments, PIs and doctypes are not stored
		}
		idx := len(flat)
		class := cfg.Classify(n)
		fn := flatNode{
			class:  class,
			parent: parent,
			prev:   -1, next: -1, child: -1,
		}
		switch n.Kind {
		case sgml.ElementNode:
			fn.name = n.Name
			fn.attrs = encodeAttrs(n.Attrs)
			if class == sgml.ClassContext {
				// Denormalise the heading text onto the CONTEXT node so
				// the context index and the traversal kernel never need
				// to descend to find the heading.
				fn.data = n.Text()
			}
		case sgml.TextNode:
			fn.name = "#text"
			fn.data = n.Data
		}
		flat = append(flat, fn)

		prev := -1
		ord := 0
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			ci := walk(c, idx)
			if ci < 0 {
				continue
			}
			flat[ci].ordinal = ord
			ord++
			if prev >= 0 {
				flat[prev].next = ci
				flat[ci].prev = prev
			} else {
				flat[idx].child = ci
			}
			prev = ci
		}
		return idx
	}
	walk(root, -1)
	return flat
}

// encodeAttrs packs attributes as space-separated name=quoted pairs.
func encodeAttrs(attrs []sgml.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Name + "=" + strconv.Quote(a.Value)
	}
	return strings.Join(parts, " ")
}

// decodeAttrs reverses encodeAttrs.
func decodeAttrs(s string) []sgml.Attr {
	if s == "" {
		return nil
	}
	var out []sgml.Attr
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			break
		}
		name := s[:eq]
		rest := s[eq+1:]
		// Find the closing quote of the Go-quoted string.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			break
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			break
		}
		out = append(out, sgml.Attr{Name: name, Value: val})
		s = strings.TrimPrefix(rest[end+1:], " ")
	}
	return out
}

// DeleteDocument removes a document: its DOC row, all its XML rows, and
// their derived index entries (text postings, context keys, governing-
// context map, cached node decodes).
func (s *Store) DeleteDocument(docID uint64) error {
	// Degraded mode rejects deletes up front: the multi-step teardown
	// must not start if the engine will refuse its row deletes halfway.
	if err := s.db.Writable(); err != nil {
		return err
	}
	// The checkpoint barrier keeps the multi-step teardown (DOC row, XML
	// rows, postings, context keys, ctxIdx entries) out of any snapshot
	// serialisation; a snapshot sees the document fully present or fully
	// gone from the derived indexes it persists.
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	info, err := s.Document(docID)
	if err != nil {
		return err
	}
	// Past this point rows start disappearing; invalidate cached results
	// whether or not the delete completes.  The doc generation is pruned
	// rather than bumped: zero mismatches every stamp taken while the
	// document was live, and dropping the entry keeps the map from
	// growing with document churn.
	defer s.bumpGeneration()
	defer s.pruneDocGeneration(docID)
	rids, err := s.xml.Lookup("docid", ordbms.I(int64(docID)))
	if err != nil {
		return err
	}
	var textRids []ordbms.RowID
	for _, rid := range rids {
		row, err := s.xml.Fetch(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return err
		}
		switch sgml.NodeClass(row[xmlColNodeType].Int) {
		case sgml.ClassText:
			s.content.Remove(rid.Uint64())
			textRids = append(textRids, rid)
		case sgml.ClassContext:
			s.removeContextKey(row[xmlColNodeData].Str, rid)
		}
		if err := s.xml.Delete(rid); err != nil && err != ordbms.ErrRecordDeleted {
			return err
		}
		// Drop the cached decode after the row is gone, so a racing fill
		// (which snapshotted its token before this invalidation) can never
		// resurrect the record — essential once the heap reuses the slot.
		if c := s.nodes; c != nil {
			c.invalidate(rid)
		}
	}
	if len(textRids) > 0 {
		s.ctxIdxMu.Lock()
		for _, rid := range textRids {
			delete(s.ctxIdx, rid)
		}
		s.ctxIdxMu.Unlock()
	}
	return s.doc.Delete(info.RowID)
}

// Reconstruct rebuilds the full document tree for a document by chasing
// physical links from the root node (used by HTTP GET and the examples).
func (s *Store) Reconstruct(docID uint64) (*sgml.Node, error) {
	info, err := s.Document(docID)
	if err != nil {
		return nil, err
	}
	return s.reconstructFrom(info.RootRowID)
}

func (s *Store) reconstructFrom(rid ordbms.RowID) (*sgml.Node, error) {
	n, err := s.FetchNode(rid)
	if err != nil {
		return nil, err
	}
	return s.buildSubtree(n)
}

func (s *Store) buildSubtree(n *Node) (*sgml.Node, error) {
	var out *sgml.Node
	if n.Name == "#text" {
		out = sgml.NewText(n.Data)
	} else {
		out = sgml.NewElement(n.Name, n.Attrs...)
	}
	child, err := s.FirstChild(n)
	if err != nil {
		return nil, err
	}
	for child != nil {
		sub, err := s.buildSubtree(child)
		if err != nil {
			return nil, err
		}
		out.AppendChild(sub)
		child, err = s.NextSibling(child)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
