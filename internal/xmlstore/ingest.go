package xmlstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"netmark/internal/docform"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
)

// flatNode is the intermediate record the tree flattener emits before the
// two-pass insert.
type flatNode struct {
	nodeID  uint64
	class   sgml.NodeClass
	name    string
	data    string
	attrs   string
	ordinal int

	parent, prev, next, child int // indexes into the flat slice; -1 = none
	rid                       ordbms.RowID
}

// StoreDocument decomposes a parsed document tree into the universal XML
// table and records its metadata in DOC.  The classification config maps
// element names to the five node classes; sgml.XMLConfig() is right for
// upmarked documents.
//
// The insert is two-pass: pass one writes every node with null links and
// collects the physical RowIDs the heap assigned; pass two patches the
// parent/sibling/child link columns in place (links are fixed-width, so
// rows never move and RowIDs stay valid).
func (s *Store) StoreDocument(meta docform.Meta, tree *sgml.Node, cfg *sgml.Config) (uint64, error) {
	if tree == nil {
		return 0, fmt.Errorf("xmlstore: nil document tree")
	}
	if cfg == nil {
		cfg = sgml.XMLConfig()
	}
	root := tree
	if root.Kind == sgml.DocumentNode {
		// Skip prolog; store from the root element.
		for c := root.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == sgml.ElementNode {
				root = c
				break
			}
		}
		if root.Kind == sgml.DocumentNode {
			return 0, fmt.Errorf("xmlstore: document %q has no root element", meta.FileName)
		}
	}

	s.mu.Lock()
	docID := s.nextDocID
	s.nextDocID++
	s.mu.Unlock()

	flat := s.flatten(root, cfg, docID)
	if len(flat) == 0 {
		return 0, fmt.Errorf("xmlstore: document %q flattened to no nodes", meta.FileName)
	}

	// Pass 1: insert with null links.
	for i := range flat {
		fn := &flat[i]
		row := ordbms.Row{
			ordbms.I(int64(fn.nodeID)),
			ordbms.I(int64(docID)),
			ordbms.I(int64(fn.class)),
			ordbms.S(fn.name),
			ordbms.S(fn.data),
			ordbms.I(int64(fn.ordinal)),
			ordbms.I(parentNodeID(flat, fn)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.B(ridToBytes(ordbms.ZeroRowID)),
			ordbms.S(fn.attrs),
		}
		rid, err := s.xml.Insert(row)
		if err != nil {
			return 0, fmt.Errorf("xmlstore: insert node %d of %q: %w", fn.nodeID, meta.FileName, err)
		}
		fn.rid = rid
	}

	// Pass 2: patch physical links.
	for i := range flat {
		fn := &flat[i]
		row, err := s.xml.Fetch(fn.rid)
		if err != nil {
			return 0, err
		}
		row[xmlColParentRowID] = ordbms.B(ridToBytes(linkRID(flat, fn.parent)))
		row[xmlColPrevRowID] = ordbms.B(ridToBytes(linkRID(flat, fn.prev)))
		row[xmlColNextRowID] = ordbms.B(ridToBytes(linkRID(flat, fn.next)))
		row[xmlColChildRowID] = ordbms.B(ridToBytes(linkRID(flat, fn.child)))
		if err := s.xml.Update(fn.rid, row); err != nil {
			return 0, fmt.Errorf("xmlstore: patch links of node %d: %w", fn.nodeID, err)
		}
	}

	// Derived indexes.
	for i := range flat {
		fn := &flat[i]
		switch fn.class {
		case sgml.ClassText:
			s.content.Add(fn.rid.Uint64(), fn.data)
		case sgml.ClassContext:
			s.addContextKey(fn.data, fn.rid)
		}
	}

	// DOC row last: it carries the root RowID.
	docRow := ordbms.Row{
		ordbms.I(int64(docID)),
		ordbms.S(meta.FileName),
		ordbms.I(time.Now().Unix()),
		ordbms.I(int64(meta.Size)),
		ordbms.S(meta.Format),
		ordbms.S(meta.Title),
		ordbms.B(ridToBytes(flat[0].rid)),
		ordbms.I(int64(len(flat))),
	}
	if _, err := s.doc.Insert(docRow); err != nil {
		return 0, fmt.Errorf("xmlstore: insert DOC row for %q: %w", meta.FileName, err)
	}

	s.statsMu.Lock()
	s.docsIngested++
	s.nodesInserted += uint64(len(flat))
	s.statsMu.Unlock()
	return docID, nil
}

// StoreRaw converts raw file bytes (any supported format) and stores the
// result — the full NETMARK ingest path in one call.
func (s *Store) StoreRaw(name string, data []byte) (uint64, error) {
	tree, meta, err := docform.Convert(name, data)
	if err != nil {
		return 0, err
	}
	return s.StoreDocument(meta, tree, sgml.XMLConfig())
}

func parentNodeID(flat []flatNode, fn *flatNode) int64 {
	if fn.parent < 0 {
		return 0
	}
	return int64(flat[fn.parent].nodeID)
}

func linkRID(flat []flatNode, idx int) ordbms.RowID {
	if idx < 0 {
		return ordbms.ZeroRowID
	}
	return flat[idx].rid
}

// flatten walks the tree in document order, assigning node IDs and
// recording structural relationships as slice indexes.
func (s *Store) flatten(root *sgml.Node, cfg *sgml.Config, docID uint64) []flatNode {
	var flat []flatNode
	var walk func(n *sgml.Node, parent int) int
	walk = func(n *sgml.Node, parent int) int {
		if n.Kind != sgml.ElementNode && n.Kind != sgml.TextNode {
			return -1 // comments, PIs and doctypes are not stored
		}
		s.mu.Lock()
		id := s.nextNodeID
		s.nextNodeID++
		s.mu.Unlock()

		idx := len(flat)
		class := cfg.Classify(n)
		fn := flatNode{
			nodeID: id,
			class:  class,
			parent: parent,
			prev:   -1, next: -1, child: -1,
		}
		switch n.Kind {
		case sgml.ElementNode:
			fn.name = n.Name
			fn.attrs = encodeAttrs(n.Attrs)
			if class == sgml.ClassContext {
				// Denormalise the heading text onto the CONTEXT node so
				// the context index and the traversal kernel never need
				// to descend to find the heading.
				fn.data = n.Text()
			}
		case sgml.TextNode:
			fn.name = "#text"
			fn.data = n.Data
		}
		flat = append(flat, fn)

		prev := -1
		ord := 0
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			ci := walk(c, idx)
			if ci < 0 {
				continue
			}
			flat[ci].ordinal = ord
			ord++
			if prev >= 0 {
				flat[prev].next = ci
				flat[ci].prev = prev
			} else {
				flat[idx].child = ci
			}
			prev = ci
		}
		return idx
	}
	walk(root, -1)
	return flat
}

// encodeAttrs packs attributes as space-separated name=quoted pairs.
func encodeAttrs(attrs []sgml.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Name + "=" + strconv.Quote(a.Value)
	}
	return strings.Join(parts, " ")
}

// decodeAttrs reverses encodeAttrs.
func decodeAttrs(s string) []sgml.Attr {
	if s == "" {
		return nil
	}
	var out []sgml.Attr
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			break
		}
		name := s[:eq]
		rest := s[eq+1:]
		// Find the closing quote of the Go-quoted string.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			break
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			break
		}
		out = append(out, sgml.Attr{Name: name, Value: val})
		s = strings.TrimPrefix(rest[end+1:], " ")
	}
	return out
}

// DeleteDocument removes a document: its DOC row, all its XML rows, and
// their derived index entries.
func (s *Store) DeleteDocument(docID uint64) error {
	info, err := s.Document(docID)
	if err != nil {
		return err
	}
	rids, err := s.xml.Lookup("docid", ordbms.I(int64(docID)))
	if err != nil {
		return err
	}
	for _, rid := range rids {
		row, err := s.xml.Fetch(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return err
		}
		switch sgml.NodeClass(row[xmlColNodeType].Int) {
		case sgml.ClassText:
			s.content.Remove(rid.Uint64())
		case sgml.ClassContext:
			s.removeContextKey(row[xmlColNodeData].Str, rid)
		}
		if err := s.xml.Delete(rid); err != nil && err != ordbms.ErrRecordDeleted {
			return err
		}
	}
	return s.doc.Delete(info.RowID)
}

// Reconstruct rebuilds the full document tree for a document by chasing
// physical links from the root node (used by HTTP GET and the examples).
func (s *Store) Reconstruct(docID uint64) (*sgml.Node, error) {
	info, err := s.Document(docID)
	if err != nil {
		return nil, err
	}
	return s.reconstructFrom(info.RootRowID)
}

func (s *Store) reconstructFrom(rid ordbms.RowID) (*sgml.Node, error) {
	n, err := s.FetchNode(rid)
	if err != nil {
		return nil, err
	}
	return s.buildSubtree(n)
}

func (s *Store) buildSubtree(n *Node) (*sgml.Node, error) {
	var out *sgml.Node
	if n.Name == "#text" {
		out = sgml.NewText(n.Data)
	} else {
		out = sgml.NewElement(n.Name, n.Attrs...)
	}
	child, err := s.FirstChild(n)
	if err != nil {
		return nil, err
	}
	for child != nil {
		sub, err := s.buildSubtree(child)
		if err != nil {
			return nil, err
		}
		out.AppendChild(sub)
		child, err = s.NextSibling(child)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
