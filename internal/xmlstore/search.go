package xmlstore

import (
	"sort"
	"strings"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// This file implements the paper's query kernel (§2.1.4):
//
//	"The keyword-based context and content search is performed by first
//	querying the text index for the search key.  Each node returned from
//	the index search is then processed based on its designated unique
//	ROWID.  The processing of the node involves traversing up the tree
//	structure via its parent or sibling node until the first context is
//	found. [...] Once a particular CONTEXT is found, traversing back down
//	the tree structure via the sibling node retrieves the corresponding
//	content text."

// ContextFor walks from a node to its governing CONTEXT node: the nearest
// preceding heading in document order, at any ancestor level.  Returns
// nil when the node has no governing context (raw XML with no headings).
func (s *Store) ContextFor(n *Node) (*Node, error) {
	cur := n
	for cur != nil {
		// Scan left across preceding siblings.
		p := cur
		for {
			prev, err := s.PrevSibling(p)
			if err != nil {
				return nil, err
			}
			if prev == nil {
				break
			}
			if prev.Class == sgml.ClassContext {
				return prev, nil
			}
			p = prev
		}
		parent, err := s.Parent(cur)
		if err != nil {
			return nil, err
		}
		if parent != nil && parent.Class == sgml.ClassContext {
			// The hit is inside the heading itself.
			return parent, nil
		}
		cur = parent
	}
	return nil, nil
}

// SectionOf materialises the Section governed by a CONTEXT node:
// the heading plus the text of everything between it and the next
// CONTEXT at the same level (or the end of the parent).
func (s *Store) SectionOf(ctx *Node) (Section, error) {
	sec := Section{
		DocID:      ctx.DocID,
		Context:    strings.TrimSpace(ctx.Data),
		ContextRID: ctx.RowID,
	}
	if info, err := s.Document(ctx.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	var parts []string
	cur, err := s.NextSibling(ctx)
	if err != nil {
		return sec, err
	}
	for cur != nil && cur.Class != sgml.ClassContext {
		txt, err := s.subtreeText(cur)
		if err != nil {
			return sec, err
		}
		if txt != "" {
			parts = append(parts, txt)
		}
		cur, err = s.NextSibling(cur)
		if err != nil {
			return sec, err
		}
	}
	sec.Content = strings.Join(parts, " ")
	return sec, nil
}

// subtreeText collects the text beneath a node by chasing child/sibling
// links (physical hops only).
func (s *Store) subtreeText(n *Node) (string, error) {
	if n.Class == sgml.ClassText {
		return strings.TrimSpace(n.Data), nil
	}
	var parts []string
	child, err := s.FirstChild(n)
	if err != nil {
		return "", err
	}
	for child != nil {
		t, err := s.subtreeText(child)
		if err != nil {
			return "", err
		}
		if t != "" {
			parts = append(parts, t)
		}
		child, err = s.NextSibling(child)
		if err != nil {
			return "", err
		}
	}
	return strings.Join(parts, " "), nil
}

// ContextSearch returns the sections whose heading matches the query
// (case- and whitespace-insensitive): the paper's Context=Introduction.
func (s *Store) ContextSearch(heading string) ([]Section, error) {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	rids := append([]ordbms.RowID(nil), s.contexts.Get(key)...)
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids)
}

// ContextPrefixSearch matches headings by prefix (Context=Tech*).
func (s *Store) ContextPrefixSearch(prefix string) ([]Section, error) {
	key := normalizeContext(prefix)
	var rids []ordbms.RowID
	s.ctxMu.RLock()
	s.contexts.AscendPrefixFunc(key,
		func(k string) bool { return strings.HasPrefix(k, key) },
		func(_ string, vals []ordbms.RowID) bool {
			rids = append(rids, vals...)
			return true
		})
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids)
}

func (s *Store) sectionsForContexts(rids []ordbms.RowID) ([]Section, error) {
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	out := make([]Section, 0, len(rids))
	for _, rid := range rids {
		ctx, err := s.FetchNode(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		sec, err := s.SectionOf(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, sec)
	}
	return out, nil
}

// ContentSearch returns the sections containing every term of the query:
// the paper's Content=Shuttle.  Hits are grouped by their governing
// context so each section appears once.
func (s *Store) ContentSearch(query string) ([]Section, error) {
	hits := s.content.And(query)
	seenCtx := make(map[ordbms.RowID]bool)
	var out []Section
	for _, h := range hits {
		rid := ordbms.RowIDFromUint64(h)
		node, err := s.FetchNode(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		ctx, err := s.ContextFor(node)
		if err != nil {
			return nil, err
		}
		if ctx == nil {
			// No governing heading (raw XML): report the parent element's
			// subtree as the section, keyed by the hit itself.
			if seenCtx[rid] {
				continue
			}
			seenCtx[rid] = true
			sec, err := s.fallbackSection(node)
			if err != nil {
				return nil, err
			}
			out = append(out, sec)
			continue
		}
		if seenCtx[ctx.RowID] {
			continue
		}
		seenCtx[ctx.RowID] = true
		sec, err := s.SectionOf(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, sec)
	}
	return out, nil
}

// fallbackSection builds a section for a text hit with no heading.
func (s *Store) fallbackSection(n *Node) (Section, error) {
	parent, err := s.Parent(n)
	if err != nil {
		return Section{}, err
	}
	scope := n
	if parent != nil {
		scope = parent
	}
	txt, err := s.subtreeText(scope)
	if err != nil {
		return Section{}, err
	}
	sec := Section{DocID: n.DocID, Content: txt, ContextRID: scope.RowID}
	if info, err := s.Document(n.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	return sec, nil
}

// ContentSearchDocs returns the distinct documents containing the query —
// the paper's "a content query such as Content=Shuttle will return all
// documents that contain the term 'Shuttle' anywhere in the document".
func (s *Store) ContentSearchDocs(query string) ([]*DocInfo, error) {
	hits := s.content.And(query)
	seen := make(map[uint64]bool)
	var out []*DocInfo
	for _, h := range hits {
		node, err := s.FetchNode(ordbms.RowIDFromUint64(h))
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		if seen[node.DocID] {
			continue
		}
		seen[node.DocID] = true
		info, err := s.Document(node.DocID)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out, nil
}

// Search combines context and content predicates — the paper's
// Context=Technology Gap & Content=Shrinking: "returns the 'Technology
// Gap' contexts (sections) of all documents where the term 'Shrinking'
// occurs within the Technology Gap context".
//
// The planner picks the cheaper driving side: if the heading is rarer
// than the content terms it drives from the context index and verifies
// terms inside each section; otherwise it drives from the text index and
// filters by governing context.  Both plans produce identical results
// (asserted by tests); the choice only affects cost.
func (s *Store) Search(heading, query string) ([]Section, error) {
	switch {
	case heading == "" && query == "":
		return nil, nil
	case heading == "":
		return s.ContentSearch(query)
	case query == "":
		return s.ContextSearch(heading)
	}
	ctxCount := s.ContextCount(heading)
	contentCost := s.contentDF(query)
	if ctxCount <= contentCost {
		return s.searchDriveContext(heading, query)
	}
	return s.searchDriveContent(heading, query)
}

// contentDF estimates the driving cost of a content query as the smallest
// document frequency among its terms.
func (s *Store) contentDF(query string) int {
	min := -1
	for _, tok := range textindex.Tokenize(query) {
		df := s.content.DF(tok.Term)
		if min < 0 || df < min {
			min = df
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// searchDriveContext: context index drives, content verified per section.
func (s *Store) searchDriveContext(heading, query string) ([]Section, error) {
	secs, err := s.ContextSearch(heading)
	if err != nil {
		return nil, err
	}
	var out []Section
	for _, sec := range secs {
		if sectionContainsAll(sec, query) {
			out = append(out, sec)
		}
	}
	return out, nil
}

// searchDriveContent: text index drives, context filters.
func (s *Store) searchDriveContent(heading, query string) ([]Section, error) {
	secs, err := s.ContentSearch(query)
	if err != nil {
		return nil, err
	}
	want := normalizeContext(heading)
	var out []Section
	for _, sec := range secs {
		if normalizeContext(sec.Context) == want {
			out = append(out, sec)
		}
	}
	return out, nil
}

// sectionContainsAll reports whether every query term occurs in the
// section content (word-boundary, case-insensitive — the same tokenizer
// as the index, so both plans agree).
func sectionContainsAll(sec Section, query string) bool {
	terms := textindex.Tokenize(query)
	if len(terms) == 0 {
		return true
	}
	have := make(map[string]bool)
	for _, tok := range textindex.Tokenize(sec.Content) {
		have[tok.Term] = true
	}
	for _, tok := range terms {
		if !have[tok.Term] {
			return false
		}
	}
	return true
}
