package xmlstore

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// This file implements the paper's query kernel (§2.1.4):
//
//	"The keyword-based context and content search is performed by first
//	querying the text index for the search key.  Each node returned from
//	the index search is then processed based on its designated unique
//	ROWID.  The processing of the node involves traversing up the tree
//	structure via its parent or sibling node until the first context is
//	found. [...] Once a particular CONTEXT is found, traversing back down
//	the tree structure via the sibling node retrieves the corresponding
//	content text."
//
// The implementation keeps the paper's plan but accelerates every stage
// of the cold path: hits resolve to decoded nodes through the node cache
// and batched heap fetches, the upward traversal is an O(1) probe of the
// derived node→governing-CONTEXT index (the pointer-chasing walk remains
// as the fallback and ablation baseline), and sections materialise on a
// bounded worker pool with ordered emit and limit cancellation.

// ContextFor resolves a node to its governing CONTEXT node: the nearest
// preceding heading in document order, at any ancestor level.  Returns
// nil when the node has no governing context (raw XML with no headings).
//
// Text nodes resolve through the derived index maintained at ingest —
// one map probe plus one (usually cached) node fetch, instead of an
// O(siblings × depth) chain of row fetches.  Nodes without an index
// entry fall back to the pointer-chasing walk.
//
// netmarkvet:hotpath
func (s *Store) ContextFor(n *Node) (*Node, error) {
	if !s.ctxIdxOff {
		s.ctxIdxMu.RLock()
		rid, ok := s.ctxIdx[n.RowID]
		s.ctxIdxMu.RUnlock()
		if ok {
			if rid.IsZero() {
				return nil, nil
			}
			return s.FetchNode(rid)
		}
	}
	return s.contextForWalk(n)
}

// contextForWalk is the paper's traversal: scan left across preceding
// siblings, then climb, until the first CONTEXT node.  It is the
// correctness baseline the derived index is tested against.
func (s *Store) contextForWalk(n *Node) (*Node, error) {
	cur := n
	for cur != nil {
		// Scan left across preceding siblings.
		p := cur
		for {
			prev, err := s.PrevSibling(p)
			if err != nil {
				return nil, err
			}
			if prev == nil {
				break
			}
			if prev.Class == sgml.ClassContext {
				return prev, nil
			}
			p = prev
		}
		parent, err := s.Parent(cur)
		if err != nil {
			return nil, err
		}
		if parent != nil && parent.Class == sgml.ClassContext {
			// The hit is inside the heading itself.
			return parent, nil
		}
		cur = parent
	}
	return nil, nil
}

// SectionOf materialises the Section governed by a CONTEXT node:
// the heading plus the text of everything between it and the next
// CONTEXT at the same level (or the end of the parent).  The content is
// assembled into one reused strings.Builder instead of a tree of
// intermediate joins.
func (s *Store) SectionOf(ctx *Node) (Section, error) {
	sec := Section{
		DocID:      ctx.DocID,
		Context:    strings.TrimSpace(ctx.Data),
		ContextRID: ctx.RowID,
	}
	if info, err := s.Document(ctx.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	var b strings.Builder
	cur, err := s.NextSibling(ctx)
	if err != nil {
		return sec, err
	}
	for cur != nil && cur.Class != sgml.ClassContext {
		if err := s.appendSubtreeText(cur, &b); err != nil {
			return sec, err
		}
		cur, err = s.NextSibling(cur)
		if err != nil {
			return sec, err
		}
	}
	sec.Content = b.String()
	return sec, nil
}

// appendSubtreeText walks the subtree under root in document order by
// chasing child/sibling links iteratively (an explicit stack of pending
// siblings instead of recursion-with-joins), appending each non-empty
// trimmed text run to b, space-separated.
func (s *Store) appendSubtreeText(root *Node, b *strings.Builder) error {
	var stack []*Node
	cur := root
	for cur != nil {
		if cur.Class == sgml.ClassText {
			if t := strings.TrimSpace(cur.Data); t != "" {
				if b.Len() > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t)
			}
		}
		// The next sibling comes after cur's whole subtree; queue it —
		// except for root, whose siblings are outside the subtree.
		if cur != root && !cur.NextRowID.IsZero() {
			sib, err := s.FetchNode(cur.NextRowID)
			if err != nil {
				return err
			}
			stack = append(stack, sib)
		}
		if !cur.ChildRowID.IsZero() {
			ch, err := s.FetchNode(cur.ChildRowID)
			if err != nil {
				return err
			}
			cur = ch
			continue
		}
		if n := len(stack); n > 0 {
			cur = stack[n-1]
			stack = stack[:n-1]
		} else {
			cur = nil
		}
	}
	return nil
}

// subtreeText collects the text beneath a node (physical hops only).
func (s *Store) subtreeText(n *Node) (string, error) {
	var b strings.Builder
	if err := s.appendSubtreeText(n, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// ContextSearch returns the sections whose heading matches the query
// (case- and whitespace-insensitive): the paper's Context=Introduction.
func (s *Store) ContextSearch(heading string) ([]Section, error) {
	return s.ContextSearchN(heading, 0)
}

// ContextSearchN is ContextSearch with a result cap pushed into the
// traversal: section materialisation stops as soon as limit sections
// exist (limit <= 0 means unlimited), so limit=50 over a huge corpus
// touches 50 sections, not all of them.
func (s *Store) ContextSearchN(heading string, limit int) ([]Section, error) {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	rids := append([]ordbms.RowID(nil), s.contexts.Get(key)...)
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids, limit)
}

// ContextPrefixSearch matches headings by prefix (Context=Tech*).
func (s *Store) ContextPrefixSearch(prefix string) ([]Section, error) {
	return s.ContextPrefixSearchN(prefix, 0)
}

// ContextPrefixSearchN is ContextPrefixSearch with the limit pushed all
// the way into candidate collection: instead of copying every matching
// rowid under ctxMu, a capped query keeps only the `limit` physically
// smallest candidates (a bounded max-heap), so Context=A*&limit=1 over a
// million headings holds one rowid, not a million.  The physical-order
// result prefix is unchanged; only a candidate deleted between the index
// snapshot and materialisation can make a capped result shorter than an
// uncapped one would have been.
func (s *Store) ContextPrefixSearchN(prefix string, limit int) ([]Section, error) {
	key := normalizeContext(prefix)
	var rids []ordbms.RowID
	s.ctxMu.RLock()
	if limit > 0 {
		var bound ridBound
		s.contexts.AscendPrefixFunc(key,
			func(k string) bool { return strings.HasPrefix(k, key) },
			func(_ string, vals []ordbms.RowID) bool {
				for _, rid := range vals {
					bound.push(rid, limit)
				}
				return true
			})
		rids = bound.rids
	} else {
		s.contexts.AscendPrefixFunc(key,
			func(k string) bool { return strings.HasPrefix(k, key) },
			func(_ string, vals []ordbms.RowID) bool {
				rids = append(rids, vals...)
				return true
			})
	}
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids, limit)
}

// ridBound keeps the k physically-smallest RowIDs pushed into it, as a
// max-heap rooted at rids[0].
type ridBound struct {
	rids []ordbms.RowID
}

func (h *ridBound) push(rid ordbms.RowID, k int) {
	if len(h.rids) < k {
		h.rids = append(h.rids, rid)
		i := len(h.rids) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.rids[p].Less(h.rids[i]) {
				break
			}
			h.rids[p], h.rids[i] = h.rids[i], h.rids[p]
			i = p
		}
		return
	}
	if !rid.Less(h.rids[0]) {
		return
	}
	h.rids[0] = rid
	i, n := 0, len(h.rids)
	for {
		big, l, r := i, 2*i+1, 2*i+2
		if l < n && h.rids[big].Less(h.rids[l]) {
			big = l
		}
		if r < n && h.rids[big].Less(h.rids[r]) {
			big = r
		}
		if big == i {
			return
		}
		h.rids[big], h.rids[i] = h.rids[i], h.rids[big]
		i = big
	}
}

func (s *Store) sectionsForContexts(rids []ordbms.RowID, limit int) ([]Section, error) {
	var out []Section
	err := s.forEachContextSection(rids, func(sec Section) bool {
		out = append(out, sec)
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// sectionWorkers picks the materialisation fan-out for n candidates.
func (s *Store) sectionWorkers(n int) int {
	if n < 4 {
		return 1
	}
	w := s.queryWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// sectionChunk bounds the per-batch bookkeeping of the parallel
// materialisers, so a limit-capped query over a huge candidate list
// allocates per chunk, not per corpus.
const sectionChunk = 512

// sectionOut is one materialised (or skipped, or failed) section slot.
type sectionOut struct {
	sec  Section
	err  error
	skip bool
}

// forEachContextSection materialises sections for CONTEXT rowids in
// physical order until fn returns false — the shared lazy kernel beneath
// every limit-aware context plan.  It sorts rids in place; callers pass
// a private copy (snapshotted under ctxMu).  Candidates are resolved
// through the node cache with batched heap fetches, and with more than
// one query worker the sections themselves materialise concurrently with
// ordered emit: results reach fn in exactly the physical order a serial
// walk would produce, and a false return cancels the remaining work.
func (s *Store) forEachContextSection(rids []ordbms.RowID, fn func(Section) bool) error {
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	workers := s.sectionWorkers(len(rids))
	for start := 0; start < len(rids); start += sectionChunk {
		chunk := rids[start:min(start+sectionChunk, len(rids))]
		stopped, err := s.emitContextChunk(chunk, workers, fn)
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// emitOrdered runs materialise(i) for i in [0, n) — serially when
// workers <= 1, otherwise on a bounded worker pool — and feeds the
// non-skipped results to fn in index order.  stopped reports that fn
// returned false; remaining work is cancelled (workers check the stop
// flag before claiming their next index, so overshoot is bounded by the
// pool size).  This is the shared scaffold beneath every parallel
// section materialiser.
func (s *Store) emitOrdered(n, workers int, materialise func(int) sectionOut, fn func(Section) bool) (stopped bool, err error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			o := materialise(i)
			if o.skip {
				continue
			}
			if o.err != nil {
				return false, o.err
			}
			if !fn(o.sec) {
				return true, nil
			}
		}
		return false, nil
	}
	outs := make([]sectionOut, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	next.Store(-1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				outs[i] = materialise(i)
				close(done[i])
			}
		}()
	}
	defer wg.Wait()
	defer stop.Store(true)
	for i := 0; i < n; i++ {
		<-done[i]
		o := &outs[i]
		if o.skip {
			continue
		}
		if o.err != nil {
			return false, o.err
		}
		if !fn(o.sec) {
			return true, nil
		}
	}
	return false, nil
}

// emitContextChunk materialises one chunk of CONTEXT rowids and emits the
// sections in order.  stopped reports that fn returned false.
func (s *Store) emitContextChunk(rids []ordbms.RowID, workers int, fn func(Section) bool) (stopped bool, err error) {
	if workers <= 1 {
		// Serial: one batched fetch resolves the whole chunk's headings.
		nodes, err := s.fetchNodesBatch(rids)
		if err != nil {
			return false, err
		}
		return s.emitOrdered(len(nodes), 1, func(i int) sectionOut {
			ctx := nodes[i]
			if ctx == nil {
				return sectionOut{skip: true} // deleted between snapshot and fetch
			}
			sec, serr := s.SectionOf(ctx)
			if serr != nil {
				if serr == ordbms.ErrRecordDeleted {
					return sectionOut{skip: true}
				}
				return sectionOut{err: serr}
			}
			return sectionOut{sec: sec}
		}, fn)
	}
	return s.emitOrdered(len(rids), workers, func(i int) sectionOut {
		return s.materialiseContextSection(rids[i])
	}, fn)
}

func (s *Store) materialiseContextSection(rid ordbms.RowID) sectionOut {
	ctx, err := s.FetchNode(rid)
	if err != nil {
		if err == ordbms.ErrRecordDeleted {
			return sectionOut{skip: true}
		}
		return sectionOut{err: err}
	}
	sec, err := s.SectionOf(ctx)
	if err != nil {
		if err == ordbms.ErrRecordDeleted {
			// A concurrent delete removed part of this section between
			// the index probe and the traversal: skip the section, the
			// generation bump has already invalidated cached results.
			return sectionOut{skip: true}
		}
		return sectionOut{err: err}
	}
	return sectionOut{sec: sec}
}

// ContentSearch returns the sections containing every term of the query:
// the paper's Content=Shuttle.  Hits are grouped by their governing
// context so each section appears once.
func (s *Store) ContentSearch(query string) ([]Section, error) {
	return s.ContentSearchN(query, 0)
}

// ContentSearchN is ContentSearch with the limit pushed into the
// traversal kernel: the walk from text hits to governing contexts stops
// once limit sections are materialised.
func (s *Store) ContentSearchN(query string, limit int) ([]Section, error) {
	var out []Section
	err := s.forEachContentSection(query, func(sec Section) bool {
		out = append(out, sec)
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// forEachContentSection runs the §2.1.4 kernel — text-index probe, then
// resolution of each hit to its governing context — yielding each
// distinct section as soon as it is materialised, in first-hit order,
// until fn returns false.
//
// The kernel is a three-stage pipeline per chunk of hits: (1) batched
// node-cache-aware fetch of the hit rows, (2) serial dedup of hits to
// distinct section tasks via the derived context index (one map probe
// per hit, no materialisation), (3) materialisation of the distinct
// sections on the worker pool with ordered emit — so duplicate hits on
// the same section cost a map probe, never a second traversal, and the
// expensive stage parallelises over exactly the distinct sections.
func (s *Store) forEachContentSection(query string, fn func(Section) bool) error {
	// The hit list streams out of the text index one id at a time —
	// a capped query over a huge posting list never materialises the
	// full hit slice, only the current chunk, and the chunk buffer is
	// reused across iterations.
	it := s.content.AndIter(query)
	seen := make(map[ordbms.RowID]bool)
	var tasks []sectionTask
	chunk := make([]ordbms.RowID, 0, sectionChunk)
	for {
		chunk = chunk[:0]
		for len(chunk) < sectionChunk {
			h, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, ordbms.RowIDFromUint64(h))
		}
		if len(chunk) == 0 {
			return nil
		}
		nodes, err := s.fetchNodesBatch(chunk)
		if err != nil {
			return err
		}
		tasks = tasks[:0]
		for _, node := range nodes {
			if node == nil {
				continue // deleted between index probe and fetch
			}
			task, key, skip, err := s.resolveSectionTask(node)
			if err != nil {
				return err
			}
			if skip || seen[key] {
				continue
			}
			seen[key] = true
			tasks = append(tasks, task)
		}
		stopped, err := s.emitSectionTasks(tasks, s.sectionWorkers(len(tasks)), fn)
		if err != nil || stopped {
			return err
		}
	}
}

// sectionTask names one distinct section to materialise: a governing
// CONTEXT (by rowid, or already fetched by the walk fallback), or a
// heading-less hit to report through fallbackSection.
type sectionTask struct {
	ctxRID ordbms.RowID // governing context (zero = fallback section)
	ctx    *Node        // already-fetched context, when the walk found it
	hit    *Node        // the hit node (fallback sections only)
}

// resolveSectionTask maps a hit node to its section identity without
// materialising anything: an O(1) probe of the derived index, with the
// pointer-chasing walk as fallback.  key identifies the section for
// dedup (the context rowid, or the hit's own rowid for heading-less
// documents).
//
// netmarkvet:hotpath
func (s *Store) resolveSectionTask(node *Node) (task sectionTask, key ordbms.RowID, skip bool, err error) {
	if !s.ctxIdxOff {
		s.ctxIdxMu.RLock()
		rid, ok := s.ctxIdx[node.RowID]
		s.ctxIdxMu.RUnlock()
		if ok {
			if rid.IsZero() {
				return sectionTask{hit: node}, node.RowID, false, nil
			}
			return sectionTask{ctxRID: rid}, rid, false, nil
		}
	}
	ctx, werr := s.contextForWalk(node)
	if werr != nil {
		if werr == ordbms.ErrRecordDeleted {
			return sectionTask{}, ordbms.ZeroRowID, true, nil // document mid-delete
		}
		return sectionTask{}, ordbms.ZeroRowID, false, werr
	}
	if ctx == nil {
		return sectionTask{hit: node}, node.RowID, false, nil
	}
	return sectionTask{ctxRID: ctx.RowID, ctx: ctx}, ctx.RowID, false, nil
}

// materialiseSectionTask builds the section for one task.
func (s *Store) materialiseSectionTask(task sectionTask) sectionOut {
	ctx := task.ctx
	if ctx == nil && !task.ctxRID.IsZero() {
		var err error
		if ctx, err = s.FetchNode(task.ctxRID); err != nil {
			if err == ordbms.ErrRecordDeleted {
				return sectionOut{skip: true}
			}
			return sectionOut{err: err}
		}
	}
	var sec Section
	var err error
	if ctx != nil {
		sec, err = s.SectionOf(ctx)
	} else {
		// No governing heading (raw XML): report the parent element's
		// subtree as the section.
		sec, err = s.fallbackSection(task.hit)
	}
	if err != nil {
		if err == ordbms.ErrRecordDeleted {
			return sectionOut{skip: true}
		}
		return sectionOut{err: err}
	}
	return sectionOut{sec: sec}
}

// emitSectionTasks materialises the distinct sections of one chunk and
// emits them in first-hit order.  stopped reports that fn returned
// false; remaining work is cancelled.
func (s *Store) emitSectionTasks(tasks []sectionTask, workers int, fn func(Section) bool) (stopped bool, err error) {
	return s.emitOrdered(len(tasks), workers, func(i int) sectionOut {
		return s.materialiseSectionTask(tasks[i])
	}, fn)
}

// fallbackSection builds a section for a text hit with no heading.
func (s *Store) fallbackSection(n *Node) (Section, error) {
	parent, err := s.Parent(n)
	if err != nil {
		return Section{}, err
	}
	scope := n
	if parent != nil {
		scope = parent
	}
	txt, err := s.subtreeText(scope)
	if err != nil {
		return Section{}, err
	}
	sec := Section{DocID: n.DocID, Content: txt, ContextRID: scope.RowID}
	if info, err := s.Document(n.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	return sec, nil
}

// ContentSearchDocs returns the distinct documents containing the query —
// the paper's "a content query such as Content=Shuttle will return all
// documents that contain the term 'Shuttle' anywhere in the document".
func (s *Store) ContentSearchDocs(query string) ([]*DocInfo, error) {
	return s.ContentSearchDocsN(query, 0)
}

// ContentSearchDocsN is ContentSearchDocs with the limit pushed down:
// the hit scan stops after limit distinct documents.  Hits arrive in
// physical RowID order — usually, but not necessarily, ingestion order
// (page reuse after deletes can reorder) — so a capped query returns
// *some* limit matching documents, sorted by DocID, not a guaranteed
// lowest-DocID prefix.
func (s *Store) ContentSearchDocsN(query string, limit int) ([]*DocInfo, error) {
	// Stream hits out of the index in chunks through one reused
	// buffer: a limit-capped scan over a stop-word-sized posting list
	// stops after a chunk or two instead of decoding the whole list.
	it := s.content.AndIter(query)
	seen := make(map[uint64]bool)
	var out []*DocInfo
	rids := make([]ordbms.RowID, 0, sectionChunk)
	for limit <= 0 || len(out) < limit {
		rids = rids[:0]
		for len(rids) < sectionChunk {
			h, ok := it.Next()
			if !ok {
				break
			}
			rids = append(rids, ordbms.RowIDFromUint64(h))
		}
		if len(rids) == 0 {
			break
		}
		nodes, err := s.fetchNodesBatch(rids)
		if err != nil {
			return nil, err
		}
		for _, node := range nodes {
			if node == nil || seen[node.DocID] {
				continue
			}
			seen[node.DocID] = true
			info, err := s.Document(node.DocID)
			if err != nil {
				if IsGone(err) {
					// The DOC row vanished between the text hit and this
					// lookup: the document is mid-delete, skip it.
					continue
				}
				return nil, err
			}
			out = append(out, info)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out, nil
}

// Search combines context and content predicates — the paper's
// Context=Technology Gap & Content=Shrinking: "returns the 'Technology
// Gap' contexts (sections) of all documents where the term 'Shrinking'
// occurs within the Technology Gap context".
//
// The planner picks the cheaper driving side: if the heading is rarer
// than the content terms it drives from the context index and verifies
// terms inside each section; otherwise it drives from the text index and
// filters by governing context.  Both plans produce identical results
// (asserted by tests); the choice only affects cost.
func (s *Store) Search(heading, query string) ([]Section, error) {
	return s.SearchN(heading, query, 0)
}

// SearchN is Search with the limit pushed through whichever plan the
// planner picks, so capped combined queries stop traversing as soon as
// limit matching sections exist.
func (s *Store) SearchN(heading, query string, limit int) ([]Section, error) {
	switch {
	case heading == "" && query == "":
		return nil, nil
	case heading == "":
		return s.ContentSearchN(query, limit)
	case query == "":
		return s.ContextSearchN(heading, limit)
	}
	ctxCount := s.ContextCount(heading)
	contentCost := s.contentDF(query)
	if ctxCount <= contentCost {
		return s.searchDriveContext(heading, query, limit)
	}
	return s.searchDriveContent(heading, query, limit)
}

// contentDF estimates the driving cost of a content query as the smallest
// document frequency among its terms.
func (s *Store) contentDF(query string) int {
	min := -1
	for _, tok := range textindex.Tokenize(query) {
		df := s.content.DF(tok.Term)
		if min < 0 || df < min {
			min = df
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// searchDriveContext: context index drives, content verified per
// section; sections materialise lazily and stop at the limit.
func (s *Store) searchDriveContext(heading, query string, limit int) ([]Section, error) {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	rids := append([]ordbms.RowID(nil), s.contexts.Get(key)...)
	s.ctxMu.RUnlock()
	var out []Section
	err := s.forEachContextSection(rids, func(sec Section) bool {
		if sectionContainsAll(sec, query) {
			out = append(out, sec)
		}
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// searchDriveContent: text index drives, context filters; the hit walk
// stops once limit sections pass the filter.
func (s *Store) searchDriveContent(heading, query string, limit int) ([]Section, error) {
	want := normalizeContext(heading)
	var out []Section
	err := s.forEachContentSection(query, func(sec Section) bool {
		if normalizeContext(sec.Context) == want {
			out = append(out, sec)
		}
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// sectionContainsAll reports whether every query term occurs in the
// section content (word-boundary, case-insensitive — the same tokenizer
// as the index, so both plans agree).
func sectionContainsAll(sec Section, query string) bool {
	terms := textindex.Tokenize(query)
	if len(terms) == 0 {
		return true
	}
	have := make(map[string]bool)
	for _, tok := range textindex.Tokenize(sec.Content) {
		have[tok.Term] = true
	}
	for _, tok := range terms {
		if !have[tok.Term] {
			return false
		}
	}
	return true
}
