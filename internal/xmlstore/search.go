package xmlstore

import (
	"sort"
	"strings"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// This file implements the paper's query kernel (§2.1.4):
//
//	"The keyword-based context and content search is performed by first
//	querying the text index for the search key.  Each node returned from
//	the index search is then processed based on its designated unique
//	ROWID.  The processing of the node involves traversing up the tree
//	structure via its parent or sibling node until the first context is
//	found. [...] Once a particular CONTEXT is found, traversing back down
//	the tree structure via the sibling node retrieves the corresponding
//	content text."

// ContextFor walks from a node to its governing CONTEXT node: the nearest
// preceding heading in document order, at any ancestor level.  Returns
// nil when the node has no governing context (raw XML with no headings).
func (s *Store) ContextFor(n *Node) (*Node, error) {
	cur := n
	for cur != nil {
		// Scan left across preceding siblings.
		p := cur
		for {
			prev, err := s.PrevSibling(p)
			if err != nil {
				return nil, err
			}
			if prev == nil {
				break
			}
			if prev.Class == sgml.ClassContext {
				return prev, nil
			}
			p = prev
		}
		parent, err := s.Parent(cur)
		if err != nil {
			return nil, err
		}
		if parent != nil && parent.Class == sgml.ClassContext {
			// The hit is inside the heading itself.
			return parent, nil
		}
		cur = parent
	}
	return nil, nil
}

// SectionOf materialises the Section governed by a CONTEXT node:
// the heading plus the text of everything between it and the next
// CONTEXT at the same level (or the end of the parent).
func (s *Store) SectionOf(ctx *Node) (Section, error) {
	sec := Section{
		DocID:      ctx.DocID,
		Context:    strings.TrimSpace(ctx.Data),
		ContextRID: ctx.RowID,
	}
	if info, err := s.Document(ctx.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	var parts []string
	cur, err := s.NextSibling(ctx)
	if err != nil {
		return sec, err
	}
	for cur != nil && cur.Class != sgml.ClassContext {
		txt, err := s.subtreeText(cur)
		if err != nil {
			return sec, err
		}
		if txt != "" {
			parts = append(parts, txt)
		}
		cur, err = s.NextSibling(cur)
		if err != nil {
			return sec, err
		}
	}
	sec.Content = strings.Join(parts, " ")
	return sec, nil
}

// subtreeText collects the text beneath a node by chasing child/sibling
// links (physical hops only).
func (s *Store) subtreeText(n *Node) (string, error) {
	if n.Class == sgml.ClassText {
		return strings.TrimSpace(n.Data), nil
	}
	var parts []string
	child, err := s.FirstChild(n)
	if err != nil {
		return "", err
	}
	for child != nil {
		t, err := s.subtreeText(child)
		if err != nil {
			return "", err
		}
		if t != "" {
			parts = append(parts, t)
		}
		child, err = s.NextSibling(child)
		if err != nil {
			return "", err
		}
	}
	return strings.Join(parts, " "), nil
}

// ContextSearch returns the sections whose heading matches the query
// (case- and whitespace-insensitive): the paper's Context=Introduction.
func (s *Store) ContextSearch(heading string) ([]Section, error) {
	return s.ContextSearchN(heading, 0)
}

// ContextSearchN is ContextSearch with a result cap pushed into the
// traversal: section materialisation stops as soon as limit sections
// exist (limit <= 0 means unlimited), so limit=50 over a huge corpus
// touches 50 sections, not all of them.
func (s *Store) ContextSearchN(heading string, limit int) ([]Section, error) {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	rids := append([]ordbms.RowID(nil), s.contexts.Get(key)...)
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids, limit)
}

// ContextPrefixSearch matches headings by prefix (Context=Tech*).
func (s *Store) ContextPrefixSearch(prefix string) ([]Section, error) {
	return s.ContextPrefixSearchN(prefix, 0)
}

// ContextPrefixSearchN is ContextPrefixSearch with the limit pushed down.
func (s *Store) ContextPrefixSearchN(prefix string, limit int) ([]Section, error) {
	key := normalizeContext(prefix)
	var rids []ordbms.RowID
	s.ctxMu.RLock()
	s.contexts.AscendPrefixFunc(key,
		func(k string) bool { return strings.HasPrefix(k, key) },
		func(_ string, vals []ordbms.RowID) bool {
			rids = append(rids, vals...)
			return true
		})
	s.ctxMu.RUnlock()
	return s.sectionsForContexts(rids, limit)
}

func (s *Store) sectionsForContexts(rids []ordbms.RowID, limit int) ([]Section, error) {
	var out []Section
	err := s.forEachContextSection(rids, func(sec Section) bool {
		out = append(out, sec)
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// forEachContextSection materialises sections for CONTEXT rowids in
// physical order, one at a time, until fn returns false — the shared
// lazy kernel beneath every limit-aware context plan.  It sorts rids in
// place; callers pass a private copy (snapshotted under ctxMu).
func (s *Store) forEachContextSection(rids []ordbms.RowID, fn func(Section) bool) error {
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	for _, rid := range rids {
		ctx, err := s.FetchNode(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return err
		}
		sec, err := s.SectionOf(ctx)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				// A concurrent delete removed part of this section between
				// the index probe and the traversal: skip the section, the
				// generation bump has already invalidated cached results.
				continue
			}
			return err
		}
		if !fn(sec) {
			return nil
		}
	}
	return nil
}

// ContentSearch returns the sections containing every term of the query:
// the paper's Content=Shuttle.  Hits are grouped by their governing
// context so each section appears once.
func (s *Store) ContentSearch(query string) ([]Section, error) {
	return s.ContentSearchN(query, 0)
}

// ContentSearchN is ContentSearch with the limit pushed into the
// traversal kernel: the walk from text hits to governing contexts stops
// once limit sections are materialised.
func (s *Store) ContentSearchN(query string, limit int) ([]Section, error) {
	var out []Section
	err := s.forEachContentSection(query, func(sec Section) bool {
		out = append(out, sec)
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// forEachContentSection runs the §2.1.4 kernel — text-index probe, then
// upward traversal to each hit's governing context — yielding each
// distinct section as soon as it is materialised, until fn returns
// false.
func (s *Store) forEachContentSection(query string, fn func(Section) bool) error {
	hits := s.content.And(query)
	seenCtx := make(map[ordbms.RowID]bool)
	for _, h := range hits {
		rid := ordbms.RowIDFromUint64(h)
		node, err := s.FetchNode(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return err
		}
		ctx, err := s.ContextFor(node)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue // hit's document being deleted concurrently
			}
			return err
		}
		if ctx == nil {
			// No governing heading (raw XML): report the parent element's
			// subtree as the section, keyed by the hit itself.
			if seenCtx[rid] {
				continue
			}
			seenCtx[rid] = true
			sec, err := s.fallbackSection(node)
			if err != nil {
				if err == ordbms.ErrRecordDeleted {
					continue
				}
				return err
			}
			if !fn(sec) {
				return nil
			}
			continue
		}
		if seenCtx[ctx.RowID] {
			continue
		}
		seenCtx[ctx.RowID] = true
		sec, err := s.SectionOf(ctx)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return err
		}
		if !fn(sec) {
			return nil
		}
	}
	return nil
}

// fallbackSection builds a section for a text hit with no heading.
func (s *Store) fallbackSection(n *Node) (Section, error) {
	parent, err := s.Parent(n)
	if err != nil {
		return Section{}, err
	}
	scope := n
	if parent != nil {
		scope = parent
	}
	txt, err := s.subtreeText(scope)
	if err != nil {
		return Section{}, err
	}
	sec := Section{DocID: n.DocID, Content: txt, ContextRID: scope.RowID}
	if info, err := s.Document(n.DocID); err == nil {
		sec.DocName = info.FileName
		sec.DocTitle = info.Title
	}
	return sec, nil
}

// ContentSearchDocs returns the distinct documents containing the query —
// the paper's "a content query such as Content=Shuttle will return all
// documents that contain the term 'Shuttle' anywhere in the document".
func (s *Store) ContentSearchDocs(query string) ([]*DocInfo, error) {
	return s.ContentSearchDocsN(query, 0)
}

// ContentSearchDocsN is ContentSearchDocs with the limit pushed down:
// the hit scan stops after limit distinct documents.  Hits arrive in
// physical RowID order — usually, but not necessarily, ingestion order
// (page reuse after deletes can reorder) — so a capped query returns
// *some* limit matching documents, sorted by DocID, not a guaranteed
// lowest-DocID prefix.
func (s *Store) ContentSearchDocsN(query string, limit int) ([]*DocInfo, error) {
	hits := s.content.And(query)
	seen := make(map[uint64]bool)
	var out []*DocInfo
	for _, h := range hits {
		node, err := s.FetchNode(ordbms.RowIDFromUint64(h))
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		if seen[node.DocID] {
			continue
		}
		seen[node.DocID] = true
		info, err := s.Document(node.DocID)
		if err != nil {
			if IsGone(err) {
				// The DOC row vanished between the text hit and this
				// lookup: the document is mid-delete, skip it.
				continue
			}
			return nil, err
		}
		out = append(out, info)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out, nil
}

// Search combines context and content predicates — the paper's
// Context=Technology Gap & Content=Shrinking: "returns the 'Technology
// Gap' contexts (sections) of all documents where the term 'Shrinking'
// occurs within the Technology Gap context".
//
// The planner picks the cheaper driving side: if the heading is rarer
// than the content terms it drives from the context index and verifies
// terms inside each section; otherwise it drives from the text index and
// filters by governing context.  Both plans produce identical results
// (asserted by tests); the choice only affects cost.
func (s *Store) Search(heading, query string) ([]Section, error) {
	return s.SearchN(heading, query, 0)
}

// SearchN is Search with the limit pushed through whichever plan the
// planner picks, so capped combined queries stop traversing as soon as
// limit matching sections exist.
func (s *Store) SearchN(heading, query string, limit int) ([]Section, error) {
	switch {
	case heading == "" && query == "":
		return nil, nil
	case heading == "":
		return s.ContentSearchN(query, limit)
	case query == "":
		return s.ContextSearchN(heading, limit)
	}
	ctxCount := s.ContextCount(heading)
	contentCost := s.contentDF(query)
	if ctxCount <= contentCost {
		return s.searchDriveContext(heading, query, limit)
	}
	return s.searchDriveContent(heading, query, limit)
}

// contentDF estimates the driving cost of a content query as the smallest
// document frequency among its terms.
func (s *Store) contentDF(query string) int {
	min := -1
	for _, tok := range textindex.Tokenize(query) {
		df := s.content.DF(tok.Term)
		if min < 0 || df < min {
			min = df
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// searchDriveContext: context index drives, content verified per
// section; sections materialise lazily and stop at the limit.
func (s *Store) searchDriveContext(heading, query string, limit int) ([]Section, error) {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	rids := append([]ordbms.RowID(nil), s.contexts.Get(key)...)
	s.ctxMu.RUnlock()
	var out []Section
	err := s.forEachContextSection(rids, func(sec Section) bool {
		if sectionContainsAll(sec, query) {
			out = append(out, sec)
		}
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// searchDriveContent: text index drives, context filters; the hit walk
// stops once limit sections pass the filter.
func (s *Store) searchDriveContent(heading, query string, limit int) ([]Section, error) {
	want := normalizeContext(heading)
	var out []Section
	err := s.forEachContentSection(query, func(sec Section) bool {
		if normalizeContext(sec.Context) == want {
			out = append(out, sec)
		}
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// sectionContainsAll reports whether every query term occurs in the
// section content (word-boundary, case-insensitive — the same tokenizer
// as the index, so both plans agree).
func sectionContainsAll(sec Section, query string) bool {
	terms := textindex.Tokenize(query)
	if len(terms) == 0 {
		return true
	}
	have := make(map[string]bool)
	for _, tok := range textindex.Tokenize(sec.Content) {
		have[tok.Term] = true
	}
	for _, tok := range terms {
		if !have[tok.Term] {
			return false
		}
	}
	return true
}
