package xmlstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"netmark/internal/corpus"
	"netmark/internal/ordbms"
)

// openDir opens a persistent store, failing the test on error.
func openDir(t *testing.T, dir string, opts OpenOptions) (*ordbms.DB, *Store) {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{Dir: dir, NoDerivedSnapshot: opts.DisableSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWith(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, s
}

// snapshotQueryPlans is the query battery the reopen-equivalence tests
// compare byte-for-byte across open paths (mirrors TestKernelEquivalence).
var snapshotQueryPlans = []struct {
	name string
	run  func(s *Store) (any, error)
}{
	{"content", func(s *Store) (any, error) { return s.ContentSearch("cryogenic") }},
	{"content-multi", func(s *Store) (any, error) { return s.ContentSearch("cryogenic turbine") }},
	{"content-limit", func(s *Store) (any, error) { return s.ContentSearchN("review", 5) }},
	{"context", func(s *Store) (any, error) { return s.ContextSearch("Budget") }},
	{"context-prefix", func(s *Store) (any, error) { return s.ContextPrefixSearch("Tech") }},
	{"combined", func(s *Store) (any, error) { return s.Search("Budget", "request") }},
	{"docs", func(s *Store) (any, error) { return s.ContentSearchDocs("turbine") }},
	{"headings", func(s *Store) (any, error) { return s.ContextHeadings(), nil }},
}

func runPlans(t *testing.T, s *Store) map[string]any {
	t.Helper()
	out := make(map[string]any, len(snapshotQueryPlans))
	for _, p := range snapshotQueryPlans {
		got, err := p.run(s)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		out[p.name] = got
	}
	return out
}

func diffPlans(t *testing.T, stage string, got, want map[string]any) {
	t.Helper()
	for _, p := range snapshotQueryPlans {
		if !reflect.DeepEqual(got[p.name], want[p.name]) {
			t.Fatalf("%s: %s diverges:\n got: %+v\nwant: %+v", stage, p.name, got[p.name], want[p.name])
		}
	}
}

// TestSnapshotReopenEquivalence ingests a corpus, checkpoints, and
// reopens both via the snapshot and via the forced full-scan fallback:
// every query family must answer byte-for-byte what the pre-close store
// answered, and the snapshot-loaded store must keep working as a live
// store (counters restored, new ingests visible and searchable).
func TestSnapshotReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	db, s := openDir(t, dir, OpenOptions{})
	loadDeepCorpus(t, s)
	docs, err := s.Documents()
	if err != nil || len(docs) < 3 {
		t.Fatalf("docs: %v (%d)", err, len(docs))
	}
	// A delete before the checkpoint exercises tombstones and pruned
	// derived entries in the snapshot.
	if err := s.DeleteDocument(docs[2].DocID); err != nil {
		t.Fatal(err)
	}
	want := runPlans(t, s)
	maxDoc := uint64(0)
	for _, d := range docs {
		if d.DocID > maxDoc {
			maxDoc = d.DocID
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot path.
	db2, s2 := openDir(t, dir, OpenOptions{})
	if st := s2.SnapshotStats(); !st.Enabled || !st.Loaded {
		t.Fatalf("snapshot not loaded: %+v", st)
	}
	if db2.DerivedLoads == 0 {
		t.Fatal("engine derived snapshot not loaded")
	}
	diffPlans(t, "snapshot reopen", runPlans(t, s2), want)
	db2.CloseDiscard()

	// Forced full-scan fallback on the identical on-disk state.
	db3, s3 := openDir(t, dir, OpenOptions{DisableSnapshot: true})
	if st := s3.SnapshotStats(); st.Enabled || st.Loaded {
		t.Fatalf("ablation flag ignored: %+v", st)
	}
	diffPlans(t, "scan reopen", runPlans(t, s3), want)
	db3.CloseDiscard()

	// The snapshot-loaded store must remain a fully live store.
	db4, s4 := openDir(t, dir, OpenOptions{})
	if !s4.SnapshotStats().Loaded {
		t.Fatal("snapshot not loaded on second reopen")
	}
	id, err := s4.StoreRaw("fresh.xml",
		[]byte(`<report><heading>Xenon Thrusters</heading><para>grid erosion telemetry</para></report>`))
	if err != nil {
		t.Fatal(err)
	}
	if id <= maxDoc {
		t.Fatalf("restored doc-ID counter reused an ID: got %d, prior max %d", id, maxDoc)
	}
	secs, err := s4.ContentSearch("erosion")
	if err != nil || len(secs) != 1 || secs[0].Context != "Xenon Thrusters" {
		t.Fatalf("post-reopen ingest not searchable: %v %+v", err, secs)
	}
	if err := db4.Close(); err != nil {
		t.Fatal(err)
	}

	// And the refreshed snapshot includes the new document.
	db5, s5 := openDir(t, dir, OpenOptions{})
	defer db5.CloseDiscard()
	if !s5.SnapshotStats().Loaded {
		t.Fatalf("refreshed snapshot not loaded: %+v", s5.SnapshotStats())
	}
	secs, err = s5.ContentSearch("erosion")
	if err != nil || len(secs) != 1 {
		t.Fatalf("refreshed snapshot misses new doc: %v %+v", err, secs)
	}
}

// TestSnapshotStaleAfterCrash mutates the store after a checkpoint, then
// crashes: the reopened store must reject the now-stale snapshot, rebuild
// by scan, and answer with the post-mutation state.
func TestSnapshotStaleAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, s := openDir(t, dir, OpenOptions{})
	loadDeepCorpus(t, s)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, s2 := openDir(t, dir, OpenOptions{})
	if !s2.SnapshotStats().Loaded {
		t.Fatal("setup: snapshot should load")
	}
	if _, err := s2.StoreRaw("late.xml",
		[]byte(`<report><heading>Regolith Handling</heading><para>auger torque margins</para></report>`)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := runPlans(t, s2)
	db2.CloseDiscard() // crash: WAL holds the late ingest, snapshot does not

	db3, s3 := openDir(t, dir, OpenOptions{})
	defer db3.CloseDiscard()
	st := s3.SnapshotStats()
	if st.Loaded {
		t.Fatal("stale snapshot was loaded after a crash with unreplayed WAL records")
	}
	if st.Fallback != "wal-replay" && st.Fallback != "stale" {
		t.Fatalf("unexpected fallback reason %q", st.Fallback)
	}
	diffPlans(t, "crash reopen", runPlans(t, s3), want)
	if secs, err := s3.ContentSearch("auger"); err != nil || len(secs) != 1 {
		t.Fatalf("late ingest lost: %v %+v", err, secs)
	}
}

// TestSnapshotCheckpointCrashMatrix simulates a crash at every step of
// the full checkpoint sequence — store snapshot write, engine derived
// write, catalog write, WAL truncation — and proves each aborted state
// reopens to the exact pre-crash answers, via the snapshot when its
// stamps prove it current and via the scan fallback otherwise.
func TestSnapshotCheckpointCrashMatrix(t *testing.T) {
	// The store snapshot's commit point is its rename: a crash before it
	// leaves the previous snapshot, whose LSN stamp no longer matches the
	// log end, so the reopen falls back to the scan rebuild.  From the
	// rename onward the snapshot is exactly as current as the flushed
	// heap plus the surviving WAL, so every later crash point reopens
	// through it (the post-recovery checkpoint in DB.Open re-commits the
	// catalog at the generation the aborted checkpoint stamped).
	steps := []struct {
		step       string
		wantLoaded bool // snapshot valid after this crash?
	}{
		{"snapshot-temp", false}, // previous snapshot, stale LSN stamp
		{"snapshot-rename", true},
		{"derived-temp", true},
		{"derived-rename", true},
		{"catalog-temp", true},
		{"catalog-rename", true},
		{"wal-temp", true},
		{"wal-rename", true},
	}
	for _, tc := range steps {
		t.Run(tc.step, func(t *testing.T) {
			dir := t.TempDir()
			db, s := openDir(t, dir, OpenOptions{})
			gen := corpus.New(99)
			for _, d := range gen.DeepReports(3, 3, 6, 4) {
				if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			}
			for _, d := range gen.Proposals(5) {
				if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Commit(); err != nil {
				t.Fatal(err)
			}
			want := runPlans(t, s)
			wantDocs := s.NumDocuments()

			injected := errors.New("injected crash")
			db.SetCheckpointFault(func(step string) error {
				if step == tc.step {
					return injected
				}
				return nil
			})
			if err := db.Checkpoint(); !errors.Is(err, injected) {
				t.Fatalf("checkpoint survived injected crash at %s: %v", tc.step, err)
			}
			db.CloseDiscard() // the crash

			db2, s2 := openDir(t, dir, OpenOptions{})
			defer db2.CloseDiscard()
			st := s2.SnapshotStats()
			if st.Loaded != tc.wantLoaded {
				t.Fatalf("crash at %s: snapshot loaded = %v (fallback %q), want %v",
					tc.step, st.Loaded, st.Fallback, tc.wantLoaded)
			}
			if got := s2.NumDocuments(); got != wantDocs {
				t.Fatalf("crash at %s: documents = %d, want %d", tc.step, got, wantDocs)
			}
			diffPlans(t, fmt.Sprintf("crash at %s", tc.step), runPlans(t, s2), want)
		})
	}
}

// TestSnapshotCorruptionFallsBack damages the snapshot file in several
// ways; every damaged form must be rejected in favour of the scan
// rebuild, never a failed open or wrong answers.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	db, s := openDir(t, dir, OpenOptions{})
	loadDeepCorpus(t, s)
	want := runPlans(t, s)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func() []byte{
		"bit-flip": func() []byte {
			b := append([]byte(nil), pristine...)
			b[len(b)/2] ^= 0x40
			return b
		},
		"truncated": func() []byte { return pristine[:len(pristine)*2/3] },
		"bad-magic": func() []byte {
			b := append([]byte(nil), pristine...)
			b[0] = 'X'
			return b
		},
		"empty": func() []byte { return nil },
	}
	for name, mk := range damage {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mk(), 0o644); err != nil {
				t.Fatal(err)
			}
			db2, s2 := openDir(t, dir, OpenOptions{})
			defer db2.CloseDiscard()
			st := s2.SnapshotStats()
			if st.Loaded {
				t.Fatalf("%s snapshot accepted", name)
			}
			if st.Fallback != "corrupt" {
				t.Fatalf("fallback reason = %q, want corrupt", st.Fallback)
			}
			diffPlans(t, name, runPlans(t, s2), want)
		})
	}
	// Restore the pristine file: it must load again (proves the damage
	// cases above were the only reason for fallback).
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	db3, s3 := openDir(t, dir, OpenOptions{})
	defer db3.CloseDiscard()
	if !s3.SnapshotStats().Loaded {
		t.Fatalf("pristine snapshot rejected: %+v", s3.SnapshotStats())
	}
	diffPlans(t, "pristine", runPlans(t, s3), want)
}

// TestSnapshotVersionSkewFallsBack: a snapshot whose version field is
// not the current one — an old v1 file or a newer format — must fall
// back to the scan rebuild (which retokenizes under the current
// tokenizer contract) and be rewritten at the current version by the
// next checkpoint.
func TestSnapshotVersionSkewFallsBack(t *testing.T) {
	dir := t.TempDir()
	db, s := openDir(t, dir, OpenOptions{})
	loadDeepCorpus(t, s)
	want := runPlans(t, s)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(pristine[8:12]); got != snapshotVersion {
		t.Fatalf("fresh snapshot version = %d, want %d", got, snapshotVersion)
	}

	for _, skew := range []uint32{1, snapshotVersion + 1} {
		t.Run(fmt.Sprintf("version=%d", skew), func(t *testing.T) {
			stale := append([]byte(nil), pristine...)
			binary.LittleEndian.PutUint32(stale[8:12], skew)
			if err := os.WriteFile(path, stale, 0o644); err != nil {
				t.Fatal(err)
			}
			// Fallback, never a failed open or wrong answers.
			db2, s2 := openDir(t, dir, OpenOptions{})
			if st := s2.SnapshotStats(); st.Loaded || st.Fallback != "version" {
				t.Fatalf("version-skewed snapshot mishandled: %+v", st)
			}
			diffPlans(t, "skew reopen", runPlans(t, s2), want)
			// The next checkpoint upgrades the file in place.
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			upgraded, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := binary.LittleEndian.Uint32(upgraded[8:12]); got != snapshotVersion {
				t.Fatalf("post-checkpoint version = %d, want %d", got, snapshotVersion)
			}
			db3, s3 := openDir(t, dir, OpenOptions{})
			defer db3.CloseDiscard()
			if st := s3.SnapshotStats(); !st.Loaded {
				t.Fatalf("upgraded snapshot not loaded: %+v", st)
			}
			diffPlans(t, "upgraded reopen", runPlans(t, s3), want)
		})
	}
}
