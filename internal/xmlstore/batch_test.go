package xmlstore

import (
	"fmt"
	"sync"
	"testing"

	"netmark/internal/corpus"
	"netmark/internal/ordbms"
)

func corpusBatch(n int, seed int64) []BatchDoc {
	gen := corpus.New(seed)
	docs := gen.Mixed(n)
	out := make([]BatchDoc, len(docs))
	for i, d := range docs {
		out[i] = BatchDoc{Name: d.Name, Data: d.Data}
	}
	return out
}

func TestStoreBatchMatchesSequential(t *testing.T) {
	batch := corpusBatch(40, 91)

	seq := memStore(t)
	for _, d := range batch {
		if _, err := seq.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	par := memStore(t)
	results := par.StoreBatch(batch, 4)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("doc %d (%s): %v", i, r.Name, r.Err)
		}
	}

	if seq.NumDocuments() != par.NumDocuments() || seq.NumNodes() != par.NumNodes() {
		t.Fatalf("counts diverge: seq %d/%d par %d/%d",
			seq.NumDocuments(), seq.NumNodes(), par.NumDocuments(), par.NumNodes())
	}
	// Same query results either way.
	for _, q := range []string{"Budget", "Title", "System"} {
		a, err := seq.ContextSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.ContextSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("context %q: seq %d sections, batch %d", q, len(a), len(b))
		}
	}
	a, _ := seq.ContentSearch("engine")
	b, _ := par.ContentSearch("engine")
	if len(a) != len(b) {
		t.Fatalf("content search diverges: %d vs %d", len(a), len(b))
	}
	// Reconstruction follows physical links; every document must round-trip.
	for _, r := range results {
		if _, err := par.Reconstruct(r.DocID); err != nil {
			t.Fatalf("reconstruct %d: %v", r.DocID, err)
		}
	}
}

func TestStoreBatchDocIDsFollowInputOrder(t *testing.T) {
	s := memStore(t)
	batch := corpusBatch(25, 7)
	results := s.StoreBatch(batch, 8)
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		if results[i].DocID != results[i-1].DocID+1 {
			t.Fatalf("doc IDs out of order: %d after %d", results[i].DocID, results[i-1].DocID)
		}
	}
	info, err := s.Document(results[3].DocID)
	if err != nil {
		t.Fatal(err)
	}
	if info.FileName != batch[3].Name {
		t.Fatalf("doc %d is %q, want %q", results[3].DocID, info.FileName, batch[3].Name)
	}
}

func TestStoreBatchIsolatesFailures(t *testing.T) {
	s := memStore(t)
	batch := corpusBatch(6, 13)
	batch[2] = BatchDoc{Name: "blob.bin", Data: []byte{0, 1, 2, 0xFF, 0, 3}}
	results := s.StoreBatch(batch, 3)
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Fatal("unconvertible document did not report an error")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
	}
	if got := s.NumDocuments(); got != 5 {
		t.Fatalf("stored %d documents, want 5", got)
	}
}

func TestStoreBatchEmptyAndWorkerClamp(t *testing.T) {
	s := memStore(t)
	if res := s.StoreBatch(nil, 4); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	// More workers than documents must not deadlock or drop docs.
	res := s.StoreBatch(corpusBatch(2, 3), 64)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestStoreBatchConcurrent drives several StoreBatch calls into one store
// at once (run under -race): document IDs must stay unique and every
// document queryable.
func TestStoreBatchConcurrent(t *testing.T) {
	s := memStore(t)
	const callers, perBatch = 4, 15
	var wg sync.WaitGroup
	resCh := make(chan []BatchResult, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resCh <- s.StoreBatch(corpusBatch(perBatch, seed), 2)
		}(int64(100 + c))
	}
	wg.Wait()
	close(resCh)
	seen := make(map[uint64]bool)
	for results := range resCh {
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if seen[r.DocID] {
				t.Fatalf("duplicate doc ID %d", r.DocID)
			}
			seen[r.DocID] = true
		}
	}
	if got := s.NumDocuments(); got != callers*perBatch {
		t.Fatalf("stored %d documents, want %d", got, callers*perBatch)
	}
	secs, err := s.ContextSearch("Title")
	if err != nil || len(secs) == 0 {
		t.Fatalf("search after concurrent batches: %d sections, err %v", len(secs), err)
	}
}

// TestStoreBatchGroupCommit verifies the WAL side of the tentpole: a
// batch of N documents costs one fsync, not N.
func TestStoreBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	_, syncs0 := db.WALStats()
	batch := corpusBatch(30, 77)
	for _, r := range s.StoreBatch(batch, 4) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	appends, syncs := db.WALStats()
	if appends == 0 {
		t.Fatal("no WAL records appended for a durable batch")
	}
	if got := syncs - syncs0; got != 1 {
		t.Fatalf("batch of %d docs issued %d fsyncs, want 1", len(batch), got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must be there.
	db2, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NumDocuments(); got != int64(len(batch)) {
		t.Fatalf("reopened store holds %d documents, want %d", got, len(batch))
	}
}

func BenchmarkStoreBatch(b *testing.B) {
	batch := corpusBatch(100, 55)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := memStore(b)
				for _, r := range s.StoreBatch(batch, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
