package xmlstore

import (
	"sync"
	"sync/atomic"

	"netmark/internal/ordbms"
)

// This file implements the decoded-node cache: a sharded, byte-capped
// cache of decoded XML-table rows, keyed by physical RowID.  The §2.1.4
// traversal kernel revisits the same rows constantly — every hit in a
// section walks the same parent/sibling chain, every section re-reads the
// heading's neighbours — and without the cache each revisit pays a table
// lock, a page latch, and a full record decode.  With it, a hop on a warm
// path is one shard read-lock map probe plus an atomic touch.
//
// Replacement is CLOCK (second chance), not strict LRU: a hit only sets
// an atomic used flag under the shard's read lock, so concurrent query
// workers hammering the same hot rows never serialise on a mutex the way
// an LRU list's MoveToFront would force them to.  Eviction sweeps the
// shard map, reprieving used entries once and dropping the rest until
// the shard fits its cap.
//
// Coherence: XML rows are immutable after ingest except for (a) the
// pass-2 link patch of a freshly inserted document and (b) document
// deletes.  Both paths call invalidate() for the affected RowIDs.  Fills
// racing an invalidation are handled with a fill token: beginFill
// snapshots the shard's invalidation generation before the heap fetch,
// and completeFill drops the fill if any invalidation hit the shard in
// between — a stale decode can never be published over a newer
// invalidation.
//
// Cached *Node values are shared across goroutines and MUST be treated as
// read-only, like cached query results.

const nodeCacheShardCount = 32

// nodeCacheEntry boxes one cached node with its byte charge and CLOCK
// reference flag.
type nodeCacheEntry struct {
	node *Node
	size int64
	used atomic.Bool
}

type nodeCacheShard struct {
	// mu is held for map probes only; never across I/O or decode.
	// netmarkvet:hot
	mu  sync.RWMutex
	gen uint64 // guarded by mu; bumped by every invalidation landing in this shard
	// netmarkvet:gen gen
	m     map[ordbms.RowID]*nodeCacheEntry // guarded by mu
	bytes int64                            // guarded by mu
}

// nodeCache is the sharded cache.  Shards keep lock hold times tiny and
// let concurrent queries touching different pages proceed in parallel.
type nodeCache struct {
	capPerShard int64
	shards      [nodeCacheShardCount]nodeCacheShard

	hits, misses, evictions atomic.Uint64
}

// NodeCacheStats is a snapshot of the decoded-node cache counters.
type NodeCacheStats struct {
	Hits      uint64 // lookups served from a cached decode
	Misses    uint64 // lookups that fetched and decoded the row
	Evictions uint64 // entries dropped to fit the byte cap
	Entries   int    // live entries
	Bytes     int64  // estimated bytes held
	Capacity  int64  // configured byte cap
}

func newNodeCache(capacity int64) *nodeCache {
	per := capacity / nodeCacheShardCount
	if per < 1 {
		per = 1
	}
	c := &nodeCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[ordbms.RowID]*nodeCacheEntry)
	}
	return c
}

func (c *nodeCache) shard(rid ordbms.RowID) *nodeCacheShard {
	// Fibonacci hashing over the packed rid spreads sequential pages
	// across shards.
	h := rid.Uint64() * 0x9E3779B97F4A7C15
	return &c.shards[h>>(64-5)]
}

// get probes the shard map for a decoded node: the warm traversal hop,
// two atomic counters and a map read.
//
// netmarkvet:hotpath
func (c *nodeCache) get(rid ordbms.RowID) (*Node, bool) {
	s := c.shard(rid)
	s.mu.RLock()
	e := s.m[rid]
	s.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	e.used.Store(true)
	c.hits.Add(1)
	return e.node, true
}

// beginFill snapshots the shard invalidation generation before the caller
// fetches and decodes the row.
func (c *nodeCache) beginFill(rid ordbms.RowID) uint64 {
	s := c.shard(rid)
	s.mu.RLock()
	g := s.gen
	s.mu.RUnlock()
	return g
}

// completeFill publishes a decoded node unless an invalidation hit the
// shard since beginFill — in that race the decode may predate the
// mutation, so it is dropped rather than published.
//
// netmarkvet:ignore genbump — a fill publishes a decode the gen token
// already fenced; it is not a logical mutation, so it must NOT bump gen
// (a bump here would invalidate concurrent fills forever).
func (c *nodeCache) completeFill(rid ordbms.RowID, n *Node, token uint64) {
	size := nodeFootprint(n)
	if size > c.capPerShard {
		return
	}
	s := c.shard(rid)
	s.mu.Lock()
	if s.gen != token {
		s.mu.Unlock()
		return
	}
	if _, ok := s.m[rid]; ok { // lost a fill race: keep the incumbent
		s.mu.Unlock()
		return
	}
	s.m[rid] = &nodeCacheEntry{node: n, size: size}
	s.bytes += size
	var evicted uint64
	if s.bytes > c.capPerShard {
		evicted = s.evictLocked(c.capPerShard)
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// evictLocked is the CLOCK sweep: entries touched since the last sweep
// get a second chance (flag cleared), untouched entries are dropped,
// until the shard fits cap.  Map iteration order serves as the clock
// hand; a second pass catches the case where every entry had its flag
// set.  Caller holds s.mu.
func (s *nodeCacheShard) evictLocked(cap int64) uint64 {
	var evicted uint64
	for pass := 0; pass < 2 && s.bytes > cap; pass++ {
		for rid, e := range s.m {
			if s.bytes <= cap {
				break
			}
			if pass == 0 && e.used.Swap(false) {
				continue // second chance
			}
			delete(s.m, rid)
			s.bytes -= e.size
			evicted++
		}
	}
	return evicted
}

// invalidate drops rid and fences concurrent fills of the shard.
func (c *nodeCache) invalidate(rid ordbms.RowID) {
	s := c.shard(rid)
	s.mu.Lock()
	s.gen++
	if e, ok := s.m[rid]; ok {
		delete(s.m, rid)
		s.bytes -= e.size
	}
	s.mu.Unlock()
}

func (c *nodeCache) stats() NodeCacheStats {
	st := NodeCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.capPerShard * nodeCacheShardCount,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		s.mu.RUnlock()
	}
	return st
}

// nodeFootprint estimates a decoded node's resident bytes: string
// payloads plus a fixed overhead for the struct and map slot.
func nodeFootprint(n *Node) int64 {
	size := int64(len(n.Name)+len(n.Data)) + 160
	for _, a := range n.Attrs {
		size += int64(len(a.Name)+len(a.Value)) + 32
	}
	return size
}
