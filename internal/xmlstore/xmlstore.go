// Package xmlstore implements the NETMARK XML Store — the paper's core
// contribution.  Every document, whatever its type, is decomposed into
// nodes and stored in the same two relational tables (Fig 5):
//
//	DOC:  DOC_ID, FILE_NAME, FILE_DATE, FILE_SIZE, FORMAT, TITLE,
//	      ROOT_ROWID, NNODES
//	XML:  NODEID (PK), DOC_ID (FK), NODETYPE, NODENAME, NODEDATA,
//	      ORDINAL, PARENTNODEID, PARENTROWID, PREVROWID, NEXTROWID,
//	      CHILDROWID
//
// No per-document-type schema ever exists: "the NETMARK storage scheme
// uses the same relational tables to represent and store any XML document
// type" (§2.1.1).  Node-to-node links are physical RowIDs, reproducing
// the paper's use of Oracle ROWIDs "for very fast traversal between nodes
// that are related": following a link costs one buffer-pool fetch.
//
// This package persists derived snapshots, so every committing rename
// must follow write-temp → fsync → rename → fsync-dir.
//
// netmarkvet:persistence
package xmlstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"netmark/internal/btree"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// Column order of the XML table.  Link columns are encoded as 8-byte
// packed RowIDs (BYTES) so link patches re-encode to the identical record
// size and never move a row.
const (
	xmlColNodeID = iota
	xmlColDocID
	xmlColNodeType
	xmlColNodeName
	xmlColNodeData
	xmlColOrdinal
	xmlColParentNodeID
	xmlColParentRowID
	xmlColPrevRowID
	xmlColNextRowID
	xmlColChildRowID
	xmlColAttrs
)

// Column order of the DOC table.
const (
	docColDocID = iota
	docColFileName
	docColFileDate
	docColFileSize
	docColFormat
	docColTitle
	docColRootRowID
	docColNNodes
)

// Node is a decoded row of the XML table.
type Node struct {
	NodeID   uint64
	DocID    uint64
	Class    sgml.NodeClass
	Name     string
	Data     string
	Ordinal  int
	ParentID uint64
	Attrs    []sgml.Attr

	RowID       ordbms.RowID // physical address of this node
	ParentRowID ordbms.RowID
	PrevRowID   ordbms.RowID
	NextRowID   ordbms.RowID
	ChildRowID  ordbms.RowID
}

// DocInfo is a decoded row of the DOC table.
type DocInfo struct {
	DocID     uint64
	FileName  string
	FileDate  int64
	FileSize  int64
	Format    string
	Title     string
	RootRowID ordbms.RowID
	NNodes    int64
	RowID     ordbms.RowID // physical address of the DOC row
}

// Section is one context/content search result: a heading and the text
// that follows it, as in Fig 6 of the paper.
type Section struct {
	DocID      uint64
	DocName    string
	DocTitle   string
	Context    string
	Content    string
	ContextRID ordbms.RowID
}

// Store is an open NETMARK XML Store.
type Store struct {
	db  *ordbms.DB
	xml *ordbms.Table
	doc *ordbms.Table

	// mu protects ID allocation only; hold times are a few instructions.
	// netmarkvet:hot netmarkvet:lockorder 20
	mu         sync.RWMutex
	nextNodeID uint64 // guarded by mu; netmarkvet:snap
	nextDocID  uint64 // guarded by mu; netmarkvet:snap

	// content is the full-text index over TEXT node data; IDs are packed
	// physical RowIDs, so a hit leads straight to the page.
	// netmarkvet:snap
	content *textindex.Index
	// contexts maps normalised (lowercased) heading text to the RowIDs
	// of CONTEXT nodes bearing it.  Guarded by ctxMu.
	// netmarkvet:snap netmarkvet:gen ctxGens
	contexts *btree.Tree[string, ordbms.RowID]
	// ctxMu protects the in-memory context btree and its generations;
	// never held across I/O.  netmarkvet:hot netmarkvet:lockorder 30
	ctxMu sync.RWMutex
	// ctxGens carries one mutation generation per normalised heading,
	// assigned from ctxGenCounter on every insert or removal of a RowID
	// under that heading.  Entries are never deleted (a tombstoned gen
	// keeps "heading existed then vanished" distinguishable from "never
	// existed"); result caches fold these into their keys the way they
	// fold the text index's per-term gens.  Guarded by ctxMu.
	// netmarkvet:snap
	ctxGens map[string]uint64
	// netmarkvet:snap
	ctxGenCounter uint64 // guarded by ctxMu

	// ctxIdx is the derived node→governing-CONTEXT index: for every TEXT
	// node, the RowID of the heading that governs it (ZeroRowID when the
	// document has no headings above the node).  Built from the flattened
	// tree at ingest, rebuilt on open, patched on delete — it turns the
	// §2.1.4 "traverse up via parent/sibling until the first context"
	// walk into one map probe.
	// ctxIdxMu protects the derived map only; never held across I/O.
	// netmarkvet:hot netmarkvet:lockorder 32
	ctxIdxMu sync.RWMutex
	ctxIdx   map[ordbms.RowID]ordbms.RowID // guarded by ctxIdxMu; netmarkvet:snap
	// ctxIdxOff disables the derived index so ContextFor falls back to
	// the pointer-chasing walk — the kernel ablation knob, set during
	// benchmark setup only.
	ctxIdxOff bool

	// nodes is the decoded-node cache (nil = disabled).  Set once via
	// EnableNodeCache during setup, before the store serves traffic.
	nodes *nodeCache

	// queryWorkers bounds the section-materialisation fan-out of the
	// search kernels (0 = GOMAXPROCS, 1 or negative = serial).  Set via
	// SetQueryWorkers during setup.
	queryWorkers int

	// docGens tracks one mutation generation per document ID: bumped when
	// the document becomes fully visible (tables + derived indexes) and
	// again when a delete starts tearing it down.  Result caches validate
	// entries against the generations of the documents they touched.
	// docGenMu protects the per-document generation map; never held
	// across I/O.  netmarkvet:hot netmarkvet:lockorder 34
	docGenMu      sync.RWMutex
	docGens       map[uint64]uint64 // guarded by docGenMu; netmarkvet:snap
	docGenCounter uint64            // guarded by docGenMu; netmarkvet:snap

	// Stats counters.  netmarkvet:hot netmarkvet:lockorder 40
	statsMu       sync.Mutex
	docsIngested  uint64 // guarded by statsMu; netmarkvet:snap
	nodesInserted uint64 // guarded by statsMu; netmarkvet:snap

	// ckptMu is the checkpoint barrier.  Every mutation path (ingest,
	// batch writer+indexer, delete) holds it for reading across its whole
	// table-plus-derived-index span; the snapshot hook holds it for
	// writing, so a serialised snapshot never captures a document between
	// its rows landing in the tables and its entries landing in the
	// derived indexes.  Queries never touch it.  It is the outermost
	// lock of every mutation path.  netmarkvet:lockorder 10
	ckptMu sync.RWMutex

	// snapStat tracks the derived-snapshot lifecycle (see SnapshotStats).
	snapMu   sync.Mutex
	snapStat SnapshotStats // guarded by snapMu

	// generation counts store mutations: every document ingest (including
	// its link patches) and every delete bumps it.  Result caches key on
	// it, so a bump implicitly invalidates everything cached against the
	// previous state without the cache ever scanning its entries.
	// netmarkvet:snap
	generation atomic.Uint64
}

var xmlSchema = ordbms.MustSchema(
	ordbms.Column{Name: "nodeid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "nodetype", Type: ordbms.TypeInt},
	ordbms.Column{Name: "nodename", Type: ordbms.TypeString},
	ordbms.Column{Name: "nodedata", Type: ordbms.TypeString},
	ordbms.Column{Name: "ordinal", Type: ordbms.TypeInt},
	ordbms.Column{Name: "parentnodeid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "parentrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "prevrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "nextrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "childrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "attrs", Type: ordbms.TypeString},
)

var docSchema = ordbms.MustSchema(
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "filename", Type: ordbms.TypeString},
	ordbms.Column{Name: "filedate", Type: ordbms.TypeInt},
	ordbms.Column{Name: "filesize", Type: ordbms.TypeInt},
	ordbms.Column{Name: "format", Type: ordbms.TypeString},
	ordbms.Column{Name: "title", Type: ordbms.TypeString},
	ordbms.Column{Name: "rootrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "nnodes", Type: ordbms.TypeInt},
)

// OpenOptions tunes Open's behaviour.
type OpenOptions struct {
	// DisableSnapshot forces the full-scan derived rebuild on open and
	// stops the store from writing snapshots at checkpoints — the
	// ablation knob for measuring what snapshotting buys (and the escape
	// hatch should a snapshot ever be suspected of divergence).
	DisableSnapshot bool
}

// Open attaches the store to a database, creating the universal tables on
// first use.  On a persistent reopen the derived indexes (text index,
// context btree, node→CONTEXT map, generation maps, ID counters) are
// loaded from the checkpoint snapshot when its stamps prove the heap has
// not moved since it was written; otherwise — and always for in-memory
// stores — they are rebuilt by the full heap scan.
func Open(db *ordbms.DB) (*Store, error) {
	return OpenWith(db, OpenOptions{})
}

// OpenWith is Open with explicit options.
func OpenWith(db *ordbms.DB, opts OpenOptions) (*Store, error) {
	s := &Store{
		db:         db,
		content:    textindex.New(),
		contexts:   btree.New[string, ordbms.RowID](strings.Compare),
		ctxGens:    make(map[string]uint64),
		ctxIdx:     make(map[ordbms.RowID]ordbms.RowID),
		docGens:    make(map[uint64]uint64),
		nextNodeID: 1,
		nextDocID:  1,
	}
	if s.xml = db.Table("XML"); s.xml == nil {
		t, err := db.CreateTable("XML", xmlSchema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("nodeid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("docid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("nodename"); err != nil {
			return nil, err
		}
		s.xml = t
	}
	if s.doc = db.Table("DOC"); s.doc == nil {
		t, err := db.CreateTable("DOC", docSchema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("docid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("filename"); err != nil {
			return nil, err
		}
		s.doc = t
	}
	if db.Dir() != "" && !opts.DisableSnapshot {
		s.snapStat.Enabled = true
		s.snapStat.Loaded, s.snapStat.Fallback = s.loadSnapshot(db)
	}
	if !s.snapStat.Loaded {
		if err := s.rebuildDerived(); err != nil {
			return nil, err
		}
	}
	// Register the save hook only now that the derived state is known
	// complete (loaded or fully rebuilt): a failed Open must never leave
	// a hook behind that could checkpoint half-built indexes under
	// current-looking stamps.
	if s.snapStat.Enabled {
		db.RegisterPreCheckpointHook(s.snapshotHook)
	}
	return s, nil
}

// rebuildDerived rescans the XML table to rebuild the text index, the
// context index, the node→governing-CONTEXT index and the ID counters
// after reopening a persistent store.  Runs during OpenWith, before
// the store is shared with any other goroutine.
//
// netmarkvet:ignore lockcheck — open-time, single-goroutine
func (s *Store) rebuildDerived() error {
	// The scan collects a flatNode view of the stored forest (structural
	// links remapped from RowIDs to slice indexes) so the governing-
	// context resolution reuses the exact ingest-time algorithm
	// (governingContexts) instead of a second implementation that could
	// drift from it.
	var flat []flatNode
	idxOf := make(map[ordbms.RowID]int)
	type pendingLinks struct{ prev, parent ordbms.RowID }
	var pend []pendingLinks
	maxNode, maxDoc := uint64(0), uint64(0)
	err := s.xml.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		nodeID := uint64(row[xmlColNodeID].Int)
		docID := uint64(row[xmlColDocID].Int)
		if nodeID > maxNode {
			maxNode = nodeID
		}
		if docID > maxDoc {
			maxDoc = docID
		}
		class := sgml.NodeClass(row[xmlColNodeType].Int)
		idxOf[rid] = len(flat)
		flat = append(flat, flatNode{class: class, rid: rid, prev: -1, parent: -1, next: -1, child: -1})
		pend = append(pend, pendingLinks{
			prev:   bytesToRID(row[xmlColPrevRowID].Bytes),
			parent: bytesToRID(row[xmlColParentRowID].Bytes),
		})
		switch class {
		case sgml.ClassText:
			s.content.Add(rid.Uint64(), row[xmlColNodeData].Str)
		case sgml.ClassContext:
			s.addContextKey(row[xmlColNodeData].Str, rid)
		}
		return true
	})
	if err != nil {
		return err
	}
	for i := range flat {
		if j, ok := idxOf[pend[i].prev]; ok && !pend[i].prev.IsZero() {
			flat[i].prev = j
		}
		if j, ok := idxOf[pend[i].parent]; ok && !pend[i].parent.IsZero() {
			flat[i].parent = j
		}
	}
	governs := governingContexts(flat)
	for i := range flat {
		if flat[i].class != sgml.ClassText {
			continue
		}
		if g := governs[i]; g >= 0 {
			s.ctxIdx[flat[i].rid] = flat[g].rid
		} else {
			s.ctxIdx[flat[i].rid] = ordbms.ZeroRowID
		}
	}
	err = s.doc.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		id := uint64(row[docColDocID].Int)
		if id > maxDoc {
			maxDoc = id
		}
		// Every stored document is live and queryable: give it a nonzero
		// generation so reopened stores expose the same "zero means not
		// live" stamp semantics a snapshot-loaded store does.
		s.bumpDocGeneration(id)
		return true
	})
	if err != nil {
		return err
	}
	s.nextNodeID = maxNode + 1
	s.nextDocID = maxDoc + 1
	return nil
}

func (s *Store) addContextKey(heading string, rid ordbms.RowID) {
	key := normalizeContext(heading)
	if key == "" {
		return
	}
	s.ctxMu.Lock()
	s.contexts.Insert(key, rid)
	s.ctxGenCounter++
	s.ctxGens[key] = s.ctxGenCounter
	s.ctxMu.Unlock()
}

func (s *Store) removeContextKey(heading string, rid ordbms.RowID) {
	key := normalizeContext(heading)
	if key == "" {
		return
	}
	s.ctxMu.Lock()
	s.contexts.Delete(key, func(r ordbms.RowID) bool { return r == rid })
	if len(s.contexts.Get(key)) == 0 {
		// Last bearer gone: prune the gen entry so heading churn cannot
		// grow the map without bound.  ContextGen reverts to 0, which
		// differs from every generation the heading held while live, and
		// the only results ever cached under 0 were computed while the
		// heading was absent — i.e. empty, which is again correct.
		delete(s.ctxGens, key)
	} else {
		s.ctxGenCounter++
		s.ctxGens[key] = s.ctxGenCounter
	}
	s.ctxMu.Unlock()
}

// ContextGen returns the heading's mutation generation: it changes
// exactly when a CONTEXT node bearing the (normalised) heading is added
// or removed, and is zero for headings the store has never held.  Result
// caches fold it into the key of an exact-context query, so writes that
// never touch the heading leave cached results reachable.
func (s *Store) ContextGen(heading string) uint64 {
	key := normalizeContext(heading)
	s.ctxMu.RLock()
	g := s.ctxGens[key]
	s.ctxMu.RUnlock()
	return g
}

// ContextPrefixGen fingerprints the part of the context index a prefix
// query reads: the set of matching headings and each one's generation.
// Any heading added under, removed from, or mutated within the prefix
// changes the value.  The ascent is bounded: a prefix matching more
// than prefixGenKeyBudget headings folds the global generation instead,
// so a cache-key computation never scans an unbounded slice of the
// index under ctxMu (broad prefixes trade invalidation precision for
// O(1) lookups).
func (s *Store) ContextPrefixGen(prefix string) uint64 {
	const prefixGenKeyBudget = 64
	key := normalizeContext(prefix)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	n := 0
	s.ctxMu.RLock()
	s.contexts.AscendPrefixFunc(key,
		func(k string) bool { return strings.HasPrefix(k, key) },
		func(k string, _ []ordbms.RowID) bool {
			if n++; n > prefixGenKeyBudget {
				return false
			}
			for i := 0; i < len(k); i++ {
				h = (h ^ uint64(k[i])) * prime64
			}
			h = (h ^ s.ctxGens[k]) * prime64
			return true
		})
	s.ctxMu.RUnlock()
	if n > prefixGenKeyBudget {
		h = (h ^ s.generation.Load()) * prime64
	}
	return h
}

// DocGeneration returns a document's mutation generation: assigned when
// the document becomes fully queryable, pruned to zero when a delete
// starts tearing it down.  Zero therefore means "not live" (never
// stored, or deleted) — which mismatches every nonzero stamp a cached
// result captured while the document was live, so stamp validation
// still catches deletes while doc churn cannot grow the map without
// bound.
func (s *Store) DocGeneration(docID uint64) uint64 {
	s.docGenMu.RLock()
	g := s.docGens[docID]
	s.docGenMu.RUnlock()
	return g
}

func (s *Store) bumpDocGeneration(docID uint64) {
	s.docGenMu.Lock()
	s.docGenCounter++
	s.docGens[docID] = s.docGenCounter
	s.docGenMu.Unlock()
}

func (s *Store) pruneDocGeneration(docID uint64) {
	s.docGenMu.Lock()
	delete(s.docGens, docID)
	s.docGenMu.Unlock()
}

// normalizeContext lowercases and squeezes whitespace so context matching
// is forgiving about case and layout (Context=introduction matches the
// "Introduction" heading).
func normalizeContext(h string) string {
	return strings.ToLower(strings.Join(strings.Fields(h), " "))
}

// DB returns the underlying database (for stats and checkpoints).
func (s *Store) DB() *ordbms.DB { return s.db }

// Stats returns ingestion counters.
func (s *Store) Stats() (docs, nodes uint64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.docsIngested, s.nodesInserted
}

// Generation returns the store's mutation generation.  It changes after
// every ingest, link patch, and delete; readers snapshot it *before*
// executing a query, so a result tagged with a generation can never be
// newer than the state it was computed from.
func (s *Store) Generation() uint64 { return s.generation.Load() }

// bumpGeneration marks the store mutated.  Called on every write path,
// including failed ones — a half-applied mutation must still invalidate.
func (s *Store) bumpGeneration() { s.generation.Add(1) }

// NumDocuments returns the number of stored documents.
func (s *Store) NumDocuments() int64 { return s.doc.Rows() }

// NumNodes returns the number of stored nodes.
func (s *Store) NumNodes() int64 { return s.xml.Rows() }

// rowToNode decodes an XML-table row.
func rowToNode(rid ordbms.RowID, row ordbms.Row) *Node {
	return &Node{
		Attrs:       decodeAttrs(row[xmlColAttrs].Str),
		NodeID:      uint64(row[xmlColNodeID].Int),
		DocID:       uint64(row[xmlColDocID].Int),
		Class:       sgml.NodeClass(row[xmlColNodeType].Int),
		Name:        row[xmlColNodeName].Str,
		Data:        row[xmlColNodeData].Str,
		Ordinal:     int(row[xmlColOrdinal].Int),
		ParentID:    uint64(row[xmlColParentNodeID].Int),
		RowID:       rid,
		ParentRowID: bytesToRID(row[xmlColParentRowID].Bytes),
		PrevRowID:   bytesToRID(row[xmlColPrevRowID].Bytes),
		NextRowID:   bytesToRID(row[xmlColNextRowID].Bytes),
		ChildRowID:  bytesToRID(row[xmlColChildRowID].Bytes),
	}
}

func rowToDoc(rid ordbms.RowID, row ordbms.Row) *DocInfo {
	return &DocInfo{
		DocID:     uint64(row[docColDocID].Int),
		FileName:  row[docColFileName].Str,
		FileDate:  row[docColFileDate].Int,
		FileSize:  row[docColFileSize].Int,
		Format:    row[docColFormat].Str,
		Title:     row[docColTitle].Str,
		RootRowID: bytesToRID(row[docColRootRowID].Bytes),
		NNodes:    row[docColNNodes].Int,
		RowID:     rid,
	}
}

func ridToBytes(rid ordbms.RowID) []byte {
	b := make([]byte, 8)
	putRID(b, rid)
	return b
}

func bytesToRID(b []byte) ordbms.RowID {
	if len(b) != 8 {
		return ordbms.ZeroRowID
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return ordbms.RowIDFromUint64(v)
}

// EnableNodeCache attaches a decoded-node cache capped at capacity
// bytes.  Call during setup, before the store serves traffic; capacity
// <= 0 disables caching.  Nodes served from the cache are shared across
// callers and must be treated as read-only (every traversal already
// does).
func (s *Store) EnableNodeCache(capacity int64) {
	if capacity <= 0 {
		s.nodes = nil
		return
	}
	s.nodes = newNodeCache(capacity)
}

// NodeCacheStats snapshots the decoded-node cache counters; ok is false
// when no cache is enabled.
func (s *Store) NodeCacheStats() (stats NodeCacheStats, ok bool) {
	if s.nodes == nil {
		return NodeCacheStats{}, false
	}
	return s.nodes.stats(), true
}

// SetQueryWorkers bounds the section-materialisation fan-out used by the
// search kernels: n <= 0 means GOMAXPROCS, 1 means serial.  Call during
// setup.
func (s *Store) SetQueryWorkers(n int) { s.queryWorkers = n }

// SetContextIndexEnabled toggles the derived node→governing-CONTEXT
// index consulted by ContextFor.  It exists for the kernel ablation
// benchmarks (compare the O(1) probe against the paper's pointer-chasing
// walk); call during setup only.
func (s *Store) SetContextIndexEnabled(enabled bool) { s.ctxIdxOff = !enabled }

// FetchNode reads the node at a physical RowID — one traversal hop.
// With the node cache enabled a warm hop is a shard map probe; a cold
// hop decodes straight from the latched page into a fresh Node with no
// intermediate Row or record copy.
//
// netmarkvet:hotpath
func (s *Store) FetchNode(rid ordbms.RowID) (*Node, error) {
	c := s.nodes
	if c == nil {
		return s.fetchNodeUncached(rid) // netmarkvet:allocok — uncached store: every hop decodes a fresh Node
	}
	if n, ok := c.get(rid); ok {
		return n, nil
	}
	token := c.beginFill(rid)
	n, err := s.fetchNodeUncached(rid) // netmarkvet:allocok — cold hop: the decoded Node is the product
	if err != nil {
		return nil, err
	}
	c.completeFill(rid, n, token) // netmarkvet:allocok — publishing the fill allocates the cache entry
	return n, nil
}

// fetchNodeUncached is the cold fetch path: one shared table lock, one
// page latch, and a decode into stack storage — no per-hop Row
// allocation, no record copy.
func (s *Store) fetchNodeUncached(rid ordbms.RowID) (*Node, error) {
	var cols [xmlColAttrs + 1]ordbms.Value
	err := s.xml.FetchView(rid, func(rec []byte) error {
		return ordbms.DecodeRowInto(rec, cols[:])
	})
	if err != nil {
		return nil, err
	}
	return &Node{
		Attrs:       decodeAttrs(cols[xmlColAttrs].Str),
		NodeID:      uint64(cols[xmlColNodeID].Int),
		DocID:       uint64(cols[xmlColDocID].Int),
		Class:       sgml.NodeClass(cols[xmlColNodeType].Int),
		Name:        cols[xmlColNodeName].Str,
		Data:        cols[xmlColNodeData].Str,
		Ordinal:     int(cols[xmlColOrdinal].Int),
		ParentID:    uint64(cols[xmlColParentNodeID].Int),
		RowID:       rid,
		ParentRowID: bytesToRID(cols[xmlColParentRowID].Bytes),
		PrevRowID:   bytesToRID(cols[xmlColPrevRowID].Bytes),
		NextRowID:   bytesToRID(cols[xmlColNextRowID].Bytes),
		ChildRowID:  bytesToRID(cols[xmlColChildRowID].Bytes),
	}, nil
}

// fetchNodesBatch resolves many RowIDs (sorted into physical order by
// the caller) to decoded nodes: cache hits are probed first, the misses
// go through Table.FetchMany in one lock acquisition, and the fresh
// decodes are published to the cache under their fill tokens.  out[i] is
// nil when rid i's record was deleted.
func (s *Store) fetchNodesBatch(rids []ordbms.RowID) ([]*Node, error) {
	out := make([]*Node, len(rids))
	c := s.nodes
	if c == nil {
		rows, err := s.xml.FetchMany(rids)
		if err != nil {
			return nil, err
		}
		for i, row := range rows {
			if row != nil {
				out[i] = rowToNode(rids[i], row)
			}
		}
		return out, nil
	}
	var missIdx []int
	var missRids []ordbms.RowID
	var tokens []uint64
	for i, rid := range rids {
		if n, ok := c.get(rid); ok {
			out[i] = n
			continue
		}
		missIdx = append(missIdx, i)
		missRids = append(missRids, rid)
		tokens = append(tokens, c.beginFill(rid))
	}
	if len(missRids) == 0 {
		return out, nil
	}
	rows, err := s.xml.FetchMany(missRids)
	if err != nil {
		return nil, err
	}
	for j, row := range rows {
		if row == nil {
			continue
		}
		n := rowToNode(missRids[j], row)
		out[missIdx[j]] = n
		c.completeFill(missRids[j], n, tokens[j])
	}
	return out, nil
}

// FetchNodeByID resolves a node through the NODEID secondary index — the
// traversal path a system without physical RowID links would use (B-tree
// probe plus heap fetch per hop).  It exists for the rowid-traversal
// ablation; the store itself always follows RowIDs.
func (s *Store) FetchNodeByID(nodeID uint64) (*Node, error) {
	rids, err := s.xml.Lookup("nodeid", ordbms.I(int64(nodeID)))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("xmlstore: no node %d", nodeID)
	}
	return s.FetchNode(rids[0])
}

// Parent follows the parent link (ZeroRowID at the root).
func (s *Store) Parent(n *Node) (*Node, error) {
	if n.ParentRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.ParentRowID)
}

// NextSibling follows the next-sibling link.
func (s *Store) NextSibling(n *Node) (*Node, error) {
	if n.NextRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.NextRowID)
}

// PrevSibling follows the previous-sibling link.
func (s *Store) PrevSibling(n *Node) (*Node, error) {
	if n.PrevRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.PrevRowID)
}

// FirstChild follows the first-child link.
func (s *Store) FirstChild(n *Node) (*Node, error) {
	if n.ChildRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.ChildRowID)
}

// ScanNodes iterates every stored node in physical order (used by
// full-scan baselines and integrity checks).
func (s *Store) ScanNodes(fn func(n *Node) bool) error {
	return s.xml.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		return fn(rowToNode(rid, row))
	})
}

// ErrNoDocument reports a document ID or name with no DOC row — either
// never stored or already deleted.  Readers racing a delete match it
// (with errors.Is) to skip the vanishing document instead of failing.
var ErrNoDocument = fmt.Errorf("xmlstore: no such document")

// IsGone reports whether err means a row or document vanished — the
// signature of racing a concurrent delete.  Readers skip gone items;
// any other error (I/O, corruption) must propagate.
func IsGone(err error) bool {
	return errors.Is(err, ErrNoDocument) || errors.Is(err, ordbms.ErrRecordDeleted)
}

// ErrDegraded is the engine's degraded-mode sentinel, re-exported so
// callers of the store API can match it without importing ordbms.
// Ingest and delete return it while the store is read-only after
// persistent write failure; search and reconstruction keep working.
var ErrDegraded = ordbms.ErrDegraded

// IsDegraded reports whether err means the store is in degraded
// read-only mode — the caller should retry later (HTTP layers answer
// 503 with Retry-After).
func IsDegraded(err error) bool {
	return errors.Is(err, ErrDegraded)
}

// IsTransient classifies an ingest failure as retryable: the document
// itself is fine, the store just could not persist it right now (device
// fault or degraded mode).  Parse and validation failures are permanent
// — retrying the same bytes cannot succeed — and callers quarantine
// them instead.
func IsTransient(err error) bool {
	return IsDegraded(err) || ordbms.IsIOFault(err)
}

// Health reports the underlying engine's write health (degraded mode,
// the fault that caused it, and the lifetime write-error count).
func (s *Store) Health() ordbms.HealthStatus {
	return s.db.Health()
}

// Document returns metadata for a document ID.
func (s *Store) Document(docID uint64) (*DocInfo, error) {
	rids, err := s.doc.Lookup("docid", ordbms.I(int64(docID)))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: id %d", ErrNoDocument, docID)
	}
	row, err := s.doc.Fetch(rids[0])
	if err != nil {
		return nil, err
	}
	return rowToDoc(rids[0], row), nil
}

// Documents lists all stored documents.
func (s *Store) Documents() ([]*DocInfo, error) {
	var out []*DocInfo
	err := s.doc.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		out = append(out, rowToDoc(rid, row))
		return true
	})
	return out, err
}

// DocumentByName returns metadata for a file name.
func (s *Store) DocumentByName(name string) (*DocInfo, error) {
	rids, err := s.doc.Lookup("filename", ordbms.S(name))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: name %q", ErrNoDocument, name)
	}
	row, err := s.doc.Fetch(rids[0])
	if err != nil {
		return nil, err
	}
	return rowToDoc(rids[0], row), nil
}

// ContentIndex exposes the text index (the query planner consults DF).
func (s *Store) ContentIndex() *textindex.Index { return s.content }

// TextIndexStats reports the text index's posting-list storage counters
// (block counts, resident bytes, compression ratio) for /stats.
func (s *Store) TextIndexStats() textindex.Stats { return s.content.Stats() }

// ContextCount returns how many CONTEXT nodes carry the heading.
func (s *Store) ContextCount(heading string) int {
	s.ctxMu.RLock()
	defer s.ctxMu.RUnlock()
	return len(s.contexts.Get(normalizeContext(heading)))
}

// ContextHeadings lists the distinct normalised headings in the store.
func (s *Store) ContextHeadings() []string {
	s.ctxMu.RLock()
	defer s.ctxMu.RUnlock()
	out := make([]string, 0, s.contexts.Keys())
	s.contexts.Ascend(func(k string, _ []ordbms.RowID) bool {
		out = append(out, k)
		return true
	})
	return out
}
