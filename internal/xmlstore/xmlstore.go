// Package xmlstore implements the NETMARK XML Store — the paper's core
// contribution.  Every document, whatever its type, is decomposed into
// nodes and stored in the same two relational tables (Fig 5):
//
//	DOC:  DOC_ID, FILE_NAME, FILE_DATE, FILE_SIZE, FORMAT, TITLE,
//	      ROOT_ROWID, NNODES
//	XML:  NODEID (PK), DOC_ID (FK), NODETYPE, NODENAME, NODEDATA,
//	      ORDINAL, PARENTNODEID, PARENTROWID, PREVROWID, NEXTROWID,
//	      CHILDROWID
//
// No per-document-type schema ever exists: "the NETMARK storage scheme
// uses the same relational tables to represent and store any XML document
// type" (§2.1.1).  Node-to-node links are physical RowIDs, reproducing
// the paper's use of Oracle ROWIDs "for very fast traversal between nodes
// that are related": following a link costs one buffer-pool fetch.
package xmlstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"netmark/internal/btree"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/textindex"
)

// Column order of the XML table.  Link columns are encoded as 8-byte
// packed RowIDs (BYTES) so link patches re-encode to the identical record
// size and never move a row.
const (
	xmlColNodeID = iota
	xmlColDocID
	xmlColNodeType
	xmlColNodeName
	xmlColNodeData
	xmlColOrdinal
	xmlColParentNodeID
	xmlColParentRowID
	xmlColPrevRowID
	xmlColNextRowID
	xmlColChildRowID
	xmlColAttrs
)

// Column order of the DOC table.
const (
	docColDocID = iota
	docColFileName
	docColFileDate
	docColFileSize
	docColFormat
	docColTitle
	docColRootRowID
	docColNNodes
)

// Node is a decoded row of the XML table.
type Node struct {
	NodeID   uint64
	DocID    uint64
	Class    sgml.NodeClass
	Name     string
	Data     string
	Ordinal  int
	ParentID uint64
	Attrs    []sgml.Attr

	RowID       ordbms.RowID // physical address of this node
	ParentRowID ordbms.RowID
	PrevRowID   ordbms.RowID
	NextRowID   ordbms.RowID
	ChildRowID  ordbms.RowID
}

// DocInfo is a decoded row of the DOC table.
type DocInfo struct {
	DocID     uint64
	FileName  string
	FileDate  int64
	FileSize  int64
	Format    string
	Title     string
	RootRowID ordbms.RowID
	NNodes    int64
	RowID     ordbms.RowID // physical address of the DOC row
}

// Section is one context/content search result: a heading and the text
// that follows it, as in Fig 6 of the paper.
type Section struct {
	DocID      uint64
	DocName    string
	DocTitle   string
	Context    string
	Content    string
	ContextRID ordbms.RowID
}

// Store is an open NETMARK XML Store.
type Store struct {
	db  *ordbms.DB
	xml *ordbms.Table
	doc *ordbms.Table

	mu         sync.RWMutex
	nextNodeID uint64
	nextDocID  uint64

	// content is the full-text index over TEXT node data; IDs are packed
	// physical RowIDs, so a hit leads straight to the page.
	content *textindex.Index
	// contexts maps normalised (lowercased) heading text to the RowIDs
	// of CONTEXT nodes bearing it.
	contexts *btree.Tree[string, ordbms.RowID]
	ctxMu    sync.RWMutex

	// Stats counters.
	statsMu       sync.Mutex
	docsIngested  uint64
	nodesInserted uint64

	// generation counts store mutations: every document ingest (including
	// its link patches) and every delete bumps it.  Result caches key on
	// it, so a bump implicitly invalidates everything cached against the
	// previous state without the cache ever scanning its entries.
	generation atomic.Uint64
}

var xmlSchema = ordbms.MustSchema(
	ordbms.Column{Name: "nodeid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "nodetype", Type: ordbms.TypeInt},
	ordbms.Column{Name: "nodename", Type: ordbms.TypeString},
	ordbms.Column{Name: "nodedata", Type: ordbms.TypeString},
	ordbms.Column{Name: "ordinal", Type: ordbms.TypeInt},
	ordbms.Column{Name: "parentnodeid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "parentrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "prevrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "nextrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "childrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "attrs", Type: ordbms.TypeString},
)

var docSchema = ordbms.MustSchema(
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "filename", Type: ordbms.TypeString},
	ordbms.Column{Name: "filedate", Type: ordbms.TypeInt},
	ordbms.Column{Name: "filesize", Type: ordbms.TypeInt},
	ordbms.Column{Name: "format", Type: ordbms.TypeString},
	ordbms.Column{Name: "title", Type: ordbms.TypeString},
	ordbms.Column{Name: "rootrowid", Type: ordbms.TypeBytes},
	ordbms.Column{Name: "nnodes", Type: ordbms.TypeInt},
)

// Open attaches the store to a database, creating the universal tables on
// first use and rebuilding the derived indexes (text + context) from the
// heap otherwise.
func Open(db *ordbms.DB) (*Store, error) {
	s := &Store{
		db:         db,
		content:    textindex.New(),
		contexts:   btree.New[string, ordbms.RowID](strings.Compare),
		nextNodeID: 1,
		nextDocID:  1,
	}
	if s.xml = db.Table("XML"); s.xml == nil {
		t, err := db.CreateTable("XML", xmlSchema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("nodeid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("docid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("nodename"); err != nil {
			return nil, err
		}
		s.xml = t
	}
	if s.doc = db.Table("DOC"); s.doc == nil {
		t, err := db.CreateTable("DOC", docSchema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("docid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("filename"); err != nil {
			return nil, err
		}
		s.doc = t
	}
	if err := s.rebuildDerived(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildDerived rescans the XML table to rebuild the text and context
// indexes and the ID counters after reopening a persistent store.
func (s *Store) rebuildDerived() error {
	maxNode, maxDoc := uint64(0), uint64(0)
	err := s.xml.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		nodeID := uint64(row[xmlColNodeID].Int)
		docID := uint64(row[xmlColDocID].Int)
		if nodeID > maxNode {
			maxNode = nodeID
		}
		if docID > maxDoc {
			maxDoc = docID
		}
		class := sgml.NodeClass(row[xmlColNodeType].Int)
		switch class {
		case sgml.ClassText:
			s.content.Add(rid.Uint64(), row[xmlColNodeData].Str)
		case sgml.ClassContext:
			s.addContextKey(row[xmlColNodeData].Str, rid)
		}
		return true
	})
	if err != nil {
		return err
	}
	err = s.doc.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		if id := uint64(row[docColDocID].Int); id > maxDoc {
			maxDoc = id
		}
		return true
	})
	if err != nil {
		return err
	}
	s.nextNodeID = maxNode + 1
	s.nextDocID = maxDoc + 1
	return nil
}

func (s *Store) addContextKey(heading string, rid ordbms.RowID) {
	key := normalizeContext(heading)
	if key == "" {
		return
	}
	s.ctxMu.Lock()
	s.contexts.Insert(key, rid)
	s.ctxMu.Unlock()
}

func (s *Store) removeContextKey(heading string, rid ordbms.RowID) {
	key := normalizeContext(heading)
	if key == "" {
		return
	}
	s.ctxMu.Lock()
	s.contexts.Delete(key, func(r ordbms.RowID) bool { return r == rid })
	s.ctxMu.Unlock()
}

// normalizeContext lowercases and squeezes whitespace so context matching
// is forgiving about case and layout (Context=introduction matches the
// "Introduction" heading).
func normalizeContext(h string) string {
	return strings.ToLower(strings.Join(strings.Fields(h), " "))
}

// DB returns the underlying database (for stats and checkpoints).
func (s *Store) DB() *ordbms.DB { return s.db }

// Stats returns ingestion counters.
func (s *Store) Stats() (docs, nodes uint64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.docsIngested, s.nodesInserted
}

// Generation returns the store's mutation generation.  It changes after
// every ingest, link patch, and delete; readers snapshot it *before*
// executing a query, so a result tagged with a generation can never be
// newer than the state it was computed from.
func (s *Store) Generation() uint64 { return s.generation.Load() }

// bumpGeneration marks the store mutated.  Called on every write path,
// including failed ones — a half-applied mutation must still invalidate.
func (s *Store) bumpGeneration() { s.generation.Add(1) }

// NumDocuments returns the number of stored documents.
func (s *Store) NumDocuments() int64 { return s.doc.Rows() }

// NumNodes returns the number of stored nodes.
func (s *Store) NumNodes() int64 { return s.xml.Rows() }

// rowToNode decodes an XML-table row.
func rowToNode(rid ordbms.RowID, row ordbms.Row) *Node {
	return &Node{
		Attrs:       decodeAttrs(row[xmlColAttrs].Str),
		NodeID:      uint64(row[xmlColNodeID].Int),
		DocID:       uint64(row[xmlColDocID].Int),
		Class:       sgml.NodeClass(row[xmlColNodeType].Int),
		Name:        row[xmlColNodeName].Str,
		Data:        row[xmlColNodeData].Str,
		Ordinal:     int(row[xmlColOrdinal].Int),
		ParentID:    uint64(row[xmlColParentNodeID].Int),
		RowID:       rid,
		ParentRowID: bytesToRID(row[xmlColParentRowID].Bytes),
		PrevRowID:   bytesToRID(row[xmlColPrevRowID].Bytes),
		NextRowID:   bytesToRID(row[xmlColNextRowID].Bytes),
		ChildRowID:  bytesToRID(row[xmlColChildRowID].Bytes),
	}
}

func rowToDoc(rid ordbms.RowID, row ordbms.Row) *DocInfo {
	return &DocInfo{
		DocID:     uint64(row[docColDocID].Int),
		FileName:  row[docColFileName].Str,
		FileDate:  row[docColFileDate].Int,
		FileSize:  row[docColFileSize].Int,
		Format:    row[docColFormat].Str,
		Title:     row[docColTitle].Str,
		RootRowID: bytesToRID(row[docColRootRowID].Bytes),
		NNodes:    row[docColNNodes].Int,
		RowID:     rid,
	}
}

func ridToBytes(rid ordbms.RowID) []byte {
	b := make([]byte, 8)
	putRID(b, rid)
	return b
}

func bytesToRID(b []byte) ordbms.RowID {
	if len(b) != 8 {
		return ordbms.ZeroRowID
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return ordbms.RowIDFromUint64(v)
}

// FetchNode reads the node at a physical RowID — one traversal hop.
func (s *Store) FetchNode(rid ordbms.RowID) (*Node, error) {
	row, err := s.xml.Fetch(rid)
	if err != nil {
		return nil, err
	}
	return rowToNode(rid, row), nil
}

// FetchNodeByID resolves a node through the NODEID secondary index — the
// traversal path a system without physical RowID links would use (B-tree
// probe plus heap fetch per hop).  It exists for the rowid-traversal
// ablation; the store itself always follows RowIDs.
func (s *Store) FetchNodeByID(nodeID uint64) (*Node, error) {
	rids, err := s.xml.Lookup("nodeid", ordbms.I(int64(nodeID)))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("xmlstore: no node %d", nodeID)
	}
	return s.FetchNode(rids[0])
}

// Parent follows the parent link (ZeroRowID at the root).
func (s *Store) Parent(n *Node) (*Node, error) {
	if n.ParentRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.ParentRowID)
}

// NextSibling follows the next-sibling link.
func (s *Store) NextSibling(n *Node) (*Node, error) {
	if n.NextRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.NextRowID)
}

// PrevSibling follows the previous-sibling link.
func (s *Store) PrevSibling(n *Node) (*Node, error) {
	if n.PrevRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.PrevRowID)
}

// FirstChild follows the first-child link.
func (s *Store) FirstChild(n *Node) (*Node, error) {
	if n.ChildRowID.IsZero() {
		return nil, nil
	}
	return s.FetchNode(n.ChildRowID)
}

// ScanNodes iterates every stored node in physical order (used by
// full-scan baselines and integrity checks).
func (s *Store) ScanNodes(fn func(n *Node) bool) error {
	return s.xml.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		return fn(rowToNode(rid, row))
	})
}

// ErrNoDocument reports a document ID or name with no DOC row — either
// never stored or already deleted.  Readers racing a delete match it
// (with errors.Is) to skip the vanishing document instead of failing.
var ErrNoDocument = fmt.Errorf("xmlstore: no such document")

// IsGone reports whether err means a row or document vanished — the
// signature of racing a concurrent delete.  Readers skip gone items;
// any other error (I/O, corruption) must propagate.
func IsGone(err error) bool {
	return errors.Is(err, ErrNoDocument) || errors.Is(err, ordbms.ErrRecordDeleted)
}

// Document returns metadata for a document ID.
func (s *Store) Document(docID uint64) (*DocInfo, error) {
	rids, err := s.doc.Lookup("docid", ordbms.I(int64(docID)))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: id %d", ErrNoDocument, docID)
	}
	row, err := s.doc.Fetch(rids[0])
	if err != nil {
		return nil, err
	}
	return rowToDoc(rids[0], row), nil
}

// Documents lists all stored documents.
func (s *Store) Documents() ([]*DocInfo, error) {
	var out []*DocInfo
	err := s.doc.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		out = append(out, rowToDoc(rid, row))
		return true
	})
	return out, err
}

// DocumentByName returns metadata for a file name.
func (s *Store) DocumentByName(name string) (*DocInfo, error) {
	rids, err := s.doc.Lookup("filename", ordbms.S(name))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: name %q", ErrNoDocument, name)
	}
	row, err := s.doc.Fetch(rids[0])
	if err != nil {
		return nil, err
	}
	return rowToDoc(rids[0], row), nil
}

// ContentIndex exposes the text index (the query planner consults DF).
func (s *Store) ContentIndex() *textindex.Index { return s.content }

// ContextCount returns how many CONTEXT nodes carry the heading.
func (s *Store) ContextCount(heading string) int {
	s.ctxMu.RLock()
	defer s.ctxMu.RUnlock()
	return len(s.contexts.Get(normalizeContext(heading)))
}

// ContextHeadings lists the distinct normalised headings in the store.
func (s *Store) ContextHeadings() []string {
	s.ctxMu.RLock()
	defer s.ctxMu.RUnlock()
	out := make([]string, 0, s.contexts.Keys())
	s.contexts.Ascend(func(k string, _ []ordbms.RowID) bool {
		out = append(out, k)
		return true
	})
	return out
}
