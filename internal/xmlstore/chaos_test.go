package xmlstore

import (
	"fmt"
	"testing"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/vfs"
)

// This file is the chaos suite the degraded-mode work is judged by:
// randomized fault schedules (vfs.RandomSchedule) crossed with the
// crash matrix.  The invariant under every schedule and crash timing is
// binary — each ingest either commits durably and stays readable
// byte-for-byte, or reports an error; never a phantom ack, never
// corruption of what was acked.

// chaosDoc builds a small but non-trivial document whose reconstruction
// exercises headings, paragraphs and attributes.
func chaosDoc(i int) (string, []byte) {
	name := fmt.Sprintf("doc-%03d.html", i)
	data := []byte(fmt.Sprintf(
		`<html><head><title>Chaos %d</title></head><body><h1>Doc %d</h1><p>payload %d with enough text to shred into sections</p></body></html>`,
		i, i, i))
	return name, data
}

// reconstructBytes reads a document back through the full reconstruction
// path and serialises it, so comparisons are byte-for-byte.
func reconstructBytes(t *testing.T, s *Store, name string) string {
	t.Helper()
	info, err := s.DocumentByName(name)
	if err != nil {
		t.Fatalf("acked document %s not found: %v", name, err)
	}
	tree, err := s.Reconstruct(info.DocID)
	if err != nil {
		t.Fatalf("acked document %s not reconstructable: %v", name, err)
	}
	return sgml.Serialize(tree)
}

// TestChaosRandomFaultSchedules runs the binary-outcome invariant over
// deterministic pseudo-random fault schedules.  Even seeds heal the
// store live (clear faults, checkpoint, verify write service returns)
// before crashing; odd seeds crash while still degraded — crossing the
// schedules with both crash timings.
func TestChaosRandomFaultSchedules(t *testing.T) {
	const nDocs = 25
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(nil)
			db, err := ordbms.Open(ordbms.Options{Dir: dir, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			s, err := Open(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range vfs.RandomSchedule(seed, 4) {
				ffs.AddRule(r)
			}

			// Ingest under fire.  acked maps name -> the serialised
			// reconstruction captured at ack time.
			acked := make(map[string]string)
			errored := 0
			for i := 0; i < nDocs; i++ {
				name, data := chaosDoc(i)
				_, err := s.StoreRaw(name, data)
				if err == nil {
					err = db.Commit()
				}
				if err != nil {
					// Reported error: the one legal non-ack outcome.  An
					// I/O-rooted failure must be visibly transient or have
					// degraded the store — never a silent classification.
					errored++
					if !IsTransient(err) && ordbms.IsIOFault(err) {
						t.Fatalf("I/O failure not classified transient: %v", err)
					}
					continue
				}
				// Acked: must be readable right now, and we remember the
				// exact bytes the reopen must reproduce.
				acked[name] = reconstructBytes(t, s, name)
			}
			t.Logf("seed %d: %d acked, %d errored, %d faults injected",
				seed, len(acked), errored, ffs.Injected())

			// While degraded, writes refuse fast and reads keep serving.
			if s.Health().Degraded {
				if _, err := s.StoreRaw("refused.html", []byte("<x/>")); !IsDegraded(err) {
					t.Fatalf("write while degraded = %v, want ErrDegraded", err)
				}
				for name, want := range acked {
					if got := reconstructBytes(t, s, name); got != want {
						t.Fatalf("degraded read of %s differs from acked bytes", name)
					}
				}
			}

			if seed%2 == 0 {
				// Live heal: faults clear, a successful checkpoint restores
				// write service without a restart.
				ffs.ClearFaults()
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("healing checkpoint: %v", err)
				}
				if s.Health().Degraded {
					t.Fatal("degraded flag survived a successful checkpoint")
				}
				name, data := chaosDoc(1000)
				if _, err := s.StoreRaw(name, data); err != nil {
					t.Fatalf("ingest after heal: %v", err)
				}
				if err := db.Commit(); err != nil {
					t.Fatalf("commit after heal: %v", err)
				}
				acked[name] = reconstructBytes(t, s, name)
			}
			db.CloseDiscard() // crash (while degraded, for odd seeds)

			// Reopen on a healthy filesystem: every acked document must be
			// there, byte-identical to its acked reconstruction.
			db2, err := ordbms.Open(ordbms.Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after chaos: %v", err)
			}
			s2, err := Open(db2)
			if err != nil {
				t.Fatalf("store reopen after chaos: %v", err)
			}
			if s2.Health().Degraded {
				t.Fatal("fresh open started degraded")
			}
			for name, want := range acked {
				if got := reconstructBytes(t, s2, name); got != want {
					t.Fatalf("%s not byte-identical after reopen", name)
				}
			}
			// Write service is fully back.
			name, data := chaosDoc(2000)
			if _, err := s2.StoreRaw(name, data); err != nil {
				t.Fatalf("ingest after reopen: %v", err)
			}
			if err := db2.Commit(); err != nil {
				t.Fatalf("commit after reopen: %v", err)
			}
			post := reconstructBytes(t, s2, name)
			db2.CloseDiscard() // crash again

			// One more reopen: the post-recovery ingest survived too.
			db3, err := ordbms.Open(ordbms.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			s3, err := Open(db3)
			if err != nil {
				t.Fatal(err)
			}
			if got := reconstructBytes(t, s3, name); got != post {
				t.Fatalf("post-recovery ingest lost or corrupted")
			}
			for name, want := range acked {
				if got := reconstructBytes(t, s3, name); got != want {
					t.Fatalf("%s corrupted by second crash/reopen", name)
				}
			}
			db3.CloseDiscard()
		})
	}
}

// TestChaosByteBudget drives ingestion into a shrinking ENOSPC budget —
// the full-disk trajectory rather than point faults — and asserts the
// same binary outcome plus clean recovery once space returns.
func TestChaosByteBudget(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	db, err := ordbms.Open(ordbms.Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	// Enough budget for the first documents, then the disk fills.
	ffs.SetBytesBudget(64 << 10)

	acked := make(map[string]string)
	errored := 0
	for i := 0; i < 40; i++ {
		name, data := chaosDoc(i)
		_, err := s.StoreRaw(name, data)
		if err == nil {
			err = db.Commit()
		}
		if err != nil {
			errored++
			continue
		}
		acked[name] = reconstructBytes(t, s, name)
	}
	if errored == 0 {
		t.Fatal("budget never exhausted — test proves nothing")
	}
	if len(acked) == 0 {
		t.Fatal("nothing acked before exhaustion — budget too small")
	}
	db.CloseDiscard() // crash with the disk full

	db2, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after full disk: %v", err)
	}
	s2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range acked {
		if got := reconstructBytes(t, s2, name); got != want {
			t.Fatalf("%s not byte-identical after full-disk crash", name)
		}
	}
	name, data := chaosDoc(999)
	if _, err := s2.StoreRaw(name, data); err != nil {
		t.Fatalf("ingest after space returned: %v", err)
	}
	if err := db2.Commit(); err != nil {
		t.Fatalf("commit after space returned: %v", err)
	}
	db2.CloseDiscard()
}
