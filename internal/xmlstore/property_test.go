package xmlstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"netmark/internal/docform"
	"netmark/internal/sgml"
)

// buildRandomTree turns a byte string into a deterministic document tree
// (same construction as the sgml round-trip property test).
func buildRandomTree(shape []byte) *sgml.Node {
	names := []string{"sec", "para", "item", "note", "detail"}
	texts := []string{"alpha beta", "x < y", "gamma & delta", "plain", "42"}
	root := sgml.NewElement("document")
	cur := root
	for _, b := range shape {
		switch b % 4 {
		case 0:
			el := sgml.NewElement(names[int(b/4)%len(names)])
			cur.AppendChild(el)
			cur = el
		case 1:
			cur.AppendChild(sgml.NewText(texts[int(b/4)%len(texts)]))
		case 2:
			if cur != root && cur.Parent != nil {
				cur = cur.Parent
			}
		case 3:
			el := sgml.NewElement(names[int(b/4)%len(names)])
			el.SetAttr("k", texts[int(b/4)%len(texts)])
			cur.AppendChild(el)
		}
	}
	if root.FirstChild == nil {
		root.AppendChild(sgml.NewText("empty"))
	}
	return root
}

// canonical produces a text-merge-invariant structural fingerprint.
func canonicalTree(n *sgml.Node) string {
	var sb strings.Builder
	var walk func(x *sgml.Node)
	walk = func(x *sgml.Node) {
		switch x.Kind {
		case sgml.ElementNode:
			sb.WriteString("<" + x.Name)
			for _, a := range x.Attrs {
				sb.WriteString(" " + a.Name + "=" + a.Value)
			}
			sb.WriteString(">")
			var txt strings.Builder
			flush := func() {
				if strings.TrimSpace(txt.String()) != "" {
					sb.WriteString("[" + txt.String() + "]")
				}
				txt.Reset()
			}
			for c := x.FirstChild; c != nil; c = c.NextSibling {
				if c.Kind == sgml.TextNode {
					txt.WriteString(c.Data)
					continue
				}
				flush()
				walk(c)
			}
			flush()
			sb.WriteString("</" + x.Name + ">")
		case sgml.TextNode:
			sb.WriteString("[" + x.Data + "]")
		}
	}
	walk(n)
	return sb.String()
}

// Property: any tree survives store + reconstruct structurally intact.
func TestQuickStoreReconstructRoundTrip(t *testing.T) {
	s := memStore(t)
	i := 0
	f := func(shape []byte) bool {
		i++
		tree := buildRandomTree(shape)
		want := canonicalTree(tree)
		id, err := s.StoreDocument(docform.Meta{
			FileName: fmt.Sprintf("prop-%d.xml", i), Format: "xml",
		}, tree, sgml.XMLConfig())
		if err != nil {
			t.Logf("store: %v", err)
			return false
		}
		got, err := s.Reconstruct(id)
		if err != nil {
			t.Logf("reconstruct: %v", err)
			return false
		}
		return canonicalTree(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every TEXT node's content is findable through content search
// (index completeness).
func TestQuickContentIndexCompleteness(t *testing.T) {
	s := memStore(t)
	n := 0
	f := func(words []string) bool {
		n++
		// Build a document whose body is the given words plus a unique
		// marker, then verify the marker always hits.
		marker := fmt.Sprintf("uniquemarker%d", n)
		body := marker
		for _, w := range words {
			clean := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return -1
			}, strings.ToLower(w))
			if clean != "" {
				body += " " + clean
			}
		}
		src := `<html><body><h1>Sect</h1><p>` + body + `</p></body></html>`
		if _, err := s.StoreRaw(fmt.Sprintf("c%d.html", n), []byte(src)); err != nil {
			return false
		}
		secs, err := s.ContentSearch(marker)
		if err != nil || len(secs) != 1 {
			return false
		}
		return strings.Contains(secs[0].Content, marker)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIngestAndSearch hammers the store with parallel writers
// and readers; the store must stay consistent throughout.
func TestConcurrentIngestAndSearch(t *testing.T) {
	s := memStore(t)
	// Seed so searches have hits from the start.
	ingest(t, s, "seed.html", `<html><body><h1>Common</h1><p>seed shared term</p></body></html>`)

	const writers, readers, perWriter = 4, 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src := fmt.Sprintf(`<html><body><h1>Common</h1><p>writer %d doc %d shared</p></body></html>`, w, i)
				if _, err := s.StoreRaw(fmt.Sprintf("w%d-%d.html", w, i), []byte(src)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.ContextSearch("Common"); err != nil {
					errs <- err
					return
				}
				if _, err := s.ContentSearch("shared"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state: all documents present and searchable.
	secs, err := s.ContextSearch("Common")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + writers*perWriter
	if len(secs) != want {
		t.Fatalf("sections = %d, want %d", len(secs), want)
	}
	if s.NumDocuments() != int64(want) {
		t.Fatalf("docs = %d", s.NumDocuments())
	}
}

// TestDeleteDuringSearch interleaves deletions with reads.
func TestDeleteDuringSearch(t *testing.T) {
	s := memStore(t)
	var ids []uint64
	for i := 0; i < 40; i++ {
		id := ingest(t, s, fmt.Sprintf("d%d.html", i),
			`<html><body><h1>Volatile</h1><p>spinning content</p></body></html>`)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, id := range ids[:20] {
			if err := s.DeleteDocument(id); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := s.ContextSearch("Volatile"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	secs, err := s.ContextSearch("Volatile")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 20 {
		t.Fatalf("sections = %d, want 20", len(secs))
	}
}
