package xmlstore

import (
	"testing"

	"netmark/internal/corpus"
)

// loadProposals fills a store with n generated proposals, each carrying
// the standard headings (Title, Budget, ...).
func loadProposals(t *testing.T, n int) *Store {
	t.Helper()
	s := memStore(t)
	gen := corpus.New(int64(n))
	for _, d := range gen.Proposals(n) {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestContextSearchNLimit(t *testing.T) {
	s := loadProposals(t, 30)
	full, err := s.ContextSearchN("Budget", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 30 {
		t.Fatalf("unlimited = %d sections", len(full))
	}
	capped, err := s.ContextSearchN("Budget", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 7 {
		t.Fatalf("limit 7 returned %d", len(capped))
	}
	// The capped results are a prefix of the full physical-order results.
	for i := range capped {
		if capped[i].ContextRID != full[i].ContextRID {
			t.Fatalf("capped[%d] diverges from full ordering", i)
		}
	}
}

func TestContentSearchNLimit(t *testing.T) {
	s := loadProposals(t, 30)
	full, err := s.ContentSearchN("budget", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Fatalf("corpus too small for the test: %d hits", len(full))
	}
	capped, err := s.ContentSearchN("budget", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 5 {
		t.Fatalf("limit 5 returned %d", len(capped))
	}
}

func TestSearchNLimitBothPlans(t *testing.T) {
	s := loadProposals(t, 30)
	// Planner-chosen plan, capped, must agree with the uncapped prefix.
	full, err := s.SearchN("Budget", "request", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("corpus too small: %d combined hits", len(full))
	}
	capped, err := s.SearchN("Budget", "request", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("limit 3 returned %d", len(capped))
	}
	// Both explicit plans must respect the cap too.
	a, err := s.searchDriveContext("Budget", "request", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.searchDriveContent("Budget", "request", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("plan caps: ctx=%d content=%d", len(a), len(b))
	}
}

func TestContentSearchDocsNLimit(t *testing.T) {
	s := loadProposals(t, 20)
	full, err := s.ContentSearchDocsN("budget", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 20 {
		t.Fatalf("unlimited docs = %d", len(full))
	}
	capped, err := s.ContentSearchDocsN("budget", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 4 {
		t.Fatalf("limit 4 returned %d docs", len(capped))
	}
}
