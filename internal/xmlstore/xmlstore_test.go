package xmlstore

import (
	"fmt"
	"strings"
	"testing"

	"netmark/internal/corpus"
	"netmark/internal/docform"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
)

func memStore(t testing.TB) *Store {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingest(t testing.TB, s *Store, name, data string) uint64 {
	t.Helper()
	id, err := s.StoreRaw(name, []byte(data))
	if err != nil {
		t.Fatalf("ingest %s: %v", name, err)
	}
	return id
}

const sampleHTML = `<html><head><title>Sample Report</title></head><body>
<h1>Introduction</h1>
<p>This report describes the shuttle program status.</p>
<h2>Technology Gap</h2>
<p>The gap is shrinking across propulsion systems.</p>
<h2>Budget</h2>
<p>Funding request of $2M for cryogenic testing.</p>
</body></html>`

func TestStoreDocumentBasics(t *testing.T) {
	s := memStore(t)
	id := ingest(t, s, "sample.html", sampleHTML)
	if id == 0 {
		t.Fatal("docID must be nonzero")
	}
	info, err := s.Document(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.FileName != "sample.html" || info.Format != "html" {
		t.Fatalf("info = %+v", info)
	}
	if info.Title != "Sample Report" {
		t.Fatalf("title = %q", info.Title)
	}
	if info.NNodes < 10 {
		t.Fatalf("nnodes = %d", info.NNodes)
	}
	if s.NumDocuments() != 1 {
		t.Fatalf("docs = %d", s.NumDocuments())
	}
}

// TestUniversalSchemaAllFormats: the Fig 5 property — every document
// type lands in the same two tables, no per-type DDL.
func TestUniversalSchemaAllFormats(t *testing.T) {
	s := memStore(t)
	inputs := map[string]string{
		"a.html":   sampleHTML,
		"b.txt":    "SUMMARY\n\nplain text report about engines\n",
		"c.rtf":    `{\rtf1 {\b Findings}\par The manifold was tested.\par}`,
		"d.csv":    "name,amount\nalpha,100\nbeta,200\n",
		"e.slides": "=== Overview\n- first point\n",
		"f.xml":    `<records><entry id="1"><field>value</field></entry></records>`,
	}
	tablesBefore := len(s.DB().TableNames())
	for name, data := range inputs {
		ingest(t, s, name, data)
	}
	if got := len(s.DB().TableNames()); got != tablesBefore {
		t.Fatalf("ingestion created tables: %d -> %d", tablesBefore, got)
	}
	if s.NumDocuments() != int64(len(inputs)) {
		t.Fatalf("docs = %d", s.NumDocuments())
	}
}

func TestNodeLinksFormAConsistentTree(t *testing.T) {
	s := memStore(t)
	id := ingest(t, s, "sample.html", sampleHTML)
	info, err := s.Document(id)
	if err != nil {
		t.Fatal(err)
	}
	root, err := s.FetchNode(info.RootRowID)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "document" {
		t.Fatalf("root = %q", root.Name)
	}
	if !root.ParentRowID.IsZero() {
		t.Fatal("root must have no parent")
	}
	// Every child's parent link must point back; sibling links must be
	// mutually consistent.
	var check func(n *Node) int
	check = func(n *Node) int {
		count := 1
		child, err := s.FirstChild(n)
		if err != nil {
			t.Fatal(err)
		}
		var prev *Node
		for child != nil {
			if child.ParentRowID != n.RowID {
				t.Fatalf("child %d parent link broken", child.NodeID)
			}
			if prev != nil {
				if child.PrevRowID != prev.RowID {
					t.Fatalf("prev link broken at node %d", child.NodeID)
				}
				if prev.NextRowID != child.RowID {
					t.Fatalf("next link broken at node %d", prev.NodeID)
				}
			} else if !child.PrevRowID.IsZero() {
				t.Fatalf("first child %d has prev link", child.NodeID)
			}
			count += check(child)
			prev = child
			child, err = s.NextSibling(child)
			if err != nil {
				t.Fatal(err)
			}
		}
		return count
	}
	total := check(root)
	if int64(total) != info.NNodes {
		t.Fatalf("link-walk found %d nodes, DOC says %d", total, info.NNodes)
	}
}

func TestContextSearch(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "sample.html", sampleHTML)
	secs, err := s.ContextSearch("Budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0].Context != "Budget" {
		t.Fatalf("context = %q", secs[0].Context)
	}
	if !strings.Contains(secs[0].Content, "$2M") {
		t.Fatalf("content = %q", secs[0].Content)
	}
}

func TestContextSearchCaseInsensitive(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "sample.html", sampleHTML)
	for _, q := range []string{"budget", "BUDGET", "  Budget  "} {
		secs, err := s.ContextSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(secs) != 1 {
			t.Fatalf("ContextSearch(%q) = %d sections", q, len(secs))
		}
	}
}

func TestContextSearchAcrossDocuments(t *testing.T) {
	s := memStore(t)
	// Fig 6: a context search pulls the section from all documents.
	for i := 0; i < 5; i++ {
		ingest(t, s, fmt.Sprintf("doc%d.html", i), fmt.Sprintf(
			`<html><body><h1>Status</h1><p>status of unit %d</p><h1>Other</h1><p>x</p></body></html>`, i))
	}
	secs, err := s.ContextSearch("Status")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 5 {
		t.Fatalf("sections = %d", len(secs))
	}
	seen := map[uint64]bool{}
	for _, sec := range secs {
		seen[sec.DocID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("documents covered = %d", len(seen))
	}
}

func TestContentSearch(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "sample.html", sampleHTML)
	secs, err := s.ContentSearch("shrinking")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0].Context != "Technology Gap" {
		t.Fatalf("kernel walked to wrong context: %q", secs[0].Context)
	}
}

func TestContentSearchMultiTermAND(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", `<html><body><h1>S1</h1><p>alpha beta</p><h1>S2</h1><p>alpha</p></body></html>`)
	secs, err := s.ContentSearch("alpha beta")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 || secs[0].Context != "S1" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestContentSearchDocs(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "one.html", `<html><body><h1>A</h1><p>shuttle engine</p></body></html>`)
	ingest(t, s, "two.html", `<html><body><h1>B</h1><p>engine only</p></body></html>`)
	ingest(t, s, "three.html", `<html><body><h1>C</h1><p>nothing relevant</p></body></html>`)
	docs, err := s.ContentSearchDocs("engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	docs, err = s.ContentSearchDocs("shuttle")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].FileName != "one.html" {
		t.Fatalf("docs = %v", docs)
	}
}

// TestCombinedSearchBothPlansAgree is the §2.1.3 example: the paper's
// Context=Technology Gap & Content=Shrinking query, verified to return
// identical results whichever side the planner drives from.
func TestCombinedSearchBothPlansAgree(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", sampleHTML)
	ingest(t, s, "b.html", `<html><body>
	<h2>Technology Gap</h2><p>No relevant verb here.</p>
	<h2>Schedule</h2><p>The shrinking schedule.</p></body></html>`)

	fromCtx, err := s.searchDriveContext("Technology Gap", "shrinking", 0)
	if err != nil {
		t.Fatal(err)
	}
	fromContent, err := s.searchDriveContent("Technology Gap", "shrinking", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCtx) != 1 || len(fromContent) != 1 {
		t.Fatalf("plan results: ctx=%d content=%d", len(fromCtx), len(fromContent))
	}
	if fromCtx[0].ContextRID != fromContent[0].ContextRID {
		t.Fatal("plans returned different sections")
	}
	// And via the public planner entry point.
	secs, err := s.Search("Technology Gap", "shrinking")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 || !strings.Contains(secs[0].Content, "shrinking") {
		t.Fatalf("Search = %v", secs)
	}
}

func TestSearchEmptyPredicates(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", sampleHTML)
	secs, err := s.Search("", "")
	if err != nil || secs != nil {
		t.Fatalf("empty search: %v %v", secs, err)
	}
	secs, err = s.Search("Budget", "")
	if err != nil || len(secs) != 1 {
		t.Fatalf("context-only via Search: %v %v", secs, err)
	}
	secs, err = s.Search("", "shrinking")
	if err != nil || len(secs) != 1 {
		t.Fatalf("content-only via Search: %v %v", secs, err)
	}
}

func TestSearchNoResults(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", sampleHTML)
	secs, err := s.Search("Budget", "nonexistentterm")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 0 {
		t.Fatalf("expected empty, got %v", secs)
	}
	secs, err = s.ContextSearch("No Such Heading")
	if err != nil || len(secs) != 0 {
		t.Fatalf("missing context: %v %v", secs, err)
	}
}

func TestContextPrefixSearch(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", `<html><body>
	<h2>Technical Approach</h2><p>x</p>
	<h2>Technology Gap</h2><p>y</p>
	<h2>Budget</h2><p>z</p></body></html>`)
	secs, err := s.ContextPrefixSearch("Tech")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 {
		t.Fatalf("prefix sections = %v", secs)
	}
}

func TestCSVContextSearchFindsColumns(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "budget.csv", "Project,Division,Amount\nX,Science,100\nY,Engineering,200\n")
	secs, err := s.ContextSearch("Division")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 {
		t.Fatalf("Division sections = %d", len(secs))
	}
	values := []string{secs[0].Content, secs[1].Content}
	if values[0] != "Science" || values[1] != "Engineering" {
		t.Fatalf("values = %v", values)
	}
}

func TestRawXMLNameElementActsAsContext(t *testing.T) {
	// XMLConfig classifies <name> as CONTEXT, so a hit inside it returns
	// the record it labels — the schema-less analogue of a field lookup.
	s := memStore(t)
	ingest(t, s, "parts.xml", `<inventory><part><name>Cryo Valve</name><qty>3</qty></part></inventory>`)
	secs, err := s.ContentSearch("valve")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0].Context != "Cryo Valve" || secs[0].Content != "3" {
		t.Fatalf("section = %+v", secs[0])
	}
}

func TestRawXMLContentSearchFallback(t *testing.T) {
	// No element in the chain is classified CONTEXT: the kernel falls
	// back to reporting the parent element's subtree.
	s := memStore(t)
	ingest(t, s, "parts.xml", `<inventory><widget><label>Cryo Valve</label><qty>3</qty></widget></inventory>`)
	secs, err := s.ContentSearch("valve")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("sections = %v", secs)
	}
	if !strings.Contains(secs[0].Content, "Cryo Valve") {
		t.Fatalf("fallback content = %q", secs[0].Content)
	}
	if secs[0].Context != "" {
		t.Fatalf("fallback should have empty context, got %q", secs[0].Context)
	}
}

func TestDeleteDocumentRemovesEverything(t *testing.T) {
	s := memStore(t)
	keep := ingest(t, s, "keep.html", `<html><body><h1>Keep</h1><p>shuttle keepterm</p></body></html>`)
	gone := ingest(t, s, "gone.html", `<html><body><h1>Gone</h1><p>shuttle goneterm</p></body></html>`)
	if err := s.DeleteDocument(gone); err != nil {
		t.Fatal(err)
	}
	if s.NumDocuments() != 1 {
		t.Fatalf("docs = %d", s.NumDocuments())
	}
	if _, err := s.Document(gone); err == nil {
		t.Fatal("deleted document still resolvable")
	}
	secs, err := s.ContentSearch("goneterm")
	if err != nil || len(secs) != 0 {
		t.Fatalf("deleted content still searchable: %v %v", secs, err)
	}
	secs, err = s.ContextSearch("Gone")
	if err != nil || len(secs) != 0 {
		t.Fatalf("deleted context still searchable: %v %v", secs, err)
	}
	// Survivor intact.
	secs, err = s.ContentSearch("keepterm")
	if err != nil || len(secs) != 1 {
		t.Fatalf("survivor lost: %v %v", secs, err)
	}
	if _, err := s.Document(keep); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	s := memStore(t)
	src := `<document title="R"><section><context>Alpha</context><content><para>one two</para><para attr="v">three</para></content></section></document>`
	tree, meta, err := docform.Convert("r.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.StoreDocument(meta, tree, sgml.XMLConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Reconstruct(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "document" {
		t.Fatalf("root = %s", got.Name)
	}
	if got.Find("context").Text() != "Alpha" {
		t.Fatal("context lost in round trip")
	}
	paras := got.FindAll("para")
	if len(paras) != 2 || paras[0].Text() != "one two" || paras[1].Text() != "three" {
		t.Fatalf("paras = %v", paras)
	}
	if v, _ := paras[1].Attr("attr"); v != "v" {
		t.Fatalf("attribute lost: %q", v)
	}
	if tt, _ := got.Attr("title"); tt != "R" {
		t.Fatalf("root attr lost: %q", tt)
	}
}

func TestPersistentStoreReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	id := ingest(t, s, "sample.html", sampleHTML)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	// Documents, search indexes and traversal all survive reopen.
	info, err := s2.Document(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Title != "Sample Report" {
		t.Fatalf("title = %q", info.Title)
	}
	secs, err := s2.ContextSearch("Budget")
	if err != nil || len(secs) != 1 {
		t.Fatalf("context search after reopen: %v %v", secs, err)
	}
	secs, err = s2.ContentSearch("shrinking")
	if err != nil || len(secs) != 1 {
		t.Fatalf("content search after reopen: %v %v", secs, err)
	}
	tree, err := s2.Reconstruct(id)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Find("context") == nil {
		t.Fatal("reconstruction broken after reopen")
	}
}

func TestAttrsEncodeDecode(t *testing.T) {
	cases := [][]sgml.Attr{
		nil,
		{{Name: "a", Value: "1"}},
		{{Name: "a", Value: `with "quotes"`}, {Name: "b", Value: "x=y"}},
		{{Name: "href", Value: "http://x/y?a=b&c=d"}},
		{{Name: "empty", Value: ""}},
	}
	for _, attrs := range cases {
		enc := encodeAttrs(attrs)
		dec := decodeAttrs(enc)
		if len(dec) != len(attrs) {
			t.Fatalf("attrs %v -> %q -> %v", attrs, enc, dec)
		}
		for i := range attrs {
			if dec[i] != attrs[i] {
				t.Fatalf("attrs %v -> %q -> %v", attrs, enc, dec)
			}
		}
	}
}

func TestStoreCorpusAndSearchSelectivity(t *testing.T) {
	s := memStore(t)
	gen := corpus.New(7)
	for _, d := range gen.Proposals(30) {
		ingest(t, s, d.Name, string(d.Data))
	}
	// Every proposal has a Budget section.
	secs, err := s.ContextSearch("Budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 30 {
		t.Fatalf("Budget sections = %d, want 30", len(secs))
	}
	for _, sec := range secs {
		if !strings.Contains(sec.Content, "$") {
			t.Fatalf("budget section without amount: %q", sec.Content)
		}
	}
	// Combined query: Budget sections mentioning a division.
	combined, err := s.Search("Budget", "Science")
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) == 0 || len(combined) >= 30 {
		t.Fatalf("combined selectivity off: %d of 30", len(combined))
	}
}

func TestContextHeadingsEnumeration(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", sampleHTML)
	heads := s.ContextHeadings()
	want := map[string]bool{"introduction": true, "technology gap": true, "budget": true}
	found := 0
	for _, h := range heads {
		if want[h] {
			found++
		}
	}
	if found != 3 {
		t.Fatalf("headings = %v", heads)
	}
}

func TestDocumentByName(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "named.html", sampleHTML)
	info, err := s.DocumentByName("named.html")
	if err != nil {
		t.Fatal(err)
	}
	if info.FileName != "named.html" {
		t.Fatalf("info = %+v", info)
	}
	if _, err := s.DocumentByName("absent.html"); err == nil {
		t.Fatal("absent name resolved")
	}
}

func TestStatsCounters(t *testing.T) {
	s := memStore(t)
	ingest(t, s, "a.html", sampleHTML)
	docs, nodes := s.Stats()
	if docs != 1 || nodes < 10 {
		t.Fatalf("stats = %d docs %d nodes", docs, nodes)
	}
}
