package xmlstore

// The derived-index snapshot makes reopening a large store O(1) in
// corpus size.  On every DB.Checkpoint (and therefore on Close) the
// store serialises everything rebuildDerived would otherwise reconstruct
// by scanning the whole heap — the text-index posting lists, the context
// btree and its per-heading generations, the node→governing-CONTEXT map,
// the per-document generations, and the ID counters — into a versioned,
// CRC-checked file written inside the checkpoint critical section.
//
// Validity is decided purely by stamps: the snapshot records the catalog
// generation and WAL checkpoint LSN it was written under.  On Open it is
// loaded only when
//
//   - crash recovery replayed nothing (the heap is exactly its
//     checkpointed bytes),
//   - the WAL's base LSN equals the snapshot's LSN stamp (no later
//     checkpoint truncated past it, no earlier one preceded it), and
//   - the catalog generation matches (the snapshot belongs to this
//     checkpoint, not one that half-completed).
//
// Anything else — a crash at any step of the checkpoint sequence,
// mutations after the checkpoint, corruption, version skew, the ablation
// flag — falls back to the full-scan rebuild, which remains the source
// of truth.  The snapshot is an accelerator, never an authority.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"netmark/internal/btree"
	"netmark/internal/ordbms"
	"netmark/internal/textindex"
)

const (
	snapshotName = "xmlstore.nmsnap"
	// snapshotVersion 2 switched the embedded text index to the
	// block-compressed posting-list codec AND changed the tokenizer
	// (combining marks, CJK script boundaries).  Any other version —
	// older or newer — falls back to the scan rebuild, which retokenizes
	// every document under the current contract; loading a v1 file's
	// postings verbatim would permanently serve old-tokenizer terms
	// against new-tokenizer queries.  The next checkpoint rewrites the
	// file at the current version, so the penalty is one slow reopen.
	snapshotVersion = 2
)

var snapshotMagic = [8]byte{'N', 'M', 'X', 'S', 'N', 'P', '1', 0}

// SnapshotStats reports the derived-snapshot lifecycle for /stats.
type SnapshotStats struct {
	// Enabled is true when the store participates in snapshotting (a
	// persistent store without the ablation flag).
	Enabled bool
	// Loaded is true when this Open was served by a valid snapshot
	// instead of the full-scan rebuild.
	Loaded bool
	// Fallback names why the snapshot was not used ("" when Loaded):
	// "missing", "unreadable", "corrupt", "version", "stale", or
	// "wal-replay".
	Fallback string
	// Saves and SaveErrors count snapshot writes since this Open.
	Saves      uint64
	SaveErrors uint64
}

// SnapshotStats returns the snapshot lifecycle counters.
func (s *Store) SnapshotStats() SnapshotStats {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapStat
}

// snapshotHook runs inside the engine's checkpoint critical section:
// every dirty page is already flushed and the stamps in ci are the ones
// the checkpoint is about to commit.  Holding ckptMu for writing excludes
// every mutation path across its whole table+derived-index span, so the
// serialised state never captures a document between its rows landing
// and its index entries landing.
func (s *Store) snapshotHook(ci ordbms.CheckpointInfo) error {
	s.ckptMu.Lock()
	payload := s.encodeSnapshot(ci.CatalogGen, ci.LSN)
	s.ckptMu.Unlock()

	out := make([]byte, 0, len(payload)+24)
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, snapshotVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)

	err := ci.WriteSnapshotFile(snapshotName, out, "snapshot")
	s.snapMu.Lock()
	if err != nil {
		s.snapStat.SaveErrors++
	} else {
		s.snapStat.Saves++
	}
	s.snapMu.Unlock()
	return err
}

// encodeSnapshot serialises the derived state.  Caller holds ckptMu for
// writing; the per-structure locks are still taken so readers (queries
// never touch ckptMu) stay race-free.
//
// netmarkvet:snap-encode
func (s *Store) encodeSnapshot(catalogGen, walLSN uint64) []byte {
	buf := make([]byte, 0, 1<<16)
	buf = binary.LittleEndian.AppendUint64(buf, catalogGen)
	buf = binary.LittleEndian.AppendUint64(buf, walLSN)

	s.mu.RLock()
	buf = binary.AppendUvarint(buf, s.nextNodeID)
	buf = binary.AppendUvarint(buf, s.nextDocID)
	s.mu.RUnlock()
	buf = binary.AppendUvarint(buf, s.generation.Load())
	s.statsMu.Lock()
	buf = binary.AppendUvarint(buf, s.docsIngested)
	buf = binary.AppendUvarint(buf, s.nodesInserted)
	s.statsMu.Unlock()

	buf = s.content.AppendSnapshot(buf)

	s.ctxMu.RLock()
	buf = binary.AppendUvarint(buf, s.ctxGenCounter)
	buf = binary.AppendUvarint(buf, uint64(s.contexts.Keys()))
	s.contexts.Ascend(func(key string, rids []ordbms.RowID) bool {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		buf = binary.AppendUvarint(buf, s.ctxGens[key])
		buf = binary.AppendUvarint(buf, uint64(len(rids)))
		for _, rid := range rids {
			buf = binary.AppendUvarint(buf, rid.Uint64())
		}
		return true
	})
	s.ctxMu.RUnlock()

	s.ctxIdxMu.RLock()
	rids := make([]ordbms.RowID, 0, len(s.ctxIdx))
	for rid := range s.ctxIdx {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(rids)))
	prev := uint64(0)
	for _, rid := range rids {
		v := rid.Uint64()
		buf = binary.AppendUvarint(buf, v-prev)
		prev = v
		buf = binary.AppendUvarint(buf, s.ctxIdx[rid].Uint64())
	}
	s.ctxIdxMu.RUnlock()

	s.docGenMu.RLock()
	ids := make([]uint64, 0, len(s.docGens))
	for id := range s.docGens {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, s.docGenCounter)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, s.docGens[id])
	}
	s.docGenMu.RUnlock()

	return buf
}

// loadSnapshot reads, validates, and applies the snapshot.  It reports
// ok=false with a reason (never an error — a bad snapshot means scan
// rebuild, not a failed open) unless the snapshot was fully applied.
// Called during Open, before the store is shared.
func (s *Store) loadSnapshot(db *ordbms.DB) (ok bool, reason string) {
	if db.Replayed != 0 {
		// Recovery applied WAL records: the heap moved past the last
		// checkpoint, so any snapshot on disk describes an older state.
		return false, "wal-replay"
	}
	data, err := db.FS().ReadFile(filepath.Join(db.Dir(), snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return false, "missing"
		}
		return false, "unreadable"
	}
	if len(data) < 24 || [8]byte(data[:8]) != snapshotMagic {
		return false, "corrupt"
	}
	if binary.LittleEndian.Uint32(data[8:12]) != snapshotVersion {
		return false, "version"
	}
	crc := binary.LittleEndian.Uint32(data[12:16])
	if binary.LittleEndian.Uint64(data[16:24]) != uint64(len(data)-24) {
		return false, "corrupt"
	}
	payload := data[24:]
	if crc32.ChecksumIEEE(payload) != crc {
		return false, "corrupt"
	}
	if len(payload) < 16 {
		return false, "corrupt"
	}
	if binary.LittleEndian.Uint64(payload[0:8]) != db.CatalogGen() ||
		binary.LittleEndian.Uint64(payload[8:16]) != db.WALEndLSN() {
		return false, "stale"
	}
	if err := s.applySnapshot(payload[16:]); err != nil {
		// The CRC passed, so this is version-skew territory; the scan
		// rebuild below starts from the fresh structures applySnapshot
		// left untouched on failure.
		return false, "corrupt"
	}
	return true, ""
}

// applySnapshot decodes the payload into fresh structures and installs
// them only if the whole decode succeeds.  Runs during OpenWith, before
// the store is shared with any other goroutine.
//
// netmarkvet:snap-decode
// netmarkvet:ignore lockcheck — open-time, single-goroutine
func (s *Store) applySnapshot(p []byte) error {
	off := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return 0, fmt.Errorf("xmlstore: truncated snapshot at byte %d", off)
		}
		off += n
		return v, nil
	}
	nextNodeID, err := uv()
	if err != nil {
		return err
	}
	nextDocID, err := uv()
	if err != nil {
		return err
	}
	generation, err := uv()
	if err != nil {
		return err
	}
	docsIngested, err := uv()
	if err != nil {
		return err
	}
	nodesInserted, err := uv()
	if err != nil {
		return err
	}

	content, n, err := textindex.LoadSnapshot(p[off:])
	if err != nil {
		return err
	}
	off += n

	ctxGenCounter, err := uv()
	if err != nil {
		return err
	}
	nHeadings, err := uv()
	if err != nil {
		return err
	}
	type heading struct {
		key  string
		gen  uint64
		rids []ordbms.RowID
	}
	headings := make([]heading, 0, nHeadings)
	for i := uint64(0); i < nHeadings; i++ {
		klen, err := uv()
		if err != nil {
			return err
		}
		if off+int(klen) > len(p) {
			return fmt.Errorf("xmlstore: truncated heading at byte %d", off)
		}
		h := heading{key: string(p[off : off+int(klen)])}
		off += int(klen)
		if h.gen, err = uv(); err != nil {
			return err
		}
		nr, err := uv()
		if err != nil {
			return err
		}
		if nr > uint64(len(p)) { // every rid costs >= 1 byte
			return fmt.Errorf("xmlstore: implausible rid count %d", nr)
		}
		h.rids = make([]ordbms.RowID, nr)
		for j := range h.rids {
			v, err := uv()
			if err != nil {
				return err
			}
			h.rids[j] = ordbms.RowIDFromUint64(v)
		}
		headings = append(headings, h)
	}

	nCtx, err := uv()
	if err != nil {
		return err
	}
	if nCtx > uint64(len(p)) {
		return fmt.Errorf("xmlstore: implausible ctxIdx count %d", nCtx)
	}
	ctxIdx := make(map[ordbms.RowID]ordbms.RowID, nCtx)
	prev := uint64(0)
	for i := uint64(0); i < nCtx; i++ {
		d, err := uv()
		if err != nil {
			return err
		}
		prev += d
		g, err := uv()
		if err != nil {
			return err
		}
		ctxIdx[ordbms.RowIDFromUint64(prev)] = ordbms.RowIDFromUint64(g)
	}

	docGenCounter, err := uv()
	if err != nil {
		return err
	}
	nDocs, err := uv()
	if err != nil {
		return err
	}
	docGens := make(map[uint64]uint64, nDocs)
	for i := uint64(0); i < nDocs; i++ {
		id, err := uv()
		if err != nil {
			return err
		}
		g, err := uv()
		if err != nil {
			return err
		}
		docGens[id] = g
	}
	if off != len(p) {
		return fmt.Errorf("xmlstore: %d trailing snapshot bytes", len(p)-off)
	}

	// Whole decode succeeded: install.  Headings were serialised in tree
	// order, so the context btree bulk-builds in O(n) like the other
	// loaded indexes.
	s.nextNodeID = nextNodeID
	s.nextDocID = nextDocID
	s.generation.Store(generation)
	s.docsIngested = docsIngested
	s.nodesInserted = nodesInserted
	s.content = content
	s.ctxGenCounter = ctxGenCounter
	tb := btree.NewBuilder[string, ordbms.RowID](strings.Compare, btree.DefaultOrder)
	for _, h := range headings {
		s.ctxGens[h.key] = h.gen
		tb.Append(h.key, h.rids)
	}
	s.contexts = tb.Tree()
	s.ctxIdx = ctxIdx
	s.docGenCounter = docGenCounter
	s.docGens = docGens
	return nil
}
