package xmlstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"netmark/internal/corpus"
	"netmark/internal/ordbms"
)

// loadDeepCorpus fills a store with a mixed corpus: deep XML reports
// (long sibling runs, nested blocks) plus flat HTML proposals, so the
// kernels cross both shapes.
func loadDeepCorpus(t testing.TB, s *Store) {
	t.Helper()
	gen := corpus.New(99)
	docs := append(gen.DeepReports(6, 4, 8, 5), gen.Proposals(10)...)
	for _, d := range docs {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatalf("ingest %s: %v", d.Name, err)
		}
	}
}

// TestKernelEquivalence proves the accelerated cold path — node cache,
// derived governing-context index, batched fetches, parallel section
// materialisation — returns byte-for-byte the results of the paper's
// pointer-chasing kernel, across every query family and limit shape.
// Both configurations run against the same store (heap page placement
// uses map-ordered free-space hints, so two separately loaded stores can
// legitimately differ in physical RowIDs).
func TestKernelEquivalence(t *testing.T) {
	s := memStore(t)
	loadDeepCorpus(t, s)
	asBaseline := func() {
		s.EnableNodeCache(0)
		s.SetQueryWorkers(1)
		s.SetContextIndexEnabled(false)
	}
	asOptimized := func() {
		s.EnableNodeCache(16 << 20)
		s.SetQueryWorkers(8)
		s.SetContextIndexEnabled(true)
	}

	type plan struct {
		name string
		run  func(s *Store) (any, error)
	}
	plans := []plan{
		{"content", func(s *Store) (any, error) { return s.ContentSearch("cryogenic") }},
		{"content-multi", func(s *Store) (any, error) { return s.ContentSearch("cryogenic turbine") }},
		{"content-limit", func(s *Store) (any, error) { return s.ContentSearchN("review", 5) }},
		{"context", func(s *Store) (any, error) { return s.ContextSearch("Budget") }},
		{"context-limit", func(s *Store) (any, error) { return s.ContextSearchN("Budget", 3) }},
		{"context-prefix", func(s *Store) (any, error) { return s.ContextPrefixSearch("Tech") }},
		{"context-prefix-limit", func(s *Store) (any, error) { return s.ContextPrefixSearchN("Tech", 2) }},
		{"combined", func(s *Store) (any, error) { return s.Search("Budget", "request") }},
		{"combined-drive-content", func(s *Store) (any, error) { return s.searchDriveContent("Budget", "request", 0) }},
		{"combined-drive-context", func(s *Store) (any, error) { return s.searchDriveContext("Budget", "request", 0) }},
		{"docs", func(s *Store) (any, error) {
			// Project out FileDate: it is stamped with time.Now at ingest
			// and the two stores load at different instants.
			infos, err := s.ContentSearchDocs("turbine")
			if err != nil {
				return nil, err
			}
			type stable struct {
				ID     uint64
				Name   string
				Title  string
				NNodes int64
			}
			out := make([]stable, len(infos))
			for i, d := range infos {
				out[i] = stable{d.DocID, d.FileName, d.Title, d.NNodes}
			}
			return out, nil
		}},
	}
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			asBaseline()
			want, err := p.run(s)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			// Run the optimized kernel twice: once cold (filling the node
			// cache) and once warm (served from it) — both must match.
			asOptimized()
			for _, pass := range []string{"cold", "warm"} {
				got, err := p.run(s)
				if err != nil {
					t.Fatalf("optimized %s: %v", pass, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s pass diverges from pointer-chasing kernel:\n got: %+v\nwant: %+v", pass, got, want)
				}
			}
			if st, ok := s.NodeCacheStats(); !ok || st.Hits == 0 {
				t.Fatalf("node cache never hit during the warm pass: %+v", st)
			}
		})
	}
}

// TestContextIndexMatchesWalk checks the derived node→governing-CONTEXT
// index against the pointer-chasing walk for every text node in the
// store, including after deletes force index patching.
func TestContextIndexMatchesWalk(t *testing.T) {
	s := memStore(t)
	loadDeepCorpus(t, s)

	check := func(stage string) {
		t.Helper()
		var nodes []*Node
		if err := s.ScanNodes(func(n *Node) bool {
			nodes = append(nodes, n)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			viaIdx, err := s.ContextFor(n)
			if err != nil {
				t.Fatalf("%s: ContextFor: %v", stage, err)
			}
			viaWalk, err := s.contextForWalk(n)
			if err != nil {
				t.Fatalf("%s: walk: %v", stage, err)
			}
			switch {
			case viaIdx == nil && viaWalk == nil:
			case viaIdx == nil || viaWalk == nil:
				t.Fatalf("%s: node %d: index=%v walk=%v", stage, n.NodeID, viaIdx, viaWalk)
			case viaIdx.RowID != viaWalk.RowID:
				t.Fatalf("%s: node %d: index→%v walk→%v", stage, n.NodeID, viaIdx.RowID, viaWalk.RowID)
			}
		}
	}
	check("after ingest")

	docs, err := s.Documents()
	if err != nil || len(docs) < 3 {
		t.Fatalf("docs: %v (%d)", err, len(docs))
	}
	if err := s.DeleteDocument(docs[1].DocID); err != nil {
		t.Fatal(err)
	}
	check("after delete")
}

// TestContextIndexRebuildOnReopen proves the governing-context index
// rebuilt by rebuildDerived on a persistent reopen (a separate
// implementation of the recurrence, driven by RowID links instead of
// flat-tree indexes) agrees with the pointer-chasing walk for every
// node — guarding the two resolver implementations against drift.
func TestContextIndexRebuildOnReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	loadDeepCorpus(t, s)
	want, err := s.ContentSearch("cryogenic")
	if err != nil || len(want) == 0 {
		t.Fatalf("pre-close search: %v (%d sections)", err, len(want))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err = Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScanNodes(func(n *Node) bool {
		viaIdx, ierr := s.ContextFor(n)
		if ierr != nil {
			t.Fatalf("ContextFor: %v", ierr)
		}
		viaWalk, werr := s.contextForWalk(n)
		if werr != nil {
			t.Fatalf("walk: %v", werr)
		}
		switch {
		case viaIdx == nil && viaWalk == nil:
		case viaIdx == nil || viaWalk == nil || viaIdx.RowID != viaWalk.RowID:
			t.Fatalf("node %d: rebuilt index and walk disagree (%v vs %v)", n.NodeID, viaIdx, viaWalk)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ContentSearch("cryogenic")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reopen results diverge:\n got %d sections\nwant %d sections", len(got), len(want))
	}
}

// TestContentSearchRaceWithNodeCache hammers the accelerated kernel
// against concurrent ingest and delete with the node cache and parallel
// materialisation enabled.  Run under -race it proves the cache fill
// tokens, the derived-index patching, and the worker pool are sound; the
// results themselves must only ever contain complete sections.
func TestContentSearchRaceWithNodeCache(t *testing.T) {
	s := memStore(t)
	s.EnableNodeCache(8 << 20)
	s.SetQueryWorkers(4)
	gen := corpus.New(7)
	for _, d := range gen.DeepReports(4, 3, 4, 3) {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatal(err)
		}
	}

	const writers, searchers, rounds = 2, 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+searchers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := corpus.New(int64(100 + w))
			for r := 0; r < rounds; r++ {
				d := g.DeepReport(1000*w+r, 2, 3, 3)
				d.Name = fmt.Sprintf("churn-%d-%d.xml", w, r)
				id, err := s.StoreRaw(d.Name, d.Data)
				if err != nil {
					errs <- err
					return
				}
				if err := s.DeleteDocument(id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < searchers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{"cryogenic", "turbine", "review", "nominal sensor"}
			for i := 0; i < rounds*4; i++ {
				secs, err := s.ContentSearch(queries[(r+i)%len(queries)])
				if err != nil {
					errs <- fmt.Errorf("search: %w", err)
					return
				}
				for _, sec := range secs {
					if sec.DocID == 0 {
						errs <- fmt.Errorf("section with zero doc id: %+v", sec)
						return
					}
				}
				if _, err := s.ContextSearch("Budget"); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
