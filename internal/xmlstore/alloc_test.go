package xmlstore

import (
	"testing"

	"netmark/internal/ordbms"
)

// A node-cache hit — the warm traversal hop beneath every query kernel —
// must be allocation-free: shard probe, two atomic counters, done.
func TestFetchNodeWarmZeroAlloc(t *testing.T) {
	s := memStore(t)
	s.EnableNodeCache(1 << 20)
	ingest(t, s, "sample.html", sampleHTML)

	var rid ordbms.RowID
	if err := s.ScanNodes(func(n *Node) bool {
		rid = n.RowID
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchNode(rid); err != nil { // fill
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(500, func() {
		if _, err := s.FetchNode(rid); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm FetchNode = %.2f allocs/op, want 0", n)
	}
}
