package xmlstore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"netmark/internal/docform"
	"netmark/internal/sgml"
)

// This file implements the concurrent batch-ingestion pipeline.  The
// paper's thesis is that upmark + shred + store is cheap enough to skip
// heavyweight middleware; the pipeline makes it cheap per *batch* too:
//
//	parse workers  -->  ordered writer  -->  derived indexer
//	(convert, flatten,   (two-pass insert     (text + context
//	 encode, tokenize)    in input order)      index inserts)
//
// The CPU-bound preparation fans out across a worker pool, a single
// writer feeds the tables in submission order (so document IDs are
// deterministic), the derived-index stage overlaps with the writer's
// next document, and one WAL group-commit makes the whole batch durable
// — one fsync per batch instead of one per document.

// BatchDoc is one raw input document for StoreBatch.
type BatchDoc struct {
	Name string
	Data []byte
}

// BatchResult reports one document's outcome, in input order.
type BatchResult struct {
	Name  string
	DocID uint64
	Err   error
}

// StoreBatch runs the full ingest path — format conversion, upmark,
// shredding, storage, index maintenance, durability — over a batch of
// documents.  workers sets the preparation fan-out (<= 0 means
// GOMAXPROCS).  Per-document failures are isolated: a document that
// cannot be converted reports its error in its slot while the rest of
// the batch proceeds.
func (s *Store) StoreBatch(docs []BatchDoc, workers int) []BatchResult {
	results := make([]BatchResult, len(docs))
	for i := range docs {
		results[i].Name = docs[i].Name
	}
	if len(docs) == 0 {
		return results
	}
	// Fail the whole batch fast while degraded, before burning parse
	// work the engine will refuse to persist.
	if err := s.db.Writable(); err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	// Document IDs are reserved up front so they follow input order no
	// matter which worker finishes first.
	docBase := s.reserveDocIDs(len(docs))
	cfg := sgml.XMLConfig()

	preps := make([]*preparedDoc, len(docs))
	ready := make([]chan struct{}, len(docs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(docs) {
					return
				}
				tree, meta, err := docform.Convert(docs[i].Name, docs[i].Data)
				if err == nil {
					preps[i], err = s.prepareDocument(meta, tree, cfg, docBase+uint64(i))
				}
				results[i].Err = err
				close(ready[i])
			}
		}()
	}

	// Derived indexing runs one stage downstream of the writer: the
	// indexes have their own locks, so document N's postings land while
	// document N+1's rows are being written.  Each document's checkpoint-
	// barrier hold (acquired by the writer before its rows land) is
	// released here once its index entries land, so a snapshot
	// serialisation never slips into the gap between the two stages.
	idxCh := make(chan *preparedDoc, workers)
	idxDone := make(chan struct{})
	go func() {
		defer close(idxDone)
		for p := range idxCh {
			s.indexPrepared(p)
			s.ckptMu.RUnlock()
		}
	}()

	// Ordered writer: stores each document as soon as its preparation
	// lands, in input order.
	for i := range docs {
		<-ready[i]
		if results[i].Err != nil {
			continue
		}
		s.ckptMu.RLock()
		if err := s.storePrepared(preps[i]); err != nil {
			s.ckptMu.RUnlock()
			results[i].Err = err
			preps[i] = nil
			continue
		}
		results[i].DocID = preps[i].docID
		idxCh <- preps[i]
		preps[i] = nil
	}
	close(idxCh)
	<-idxDone
	wg.Wait()

	// Group commit: one WAL fsync covers every document in the batch.
	// If durability fails, every stored document in the batch is suspect,
	// so the error lands on each success slot.
	if err := s.db.Commit(); err != nil {
		for i := range results {
			if results[i].Err == nil {
				results[i].Err = err
			}
		}
	}
	return results
}
