package vfs

import (
	"io/fs"
	"math/rand"
	"path/filepath"
	"sync"
	"syscall"
)

// Op names a class of filesystem call a fault Rule can target.
type Op string

const (
	OpOpen      Op = "open"      // Open / OpenFile / Create
	OpRead      Op = "read"      // File.Read / File.ReadAt / FS.ReadFile
	OpWrite     Op = "write"     // File.Write / File.WriteAt / FS.WriteFile
	OpSync      Op = "sync"      // File.Sync
	OpRename    Op = "rename"    // FS.Rename (matched against the new path)
	OpRemove    Op = "remove"    // FS.Remove
	OpReadDir   Op = "readdir"   // FS.ReadDir
	OpStat      Op = "stat"      // FS.Stat / File.Stat
	OpWriteFile Op = "writefile" // FS.WriteFile (also counts as OpWrite)
)

// Rule is one deterministic fault in a schedule. A call matches when
// its Op equals the rule's Op and the file's base name matches Path
// (a filepath.Match pattern; empty matches everything). The rule skips
// the first After matching calls, then fires on the next Times of them
// (Times == 0 means it keeps firing forever — a sticky fault).
type Rule struct {
	Op    Op
	Path  string
	After int
	Times int
	Err   error // defaults to EIO (ENOSPC for budget exhaustion)
	Short bool  // writes: write half the buffer, then fail
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// FaultFS wraps an inner FS and injects faults according to a schedule
// of Rules plus an optional global write-byte budget (ENOSPC once
// exhausted). All methods are safe for concurrent use. Faults are
// injected *before* the inner call except short writes, which really
// do write the truncated prefix — exactly what a full disk does.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []*ruleState
	budget   int64 // write-byte budget; <0 = unlimited
	written  int64
	injected int
}

// NewFaultFS wraps inner (OS if nil) with an empty, fault-free schedule.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, budget: -1}
}

// AddRule appends a fault rule to the schedule.
func (f *FaultFS) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &ruleState{Rule: r})
}

// SetBytesBudget arms an ENOSPC budget: after n more bytes have been
// written through this FS, writes fail with ENOSPC (the final write is
// truncated to the remaining budget, like a real full disk). n < 0
// disarms the budget.
func (f *FaultFS) SetBytesBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.written = 0
}

// ClearFaults drops every rule and disarms the byte budget; subsequent
// calls pass straight through. Injection counters are preserved.
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.budget = -1
}

// Injected reports how many faults this FS has injected so far.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func pathErr(op Op, path string, errno error) error {
	return &fs.PathError{Op: string(op), Path: path, Err: errno}
}

// check consults the schedule for one call. For write ops, n is the
// buffer length; it returns (allowed, err) where allowed < n with a
// non-nil err models a short write.
func (f *FaultFS) check(op Op, path string, n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" {
			ok, err := filepath.Match(r.Path, filepath.Base(path))
			if err != nil || !ok {
				continue
			}
		}
		idx := r.seen
		r.seen++
		if idx < r.After || (r.Times > 0 && idx >= r.After+r.Times) {
			continue
		}
		r.fired++
		f.injected++
		errno := r.Err
		if errno == nil {
			errno = syscall.EIO
		}
		if r.Short && n > 0 {
			return n / 2, pathErr(op, path, errno)
		}
		return 0, pathErr(op, path, errno)
	}
	if (op == OpWrite || op == OpWriteFile) && f.budget >= 0 {
		remaining := f.budget - f.written
		if remaining <= 0 {
			f.injected++
			return 0, pathErr(op, path, syscall.ENOSPC)
		}
		if int64(n) > remaining {
			f.written = f.budget
			f.injected++
			return int(remaining), pathErr(op, path, syscall.ENOSPC)
		}
		f.written += int64(n)
	}
	return n, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.check(OpOpen, name, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: name, f: fl}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.check(OpOpen, name, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: name, f: fl}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if _, err := f.check(OpOpen, name, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: name, f: fl}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, newpath, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.check(OpRemove, name, 0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := f.check(OpReadDir, name, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if _, err := f.check(OpRead, name, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if _, err := f.check(OpWriteFile, name, len(data)); err != nil {
		return err
	}
	if allowed, err := f.check(OpWrite, name, len(data)); err != nil {
		if allowed > 0 {
			// Model a short WriteFile: the truncated prefix lands.
			_ = f.inner.WriteFile(name, data[:allowed], perm)
		}
		return err
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.check(OpStat, name, 0); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// faultFile routes per-handle calls back through the schedule.
type faultFile struct {
	fs   *FaultFS
	path string
	f    File
}

func (h *faultFile) Read(p []byte) (int, error) {
	if _, err := h.fs.check(OpRead, h.path, 0); err != nil {
		return 0, err
	}
	return h.f.Read(p)
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := h.fs.check(OpRead, h.path, 0); err != nil {
		return 0, err
	}
	return h.f.ReadAt(p, off)
}

func (h *faultFile) Write(p []byte) (int, error) {
	allowed, err := h.fs.check(OpWrite, h.path, len(p))
	if err != nil {
		n := 0
		if allowed > 0 {
			n, _ = h.f.Write(p[:allowed])
		}
		return n, err
	}
	return h.f.Write(p)
}

func (h *faultFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, err := h.fs.check(OpWrite, h.path, len(p))
	if err != nil {
		n := 0
		if allowed > 0 {
			n, _ = h.f.WriteAt(p[:allowed], off)
		}
		return n, err
	}
	return h.f.WriteAt(p, off)
}

func (h *faultFile) Sync() error {
	if _, err := h.fs.check(OpSync, h.path, 0); err != nil {
		return err
	}
	return h.f.Sync()
}

func (h *faultFile) Stat() (fs.FileInfo, error) { return h.f.Stat() }

func (h *faultFile) Truncate(size int64) error {
	if _, err := h.fs.check(OpWrite, h.path, 0); err != nil {
		return err
	}
	return h.f.Truncate(size)
}

func (h *faultFile) Close() error { return h.f.Close() }

// RandomSchedule derives a deterministic pseudo-random fault schedule
// from seed: n rules weighted toward the failure modes long-running
// middleware actually sees (full disks, fsync EIO, torn renames).
// The same seed always yields the same schedule.
func RandomSchedule(seed int64, n int) []Rule {
	rng := rand.New(rand.NewSource(seed))
	ops := []Op{OpWrite, OpWrite, OpSync, OpSync, OpRename, OpWriteFile, OpRemove}
	errs := []error{syscall.EIO, syscall.ENOSPC}
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		r := Rule{
			Op:    op,
			After: rng.Intn(40),
			Times: 1 + rng.Intn(3),
			Err:   errs[rng.Intn(len(errs))],
		}
		if op == OpWrite && rng.Intn(3) == 0 {
			r.Short = true
		}
		rules = append(rules, r)
	}
	return rules
}
