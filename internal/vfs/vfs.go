// Package vfs abstracts the filesystem operations that netmark's
// persistence layers perform, so that tests can inject deterministic
// I/O faults (ENOSPC, EIO on fsync, short writes, failed renames)
// without touching the real disk semantics in production.
//
// The contract is deliberately tiny: exactly the calls the WAL, heap
// file, catalog, checkpoint swap, and snapshot paths need. Production
// code uses the passthrough OS implementation; fault-injection tests
// wrap it (or wrap each other) with a FaultFS carrying a seeded
// schedule. Persistence packages (those whose package doc carries
// `netmarkvet:persistence`) must do all file I/O through an FS — the
// `vfsonly` analyzer enforces that rule.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the handle surface the persistence layers use. It is a strict
// subset of *os.File so the passthrough implementation is free.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.ReaderAt
	io.WriterAt

	// Sync flushes the file (or directory) to stable storage.
	Sync() error
	// Stat reports file metadata (used for sizing the heap file).
	Stat() (fs.FileInfo, error)
	// Truncate changes the file's size (used to discard a torn tail
	// left by a failed extension).
	Truncate(size int64) error
}

// FS is the filesystem operation surface. All paths are OS paths as
// understood by the os package.
type FS interface {
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// Create truncates-or-creates a file for writing, mode 0644.
	Create(name string) (File, error)
	// OpenFile is the general open.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes a whole file without durability guarantees
	// (callers needing durability open + Write + Sync explicitly).
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Stat reports file metadata.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the passthrough filesystem used in production.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
