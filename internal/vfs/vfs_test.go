package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

func TestOSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f.txt")
	fl, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(p)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := OS.Rename(p, p+".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f.txt.2" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestFaultSyncCountdown(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	// Fail the 2nd sync only.
	ffs.AddRule(Rule{Op: OpSync, After: 1, Times: 1})
	fl, err := ffs.Create(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if err := fl.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	err = fl.Sync()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2 = %v, want EIO", err)
	}
	if err := fl.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	if got := ffs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestFaultBytesBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.SetBytesBudget(10)
	p := filepath.Join(dir, "w")
	fl, err := ffs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if n, err := fl.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("write 1 = %d, %v", n, err)
	}
	// 2 bytes of budget left: short write then ENOSPC.
	n, err := fl.Write([]byte("abcd"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 = %d, %v; want 2, ENOSPC", n, err)
	}
	if _, err := fl.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 3 = %v, want ENOSPC", err)
	}
	b, _ := os.ReadFile(p)
	if string(b) != "12345678ab" {
		t.Fatalf("on-disk = %q, want truncated prefix", b)
	}
	ffs.ClearFaults()
	if _, err := fl.Write([]byte("ok")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
}

func TestFaultShortWriteRule(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddRule(Rule{Op: OpWrite, Times: 1, Short: true})
	fl, err := ffs.Create(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	n, err := fl.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write = %d, %v; want 5, EIO", n, err)
	}
}

func TestFaultRenamePathPattern(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddRule(Rule{Op: OpRename, Path: "*.nmlog"})
	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "wal.nmlog")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching rename = %v, want EIO", err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "other.bin")); err != nil {
		t.Fatalf("non-matching rename: %v", err)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 8)
	b := RandomSchedule(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := RandomSchedule(43, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}
