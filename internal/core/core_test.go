package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netmark/internal/databank"
	"netmark/internal/xdb"
)

func TestOpenInMemory(t *testing.T) {
	nm, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	if nm.Daemon() != nil {
		t.Fatal("daemon should be nil without DropDir")
	}
	if nm.DB() == nil || nm.Store() == nil || nm.Engine() == nil || nm.Banks() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestOpenWithDropDirWiresDaemon(t *testing.T) {
	drop := t.TempDir()
	nm, err := Open(Config{DropDir: drop, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	if nm.Daemon() == nil {
		t.Fatal("daemon not wired")
	}
	if err := os.WriteFile(filepath.Join(drop, "x.html"),
		[]byte(`<html><body><h1>T</h1><p>dropped</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Two scans: the first observes the file, the second ingests it once
	// its size/mtime held still (the partial-write guard).
	for i := 0; i < 2; i++ {
		if _, err := nm.Daemon().ScanOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if nm.Store().NumDocuments() != 1 {
		t.Fatalf("docs = %d", nm.Store().NumDocuments())
	}
}

func TestIngestBatchPipeline(t *testing.T) {
	nm, err := Open(Config{IngestWorkers: 3, IngestBatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	var docs []Doc
	for i := 0; i < 10; i++ {
		docs = append(docs, Doc{
			Name: filepath.Join("d" + string(rune('0'+i)) + ".html"),
			Data: []byte(`<html><body><h1>Batch</h1><p>pipeline payload</p></body></html>`),
		})
	}
	results := nm.IngestBatch(docs)
	if len(results) != len(docs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
		if i > 0 && results[i].DocID <= results[i-1].DocID {
			t.Fatalf("doc IDs not in input order: %d after %d", r.DocID, results[i-1].DocID)
		}
	}
	if nm.Store().NumDocuments() != int64(len(docs)) {
		t.Fatalf("docs = %d", nm.Store().NumDocuments())
	}
	secs, err := nm.Search("Batch", "payload")
	if err != nil || len(secs) != len(docs) {
		t.Fatalf("search = %d sections, %v", len(secs), err)
	}
}

func TestCreateDatabankDuplicateRejected(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	spec := []byte(`{"name":"b","sources":[{"type":"local","name":"self"}]}`)
	if _, err := nm.CreateDatabank(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.CreateDatabank(spec); err == nil {
		t.Fatal("duplicate databank accepted")
	}
	if _, err := nm.CreateDatabank([]byte(`{"bad json`)); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestQueryBankUnknown(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	if _, err := nm.QueryBank(context.Background(), "ghost", xdb.Query{Context: "X"}); err == nil {
		t.Fatal("unknown bank accepted")
	}
}

func TestAddDatabankProgrammatic(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	if _, err := nm.Ingest("a.html", []byte(`<html><body><h1>S</h1><p>x</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	bank := databank.New("prog")
	bank.AddSource(databank.NewLocalSource("self", nm.Engine()))
	if err := nm.AddDatabank(bank); err != nil {
		t.Fatal(err)
	}
	m, err := nm.QueryBank(context.Background(), "prog", xdb.Query{Context: "S"})
	if err != nil || len(m.Sections()) != 1 {
		t.Fatalf("bank query: %v %v", m, err)
	}
}

func TestHTTPServerConstruction(t *testing.T) {
	nm, _ := Open(Config{DropDir: t.TempDir()})
	defer nm.Close()
	srv, err := nm.HTTPServer()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

func TestServeLifecycle(t *testing.T) {
	nm, _ := Open(Config{DropDir: t.TempDir(), PollInterval: 10 * time.Millisecond})
	defer nm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- nm.Serve(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not stop on cancel")
	}
}

func TestServeSurfacesDaemonExit(t *testing.T) {
	drop := filepath.Join(t.TempDir(), "drop")
	if err := os.MkdirAll(drop, 0o755); err != nil {
		t.Fatal(err)
	}
	nm, err := Open(Config{DropDir: drop, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- nm.Serve(ctx, "127.0.0.1:0") }()
	if err := nm.DaemonErr(); err != nil {
		t.Fatalf("daemon unhealthy before failure: %v", err)
	}
	// Break the daemon's world: the next scan fails, Run exits, and the
	// failure must land in DaemonErr rather than dying with the
	// goroutine while the server keeps serving.  Serve's webdav setup
	// recreates the drop dir once on startup, so keep removing it until
	// the daemon trips over the absence.
	deadline := time.Now().Add(2 * time.Second)
	for nm.DaemonErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon exit never surfaced via DaemonErr")
		}
		if err := os.RemoveAll(drop); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not stop on cancel")
	}
}

func TestCacheBytesConfig(t *testing.T) {
	// Default: cache on at DefaultCacheBytes.
	nm, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	st, ok := nm.Engine().CacheStats()
	if !ok || st.Capacity != DefaultCacheBytes {
		t.Fatalf("default cache = ok:%v %+v", ok, st)
	}
	// Explicit cap.
	nm2, err := Open(Config{CacheBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer nm2.Close()
	if st, ok := nm2.Engine().CacheStats(); !ok || st.Capacity != 1<<16 {
		t.Fatalf("explicit cache = ok:%v %+v", ok, st)
	}
	// Negative disables.
	nm3, err := Open(Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer nm3.Close()
	if _, ok := nm3.Engine().CacheStats(); ok {
		t.Fatal("negative CacheBytes left the cache enabled")
	}
	// Cached queries stay correct across mutations through the facade.
	if _, err := nm.Ingest("a.html", []byte(`<html><head><title>A</title></head><body><h1>K</h1><p>one</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	r, err := nm.Query("context=K")
	if err != nil || len(r.Sections) != 1 {
		t.Fatalf("query 1: %v %d", err, r.Len())
	}
	if _, err := nm.Ingest("b.html", []byte(`<html><head><title>B</title></head><body><h1>K</h1><p>two</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	r, err = nm.Query("context=K")
	if err != nil || len(r.Sections) != 2 {
		t.Fatalf("query 2 after ingest: %v %d (stale cache?)", err, r.Len())
	}
}
