package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netmark/internal/databank"
	"netmark/internal/xdb"
)

func TestOpenInMemory(t *testing.T) {
	nm, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	if nm.Daemon() != nil {
		t.Fatal("daemon should be nil without DropDir")
	}
	if nm.DB() == nil || nm.Store() == nil || nm.Engine() == nil || nm.Banks() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestOpenWithDropDirWiresDaemon(t *testing.T) {
	drop := t.TempDir()
	nm, err := Open(Config{DropDir: drop, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	if nm.Daemon() == nil {
		t.Fatal("daemon not wired")
	}
	if err := os.WriteFile(filepath.Join(drop, "x.html"),
		[]byte(`<html><body><h1>T</h1><p>dropped</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.Daemon().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if nm.Store().NumDocuments() != 1 {
		t.Fatalf("docs = %d", nm.Store().NumDocuments())
	}
}

func TestCreateDatabankDuplicateRejected(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	spec := []byte(`{"name":"b","sources":[{"type":"local","name":"self"}]}`)
	if _, err := nm.CreateDatabank(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.CreateDatabank(spec); err == nil {
		t.Fatal("duplicate databank accepted")
	}
	if _, err := nm.CreateDatabank([]byte(`{"bad json`)); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestQueryBankUnknown(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	if _, err := nm.QueryBank(context.Background(), "ghost", xdb.Query{Context: "X"}); err == nil {
		t.Fatal("unknown bank accepted")
	}
}

func TestAddDatabankProgrammatic(t *testing.T) {
	nm, _ := Open(Config{})
	defer nm.Close()
	if _, err := nm.Ingest("a.html", []byte(`<html><body><h1>S</h1><p>x</p></body></html>`)); err != nil {
		t.Fatal(err)
	}
	bank := databank.New("prog")
	bank.AddSource(databank.NewLocalSource("self", nm.Engine()))
	if err := nm.AddDatabank(bank); err != nil {
		t.Fatal(err)
	}
	m, err := nm.QueryBank(context.Background(), "prog", xdb.Query{Context: "S"})
	if err != nil || len(m.Sections()) != 1 {
		t.Fatalf("bank query: %v %v", m, err)
	}
}

func TestHTTPServerConstruction(t *testing.T) {
	nm, _ := Open(Config{DropDir: t.TempDir()})
	defer nm.Close()
	srv, err := nm.HTTPServer()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

func TestServeLifecycle(t *testing.T) {
	nm, _ := Open(Config{DropDir: t.TempDir(), PollInterval: 10 * time.Millisecond})
	defer nm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- nm.Serve(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not stop on cancel")
	}
}
