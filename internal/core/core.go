// Package core assembles the NETMARK system of Fig 2/3: the schema-less
// XML store over the ORDBMS, the SGML parser and upmark converters, the
// XDB query engine with XSLT result composition, the databank registry
// for on-the-fly multi-source integration, the drop-folder ingestion
// daemon, and the HTTP/WebDAV access layer.
//
// This is the paper's primary contribution as a single embeddable
// component; the repo-root netmark package re-exports it as the public
// API.
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"netmark/internal/daemon"
	"netmark/internal/databank"
	"netmark/internal/ordbms"
	"netmark/internal/webdav"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// Config configures a NETMARK instance.
type Config struct {
	// Dir is the storage directory.  Empty runs fully in memory
	// (volatile, unlogged) — the right mode for tests and experiments.
	Dir string
	// PoolPages caps the buffer pool (default 4096 pages).
	PoolPages int
	// DropDir enables the ingestion daemon over the given folder.
	DropDir string
	// PollInterval is the daemon's scan period (default 1s).
	PollInterval time.Duration
	// IngestWorkers sets the batch-ingestion pipeline's parse/upmark
	// fan-out (default GOMAXPROCS).  It applies to IngestBatch and to
	// the drop-folder daemon.
	IngestWorkers int
	// IngestBatchSize caps how many documents one WAL group-commit
	// covers (default DefaultIngestBatch).  Larger batches amortise the
	// fsync further at the cost of more work buffered between commits.
	IngestBatchSize int
	// CacheBytes caps the invalidation-aware query result cache
	// (0 = DefaultCacheBytes, negative = disabled).  The cache keys on
	// per-term/per-heading mutation generations and validates entries
	// against per-document generations, so results never outlive the
	// data they were computed from while writes to other documents leave
	// them cached; tune it to the working set of hot queries.
	CacheBytes int64
	// NodeCacheBytes caps the XML store's decoded-node cache, which
	// accelerates the cold query path by keeping hot traversal rows
	// decoded in memory (0 = DefaultNodeCacheBytes, negative = disabled).
	NodeCacheBytes int64
	// QueryWorkers bounds the section-materialisation fan-out of search
	// queries (0 = GOMAXPROCS, 1 = serial).
	QueryWorkers int
	// DisableSnapshots turns off the derived-state snapshots written at
	// every checkpoint (the engine's heap-metadata/secondary-index
	// snapshot and the XML store's text/context/generation snapshot) and
	// forces the full-scan rebuild on open.  Snapshots make reopening a
	// large store independent of corpus size; disable only for ablation
	// measurements or when a snapshot is suspected of divergence.
	DisableSnapshots bool
}

// DefaultCacheBytes is the query result cache cap used when Config
// leaves CacheBytes zero.
const DefaultCacheBytes int64 = 64 << 20

// DefaultNodeCacheBytes is the decoded-node cache cap used when Config
// leaves NodeCacheBytes zero.
const DefaultNodeCacheBytes int64 = 32 << 20

// DefaultIngestBatch is the batch size used when Config leaves
// IngestBatchSize zero.
const DefaultIngestBatch = daemon.DefaultBatchSize

// Netmark is a running instance.
type Netmark struct {
	cfg    Config
	db     *ordbms.DB
	store  *xmlstore.Store
	engine *xdb.Engine
	banks  *databank.Registry
	daemon *daemon.Daemon
	server *webdav.Server

	mu        sync.Mutex
	daemonErr error // abnormal ingestion-daemon exit, nil while healthy
}

// Open creates or reopens an instance.
func Open(cfg Config) (*Netmark, error) {
	db, err := ordbms.Open(ordbms.Options{
		Dir:               cfg.Dir,
		PoolPages:         cfg.PoolPages,
		NoDerivedSnapshot: cfg.DisableSnapshots,
	})
	if err != nil {
		return nil, err
	}
	store, err := xmlstore.OpenWith(db, xmlstore.OpenOptions{DisableSnapshot: cfg.DisableSnapshots})
	if err != nil {
		// The open is already doomed; fold a close failure into the
		// reported error rather than dropping it.
		return nil, errors.Join(err, db.Close())
	}
	n := &Netmark{
		cfg:    cfg,
		db:     db,
		store:  store,
		engine: xdb.NewEngine(store),
		banks:  databank.NewRegistry(),
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	if cacheBytes > 0 {
		n.engine.EnableCache(cacheBytes)
	}
	nodeCacheBytes := cfg.NodeCacheBytes
	if nodeCacheBytes == 0 {
		nodeCacheBytes = DefaultNodeCacheBytes
	}
	if nodeCacheBytes > 0 {
		store.EnableNodeCache(nodeCacheBytes)
	}
	store.SetQueryWorkers(cfg.QueryWorkers)
	if cfg.DropDir != "" {
		d, err := daemon.New(cfg.DropDir, store, cfg.PollInterval)
		if err != nil {
			return nil, errors.Join(err, db.Close())
		}
		d.Workers = cfg.IngestWorkers
		d.BatchSize = cfg.IngestBatchSize
		n.daemon = d
	}
	return n, nil
}

// Close checkpoints and shuts the instance down.
func (n *Netmark) Close() error { return n.db.Close() }

// DB exposes the storage engine (stats, checkpoints).
func (n *Netmark) DB() *ordbms.DB { return n.db }

// Store exposes the XML store.
func (n *Netmark) Store() *xmlstore.Store { return n.store }

// Engine exposes the XDB query engine.
func (n *Netmark) Engine() *xdb.Engine { return n.engine }

// Banks exposes the databank registry.
func (n *Netmark) Banks() *databank.Registry { return n.banks }

// Daemon exposes the ingestion daemon (nil when DropDir unset).
func (n *Netmark) Daemon() *daemon.Daemon { return n.daemon }

// Ingest converts and stores one document.
func (n *Netmark) Ingest(name string, data []byte) (uint64, error) {
	return n.store.StoreRaw(name, data)
}

// IngestFile reads and ingests a file from disk.
func (n *Netmark) IngestFile(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return n.Ingest(filepath.Base(path), data)
}

// Doc is one raw input document for IngestBatch.
type Doc = xmlstore.BatchDoc

// IngestResult reports one batch document's outcome, in input order.
type IngestResult = xmlstore.BatchResult

// IngestBatch converts and stores many documents through the concurrent
// pipeline: parsing and upmarking fan out across IngestWorkers, a single
// ordered writer feeds the store (document IDs follow input order), and
// each IngestBatchSize chunk is made durable by one WAL group-commit
// instead of a commit per document.  Per-document failures are isolated
// in their result slot.
func (n *Netmark) IngestBatch(docs []Doc) []IngestResult {
	batch := n.cfg.IngestBatchSize
	if batch <= 0 {
		batch = DefaultIngestBatch
	}
	out := make([]IngestResult, 0, len(docs))
	for start := 0; start < len(docs); start += batch {
		end := start + batch
		if end > len(docs) {
			end = len(docs)
		}
		out = append(out, n.store.StoreBatch(docs[start:end], n.cfg.IngestWorkers)...)
	}
	return out
}

// IngestFiles reads and batch-ingests files from disk.  Results match
// the input paths by index; unreadable files fail in place while the
// rest of the batch proceeds.
func (n *Netmark) IngestFiles(paths []string) []IngestResult {
	results := make([]IngestResult, len(paths))
	docs := make([]Doc, 0, len(paths))
	slots := make([]int, 0, len(paths))
	for i, path := range paths {
		name := filepath.Base(path)
		results[i].Name = name
		data, err := os.ReadFile(path)
		if err != nil {
			results[i].Err = err
			continue
		}
		docs = append(docs, Doc{Name: name, Data: data})
		slots = append(slots, i)
	}
	for j, r := range n.IngestBatch(docs) {
		results[slots[j]] = r
	}
	return results
}

// Query parses and executes a URL-form XDB query against the local
// store.
func (n *Netmark) Query(raw string) (*xdb.Result, error) {
	return n.engine.ExecuteString(raw)
}

// Search runs a context/content search directly.
func (n *Netmark) Search(contextHeading, content string) ([]xmlstore.Section, error) {
	return n.store.Search(contextHeading, content)
}

// RegisterStylesheet names a stylesheet for the xslt= query parameter.
func (n *Netmark) RegisterStylesheet(name, src string) error {
	return n.engine.RegisterStylesheet(name, src)
}

// CreateDatabank assembles an integration application from its
// declarative spec.  Local/legacy source names resolve to this
// instance's engine; for multi-instance topologies use AddDatabank with
// explicitly constructed sources.
func (n *Netmark) CreateDatabank(specJSON []byte) (*databank.Databank, error) {
	spec, err := databank.ParseSpec(specJSON)
	if err != nil {
		return nil, err
	}
	bank, err := spec.Build(func(string) (*xdb.Engine, error) { return n.engine, nil })
	if err != nil {
		return nil, err
	}
	if err := n.banks.Add(bank); err != nil {
		return nil, err
	}
	return bank, nil
}

// AddDatabank registers a programmatically assembled databank.
func (n *Netmark) AddDatabank(b *databank.Databank) error { return n.banks.Add(b) }

// QueryBank fans a query out across a databank's sources.
func (n *Netmark) QueryBank(ctx context.Context, bank string, q xdb.Query) (*databank.Merged, error) {
	b := n.banks.Get(bank)
	if b == nil {
		return nil, fmt.Errorf("netmark: no databank %q", bank)
	}
	return b.Query(ctx, q)
}

// Serve starts the HTTP/WebDAV server and, when configured, the
// ingestion daemon, until ctx is cancelled.
func (n *Netmark) Serve(ctx context.Context, addr string) error {
	srv, err := webdav.NewServer(n.engine, n.banks, n.cfg.DropDir)
	if err != nil {
		return err
	}
	n.server = srv
	if n.daemon != nil {
		go func() {
			if err := n.daemon.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				n.noteDaemonExit(err)
			}
		}()
	}
	return srv.Serve(ctx, addr)
}

// noteDaemonExit records an abnormal ingestion-daemon exit.  The server
// keeps serving queries — stored data is intact — but ingestion has
// stopped, so the failure is kept visible via DaemonErr rather than
// vanishing with the goroutine.
func (n *Netmark) noteDaemonExit(err error) {
	n.mu.Lock()
	n.daemonErr = err
	n.mu.Unlock()
	log.Printf("netmark: ingestion daemon stopped: %v", err)
}

// DaemonErr reports whether the ingestion daemon has exited abnormally
// since Serve started, and why.  It is nil while the daemon is healthy
// (or was never configured).
func (n *Netmark) DaemonErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.daemonErr
}

// HTTPServer builds the HTTP server for custom hosting (its Handler
// method yields an http.Handler for tests and embedding).
func (n *Netmark) HTTPServer() (*webdav.Server, error) {
	return webdav.NewServer(n.engine, n.banks, n.cfg.DropDir)
}
