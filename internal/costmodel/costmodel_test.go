package costmodel

import "testing"

func TestMeasureBasicShape(t *testing.T) {
	p, err := Measure(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Mediator: 4 schemas + 2 views + 8 mappings = 14 artifacts.
	if p.MediatorArtifacts != 14 {
		t.Fatalf("mediator artifacts = %d", p.MediatorArtifacts)
	}
	// NETMARK: 2 specs x (1 + 4 sources) = 10 artifacts.
	if p.NetmarkArtifacts != 10 {
		t.Fatalf("netmark artifacts = %d", p.NetmarkArtifacts)
	}
	if p.MediatorCost <= p.NetmarkCost {
		t.Fatalf("cost ordering: mediator %d vs netmark %d", p.MediatorCost, p.NetmarkCost)
	}
}

func TestMeasureRejectsDegenerate(t *testing.T) {
	if _, err := Measure(0, 1); err == nil {
		t.Fatal("zero sources accepted")
	}
	if _, err := Measure(1, 0); err == nil {
		t.Fatal("zero apps accepted")
	}
}

// TestFig1Shape verifies the figure's claim: the mediator's cost curve
// dominates and grows strictly faster, with the gap widening as sources
// are added.
func TestFig1Shape(t *testing.T) {
	pts, err := Series([]int{1, 2, 4, 8, 16, 32}, 4)
	if err != nil {
		t.Fatal(err)
	}
	prevGap := -1
	for _, p := range pts {
		if p.MediatorCost <= p.NetmarkCost {
			t.Fatalf("at %d sources mediator %d <= netmark %d",
				p.Sources, p.MediatorCost, p.NetmarkCost)
		}
		gap := p.MediatorCost - p.NetmarkCost
		if gap <= prevGap {
			t.Fatalf("gap not widening at %d sources: %d then %d", p.Sources, prevGap, gap)
		}
		prevGap = gap
	}
}

// TestMarginalCost: adding one source costs the mediator a schema plus
// one mapping per application; NETMARK pays one spec line per app.
func TestMarginalCost(t *testing.T) {
	apps := 3
	med, nm, err := MarginalCost(10, apps)
	if err != nil {
		t.Fatal(err)
	}
	wantMed := WeightSchema + apps*WeightMapping
	wantNM := apps * WeightSourceEntry
	if med != wantMed {
		t.Fatalf("mediator marginal = %d, want %d", med, wantMed)
	}
	if nm != wantNM {
		t.Fatalf("netmark marginal = %d, want %d", nm, wantNM)
	}
	if med <= nm {
		t.Fatal("marginal costs inverted")
	}
}

// TestConsumersAxis sweeps applications (the figure's #consumers axis)
// at fixed sources.
func TestConsumersAxis(t *testing.T) {
	var prev Point
	for i, apps := range []int{1, 2, 4, 8} {
		p, err := Measure(8, apps)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			medSlope := p.MediatorCost - prev.MediatorCost
			nmSlope := p.NetmarkCost - prev.NetmarkCost
			if medSlope <= nmSlope {
				t.Fatalf("per-consumer slope: mediator %d <= netmark %d", medSlope, nmSlope)
			}
		}
		prev = p
	}
}
