// Package costmodel reproduces Fig 1 of the paper: the cost of data
// integration as a function of scale.  "The investment in schema
// management per new source integrated and heavy-weight middleware are
// reasons why user costs increase directly with the user benefit [...]
// What is beneficial to end users however are integration technologies
// that truly demonstrate economies of scale."
//
// The costs are measured, not asserted: for each (sources, applications)
// point the model actually assembles both systems — a GAV mediator with
// registered schemas, view definitions and mappings, and a NETMARK
// deployment with one databank spec per application — and counts the
// artifacts an administrator had to author.  Artifacts are also weighted
// by authoring complexity (a mapping requires attribute-level schema
// reconciliation; a databank source entry is one line naming a source).
package costmodel

import (
	"context"
	"fmt"

	"netmark/internal/databank"
	"netmark/internal/mediator"
)

// Weights per artifact class, in relative authoring-effort units.
// A mediator mapping is attribute-level reconciliation work; a schema is
// relation modelling; a databank entry is a pointer.
const (
	WeightSchema       = 5 // model one source's relations and attributes
	WeightView         = 3 // design a global view
	WeightMapping      = 4 // reconcile view attrs against one source
	WeightDatabankSpec = 1 // name the application
	WeightSourceEntry  = 1 // name/point at one source
	WeightServer       = 2 // stand up the NETMARK server (paid once)
)

// Point is one measurement of Fig 1.
type Point struct {
	Sources int
	Apps    int

	// Raw artifact counts.
	MediatorArtifacts int
	NetmarkArtifacts  int

	// Weighted authoring cost.
	MediatorCost int
	NetmarkCost  int
}

// relationShape is the synthetic source relation used for assembly; the
// attribute count matters because mappings must bind each one.
var relationShape = mediator.SourceRelation{
	Name:  "records",
	Attrs: []string{"Title", "System", "Severity", "Description"},
}

// Measure assembles both systems for a deployment of `sources`
// information sources shared by `apps` integration applications and
// returns the measured artifact counts and weighted costs.
func Measure(sources, apps int) (Point, error) {
	if sources < 1 || apps < 1 {
		return Point{}, fmt.Errorf("costmodel: need at least one source and app")
	}
	p := Point{Sources: sources, Apps: apps}

	// --- Mediator assembly (the heavy-weight path). -------------------
	med := mediator.New()
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("src%d", i)
		schema := &mediator.SourceSchema{Source: name,
			Relations: []mediator.SourceRelation{relationShape}}
		if err := med.RegisterSource(schema, nullAdapter{name}); err != nil {
			return p, err
		}
	}
	attrMap := map[string]string{}
	for _, a := range relationShape.Attrs {
		attrMap[a] = a
	}
	for a := 0; a < apps; a++ {
		view := &mediator.GlobalView{
			Name:  fmt.Sprintf("App%dView", a),
			Attrs: relationShape.Attrs,
		}
		if err := med.DefineView(view); err != nil {
			return p, err
		}
		for i := 0; i < sources; i++ {
			if err := med.AddMapping(mediator.Mapping{
				View:     view.Name,
				Source:   fmt.Sprintf("src%d", i),
				Relation: relationShape.Name,
				AttrMap:  attrMap,
			}); err != nil {
				return p, err
			}
		}
	}
	p.MediatorArtifacts = med.ArtifactCount()
	nSchemas, nViews, nMappings := med.Stats()
	p.MediatorCost = nSchemas*WeightSchema + nViews*WeightView + nMappings*WeightMapping

	// --- NETMARK assembly (the lean path). ----------------------------
	// One server, then one declarative databank spec per application.
	p.NetmarkCost = WeightServer
	for a := 0; a < apps; a++ {
		spec := &databank.Spec{Name: fmt.Sprintf("app%d", a)}
		for i := 0; i < sources; i++ {
			spec.Sources = append(spec.Sources, databank.SourceSpec{
				Type: "http",
				Name: fmt.Sprintf("src%d", i),
				URL:  fmt.Sprintf("http://src%d.example", i),
			})
		}
		p.NetmarkArtifacts += spec.ArtifactCount()
		p.NetmarkCost += WeightDatabankSpec + sources*WeightSourceEntry
	}
	return p, nil
}

// nullAdapter satisfies the adapter interface for assembly-only
// measurements (no extraction is performed).
type nullAdapter struct{ name string }

func (a nullAdapter) Name() string { return a.name }
func (a nullAdapter) Extract(_ context.Context, _ mediator.SourceRelation) ([]mediator.Tuple, error) {
	return nil, nil
}

// Series sweeps sources for a fixed number of applications — the Fig 1
// x-axis ("# of consumers" reads as integration scale; we sweep sources
// and report both).
func Series(sourceCounts []int, apps int) ([]Point, error) {
	out := make([]Point, 0, len(sourceCounts))
	for _, n := range sourceCounts {
		p, err := Measure(n, apps)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// MarginalCost returns the cost of integrating one more source into an
// existing deployment — the paper's economies-of-scale test.
func MarginalCost(sources, apps int) (mediatorDelta, netmarkDelta int, err error) {
	a, err := Measure(sources, apps)
	if err != nil {
		return 0, 0, err
	}
	b, err := Measure(sources+1, apps)
	if err != nil {
		return 0, 0, err
	}
	return b.MediatorCost - a.MediatorCost, b.NetmarkCost - a.NetmarkCost, nil
}
