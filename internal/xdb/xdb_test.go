package xdb

import (
	"strings"
	"testing"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/xmlstore"
)

func engine(t testing.TB) *Engine {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(s)
}

func load(t testing.TB, e *Engine, name, data string) {
	t.Helper()
	if _, err := e.Store().StoreRaw(name, []byte(data)); err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
}

const doc1 = `<html><head><title>Report One</title></head><body>
<h1>Introduction</h1><p>The shuttle program overview.</p>
<h2>Technology Gap</h2><p>The technology gap is shrinking fast.</p>
</body></html>`

const doc2 = `<html><head><title>Report Two</title></head><body>
<h1>Introduction</h1><p>An unrelated engine analysis.</p>
<h2>Findings</h2><p>The technology gap persists in avionics.</p>
</body></html>`

func TestParseQueryForms(t *testing.T) {
	cases := []struct {
		raw  string
		want Query
	}{
		{"context=Introduction", Query{Context: "Introduction"}},
		{"?context=Introduction", Query{Context: "Introduction"}},
		{"Content=Shuttle", Query{Content: "Shuttle"}},
		{"CONTEXT=Technology+Gap&CONTENT=Shrinking", Query{Context: "Technology Gap", Content: "Shrinking"}},
		{"context=Tech*", Query{Context: "Tech", ContextPrefix: true}},
		{"content=%22technology+gap%22", Query{Content: "technology gap", Phrase: true}},
		{"content=x&scope=document", Query{Content: "x", DocsOnly: true}},
		{"context=Budget&xslt=ibpd&limit=5", Query{Context: "Budget", XSLT: "ibpd", Limit: 5}},
	}
	for _, c := range cases {
		got, err := Parse(c.raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.raw, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"", "?", "xslt=only", "context=A&limit=-1", "context=A&limit=x",
		"context=A&scope=galaxy", "context=A&unknownparam=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	qs := []Query{
		{Context: "Budget"},
		{Content: "shuttle engine"},
		{Context: "Tech", ContextPrefix: true, Content: "gap"},
		{Content: "exact phrase", Phrase: true, Limit: 3},
		{Content: "x", DocsOnly: true, XSLT: "sheet"},
	}
	for _, q := range qs {
		got, err := Parse(q.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip %+v -> %q -> %+v", q, q.Encode(), got)
		}
	}
}

func TestExecuteContextQuery(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)
	r, err := e.ExecuteString("context=Introduction")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("results = %d", r.Len())
	}
}

func TestExecuteCombinedQuery(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)
	// The paper's example: Context=Technology Gap & Content=Shrinking.
	r, err := e.ExecuteString("context=Technology+Gap&content=Shrinking")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("results = %d", r.Len())
	}
	if r.Sections[0].DocName != "one.html" {
		t.Fatalf("wrong doc: %s", r.Sections[0].DocName)
	}
}

func TestExecuteDocScope(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)
	r, err := e.ExecuteString("content=technology&scope=document")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Docs) != 2 {
		t.Fatalf("docs = %d", len(r.Docs))
	}
	if _, err := e.ExecuteString("context=A&scope=document"); err == nil {
		t.Fatal("doc scope without content accepted")
	}
}

func TestExecutePrefixQuery(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)
	r, err := e.ExecuteString("context=Tech*")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Sections[0].Context != "Technology Gap" {
		t.Fatalf("prefix results = %v", r.Sections)
	}
	// Prefix + content residual.
	r, err = e.ExecuteString("context=Tech*&content=shrinking")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("prefix+content = %d", r.Len())
	}
	r, err = e.ExecuteString("context=Tech*&content=absentterm")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("prefix+absent = %d", r.Len())
	}
}

func TestExecutePhraseQuery(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)
	// Phrase "technology gap" occurs in both docs' text, but "gap is
	// shrinking" only in one.
	r, err := e.ExecuteString(`content="gap is shrinking"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Sections[0].DocName != "one.html" {
		t.Fatalf("phrase results = %v", r.Sections)
	}
	// Same words, not adjacent: no hit.
	r, err = e.ExecuteString(`content="shrinking is gap"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("non-adjacent phrase matched: %v", r.Sections)
	}
}

func TestExecuteLimit(t *testing.T) {
	e := engine(t)
	for i := 0; i < 10; i++ {
		load(t, e, strings.Repeat("x", i+1)+".html",
			`<html><body><h1>Common</h1><p>text</p></body></html>`)
	}
	r, err := e.ExecuteString("context=Common&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("limited results = %d", r.Len())
	}
}

func TestExecuteWithStylesheet(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	err := e.RegisterStylesheet("report", `<xsl:stylesheet>
<xsl:template match="/">
  <report><xsl:for-each select="//result">
    <line><xsl:value-of select="context"/>: <xsl:value-of select="content"/></line>
  </xsl:for-each></report>
</xsl:template>
</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.ExecuteString("context=Technology+Gap&xslt=report")
	if err != nil {
		t.Fatal(err)
	}
	if r.Transformed == nil {
		t.Fatal("no transformed output")
	}
	txt := r.Transformed.Text()
	if !strings.Contains(txt, "Technology Gap") || !strings.Contains(txt, "shrinking") {
		t.Fatalf("transformed = %q", txt)
	}
	// Unregistered stylesheet errors.
	if _, err := e.ExecuteString("context=A&xslt=nope"); err == nil {
		t.Fatal("unknown stylesheet accepted")
	}
}

func TestResultXMLRoundTrip(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	r, err := e.ExecuteString("context=Introduction")
	if err != nil {
		t.Fatal(err)
	}
	wire := r.XML()
	parsed, err := ParseResultXML(serialize(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Sections) != len(r.Sections) {
		t.Fatalf("sections: %d != %d", len(parsed.Sections), len(r.Sections))
	}
	if parsed.Sections[0].Context != r.Sections[0].Context ||
		parsed.Sections[0].Content != r.Sections[0].Content ||
		parsed.Sections[0].DocName != r.Sections[0].DocName {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed.Sections[0], r.Sections[0])
	}
}

func TestResultXMLDocsRoundTrip(t *testing.T) {
	e := engine(t)
	load(t, e, "one.html", doc1)
	r, err := e.ExecuteString("content=shuttle&scope=document")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseResultXML(serialize(r.XML()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Docs) != 1 || parsed.Docs[0].FileName != "one.html" {
		t.Fatalf("docs round trip: %+v", parsed.Docs)
	}
}

func serialize(n *sgml.Node) string { return sgml.Serialize(n) }

func TestResultXMLEscaping(t *testing.T) {
	// Content with markup-significant characters must survive the wire
	// format round trip.
	e := engine(t)
	load(t, e, "tricky.html",
		`<html><body><h1>Formula</h1><p>a &lt; b &amp;&amp; c &gt; d "quoted"</p></body></html>`)
	r, err := e.ExecuteString("context=Formula")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sections) != 1 {
		t.Fatalf("sections = %v", r.Sections)
	}
	parsed, err := ParseResultXML(serialize(r.XML()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Sections[0].Content != r.Sections[0].Content {
		t.Fatalf("escaping broke round trip: %q vs %q",
			parsed.Sections[0].Content, r.Sections[0].Content)
	}
	if !strings.Contains(parsed.Sections[0].Content, `a < b && c > d`) {
		t.Fatalf("content = %q", parsed.Sections[0].Content)
	}
}

func TestSectionPredicates(t *testing.T) {
	sec := xmlstore.Section{Context: "Technology Gap", Content: "the gap is shrinking rapidly"}
	if !SectionMatchesContent(sec, Query{Content: "shrinking"}) {
		t.Fatal("single term")
	}
	if !SectionMatchesContent(sec, Query{Content: "gap shrinking"}) {
		t.Fatal("multi term AND")
	}
	if SectionMatchesContent(sec, Query{Content: "absent"}) {
		t.Fatal("absent term matched")
	}
	if SectionMatchesContent(sec, Query{Content: "shrink"}) {
		t.Fatal("substring must not match at word boundary")
	}
	if !SectionMatchesContent(sec, Query{Content: "is shrinking", Phrase: true}) {
		t.Fatal("phrase")
	}
	if SectionMatchesContent(sec, Query{Content: "shrinking is", Phrase: true}) {
		t.Fatal("reversed phrase matched")
	}
	if !SectionMatchesContext(sec, Query{Context: "technology gap"}) {
		t.Fatal("case-insensitive context")
	}
	if !SectionMatchesContext(sec, Query{Context: "Tech", ContextPrefix: true}) {
		t.Fatal("prefix context")
	}
	if SectionMatchesContext(sec, Query{Context: "Budget"}) {
		t.Fatal("wrong context matched")
	}
}
