package xdb

import (
	"fmt"
	"sync"
	"testing"
)

func cachedEngine(t testing.TB, capacity int64) *Engine {
	t.Helper()
	e := engine(t)
	e.EnableCache(capacity)
	return e
}

func mustExecute(t testing.TB, e *Engine, raw string) *Result {
	t.Helper()
	r, err := e.ExecuteString(raw)
	if err != nil {
		t.Fatalf("execute %q: %v", raw, err)
	}
	return r
}

func TestCacheHitMissCounters(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)

	r1 := mustExecute(t, e, "context=Introduction")
	r2 := mustExecute(t, e, "context=Introduction")
	if len(r1.Sections) != 1 || len(r2.Sections) != 1 {
		t.Fatalf("sections = %d / %d, want 1", len(r1.Sections), len(r2.Sections))
	}
	if r1 != r2 {
		t.Fatal("repeated query did not return the cached result")
	}
	st, ok := e.CacheStats()
	if !ok {
		t.Fatal("cache reported disabled")
	}
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 1 sized entry", st)
	}
}

func TestCacheInvalidatedByIngest(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)

	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 1 {
		t.Fatalf("pre-ingest sections = %d", len(got.Sections))
	}
	load(t, e, "two.html", doc2) // bumps the store generation

	got := mustExecute(t, e, "context=Introduction")
	if len(got.Sections) != 2 {
		t.Fatalf("post-ingest sections = %d, want 2 (stale cache served?)", len(got.Sections))
	}
	st, _ := e.CacheStats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (ingest must invalidate)", st.Misses)
	}
}

func TestCacheInvalidatedByDelete(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)

	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 2 {
		t.Fatalf("pre-delete sections = %d", len(got.Sections))
	}
	info, err := e.Store().DocumentByName("two.html")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store().DeleteDocument(info.DocID); err != nil {
		t.Fatal(err)
	}
	got := mustExecute(t, e, "context=Introduction")
	if len(got.Sections) != 1 {
		t.Fatalf("post-delete sections = %d, want 1 (stale cache served?)", len(got.Sections))
	}
}

func TestCacheInvalidatedByStylesheetReregistration(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)
	sheet := func(tag string) string {
		return `<xsl:stylesheet><xsl:template match="/"><` + tag +
			`><xsl:value-of select="count(//result)"/></` + tag + `></xsl:template></xsl:stylesheet>`
	}
	if err := e.RegisterStylesheet("s", sheet("first")); err != nil {
		t.Fatal(err)
	}
	r := mustExecute(t, e, "context=Introduction&xslt=s")
	if r.Transformed == nil || r.Transformed.Find("first") == nil {
		t.Fatalf("first transform missing: %+v", r.Transformed)
	}
	if err := e.RegisterStylesheet("s", sheet("second")); err != nil {
		t.Fatal(err)
	}
	r = mustExecute(t, e, "context=Introduction&xslt=s")
	if r.Transformed == nil || r.Transformed.Find("second") == nil {
		t.Fatal("re-registered stylesheet served a stale cached transform")
	}
}

func TestCacheEvictionRespectsByteCap(t *testing.T) {
	e := cachedEngine(t, 600) // fits only a couple of results
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)

	queries := []string{
		"context=Introduction",
		"content=shuttle",
		"content=engine",
		"context=Findings",
		"context=Technology+Gap",
	}
	for _, q := range queries {
		mustExecute(t, e, q)
	}
	st, _ := e.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 600-byte cap: %+v", st)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("cache holds %d bytes over its %d cap", st.Bytes, st.Capacity)
	}
	// Evicted entries must re-execute, not vanish.
	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 2 {
		t.Fatalf("post-eviction sections = %d", len(got.Sections))
	}
}

func TestCacheOversizedResultNotCached(t *testing.T) {
	e := cachedEngine(t, 16) // smaller than any result
	load(t, e, "one.html", doc1)
	mustExecute(t, e, "context=Introduction")
	mustExecute(t, e, "context=Introduction")
	st, _ := e.CacheStats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized result was cached: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

func TestCacheSingleflightCollapsesDuplicates(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)
	load(t, e, "two.html", doc2)

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.ExecuteString("context=Introduction")
			if err == nil && len(r.Sections) != 2 {
				err = fmt.Errorf("sections = %d", len(r.Sections))
			}
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, _ := e.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (duplicates must collapse)", st.Misses)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("hits %d + coalesced %d != %d", st.Hits, st.Coalesced, goroutines-1)
	}
}

// TestConcurrentStylesheetRegistrationDuringQueries exercises the
// Engine.sheets race under -race: registrations land while styled and
// plain queries execute.
func TestConcurrentStylesheetRegistrationDuringQueries(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)
	const sheet = `<xsl:stylesheet><xsl:template match="/">
<summary><xsl:for-each select="//result"><s><xsl:value-of select="content"/></s></xsl:for-each></summary>
</xsl:template></xsl:stylesheet>`
	if err := e.RegisterStylesheet("hot", sheet); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				name := fmt.Sprintf("sheet-%d-%d", i, j)
				if err := e.RegisterStylesheet(name, sheet); err != nil {
					errs <- err
					return
				}
				// Overwrite the shared hot sheet too.
				if err := e.RegisterStylesheet("hot", sheet); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				if _, err := e.ExecuteString("context=Introduction&xslt=hot"); err != nil {
					errs <- err
					return
				}
				if _, err := e.ExecuteString("content=shuttle"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachePerDocumentInvalidation: a write to one document must not
// invalidate cached queries that only touched other documents.  The
// cache keys fold per-term/per-heading generations and entries validate
// per-document stamps, so only queries whose predicates overlap the
// written document go cold.
func TestCachePerDocumentInvalidation(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	load(t, e, "one.html", doc1)

	// Prime the cache with queries that only touch doc1.
	if got := mustExecute(t, e, "context=Technology+Gap"); len(got.Sections) != 1 {
		t.Fatalf("prime sections = %d", len(got.Sections))
	}
	if got := mustExecute(t, e, "content=shuttle"); len(got.Sections) != 1 {
		t.Fatalf("prime content sections = %d", len(got.Sections))
	}

	// Write a document sharing no headings or terms with the cached
	// queries: both must still be served from cache.
	load(t, e, "other.html", `<html><head><title>Other</title></head><body>
<h1>Logistics</h1><p>Unrelated warehouse inventory memo.</p></body></html>`)
	mustExecute(t, e, "context=Technology+Gap")
	mustExecute(t, e, "content=shuttle")
	st, _ := e.CacheStats()
	if st.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (disjoint write must not invalidate)", st.Hits)
	}

	// Delete the unrelated document: still no invalidation.
	info, err := e.Store().DocumentByName("other.html")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store().DeleteDocument(info.DocID); err != nil {
		t.Fatal(err)
	}
	mustExecute(t, e, "context=Technology+Gap")
	st, _ = e.CacheStats()
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3 (disjoint delete must not invalidate)", st.Hits)
	}

	// A write that overlaps the predicate must invalidate: doc2 carries
	// the terms "technology gap".
	load(t, e, "two.html", doc2)
	if got := mustExecute(t, e, "content=technology+gap"); len(got.Sections) != 2 {
		t.Fatalf("overlap sections = %d, want 2", len(got.Sections))
	}
	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 2 {
		t.Fatalf("introduction sections = %d, want 2", len(got.Sections))
	}

	// Deleting doc1 must invalidate the queries whose results contained
	// it, even though they were cached before the delete.
	info, err = e.Store().DocumentByName("one.html")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store().DeleteDocument(info.DocID); err != nil {
		t.Fatal(err)
	}
	if got := mustExecute(t, e, "context=Technology+Gap"); len(got.Sections) != 0 {
		t.Fatalf("post-delete sections = %d, want 0 (stale cache served?)", len(got.Sections))
	}
	if got := mustExecute(t, e, "content=shuttle"); len(got.Sections) != 0 {
		t.Fatalf("post-delete content sections = %d, want 0", len(got.Sections))
	}
}

// TestGenerationBumpsAfterIndexing: by the time an ingest returns, the
// store generation must be past any value a query could have snapshotted
// while the derived indexes were still missing the document — otherwise
// the cache pins an index-incomplete result under the final key.
func TestGenerationBumpsAfterIndexing(t *testing.T) {
	e := cachedEngine(t, 1<<20)
	gen0 := e.Store().Generation()
	load(t, e, "one.html", doc1)
	if gen := e.Store().Generation(); gen <= gen0 {
		t.Fatalf("generation %d not bumped by ingest (was %d)", gen, gen0)
	}
	// A query right after ingest must see the document and be cached
	// under the post-indexing generation.
	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 1 {
		t.Fatalf("sections = %d", len(got.Sections))
	}
	if got := mustExecute(t, e, "context=Introduction"); len(got.Sections) != 1 {
		t.Fatalf("cached sections = %d", len(got.Sections))
	}
	st, _ := e.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("post-ingest repeat was not a cache hit: %+v", st)
	}
}
