// Package xdb implements XDB Query, "the Netmark query language" [7]:
// context and content search specifications appended to a URL, optionally
// naming an XSLT stylesheet that formats the results into a new document
// (§2.1.3, Fig 7).
//
// Examples from the paper, in this syntax:
//
//	?context=Introduction
//	?content=Shuttle
//	?context=Technology+Gap&content=Shrinking
//	?context=Budget&xslt=ibpd&limit=50
//
// A trailing * on context requests prefix matching; a quoted content
// value requests phrase search.
package xdb

import (
	"bytes"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/xmlstore"
	"netmark/internal/xslt"
)

// Query is a parsed XDB query.
type Query struct {
	// Context is the heading to match ("" = no context predicate).
	Context string
	// ContextPrefix requests prefix matching on the heading.
	ContextPrefix bool
	// Content holds the search terms ("" = no content predicate).
	Content string
	// Phrase requests adjacency (quoted content value).
	Phrase bool
	// DocsOnly requests document-level results (the paper's
	// "Content=Shuttle returns all documents containing 'Shuttle'").
	DocsOnly bool
	// XPath, when set, selects nodes from matching documents with an
	// XPath-lite expression — the paper's "full-fledged XML querying"
	// over any repository.  Combined with context/content predicates the
	// index prefilters the documents; alone it scans every document.
	XPath string
	// XSLT names a registered stylesheet for result composition.
	XSLT string
	// Limit caps the number of results (0 = unlimited).
	Limit int
}

// IsZero reports whether the query has no predicates.
func (q Query) IsZero() bool { return q.Context == "" && q.Content == "" && q.XPath == "" }

// String renders the query in URL form.
func (q Query) String() string { return q.Encode() }

// Encode renders the query as a URL query string.
func (q Query) Encode() string {
	v := url.Values{}
	if q.Context != "" {
		c := q.Context
		if q.ContextPrefix {
			c += "*"
		}
		v.Set("context", c)
	}
	if q.Content != "" {
		c := q.Content
		if q.Phrase {
			c = `"` + c + `"`
		}
		v.Set("content", c)
	}
	if q.DocsOnly {
		v.Set("scope", "document")
	}
	if q.XPath != "" {
		v.Set("xpath", q.XPath)
	}
	if q.XSLT != "" {
		v.Set("xslt", q.XSLT)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	return v.Encode()
}

// Parse parses the query-string form (with or without a leading '?').
// Keys are case-insensitive, matching the paper's Context=/Content=
// examples.
func Parse(raw string) (Query, error) {
	raw = strings.TrimPrefix(strings.TrimSpace(raw), "?")
	if raw == "" {
		return Query{}, fmt.Errorf("xdb: empty query")
	}
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return Query{}, fmt.Errorf("xdb: malformed query: %w", err)
	}
	var q Query
	for key, vs := range vals {
		if len(vs) == 0 {
			continue
		}
		v := vs[len(vs)-1]
		switch strings.ToLower(key) {
		case "context":
			q.Context = strings.TrimSpace(v)
			if strings.HasSuffix(q.Context, "*") {
				q.Context = strings.TrimRight(q.Context, "*")
				q.ContextPrefix = true
			}
		case "content":
			v = strings.TrimSpace(v)
			if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
				v = v[1 : len(v)-1]
				q.Phrase = true
			}
			q.Content = v
		case "scope":
			switch strings.ToLower(v) {
			case "document", "doc", "docs":
				q.DocsOnly = true
			case "section", "sections", "":
			default:
				return Query{}, fmt.Errorf("xdb: unknown scope %q", v)
			}
		case "xpath":
			q.XPath = v
		case "xslt", "stylesheet":
			q.XSLT = v
		case "limit":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Query{}, fmt.Errorf("xdb: bad limit %q", v)
			}
			q.Limit = n
		default:
			return Query{}, fmt.Errorf("xdb: unknown parameter %q", key)
		}
	}
	if q.IsZero() {
		return Query{}, fmt.Errorf("xdb: query needs context=, content= or xpath=")
	}
	return q, nil
}

// Result is the outcome of executing a query.
type Result struct {
	Query    Query
	Sections []xmlstore.Section
	Docs     []*xmlstore.DocInfo
	// Transformed holds the styled document when the query named a
	// stylesheet.
	Transformed *sgml.Node
}

// Len returns the number of result items.
func (r *Result) Len() int {
	if r.Query.DocsOnly {
		return len(r.Docs)
	}
	return len(r.Sections)
}

// XML materialises the result set as a document tree, the wire format
// used by HTTP clients and by databank routers merging multiple sources.
func (r *Result) XML() *sgml.Node {
	root := sgml.NewElement("results")
	root.SetAttr("count", strconv.Itoa(r.Len()))
	if r.Query.DocsOnly {
		for _, d := range r.Docs {
			el := sgml.NewElement("document")
			el.SetAttr("id", strconv.FormatUint(d.DocID, 10))
			el.SetAttr("name", d.FileName)
			el.SetAttr("title", d.Title)
			el.SetAttr("format", d.Format)
			root.AppendChild(el)
		}
		return root
	}
	for _, s := range r.Sections {
		el := sgml.NewElement("result")
		el.SetAttr("doc", s.DocName)
		el.SetAttr("doc-title", s.DocTitle)
		ctx := sgml.NewElement("context")
		ctx.AppendChild(sgml.NewText(s.Context))
		el.AppendChild(ctx)
		content := sgml.NewElement("content")
		content.AppendChild(sgml.NewText(s.Content))
		el.AppendChild(content)
		root.AppendChild(el)
	}
	return root
}

// ParseResultXML decodes the wire format back into a Result (used by the
// databank's remote sources).
func ParseResultXML(src string) (*Result, error) {
	tree, err := sgml.ParseString(src, sgml.ModeXML)
	if err != nil {
		return nil, err
	}
	root := tree.Find("results")
	if root == nil {
		return nil, fmt.Errorf("xdb: no <results> element")
	}
	r := &Result{}
	for _, el := range root.ChildElements() {
		switch el.Name {
		case "result":
			sec := xmlstore.Section{}
			sec.DocName, _ = el.Attr("doc")
			sec.DocTitle, _ = el.Attr("doc-title")
			if c := el.Find("context"); c != nil {
				sec.Context = c.Text()
			}
			if c := el.Find("content"); c != nil {
				sec.Content = c.Text()
			}
			r.Sections = append(r.Sections, sec)
		case "document":
			d := &xmlstore.DocInfo{}
			d.FileName, _ = el.Attr("name")
			d.Title, _ = el.Attr("title")
			d.Format, _ = el.Attr("format")
			if ids, ok := el.Attr("id"); ok {
				if id, err := strconv.ParseUint(ids, 10, 64); err == nil {
					d.DocID = id
				}
			}
			r.Docs = append(r.Docs, d)
			r.Query.DocsOnly = true
		}
	}
	return r, nil
}

// Engine executes XDB queries against a local XML store.
type Engine struct {
	store *xmlstore.Store

	// sheetMu guards sheets: PUT /xslt/{name} registers stylesheets while
	// concurrent queries resolve them.
	sheetMu sync.RWMutex
	// netmarkvet:gen sheetGen
	sheets map[string]*xslt.Stylesheet // guarded by sheetMu
	// sheetGen counts stylesheet registrations.  Cached results of styled
	// queries key on it, so re-registering a sheet invalidates them the
	// same way a store mutation invalidates plain results.
	sheetGen atomic.Uint64

	// cache, when non-nil, memoises query results keyed by (store
	// generation, sheet generation, canonical query).  Set once via
	// EnableCache before the engine serves traffic.
	cache *resultCache
}

// NewEngine wraps a store.
func NewEngine(store *xmlstore.Store) *Engine {
	return &Engine{store: store, sheets: make(map[string]*xslt.Stylesheet)}
}

// Store returns the underlying XML store.
func (e *Engine) Store() *xmlstore.Store { return e.store }

// EnableCache attaches an LRU result cache capped at capacity bytes.
// Call it during setup, before queries run; capacity <= 0 disables
// caching.  Results served from the cache are shared — treat them as
// read-only.
func (e *Engine) EnableCache(capacity int64) {
	if capacity <= 0 {
		e.cache = nil
		return
	}
	e.cache = newResultCache(capacity, e.stampResult, e.stampsFresh)
}

// CacheStats snapshots the result cache counters; ok is false when no
// cache is enabled.
func (e *Engine) CacheStats() (stats CacheStats, ok bool) {
	if e.cache == nil {
		return CacheStats{}, false
	}
	return e.cache.stats(), true
}

// RegisterStylesheet compiles and names a stylesheet for use via the
// xslt= query parameter.  Safe for use while queries execute.
func (e *Engine) RegisterStylesheet(name, src string) error {
	sheet, err := xslt.ParseStylesheet(src)
	if err != nil {
		return err
	}
	e.sheetMu.Lock()
	e.sheets[name] = sheet
	// Bump before releasing the guard: with the bump outside, a query
	// landing between the unlock and the bump could read the new sheet
	// yet key (or hit) a cached result under the old generation —
	// serving a result styled by the replaced sheet after registration
	// already completed.
	e.sheetGen.Add(1)
	e.sheetMu.Unlock()
	return nil
}

// Stylesheet returns a registered stylesheet, or nil.
func (e *Engine) Stylesheet(name string) *xslt.Stylesheet {
	e.sheetMu.RLock()
	defer e.sheetMu.RUnlock()
	return e.sheets[name]
}

// ExecuteString parses and executes a URL-form query.
func (e *Engine) ExecuteString(raw string) (*Result, error) {
	q, err := Parse(raw)
	if err != nil {
		return nil, err
	}
	return e.Execute(q)
}

// Execute runs a parsed query, consulting the result cache when one is
// enabled.  Cached results are shared across callers and must be treated
// as read-only.
func (e *Engine) Execute(q Query) (*Result, error) {
	if e.cache == nil {
		return e.executeUncached(q)
	}
	// Snapshot both generations *before* executing: if a mutation lands
	// mid-query, the result is cached under the pre-mutation key, which
	// the mutation's bump has already made unreachable.
	key := e.cacheKey(q)
	res, _, err := e.cache.fetch(key, func() (*Result, error) { return e.executeUncached(q) })
	return res, err
}

// ExecuteInto runs a parsed query and writes its XML representation (the
// transformed document when the query named a stylesheet, the result set
// otherwise) to w — the serving layer's path.  Cache hits write the
// memoized response body; uncached results stream without building the
// serialized document in memory.  Execution errors are reported before
// anything is written.
func (e *Engine) ExecuteInto(q Query, w io.Writer) error {
	if e.cache == nil {
		res, err := e.executeUncached(q)
		if err != nil {
			return err
		}
		return sgml.WriteIndent(w, resultTree(res))
	}
	key := e.cacheKey(q)
	res, entry, err := e.cache.fetch(key, func() (*Result, error) { return e.executeUncached(q) })
	if err != nil {
		return err
	}
	if entry == nil { // oversized result: not cached, stream it
		return sgml.WriteIndent(w, resultTree(res))
	}
	body := e.cache.renderedXML(entry, func(r *Result) []byte {
		var buf bytes.Buffer
		sgml.WriteIndent(&buf, resultTree(r))
		return buf.Bytes()
	})
	_, err = w.Write(body)
	return err
}

// resultTree picks the document a result serves over the wire.
func resultTree(r *Result) *sgml.Node {
	if r.Transformed != nil {
		return r.Transformed
	}
	return r.XML()
}

// cacheKey builds the invalidation-aware cache key: the stylesheet
// generation and the store fingerprint of exactly the structures the
// query reads prefix the canonical query encoding.
//
// PR 2 keyed on one global store generation, so any write invalidated
// every cached result and mixed read/write traffic ran every query cold.
// The key now folds per-document generations collapsed to the structures
// a query actually depends on: the per-term generations of its content
// terms (each bumped only when a posting for that term is added or
// removed — i.e. when a document containing the term is written or
// deleted) and the per-heading generations of its context predicate.  A
// write to document A therefore leaves cached queries that only touched
// document B reachable; snapshotting the fingerprint *before* executing
// preserves the PR 2 invariant that a result computed across a mutation
// is cached under a key the mutation has already made unreachable.
func (e *Engine) cacheKey(q Query) string {
	var b strings.Builder
	b.Grow(56)
	b.WriteString(strconv.FormatUint(e.sheetGen.Load(), 16))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(e.storeFingerprint(q), 16))
	b.WriteByte('|')
	b.WriteString(q.Encode())
	return b.String()
}

// storeFingerprint folds the generations of the store structures the
// query's plan reads.
func (e *Engine) storeFingerprint(q Query) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) { h = (h ^ v) * prime64 }
	if q.XPath != "" {
		// XPath plans reconstruct whole documents and may scan every one;
		// any store mutation can change the answer, so they stay on the
		// global generation.
		mix(e.store.Generation())
		return h
	}
	if q.Content != "" {
		mix(e.store.ContentIndex().QueryGen(q.Content))
	}
	if q.Context != "" {
		if q.ContextPrefix {
			mix(e.store.ContextPrefixGen(q.Context))
		} else {
			mix(e.store.ContextGen(q.Context))
		}
	}
	return h
}

// stampResult records the per-document generations of every document in
// a result, captured at insert time; stampsFresh rechecks them on every
// hit.  This is the belt-and-braces layer under the fingerprint keys: a
// cached entry is served only while none of the documents it actually
// returned has been mutated since.
func (e *Engine) stampResult(r *Result) []docStamp {
	var stamps []docStamp
	seen := make(map[uint64]bool)
	add := func(id uint64) {
		if id == 0 || seen[id] {
			return
		}
		seen[id] = true
		stamps = append(stamps, docStamp{doc: id, gen: e.store.DocGeneration(id)})
	}
	for i := range r.Sections {
		add(r.Sections[i].DocID)
	}
	for _, d := range r.Docs {
		add(d.DocID)
	}
	return stamps
}

func (e *Engine) stampsFresh(stamps []docStamp) bool {
	for _, st := range stamps {
		if e.store.DocGeneration(st.doc) != st.gen {
			return false
		}
	}
	return true
}

// executeUncached evaluates the query against the store.
func (e *Engine) executeUncached(q Query) (*Result, error) {
	r := &Result{Query: q}
	switch {
	case q.XPath != "":
		secs, err := e.executeXPath(q)
		if err != nil {
			return nil, err
		}
		r.Sections = secs
	case q.DocsOnly:
		if q.Content == "" {
			return nil, fmt.Errorf("xdb: document scope requires content=")
		}
		docs, err := e.store.ContentSearchDocsN(q.Content, q.Limit)
		if err != nil {
			return nil, err
		}
		r.Docs = docs
	case q.ContextPrefix && q.Content == "":
		secs, err := e.store.ContextPrefixSearchN(q.Context, q.Limit)
		if err != nil {
			return nil, err
		}
		r.Sections = secs
	case q.ContextPrefix:
		// The residual content filter runs here, so the prefix search
		// itself cannot be capped; the filter loop stops at the limit.
		secs, err := e.store.ContextPrefixSearch(q.Context)
		if err != nil {
			return nil, err
		}
		for _, s := range secs {
			if sectionMatchesContent(s, q) {
				r.Sections = append(r.Sections, s)
				if q.Limit > 0 && len(r.Sections) >= q.Limit {
					break
				}
			}
		}
	case q.Phrase && q.Context == "":
		secs, err := e.phraseSections(q.Content, q.Limit)
		if err != nil {
			return nil, err
		}
		r.Sections = secs
	case q.Phrase:
		secs, err := e.store.ContextSearch(q.Context)
		if err != nil {
			return nil, err
		}
		for _, s := range secs {
			if sectionMatchesContent(s, q) {
				r.Sections = append(r.Sections, s)
				if q.Limit > 0 && len(r.Sections) >= q.Limit {
					break
				}
			}
		}
	default:
		secs, err := e.store.SearchN(q.Context, q.Content, q.Limit)
		if err != nil {
			return nil, err
		}
		r.Sections = secs
	}
	if q.Limit > 0 {
		if len(r.Sections) > q.Limit {
			r.Sections = r.Sections[:q.Limit]
		}
		if len(r.Docs) > q.Limit {
			r.Docs = r.Docs[:q.Limit]
		}
	}
	if q.XSLT != "" {
		sheet := e.Stylesheet(q.XSLT)
		if sheet == nil {
			return nil, fmt.Errorf("xdb: no stylesheet %q registered", q.XSLT)
		}
		t, err := sheet.Transform(r.XML())
		if err != nil {
			return nil, err
		}
		r.Transformed = t
	}
	return r, nil
}

// executeXPath evaluates an XPath-lite expression against matching
// documents — the paper's "full-fledged XML querying ... over any
// information repository".  Content/context predicates prefilter the
// candidate documents through the indexes; a bare xpath= scans all of
// them.  Each selected node becomes a result section whose content is
// the node's serialised XML (elements) or text.
func (e *Engine) executeXPath(q Query) ([]xmlstore.Section, error) {
	path, err := xslt.CompilePath(q.XPath)
	if err != nil {
		return nil, err
	}
	var docs []*xmlstore.DocInfo
	switch {
	case q.Content != "":
		docs, err = e.store.ContentSearchDocs(q.Content)
	case q.Context != "":
		var secs []xmlstore.Section
		if q.ContextPrefix {
			secs, err = e.store.ContextPrefixSearch(q.Context)
		} else {
			secs, err = e.store.ContextSearch(q.Context)
		}
		if err == nil {
			seen := map[uint64]bool{}
			for _, s := range secs {
				if !seen[s.DocID] {
					seen[s.DocID] = true
					info, derr := e.store.Document(s.DocID)
					if derr != nil {
						if xmlstore.IsGone(derr) {
							continue // deleted since the section matched
						}
						return nil, derr
					}
					docs = append(docs, info)
				}
			}
		}
	default:
		docs, err = e.store.Documents()
	}
	if err != nil {
		return nil, err
	}
	var out []xmlstore.Section
	for _, d := range docs {
		tree, err := e.store.Reconstruct(d.DocID)
		if err != nil {
			if xmlstore.IsGone(err) {
				// Reconstruct chases physical links; a concurrent delete
				// makes it fail part-way.  The document is going away.
				continue
			}
			return nil, err
		}
		for _, n := range path.Select(tree) {
			content := n.Text()
			if n.Kind == sgml.ElementNode {
				content = sgml.Serialize(n)
			}
			out = append(out, xmlstore.Section{
				DocID:    d.DocID,
				DocName:  d.FileName,
				DocTitle: d.Title,
				Context:  q.XPath,
				Content:  content,
			})
			if q.Limit > 0 && len(out) >= q.Limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// phraseSections runs a phrase query through the text index, then builds
// sections via the traversal kernel, stopping at limit sections
// (limit <= 0 means unlimited).
func (e *Engine) phraseSections(phrase string, limit int) ([]xmlstore.Section, error) {
	hits := e.store.ContentIndex().Phrase(phrase)
	seen := make(map[ordbms.RowID]bool)
	var out []xmlstore.Section
	for _, h := range hits {
		rid := ordbms.RowIDFromUint64(h)
		node, err := e.store.FetchNode(rid)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		ctx, err := e.store.ContextFor(node)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue // document mid-delete; skip the hit
			}
			return nil, err
		}
		if ctx == nil {
			continue
		}
		if seen[ctx.RowID] {
			continue
		}
		seen[ctx.RowID] = true
		sec, err := e.store.SectionOf(ctx)
		if err != nil {
			if err == ordbms.ErrRecordDeleted {
				continue
			}
			return nil, err
		}
		out = append(out, sec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// sectionMatchesContent applies a query's content predicate to an
// already-materialised section (used for residual filtering here and in
// the databank's query augmentation).
func sectionMatchesContent(s xmlstore.Section, q Query) bool {
	if q.Content == "" {
		return true
	}
	text := strings.ToLower(s.Content + " " + s.Context)
	if q.Phrase {
		return strings.Contains(text, strings.ToLower(q.Content))
	}
	for _, term := range strings.Fields(strings.ToLower(q.Content)) {
		if !containsWord(text, term) {
			return false
		}
	}
	return true
}

// SectionMatchesContent is the exported residual-filter predicate.
func SectionMatchesContent(s xmlstore.Section, q Query) bool {
	return sectionMatchesContent(s, q)
}

// SectionMatchesContext applies a query's context predicate to a section.
func SectionMatchesContext(s xmlstore.Section, q Query) bool {
	if q.Context == "" {
		return true
	}
	have := strings.ToLower(strings.Join(strings.Fields(s.Context), " "))
	want := strings.ToLower(strings.Join(strings.Fields(q.Context), " "))
	if q.ContextPrefix {
		return strings.HasPrefix(have, want)
	}
	return have == want
}

// containsWord checks a word-boundary match.
func containsWord(text, word string) bool {
	idx := 0
	for {
		i := strings.Index(text[idx:], word)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(word)
		beforeOK := start == 0 || !isWordChar(text[start-1])
		afterOK := end >= len(text) || !isWordChar(text[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c >= 'A' && c <= 'Z'
}
