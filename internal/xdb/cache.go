package xdb

import (
	"container/list"
	"fmt"
	"sync"

	"netmark/internal/sgml"
)

// This file implements the invalidation-aware LRU query result cache.
// Entries are keyed by (stylesheet generation, store fingerprint,
// canonical query encoding), where the fingerprint folds the per-term and
// per-heading generations of exactly the structures the query reads: a
// mutation bumps only the generations it touches, so it makes stale keys
// unreachable for the queries it could affect and leaves everything else
// cached — invalidation costs a few counter bumps, never a scan.  Stale
// keys age out of the LRU like any cold entry.
//
// Beneath the keys, every entry carries per-document generation stamps of
// the documents its result actually returned, re-validated on each hit —
// a second, independent layer of per-document invalidation.
//
// Duplicate in-flight queries collapse: when N goroutines miss on the same
// key simultaneously, one executes and the other N-1 wait for its result
// (singleflight), so a hot query going cold — or being invalidated under
// load — costs one execution, not a thundering herd.

// CacheStats is a snapshot of the result cache's counters.
type CacheStats struct {
	Hits      uint64 // lookups served from a cached entry
	Misses    uint64 // lookups that executed the query
	Coalesced uint64 // lookups that waited on another goroutine's execution
	Evictions uint64 // entries dropped to fit the byte cap
	Stale     uint64 // hits rejected by per-document stamp validation
	Entries   int    // live entries
	Bytes     int64  // estimated bytes held
	Capacity  int64  // configured byte cap
}

// docStamp pins one document's generation at result-insert time.
type docStamp struct {
	doc, gen uint64
}

type cacheEntry struct {
	key    string
	res    *Result
	size   int64
	stamps []docStamp // per-document generations of the result's documents

	// rendered memoises the serialized XML response body, built on the
	// first HTTP serve of this entry: repeated hot queries cost a byte
	// copy, not a re-serialization of the whole result set.
	renderOnce sync.Once
	rendered   []byte
}

// flightCall tracks one in-flight execution that later arrivals join.
type flightCall struct {
	wg    sync.WaitGroup
	res   *Result
	entry *cacheEntry // nil when the result was not cacheable
	err   error
}

type resultCache struct {
	capacity int64
	// stamp captures per-document generations when a result is inserted;
	// fresh re-validates them on every hit.  Either may be nil (no
	// per-document validation).
	stamp func(*Result) []docStamp
	fresh func([]docStamp) bool

	// mu is held for map/LRU bookkeeping only; query execution and
	// flight waits happen outside it.  netmarkvet:hot
	mu      sync.Mutex
	lru     *list.List               // guarded by mu; front = most recently used; values are *cacheEntry
	entries map[string]*list.Element // guarded by mu
	flight  map[string]*flightCall   // guarded by mu
	bytes   int64                    // guarded by mu

	hits, misses, coalesced, evictions, stale uint64 // guarded by mu
}

func newResultCache(capacity int64, stamp func(*Result) []docStamp, fresh func([]docStamp) bool) *resultCache {
	return &resultCache{
		capacity: capacity,
		stamp:    stamp,
		fresh:    fresh,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
}

// fetch returns the cached result for key, joins an in-flight execution
// of the same key, or runs fn itself and caches its result.  The returned
// *Result is shared across callers and must be treated as read-only; the
// *cacheEntry is nil when the result was not cached (oversized).
func (c *resultCache) fetch(key string, fn func() (*Result, error)) (*Result, *cacheEntry, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.fresh == nil || c.fresh(e.stamps) {
			c.lru.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return e.res, e, nil
		}
		// A document this result returned has been mutated since: the
		// entry is stale even though its key was reachable.  Drop it and
		// fall through to executing the query.
		c.stale++
		c.lru.Remove(el)
		delete(c.entries, key)
		c.bytes -= e.size
	}
	if fc, ok := c.flight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		fc.wg.Wait()
		return fc.res, fc.entry, fc.err
	}
	c.misses++
	fc := &flightCall{}
	fc.wg.Add(1)
	c.flight[key] = fc
	c.mu.Unlock()

	// Cleanup runs even if fn panics (net/http recovers handler panics):
	// the flight slot must be released and waiters unblocked, or every
	// future request for this key would hang in Wait forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fc.err = fmt.Errorf("xdb: query execution panicked: %v", r)
				c.releaseFlight(key, fc)
				panic(r)
			}
			c.releaseFlight(key, fc)
		}()
		fc.res, fc.err = fn()
	}()
	return fc.res, fc.entry, fc.err
}

func (c *resultCache) releaseFlight(key string, fc *flightCall) {
	c.mu.Lock()
	delete(c.flight, key)
	if fc.err == nil {
		fc.entry = c.insertLocked(key, fc.res)
	}
	c.mu.Unlock()
	fc.wg.Done()
}

// insertLocked adds an entry and evicts from the cold end until the cache
// fits its byte cap.  Results bigger than the whole cap are not cached.
func (c *resultCache) insertLocked(key string, res *Result) *cacheEntry {
	var stamps []docStamp
	if c.stamp != nil {
		stamps = c.stamp(res)
	}
	size := int64(len(key)) + resultSize(res) + int64(len(stamps))*16
	if size > c.capacity {
		return nil
	}
	if el, ok := c.entries[key]; ok { // lost a race with an equal key
		c.bytes -= el.Value.(*cacheEntry).size
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	e := &cacheEntry{key: key, res: res, size: size, stamps: stamps}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += size
	c.evictLocked()
	return e
}

func (c *resultCache) evictLocked() {
	for c.bytes > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// renderedXML returns the entry's memoized response body, building it on
// first use and charging its bytes against the cache cap.
func (c *resultCache) renderedXML(e *cacheEntry, render func(*Result) []byte) []byte {
	e.renderOnce.Do(func() {
		e.rendered = render(e.res)
		c.mu.Lock()
		// Charge the rendering only while the entry is still resident
		// (it may have been evicted between fetch and render).
		if el, ok := c.entries[e.key]; ok && el.Value.(*cacheEntry) == e {
			add := int64(len(e.rendered))
			e.size += add
			c.bytes += add
			c.evictLocked()
		}
		c.mu.Unlock()
	})
	return e.rendered
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Stale:     c.stale,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
	}
}

// resultSize estimates a result's resident footprint: string payloads plus
// a fixed per-item overhead for headers and slice bookkeeping.
func resultSize(r *Result) int64 {
	const itemOverhead = 96
	n := int64(128)
	for i := range r.Sections {
		s := &r.Sections[i]
		n += int64(len(s.DocName)+len(s.DocTitle)+len(s.Context)+len(s.Content)) + itemOverhead
	}
	for _, d := range r.Docs {
		n += int64(len(d.FileName)+len(d.Title)+len(d.Format)) + itemOverhead
	}
	if r.Transformed != nil {
		n += nodeSize(r.Transformed)
	}
	return n
}

func nodeSize(n *sgml.Node) int64 {
	size := int64(len(n.Name)+len(n.Data)) + 96
	for _, a := range n.Attrs {
		size += int64(len(a.Name)+len(a.Value)) + 32
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		size += nodeSize(c)
	}
	return size
}
