package xdb

import (
	"strings"
	"testing"
)

const inventoryXML = `<inventory site="ames">
  <part id="p1"><label>Cryo Valve</label><qty>3</qty></part>
  <part id="p2"><label>Turbopump</label><qty>1</qty></part>
</inventory>`

func TestXPathQueryOverRawXML(t *testing.T) {
	e := engine(t)
	load(t, e, "parts.xml", inventoryXML)
	r, err := e.ExecuteString("xpath=//part/label")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("results = %v", r.Sections)
	}
	if !strings.Contains(r.Sections[0].Content, "Cryo Valve") {
		t.Fatalf("content = %q", r.Sections[0].Content)
	}
}

func TestXPathWithPredicate(t *testing.T) {
	e := engine(t)
	load(t, e, "parts.xml", inventoryXML)
	r, err := e.ExecuteString("xpath=//part[@id='p2']")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !strings.Contains(r.Sections[0].Content, "Turbopump") {
		t.Fatalf("results = %v", r.Sections)
	}
	// Element results serialise as XML.
	if !strings.Contains(r.Sections[0].Content, "<label>") {
		t.Fatalf("element not serialised: %q", r.Sections[0].Content)
	}
}

func TestXPathPrefilteredByContent(t *testing.T) {
	e := engine(t)
	load(t, e, "one.xml", `<report><finding>valve leak</finding></report>`)
	load(t, e, "two.xml", `<report><finding>nominal</finding></report>`)
	// content= prefilters to documents containing "leak"; xpath then
	// selects within them.
	r, err := e.ExecuteString("content=leak&xpath=//finding")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !strings.Contains(r.Sections[0].Content, "valve leak") {
		t.Fatalf("results = %v", r.Sections)
	}
}

func TestXPathPrefilteredByContext(t *testing.T) {
	e := engine(t)
	load(t, e, "a.html", `<html><body><h1>Budget</h1><p>alpha</p></body></html>`)
	load(t, e, "b.html", `<html><body><h1>Schedule</h1><p>beta</p></body></html>`)
	r, err := e.ExecuteString("context=Budget&xpath=//p")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !strings.Contains(r.Sections[0].Content, "alpha") {
		t.Fatalf("results = %v", r.Sections)
	}
}

func TestXPathLimit(t *testing.T) {
	e := engine(t)
	load(t, e, "parts.xml", inventoryXML)
	r, err := e.ExecuteString("xpath=//part&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("limit ignored: %d", r.Len())
	}
}

func TestXPathBadExpressionRejected(t *testing.T) {
	e := engine(t)
	load(t, e, "parts.xml", inventoryXML)
	if _, err := e.ExecuteString("xpath=//part["); err == nil {
		t.Fatal("bad xpath accepted")
	}
}

func TestXPathEncodeRoundTrip(t *testing.T) {
	q := Query{XPath: "//part[@id='p1']/label", Content: "valve"}
	got, err := Parse(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("round trip: %+v vs %+v", got, q)
	}
}
