package xdb

import (
	"bytes"
	"testing"

	"netmark/internal/corpus"
	"netmark/internal/ordbms"
	"netmark/internal/xmlstore"
)

// TestReopenEquivalenceThroughEngine proves the full query surface —
// context, content, combined, limit, and XPath plans — renders byte-for-
// byte identical responses whether the store was just built, reopened
// via the derived snapshot, or reopened via the forced full-scan
// fallback.  This is the HTTP-visible version of the xmlstore-level
// reopen-equivalence test: what a client sees cannot depend on how the
// middleware restarted.
func TestReopenEquivalenceThroughEngine(t *testing.T) {
	queries := []string{
		"context=Budget",
		"context=Milestones",
		"content=cryogenic",
		"content=budget+allocation",
		"context=Budget&content=allocation",
		"context=Budget&limit=3",
		"xpath=//h2",
		"xpath=//p&limit=4",
		"content=effort&xpath=//p",
	}

	render := func(t *testing.T, e *Engine) map[string][]byte {
		t.Helper()
		out := make(map[string][]byte, len(queries))
		for _, raw := range queries {
			q, err := Parse(raw)
			if err != nil {
				t.Fatalf("parse %q: %v", raw, err)
			}
			var buf bytes.Buffer
			if err := e.ExecuteInto(q, &buf); err != nil {
				t.Fatalf("%q: %v", raw, err)
			}
			out[raw] = append([]byte(nil), buf.Bytes()...)
		}
		return out
	}

	dir := t.TempDir()
	db, err := ordbms.Open(ordbms.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.New(321)
	for _, d := range gen.TaskPlans(40) {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range gen.DeepReports(3, 3, 6, 4) {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	want := render(t, NewEngine(s))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	open := func(disable bool) (*ordbms.DB, *xmlstore.Store) {
		db, err := ordbms.Open(ordbms.Options{Dir: dir, NoDerivedSnapshot: disable})
		if err != nil {
			t.Fatal(err)
		}
		s, err := xmlstore.OpenWith(db, xmlstore.OpenOptions{DisableSnapshot: disable})
		if err != nil {
			t.Fatal(err)
		}
		return db, s
	}

	db2, s2 := open(false)
	if !s2.SnapshotStats().Loaded {
		t.Fatalf("snapshot not loaded: %+v", s2.SnapshotStats())
	}
	got := render(t, NewEngine(s2))
	for _, raw := range queries {
		if !bytes.Equal(got[raw], want[raw]) {
			t.Fatalf("snapshot reopen: %q renders differently:\n got: %s\nwant: %s", raw, got[raw], want[raw])
		}
	}
	db2.CloseDiscard()

	db3, s3 := open(true)
	defer db3.CloseDiscard()
	if s3.SnapshotStats().Loaded {
		t.Fatal("ablation flag ignored")
	}
	got = render(t, NewEngine(s3))
	for _, raw := range queries {
		if !bytes.Equal(got[raw], want[raw]) {
			t.Fatalf("scan reopen: %q renders differently:\n got: %s\nwant: %s", raw, got[raw], want[raw])
		}
	}
}
