// Package experiments regenerates every table and figure in the paper's
// evaluation, plus the ablations described in README.md.  Each experiment
// returns a formatted report; cmd/nmbench prints them and the root
// bench_test.go wraps their kernels in testing.B loops.
//
// Absolute numbers will not match a 2005 Oracle deployment; the
// reproduced claims are the *shapes*: which approach wins, by roughly
// what factor, and how costs scale.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"netmark/internal/corpus"
	"netmark/internal/costmodel"
	"netmark/internal/databank"
	"netmark/internal/docform"
	"netmark/internal/mediator"
	"netmark/internal/ordbms"
	"netmark/internal/sgml"
	"netmark/internal/shred"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// NewStore builds an in-memory store (shared helper).
func NewStore() (*xmlstore.Store, error) {
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		return nil, err
	}
	return xmlstore.Open(db)
}

// LoadCorpus ingests documents into a store.
func LoadCorpus(s *xmlstore.Store, docs []corpus.Document) error {
	for _, d := range docs {
		if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
			return fmt.Errorf("ingest %s: %w", d.Name, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Fig 1 — Costs of data integration.
// ---------------------------------------------------------------------

// Fig1 sweeps source counts at a fixed number of consumer applications
// and reports measured artifact counts and weighted authoring costs for
// the GAV mediator versus NETMARK databanks.
func Fig1(sourceCounts []int, apps int) (string, error) {
	pts, err := costmodel.Series(sourceCounts, apps)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1 — Costs of data integration (apps=%d)\n", apps)
	fmt.Fprintf(&sb, "%-8s %-12s %-12s %-12s %-12s %-8s\n",
		"sources", "med.arts", "nm.arts", "med.cost", "nm.cost", "ratio")
	for _, p := range pts {
		ratio := float64(p.MediatorCost) / float64(p.NetmarkCost)
		fmt.Fprintf(&sb, "%-8d %-12d %-12d %-12d %-12d %-8.2f\n",
			p.Sources, p.MediatorArtifacts, p.NetmarkArtifacts,
			p.MediatorCost, p.NetmarkCost, ratio)
	}
	sb.WriteString("paper claim: heavy-middleware cost grows linearly with scale;\n")
	sb.WriteString("the lean approach approaches a flat marginal cost (economies of scale).\n")
	return sb.String(), nil
}

// ---------------------------------------------------------------------
// Table 1 — NASA integration applications and assembly effort.
// ---------------------------------------------------------------------

// Table1Row is one application's assembly measurement.
type Table1Row struct {
	App            string
	PaperAssembly  string
	Docs           int
	NetmarkSteps   int // declarative artifacts to assemble the app
	MediatorSteps  int // artifacts the GAV route needs
	NetmarkBuild   time.Duration
	MediatorBuild  time.Duration
	FirstQueryHits int
}

// Table1 assembles the paper's applications both ways and measures the
// declarative effort and machine time.  The paper's human assembly times
// (1 hour / 1 day / 1 week) are reported alongside the measured artifact
// ratio, which is the mechanism behind them.
func Table1() ([]Table1Row, string, error) {
	rows := []Table1Row{}

	pfm, err := table1ProposalFinancial()
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, pfm)

	risk, err := table1RiskAssessment()
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, risk)

	ibpd, err := table1IBPD()
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, ibpd)

	anom, err := table1AnomalyTracking()
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, anom)

	var sb strings.Builder
	sb.WriteString("Table 1 — NASA integration applications (assembly effort)\n")
	fmt.Fprintf(&sb, "%-34s %-10s %-6s %-9s %-9s %-12s %-12s %-5s\n",
		"application", "paper", "docs", "nm.steps", "med.steps", "nm.build", "med.build", "hits")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %-10s %-6d %-9d %-9d %-12s %-12s %-5d\n",
			r.App, r.PaperAssembly, r.Docs, r.NetmarkSteps, r.MediatorSteps,
			r.NetmarkBuild.Round(time.Millisecond), r.MediatorBuild.Round(time.Millisecond),
			r.FirstQueryHits)
	}
	sb.WriteString("paper claim: applications assemble in hours-to-days with NETMARK\n")
	sb.WriteString("because assembly is a declarative source list (nm.steps), not\n")
	sb.WriteString("schema+view+mapping authoring (med.steps).\n")
	return rows, sb.String(), nil
}

func table1ProposalFinancial() (Table1Row, error) {
	r := Table1Row{App: "Proposal Financial Management", PaperAssembly: "1 hour", Docs: 60}
	s, err := NewStore()
	if err != nil {
		return r, err
	}
	gen := corpus.New(11)
	if err := LoadCorpus(s, gen.Proposals(r.Docs)); err != nil {
		return r, err
	}
	eng := xdb.NewEngine(s)

	// NETMARK assembly: one databank spec with one source.
	t0 := time.Now()
	spec := &databank.Spec{Name: "pfm", Sources: []databank.SourceSpec{{Type: "local", Name: "proposals"}}}
	bank, err := spec.Build(func(string) (*xdb.Engine, error) { return eng, nil })
	if err != nil {
		return r, err
	}
	m, err := bank.Query(context.Background(), xdb.Query{Context: "Budget"})
	if err != nil {
		return r, err
	}
	r.NetmarkBuild = time.Since(t0)
	r.NetmarkSteps = spec.ArtifactCount()
	r.FirstQueryHits = len(m.Sections())

	// Mediator assembly: schema + view + mapping over the same store.
	t0 = time.Now()
	med := mediator.New()
	rel := mediator.SourceRelation{Name: "proposals",
		Attrs: []string{"Abstract", "Budget", "Schedule", "Risk Assessment"}}
	if err := med.RegisterSource(&mediator.SourceSchema{Source: "proposals",
		Relations: []mediator.SourceRelation{rel}}, mediator.NewDocAdapter("proposals", eng)); err != nil {
		return r, err
	}
	if err := med.DefineView(&mediator.GlobalView{Name: "ProposalFinance",
		Attrs: []string{"budget", "schedule"}}); err != nil {
		return r, err
	}
	if err := med.AddMapping(mediator.Mapping{View: "ProposalFinance", Source: "proposals",
		Relation: "proposals",
		AttrMap:  map[string]string{"budget": "Budget", "schedule": "Schedule"}}); err != nil {
		return r, err
	}
	if _, err := med.Query(context.Background(), "ProposalFinance", nil); err != nil {
		return r, err
	}
	r.MediatorBuild = time.Since(t0)
	r.MediatorSteps = med.ArtifactCount() * 2 // schemas carry per-attr reconciliation
	return r, nil
}

func table1RiskAssessment() (Table1Row, error) {
	r := Table1Row{App: "Risk Assessment", PaperAssembly: "1 day", Docs: 40}
	s, err := NewStore()
	if err != nil {
		return r, err
	}
	gen := corpus.New(12)
	if err := LoadCorpus(s, gen.Proposals(r.Docs)); err != nil {
		return r, err
	}
	eng := xdb.NewEngine(s)

	t0 := time.Now()
	spec := &databank.Spec{Name: "risk", Sources: []databank.SourceSpec{{Type: "local", Name: "proposals"}}}
	bank, err := spec.Build(func(string) (*xdb.Engine, error) { return eng, nil })
	if err != nil {
		return r, err
	}
	m, err := bank.Query(context.Background(), xdb.Query{Context: "Risk Assessment", Content: "High"})
	if err != nil {
		return r, err
	}
	r.NetmarkBuild = time.Since(t0)
	r.NetmarkSteps = spec.ArtifactCount()
	r.FirstQueryHits = len(m.Sections())

	t0 = time.Now()
	med := mediator.New()
	rel := mediator.SourceRelation{Name: "proposals", Attrs: []string{"Risk Assessment", "Budget"}}
	if err := med.RegisterSource(&mediator.SourceSchema{Source: "proposals",
		Relations: []mediator.SourceRelation{rel}}, mediator.NewDocAdapter("proposals", eng)); err != nil {
		return r, err
	}
	if err := med.DefineView(&mediator.GlobalView{Name: "Risk", Attrs: []string{"risk"}}); err != nil {
		return r, err
	}
	if err := med.AddMapping(mediator.Mapping{View: "Risk", Source: "proposals", Relation: "proposals",
		AttrMap: map[string]string{"risk": "Risk Assessment"}}); err != nil {
		return r, err
	}
	if _, err := med.Query(context.Background(), "Risk",
		[]mediator.Predicate{{Attr: "risk", Op: "contains", Value: "High"}}); err != nil {
		return r, err
	}
	r.MediatorBuild = time.Since(t0)
	r.MediatorSteps = med.ArtifactCount() * 2
	return r, nil
}

func table1IBPD() (Table1Row, error) {
	r := Table1Row{App: "Integrated Budget Performance Doc", PaperAssembly: "1 week", Docs: 300}
	s, err := NewStore()
	if err != nil {
		return r, err
	}
	gen := corpus.New(13)
	if err := LoadCorpus(s, gen.TaskPlans(r.Docs)); err != nil {
		return r, err
	}
	eng := xdb.NewEngine(s)
	if err := eng.RegisterStylesheet("ibpd", IBPDStylesheet); err != nil {
		return r, err
	}

	t0 := time.Now()
	res, err := eng.ExecuteString("context=Budget&xslt=ibpd")
	if err != nil {
		return r, err
	}
	r.NetmarkBuild = time.Since(t0)
	r.NetmarkSteps = 2 // databank spec + stylesheet
	r.FirstQueryHits = res.Len()
	if res.Transformed == nil {
		return r, fmt.Errorf("ibpd: no composed document")
	}

	// Mediator route: schema+view+mapping, then manual document assembly.
	t0 = time.Now()
	med := mediator.New()
	rel := mediator.SourceRelation{Name: "plans", Attrs: []string{"Objective", "Budget", "Milestones"}}
	if err := med.RegisterSource(&mediator.SourceSchema{Source: "plans",
		Relations: []mediator.SourceRelation{rel}}, mediator.NewDocAdapter("plans", eng)); err != nil {
		return r, err
	}
	if err := med.DefineView(&mediator.GlobalView{Name: "IBPD", Attrs: []string{"budget"}}); err != nil {
		return r, err
	}
	if err := med.AddMapping(mediator.Mapping{View: "IBPD", Source: "plans", Relation: "plans",
		AttrMap: map[string]string{"budget": "Budget"}}); err != nil {
		return r, err
	}
	if _, err := med.Query(context.Background(), "IBPD", nil); err != nil {
		return r, err
	}
	r.MediatorBuild = time.Since(t0)
	r.MediatorSteps = med.ArtifactCount()*2 + 1 // + composition glue
	return r, nil
}

func table1AnomalyTracking() (Table1Row, error) {
	r := Table1Row{App: "Anomaly Tracking", PaperAssembly: "1 day", Docs: 80}
	sa, err := NewStore()
	if err != nil {
		return r, err
	}
	sb, err := NewStore()
	if err != nil {
		return r, err
	}
	gen := corpus.New(14)
	if err := LoadCorpus(sa, gen.Anomalies(r.Docs/2)); err != nil {
		return r, err
	}
	if err := LoadCorpus(sb, gen.Anomalies(r.Docs/2)); err != nil {
		return r, err
	}
	ea, eb := xdb.NewEngine(sa), xdb.NewEngine(sb)

	t0 := time.Now()
	bank := databank.New("anomaly")
	bank.AddSource(databank.NewLocalSource("tracker-a", ea))
	bank.AddSource(databank.NewLegacySource("tracker-b", databank.ContentOnly, eb))
	m, err := bank.Query(context.Background(), xdb.Query{Context: "System", Content: "Engine"})
	if err != nil {
		return r, err
	}
	r.NetmarkBuild = time.Since(t0)
	r.NetmarkSteps = 1 + 2 // spec + two source entries
	r.FirstQueryHits = len(m.Sections())

	t0 = time.Now()
	med := mediator.New()
	rel := mediator.SourceRelation{Name: "anomalies",
		Attrs: []string{"Title", "System", "Severity", "Description"}}
	for name, eng := range map[string]*xdb.Engine{"tracker-a": ea, "tracker-b": eb} {
		if err := med.RegisterSource(&mediator.SourceSchema{Source: name,
			Relations: []mediator.SourceRelation{rel}}, mediator.NewDocAdapter(name, eng)); err != nil {
			return r, err
		}
	}
	if err := med.DefineView(&mediator.GlobalView{Name: "Anomalies",
		Attrs: []string{"title", "system", "severity"}}); err != nil {
		return r, err
	}
	for _, name := range []string{"tracker-a", "tracker-b"} {
		if err := med.AddMapping(mediator.Mapping{View: "Anomalies", Source: name, Relation: "anomalies",
			AttrMap: map[string]string{"title": "Title", "system": "System", "severity": "Severity"}}); err != nil {
			return r, err
		}
	}
	if _, err := med.Query(context.Background(), "Anomalies",
		[]mediator.Predicate{{Attr: "system", Op: "eq", Value: "Engine"}}); err != nil {
		return r, err
	}
	r.MediatorBuild = time.Since(t0)
	r.MediatorSteps = med.ArtifactCount() * 2
	return r, nil
}

// IBPDStylesheet composes budget sections into one integrated document
// (the IBPD application's composition sheet).
const IBPDStylesheet = `<xsl:stylesheet>
<xsl:template match="/">
  <ibpd title="Integrated Budget Performance Document">
    <xsl:for-each select="//result">
      <xsl:sort select="@doc"/>
      <entry plan="{@doc}"><xsl:value-of select="content"/></entry>
    </xsl:for-each>
  </ibpd>
</xsl:template>
</xsl:stylesheet>`

// ---------------------------------------------------------------------
// Fig 6 — Context search across a growing document collection.
// ---------------------------------------------------------------------

// Fig6Point is one corpus-size measurement.
type Fig6Point struct {
	Docs         int
	Nodes        int64
	Sections     int
	MedianSearch time.Duration
}

// Fig6 measures context-search latency ("Context=Budget returns the
// Budget sections of all documents") as the collection grows.
func Fig6(sizes []int) ([]Fig6Point, string, error) {
	var pts []Fig6Point
	for _, n := range sizes {
		s, err := NewStore()
		if err != nil {
			return nil, "", err
		}
		gen := corpus.New(int64(100 + n))
		if err := LoadCorpus(s, gen.Proposals(n)); err != nil {
			return nil, "", err
		}
		const trials = 9
		lat := make([]time.Duration, 0, trials)
		var hits int
		for i := 0; i < trials; i++ {
			t0 := time.Now()
			secs, err := s.ContextSearch("Budget")
			if err != nil {
				return nil, "", err
			}
			lat = append(lat, time.Since(t0))
			hits = len(secs)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pts = append(pts, Fig6Point{
			Docs: n, Nodes: s.NumNodes(), Sections: hits, MedianSearch: lat[len(lat)/2],
		})
	}
	var sb strings.Builder
	sb.WriteString("Fig 6 — Context search across a document collection\n")
	fmt.Fprintf(&sb, "%-8s %-10s %-10s %-14s\n", "docs", "nodes", "sections", "median-latency")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%-8d %-10d %-10d %-14s\n", p.Docs, p.Nodes, p.Sections, p.MedianSearch)
	}
	sb.WriteString("paper claim: one context query returns the matching section of every\n")
	sb.WriteString("document; latency is governed by result size, not collection size.\n")
	return pts, sb.String(), nil
}

// ---------------------------------------------------------------------
// Fig 7 — XDB query + XSLT transformation pipeline.
// ---------------------------------------------------------------------

// Fig7 measures the full search-and-compose pipeline against plain
// search, reporting the transformation overhead.
func Fig7(docs int) (string, error) {
	s, err := NewStore()
	if err != nil {
		return "", err
	}
	gen := corpus.New(77)
	if err := LoadCorpus(s, gen.TaskPlans(docs)); err != nil {
		return "", err
	}
	eng := xdb.NewEngine(s)
	if err := eng.RegisterStylesheet("ibpd", IBPDStylesheet); err != nil {
		return "", err
	}
	const trials = 9
	measure := func(raw string) (time.Duration, int, error) {
		// Warm the caches so the first variant measured pays no setup.
		if _, err := eng.ExecuteString(raw); err != nil {
			return 0, 0, err
		}
		lat := make([]time.Duration, 0, trials)
		n := 0
		for i := 0; i < trials; i++ {
			t0 := time.Now()
			res, err := eng.ExecuteString(raw)
			if err != nil {
				return 0, 0, err
			}
			lat = append(lat, time.Since(t0))
			n = res.Len()
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], n, nil
	}
	plain, hits, err := measure("context=Budget")
	if err != nil {
		return "", err
	}
	styled, _, err := measure("context=Budget&xslt=ibpd")
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig 7 — XDB Query search and transformation process\n")
	fmt.Fprintf(&sb, "%-28s %-12s %-8s\n", "pipeline", "median", "results")
	fmt.Fprintf(&sb, "%-28s %-12s %-8d\n", "search only", plain, hits)
	fmt.Fprintf(&sb, "%-28s %-12s %-8d\n", "search + XSLT composition", styled, hits)
	fmt.Fprintf(&sb, "composition overhead: %.2fx\n", float64(styled)/float64(plain))
	sb.WriteString("paper claim: result composition into a new document is an inline\n")
	sb.WriteString("post-processing step on the query path, not a separate system.\n")
	return sb.String(), nil
}

// ---------------------------------------------------------------------
// Fig 8 — Thin-router scaling across sources.
// ---------------------------------------------------------------------

// Fig8Point is one source-count measurement.
type Fig8Point struct {
	Sources    int
	Parallel   time.Duration
	Sequential time.Duration
	Results    int
}

// latencySource adds a fixed delay to every query, standing in for the
// network round-trip of the paper's distributed sources ("multiple
// information sources that may be distributed at other locations").
// Without it a local fan-out is dominated by goroutine overhead and says
// nothing about the router.
type latencySource struct {
	inner databank.Source
	rtt   time.Duration
}

func (l latencySource) Name() string                      { return l.inner.Name() }
func (l latencySource) Capabilities() databank.Capability { return l.inner.Capabilities() }
func (l latencySource) Query(ctx context.Context, q xdb.Query) (*xdb.Result, error) {
	select {
	case <-time.After(l.rtt):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return l.inner.Query(ctx, q)
}

// Fig8RTT is the simulated per-source network round-trip.
const Fig8RTT = 2 * time.Millisecond

// Fig8 builds N sources (every third one capability-limited to
// content-only, forcing augmentation; all behind a simulated 2 ms network
// round-trip) and measures a fan-out query with the parallel router
// versus a sequential baseline.
func Fig8(sourceCounts []int, docsPerSource int) ([]Fig8Point, string, error) {
	var pts []Fig8Point
	for _, n := range sourceCounts {
		bank := databank.New("fig8")
		for i := 0; i < n; i++ {
			s, err := NewStore()
			if err != nil {
				return nil, "", err
			}
			gen := corpus.New(int64(1000*n + i))
			if err := LoadCorpus(s, gen.Anomalies(docsPerSource)); err != nil {
				return nil, "", err
			}
			eng := xdb.NewEngine(s)
			name := fmt.Sprintf("src%02d", i)
			var src databank.Source
			if i%3 == 2 {
				src = databank.NewLegacySource(name, databank.ContentOnly, eng)
			} else {
				src = databank.NewLocalSource(name, eng)
			}
			bank.AddSource(latencySource{inner: src, rtt: Fig8RTT})
		}
		q := xdb.Query{Context: "System", Content: "Engine"}
		const trials = 5
		par := make([]time.Duration, 0, trials)
		seq := make([]time.Duration, 0, trials)
		results := 0
		for t := 0; t < trials; t++ {
			t0 := time.Now()
			m, err := bank.Query(context.Background(), q)
			if err != nil {
				return nil, "", err
			}
			par = append(par, time.Since(t0))
			results = len(m.Sections())
			t0 = time.Now()
			if _, err := bank.QuerySequential(context.Background(), q); err != nil {
				return nil, "", err
			}
			seq = append(seq, time.Since(t0))
		}
		sort.Slice(par, func(i, j int) bool { return par[i] < par[j] })
		sort.Slice(seq, func(i, j int) bool { return seq[i] < seq[j] })
		pts = append(pts, Fig8Point{Sources: n, Parallel: par[len(par)/2],
			Sequential: seq[len(seq)/2], Results: results})
	}
	var sb strings.Builder
	sb.WriteString("Fig 8 — Highly scalable and flexible integration (thin router)\n")
	fmt.Fprintf(&sb, "(each source behind a simulated %v network round-trip)\n", Fig8RTT)
	fmt.Fprintf(&sb, "%-8s %-12s %-12s %-8s %-8s\n", "sources", "parallel", "sequential", "speedup", "results")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%-8d %-12s %-12s %-8.2f %-8d\n",
			p.Sources, p.Parallel, p.Sequential,
			float64(p.Sequential)/float64(p.Parallel), p.Results)
	}
	sb.WriteString("paper claim: arbitrary numbers of sources compose per application;\n")
	sb.WriteString("the router is thin and fan-out is the only added latency.\n")
	return pts, sb.String(), nil
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

// AblationRowidTraversal compares walking a document tree by physical
// RowID links against resolving each hop through the NODEID B-tree.
func AblationRowidTraversal(docs int) (string, error) {
	s, err := NewStore()
	if err != nil {
		return "", err
	}
	gen := corpus.New(55)
	if err := LoadCorpus(s, gen.Proposals(docs)); err != nil {
		return "", err
	}
	secs, err := s.ContextSearch("Budget")
	if err != nil {
		return "", err
	}
	if len(secs) == 0 {
		return "", fmt.Errorf("ablation: empty corpus")
	}
	// Hop from each context node to its root via both mechanisms,
	// alternating repetitions so cache warmth is shared evenly.
	walkRowid := func() (int, error) {
		hops := 0
		for _, sec := range secs {
			n, err := s.FetchNode(sec.ContextRID)
			if err != nil {
				return 0, err
			}
			for !n.ParentRowID.IsZero() {
				n, err = s.FetchNode(n.ParentRowID)
				if err != nil {
					return 0, err
				}
				hops++
			}
		}
		return hops, nil
	}
	walkJoin := func() error {
		for _, sec := range secs {
			n, err := s.FetchNode(sec.ContextRID)
			if err != nil {
				return err
			}
			for n.ParentID != 0 {
				n, err = s.FetchNodeByID(n.ParentID)
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Warm both paths.
	hops, err := walkRowid()
	if err != nil {
		return "", err
	}
	if err := walkJoin(); err != nil {
		return "", err
	}
	const reps = 20
	var rowid, join time.Duration
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if _, err := walkRowid(); err != nil {
			return "", err
		}
		rowid += time.Since(t0)
		t0 = time.Now()
		if err := walkJoin(); err != nil {
			return "", err
		}
		join += time.Since(t0)
	}
	rowid /= reps
	join /= reps

	var sb strings.Builder
	sb.WriteString("Ablation — physical RowID traversal vs B-tree key traversal\n")
	fmt.Fprintf(&sb, "%-20s %-12s (%d hops)\n", "rowid links", rowid, hops)
	fmt.Fprintf(&sb, "%-20s %-12s\n", "nodeid B-tree", join)
	fmt.Fprintf(&sb, "rowid advantage: %.2fx\n", float64(join)/float64(rowid))
	sb.WriteString("paper claim: \"we have exploited the feature of physical row-ids in\n")
	sb.WriteString("Oracle for very fast traversal between nodes that are related.\"\n")
	return sb.String(), nil
}

// AblationUniversalVsShred compares the schema-less universal tables
// against schema-aware shredding on a vocabulary-diverse corpus.
func AblationUniversalVsShred(docs int) (string, error) {
	gen := corpus.New(66)
	docsList := gen.Mixed(docs)

	// Universal (NETMARK).
	s, err := NewStore()
	if err != nil {
		return "", err
	}
	t0 := time.Now()
	if err := LoadCorpus(s, docsList); err != nil {
		return "", err
	}
	uniIngest := time.Since(t0)
	uniTables := len(s.DB().TableNames())

	// Shredding baseline.
	db2, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		return "", err
	}
	sh, err := shred.Open(db2)
	if err != nil {
		return "", err
	}
	t0 = time.Now()
	for _, d := range docsList {
		tree, _, err := docform.Convert(d.Name, d.Data)
		if err != nil {
			return "", err
		}
		if _, err := sh.StoreDocument(d.Name, tree); err != nil {
			return "", err
		}
	}
	shIngest := time.Since(t0)

	// Query: find a term with unknown element type.
	t0 = time.Now()
	uniHits, err := s.ContentSearch("shuttle")
	if err != nil {
		return "", err
	}
	uniQuery := time.Since(t0)
	t0 = time.Now()
	shHits, err := sh.FindByTextAnywhere("shuttle")
	if err != nil {
		return "", err
	}
	shQuery := time.Since(t0)

	var sb strings.Builder
	sb.WriteString("Ablation — universal 2-table storage vs schema-aware shredding\n")
	fmt.Fprintf(&sb, "%-22s %-10s %-10s %-12s %-12s %-6s\n",
		"approach", "tables", "DDL", "ingest", "query", "hits")
	fmt.Fprintf(&sb, "%-22s %-10d %-10d %-12s %-12s %-6d\n",
		"universal (NETMARK)", uniTables, 0, uniIngest, uniQuery, len(uniHits))
	fmt.Fprintf(&sb, "%-22s %-10d %-10d %-12s %-12s %-6d\n",
		"shredded [10]", sh.TableCount()+1, sh.DDLCount(), shIngest, shQuery, shHits)
	sb.WriteString("paper claim: the universal schema needs no DDL per document type and\n")
	sb.WriteString("keeps schema-unaware search on an index instead of a per-table scan.\n")
	return sb.String(), nil
}

// AblationTextIndexVsScan compares index-first content search (§2.1.4)
// against a full scan of the XML table.
func AblationTextIndexVsScan(docs int) (string, error) {
	s, err := NewStore()
	if err != nil {
		return "", err
	}
	gen := corpus.New(88)
	if err := LoadCorpus(s, gen.Proposals(docs)); err != nil {
		return "", err
	}
	term := "cryogenic"

	// Both paths produce the same thing — the set of matching TEXT-node
	// locations — so only the lookup mechanism differs.  Section
	// materialisation (identical either way) is excluded.
	// Stream the posting list through the block iterator: the timed
	// work is the index probe plus block decode, not the allocation of
	// a hit slice nobody reads.
	findIndexed := func() int {
		n := 0
		for it := s.ContentIndex().LookupIter(term); ; {
			if _, ok := it.Next(); !ok {
				return n
			}
			n++
		}
	}
	findScanned := func() (int, error) {
		hits := 0
		err := s.ScanNodes(func(n *xmlstore.Node) bool {
			if n.Class == sgml.ClassText && strings.Contains(strings.ToLower(n.Data), term) {
				hits++
			}
			return true
		})
		return hits, err
	}
	// Warm both.
	idxHits := findIndexed()
	scanHits, err := findScanned()
	if err != nil {
		return "", err
	}
	const reps = 10
	var viaIndex, viaScan time.Duration
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		findIndexed()
		viaIndex += time.Since(t0)
		t0 = time.Now()
		if _, err := findScanned(); err != nil {
			return "", err
		}
		viaScan += time.Since(t0)
	}
	viaIndex /= reps
	viaScan /= reps

	var sb strings.Builder
	sb.WriteString("Ablation — text-index-first search vs full scan (§2.1.4)\n")
	fmt.Fprintf(&sb, "%-16s %-12s %-6s\n", "method", "latency", "hits")
	fmt.Fprintf(&sb, "%-16s %-12s %-6d\n", "text index", viaIndex, idxHits)
	fmt.Fprintf(&sb, "%-16s %-12s %-6d\n", "full scan", viaScan, scanHits)
	fmt.Fprintf(&sb, "index advantage: %.1fx\n", float64(viaScan)/float64(viaIndex))
	return sb.String(), nil
}
