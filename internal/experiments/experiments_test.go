package experiments

import (
	"strings"
	"testing"
)

func TestFig1Report(t *testing.T) {
	out, err := Fig1([]int{1, 4, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig 1") || !strings.Contains(out, "ratio") {
		t.Fatalf("report: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %s", out)
	}
}

func TestTable1AllAppsAssemble(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus assembly in -short mode")
	}
	rows, report, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FirstQueryHits == 0 {
			t.Fatalf("%s: first query returned nothing", r.App)
		}
		if r.NetmarkSteps >= r.MediatorSteps {
			t.Fatalf("%s: netmark %d steps vs mediator %d — claim inverted",
				r.App, r.NetmarkSteps, r.MediatorSteps)
		}
	}
	if !strings.Contains(report, "Proposal Financial Management") {
		t.Fatalf("report: %s", report)
	}
}

func TestFig6ScalesAndFindsAllSections(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus assembly in -short mode")
	}
	pts, report, err := Fig6([]int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Sections != p.Docs {
			t.Fatalf("%d docs but %d Budget sections", p.Docs, p.Sections)
		}
	}
	if !strings.Contains(report, "median-latency") {
		t.Fatalf("report: %s", report)
	}
}

func TestFig7Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus assembly in -short mode")
	}
	out, err := Fig7(50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "search + XSLT composition") {
		t.Fatalf("report: %s", out)
	}
}

func TestFig8ParallelBeatsOrMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus assembly in -short mode")
	}
	pts, report, err := Fig8([]int{2, 6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Results == 0 {
			t.Fatalf("%d sources returned nothing", p.Sources)
		}
	}
	if !strings.Contains(report, "speedup") {
		t.Fatalf("report: %s", report)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus assembly in -short mode")
	}
	for name, fn := range map[string]func(int) (string, error){
		"rowid": AblationRowidTraversal,
		"shred": AblationUniversalVsShred,
		"index": AblationTextIndexVsScan,
	} {
		out, err := fn(30)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "Ablation") {
			t.Fatalf("%s report: %s", name, out)
		}
	}
}
