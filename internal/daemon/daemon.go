// Package daemon implements the NETMARK DAEMON of Fig 3: "Users insert
// new documents (in any format such as Word, PDF, HTML, XML or others)
// into NETMARK by simply dragging the documents into a (NETMARK) desktop
// folder.  The 'NETMARK DAEMON' periodically picks up these documents
// [and] passes them onto the 'SGML Parser', which converts the documents
// into XML" for schema-less storage.
//
// The daemon polls a drop folder; successfully ingested files move to
// .processed/, failures to .failed/ with a .err note, so a drop folder is
// also an audit trail.
//
// Two safeguards protect the drop-folder contract:
//
//   - A file is only ingested once its size and mtime are unchanged
//     across two consecutive scans, so a document mid-copy into the
//     folder is never stored truncated.  The quiet period equals the
//     poll interval: a writer that stalls longer than one full interval
//     mid-copy can still be misread as complete, so pick an interval
//     longer than any expected stall (or copy in via rename, which is
//     atomic).
//   - Names already stored are tracked in memory, so a file whose move
//     to .processed/ failed is never ingested twice; the stuck archive
//     is surfaced through recordFailure and retried on later scans.
//
// Ingest failures are classified before quarantining.  Permanent
// failures (no converter, unparseable content) will never succeed on a
// retry, so the file moves to .failed/ immediately.  Transient failures
// (device I/O errors, a store in degraded read-only mode, an unreadable
// drop file) are retried with capped exponential backoff and jitter;
// only a file that exhausts its retries is quarantined.
//
// Each scan's stable files are ingested through the store's concurrent
// batch pipeline: preparation fans across workers and the whole scan
// costs one WAL group-commit.
package daemon

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"netmark/internal/xmlstore"
)

// processedDir and failedDir are the bookkeeping subfolders.
const (
	processedDir = ".processed"
	failedDir    = ".failed"
)

// DefaultBatchSize caps how many documents one WAL group-commit covers
// when no explicit batch size is configured.
const DefaultBatchSize = 64

// DefaultMaxRetries is how many times a transiently failing file is
// retried before quarantine when no explicit limit is configured.
const DefaultMaxRetries = 4

// Backoff schedule for transient-failure retries: base doubles per
// attempt up to the cap, with ±25% jitter so a burst of failures does
// not retry in lockstep.
const (
	retryBackoffBase = 250 * time.Millisecond
	retryBackoffCap  = 30 * time.Second
)

// fileState is one observation of a drop-folder file, used for the
// two-scan stability check.
type fileState struct {
	size  int64
	mtime time.Time
}

func (a fileState) equal(b fileState) bool {
	return a.size == b.size && a.mtime.Equal(b.mtime)
}

// Daemon watches one drop folder and ingests into one store.
type Daemon struct {
	dir      string
	store    *xmlstore.Store
	interval time.Duration

	// Workers sets the batch pipeline's preparation fan-out
	// (0 = GOMAXPROCS).  Set before Run/ScanOnce.
	Workers int
	// BatchSize caps documents per WAL group-commit batch
	// (0 = DefaultBatchSize).  Set before Run/ScanOnce.
	BatchSize int
	// MaxRetries caps transient-failure retries per file before the
	// file is quarantined (0 = DefaultMaxRetries).  Set before
	// Run/ScanOnce.
	MaxRetries int

	// OnIngest, when set, observes every attempt (err nil on success).
	OnIngest func(name string, docID uint64, err error)

	// pending holds each candidate file's last observed size/mtime; a
	// file is ingested only when a scan re-observes the same state.
	pending map[string]fileState
	// processed holds names that were stored but whose move to
	// .processed/ failed, so they are never ingested again while they
	// linger in the drop folder.
	processed map[string]bool
	// attempts counts transient-failure retries consumed per file;
	// deferred holds the earliest next attempt for a file backing off.
	attempts map[string]int
	deferred map[string]time.Time

	// now and rng are the clock and jitter source, swappable in tests.
	// Only the ScanOnce goroutine touches rng.
	now func() time.Time
	rng *rand.Rand

	mu       sync.Mutex
	ingested int // guarded by mu
	failed   int // guarded by mu
	retries  int // transient failures given another chance; guarded by mu
	backoffs int // scans that skipped a file still backing off; guarded by mu
	// quarantineFails counts failed files whose move to .failed/ itself
	// failed: the file is still sitting in the drop folder with nothing
	// marking it broken, so operators must know.  Guarded by mu.
	quarantineFails int
}

// New creates a daemon for a drop folder (created if missing).
func New(dir string, store *xmlstore.Store, interval time.Duration) (*Daemon, error) {
	if interval <= 0 {
		interval = time.Second
	}
	for _, d := range []string{dir, filepath.Join(dir, processedDir), filepath.Join(dir, failedDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
	}
	return &Daemon{
		dir:       dir,
		store:     store,
		interval:  interval,
		pending:   make(map[string]fileState),
		processed: make(map[string]bool),
		attempts:  make(map[string]int),
		deferred:  make(map[string]time.Time),
		now:       time.Now,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// Stats returns how many files were ingested and how many failed.
func (d *Daemon) Stats() (ingested, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ingested, d.failed
}

// QuarantineFails returns how many failed files could not be moved to
// .failed/ and are still sitting unmarked in the drop folder.
func (d *Daemon) QuarantineFails() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.quarantineFails
}

// RetryStats returns how many transient failures were given another
// chance (retries) and how many scans skipped a file that was still
// waiting out its backoff (backoffs).
func (d *Daemon) RetryStats() (retries, backoffs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retries, d.backoffs
}

// ScanOnce processes every file currently in the drop folder and returns
// the number ingested.  It is the synchronous core Run loops over, and
// what tests call directly.  A freshly dropped file is only observed on
// its first scan; it is ingested by the next scan that finds its size
// and mtime unchanged.
func (d *Daemon) ScanOnce() (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("daemon: read drop folder: %w", err)
	}
	current := make(map[string]fileState, len(entries))
	var stable []string // sorted: ReadDir returns names in order
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		name := e.Name()
		info, err := e.Info()
		if err != nil {
			continue // vanished between ReadDir and stat
		}
		st := fileState{size: info.Size(), mtime: info.ModTime()}
		current[name] = st
		if d.processed[name] {
			// Stored on an earlier scan but stuck in the folder; retry
			// the archive move, never the ingest.
			if d.archiveProcessed(name) {
				delete(d.processed, name)
				delete(current, name)
			}
			continue
		}
		if until, ok := d.deferred[name]; ok {
			if d.now().Before(until) {
				// Still backing off from a transient failure; leave it
				// for a later scan.
				d.mu.Lock()
				d.backoffs++
				d.mu.Unlock()
				continue
			}
			delete(d.deferred, name)
		}
		if prev, ok := d.pending[name]; ok && prev.equal(st) {
			stable = append(stable, name)
		}
	}
	// Forget files that left the folder, and remember this scan's
	// observations for the next stability check.
	for name := range d.processed {
		if _, ok := current[name]; !ok {
			delete(d.processed, name)
		}
	}
	for name := range d.attempts {
		if _, ok := current[name]; !ok {
			delete(d.attempts, name)
		}
	}
	for name := range d.deferred {
		if _, ok := current[name]; !ok {
			delete(d.deferred, name)
		}
	}
	d.pending = current

	count := 0
	batchSize := d.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	for start := 0; start < len(stable); start += batchSize {
		end := start + batchSize
		if end > len(stable) {
			end = len(stable)
		}
		count += d.ingestBatch(stable[start:end])
	}
	return count, nil
}

// ingestBatch reads and stores one batch of stable files through the
// concurrent pipeline, then archives each file by its outcome.
func (d *Daemon) ingestBatch(names []string) int {
	docs := make([]xmlstore.BatchDoc, 0, len(names))
	for _, name := range names {
		full := filepath.Join(d.dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			// A drop file that cannot be read now may read fine once a
			// copy or mount hiccup passes: transient.
			if d.failOrRetry(name, full, err, true) {
				delete(d.pending, name)
			}
			continue
		}
		docs = append(docs, xmlstore.BatchDoc{Name: name, Data: data})
	}
	count := 0
	for _, r := range d.store.StoreBatch(docs, d.Workers) {
		full := filepath.Join(d.dir, r.Name)
		if r.Err != nil {
			if d.failOrRetry(r.Name, full, r.Err, xmlstore.IsTransient(r.Err)) {
				delete(d.pending, r.Name)
			}
			continue
		}
		delete(d.pending, r.Name)
		delete(d.attempts, r.Name)
		delete(d.deferred, r.Name)
		d.mu.Lock()
		d.ingested++
		d.mu.Unlock()
		count++
		if d.OnIngest != nil {
			d.OnIngest(r.Name, r.DocID, nil)
		}
		if err := os.Rename(full, filepath.Join(d.dir, processedDir, r.Name)); err != nil {
			// The document is stored; remember the name so no later scan
			// ingests it again, and surface the stuck archive.  The file
			// must stay in place — it is not a failed ingest, and later
			// scans retry the move — so only the bookkeeping half of
			// recordFailure runs.
			d.processed[r.Name] = true
			d.noteFailure(r.Name,
				fmt.Errorf("stored as doc %d but archive to %s failed: %w", r.DocID, processedDir, err))
		}
	}
	return count
}

// failOrRetry decides a failed ingest's fate and reports whether the
// file was quarantined (and so left the drop folder).  A transient
// failure with retries left is scheduled for another attempt after a
// backoff; the file stays in the drop folder and stays pending so the
// next eligible scan retries it.  Everything else — permanent failures,
// and transient ones out of retries — quarantines via recordFailure.
func (d *Daemon) failOrRetry(name, full string, err error, transient bool) bool {
	max := d.MaxRetries
	if max <= 0 {
		max = DefaultMaxRetries
	}
	if transient && d.attempts[name] < max {
		d.attempts[name]++
		d.deferred[name] = d.now().Add(d.backoffDelay(d.attempts[name] - 1))
		d.mu.Lock()
		d.retries++
		d.mu.Unlock()
		if d.OnIngest != nil {
			d.OnIngest(name, 0, err)
		}
		return false
	}
	delete(d.attempts, name)
	delete(d.deferred, name)
	d.recordFailure(name, full, err)
	return true
}

// backoffDelay returns the capped exponential backoff for the n-th
// retry (0-based), jittered by ±25% so a burst of transient failures
// does not hammer a struggling store in lockstep.
func (d *Daemon) backoffDelay(attempt int) time.Duration {
	delay := retryBackoffBase << uint(attempt)
	if delay <= 0 || delay > retryBackoffCap {
		delay = retryBackoffCap
	}
	jitter := time.Duration(d.rng.Int63n(int64(delay)/2+1)) - delay/4
	return delay + jitter
}

// archiveProcessed retries the archive move for a file that is already
// stored.  Failure is deliberately not an event: the file simply stays
// in the drop folder and the next scan retries the move again, so only
// success mutates any bookkeeping.
//
// netmarkvet:errsink
func (d *Daemon) archiveProcessed(name string) bool {
	return os.Rename(filepath.Join(d.dir, name),
		filepath.Join(d.dir, processedDir, name)) == nil
}

// recordFailure quarantines a file that could not be ingested and
// surfaces the error.  A failed quarantine move is itself an event: the
// broken file stays in the drop folder looking like any other document,
// so it is logged and counted rather than swallowed — this function is
// the daemon's designated sink for those errors.
//
// netmarkvet:errsink
func (d *Daemon) recordFailure(name, full string, err error) {
	if mvErr := os.Rename(full, filepath.Join(d.dir, failedDir, name)); mvErr != nil {
		log.Printf("daemon: quarantine of %s failed: %v (ingest error: %v)", name, mvErr, err)
		d.mu.Lock()
		d.quarantineFails++
		d.mu.Unlock()
	}
	d.noteFailure(name, err)
}

// noteFailure is the bookkeeping half of recordFailure: the .err audit
// note, the counter, and the callback — without moving the file.
func (d *Daemon) noteFailure(name string, err error) {
	_ = os.WriteFile(filepath.Join(d.dir, failedDir, name+".err"), []byte(err.Error()), 0o644)
	d.mu.Lock()
	d.failed++
	d.mu.Unlock()
	if d.OnIngest != nil {
		d.OnIngest(name, 0, err)
	}
}

// Run polls until the context is cancelled.
func (d *Daemon) Run(ctx context.Context) error {
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := d.ScanOnce(); err != nil {
				return err
			}
		}
	}
}
