// Package daemon implements the NETMARK DAEMON of Fig 3: "Users insert
// new documents (in any format such as Word, PDF, HTML, XML or others)
// into NETMARK by simply dragging the documents into a (NETMARK) desktop
// folder.  The 'NETMARK DAEMON' periodically picks up these documents
// [and] passes them onto the 'SGML Parser', which converts the documents
// into XML" for schema-less storage.
//
// The daemon polls a drop folder; successfully ingested files move to
// .processed/, failures to .failed/ with a .err note, so a drop folder is
// also an audit trail.
package daemon

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"netmark/internal/xmlstore"
)

// processedDir and failedDir are the bookkeeping subfolders.
const (
	processedDir = ".processed"
	failedDir    = ".failed"
)

// Daemon watches one drop folder and ingests into one store.
type Daemon struct {
	dir      string
	store    *xmlstore.Store
	interval time.Duration

	// OnIngest, when set, observes every attempt (err nil on success).
	OnIngest func(name string, docID uint64, err error)

	mu       sync.Mutex
	ingested int
	failed   int
}

// New creates a daemon for a drop folder (created if missing).
func New(dir string, store *xmlstore.Store, interval time.Duration) (*Daemon, error) {
	if interval <= 0 {
		interval = time.Second
	}
	for _, d := range []string{dir, filepath.Join(dir, processedDir), filepath.Join(dir, failedDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
	}
	return &Daemon{dir: dir, store: store, interval: interval}, nil
}

// Stats returns how many files were ingested and how many failed.
func (d *Daemon) Stats() (ingested, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ingested, d.failed
}

// ScanOnce processes every file currently in the drop folder and returns
// the number ingested.  It is the synchronous core Run loops over, and
// what tests call directly.
func (d *Daemon) ScanOnce() (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("daemon: read drop folder: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	count := 0
	for _, name := range names {
		full := filepath.Join(d.dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			d.recordFailure(name, full, err)
			continue
		}
		docID, err := d.store.StoreRaw(name, data)
		if err != nil {
			d.recordFailure(name, full, err)
			continue
		}
		// Move to .processed (best effort; the document is stored).
		_ = os.Rename(full, filepath.Join(d.dir, processedDir, name))
		d.mu.Lock()
		d.ingested++
		d.mu.Unlock()
		count++
		if d.OnIngest != nil {
			d.OnIngest(name, docID, nil)
		}
	}
	return count, nil
}

func (d *Daemon) recordFailure(name, full string, err error) {
	_ = os.Rename(full, filepath.Join(d.dir, failedDir, name))
	_ = os.WriteFile(filepath.Join(d.dir, failedDir, name+".err"), []byte(err.Error()), 0o644)
	d.mu.Lock()
	d.failed++
	d.mu.Unlock()
	if d.OnIngest != nil {
		d.OnIngest(name, 0, err)
	}
}

// Run polls until the context is cancelled.
func (d *Daemon) Run(ctx context.Context) error {
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := d.ScanOnce(); err != nil {
				return err
			}
		}
	}
}
