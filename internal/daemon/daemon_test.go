package daemon

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netmark/internal/ordbms"
	"netmark/internal/vfs"
	"netmark/internal/xmlstore"
)

func newStore(t testing.TB) *xmlstore.Store {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scanUntilStable runs the two scans the stability gate requires: the
// first observes the files, the second ingests the ones left unchanged.
func scanUntilStable(t *testing.T, d *Daemon) int {
	t.Helper()
	if n, err := d.ScanOnce(); err != nil || n != 0 {
		t.Fatalf("observation scan = %d %v, want 0 nil", n, err)
	}
	n, err := d.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestScanOnceIngestsAndMoves(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.html"),
		[]byte(`<html><body><h1>T</h1><p>x</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.txt"),
		[]byte("HEADING\n\nplain body\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := scanUntilStable(t, d); n != 2 {
		t.Fatalf("ingested = %d", n)
	}
	if store.NumDocuments() != 2 {
		t.Fatalf("store docs = %d", store.NumDocuments())
	}
	// Files moved out of the drop folder.
	if _, err := os.Stat(filepath.Join(dir, "a.html")); !os.IsNotExist(err) {
		t.Fatal("a.html still in drop folder")
	}
	if _, err := os.Stat(filepath.Join(dir, processedDir, "a.html")); err != nil {
		t.Fatal("a.html not archived")
	}
	// Later scans find nothing.
	n, err := d.ScanOnce()
	if err != nil || n != 0 {
		t.Fatalf("rescan = %d %v", n, err)
	}
}

func TestScanOnceRecordsFailures(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Binary garbage has no converter.
	if err := os.WriteFile(filepath.Join(dir, "blob.bin"),
		[]byte{0, 1, 2, 0xFF, 0, 0, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := scanUntilStable(t, d); n != 0 {
		t.Fatalf("ingested = %d", n)
	}
	ing, failed := d.Stats()
	if ing != 0 || failed != 1 {
		t.Fatalf("stats = %d %d", ing, failed)
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "blob.bin")); err != nil {
		t.Fatal("failed file not quarantined")
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "blob.bin.err")); err != nil {
		t.Fatal("error note missing")
	}
}

func TestOnIngestCallback(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	var calls []string
	d.OnIngest = func(name string, docID uint64, err error) {
		calls = append(calls, name)
		if err == nil && docID == 0 {
			t.Error("success without docID")
		}
	}
	os.WriteFile(filepath.Join(dir, "x.html"), []byte(`<html><body><h1>A</h1><p>b</p></body></html>`), 0o644)
	scanUntilStable(t, d)
	if len(calls) != 1 || calls[0] != "x.html" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestRunLoopIngests(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	os.WriteFile(filepath.Join(dir, "live.html"),
		[]byte(`<html><body><h1>Live</h1><p>dropped while running</p></body></html>`), 0o644)

	deadline := time.After(3 * time.Second)
	for store.NumDocuments() == 0 {
		select {
		case <-deadline:
			t.Fatal("daemon never picked up the file")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	secs, err := store.ContextSearch("Live")
	if err != nil || len(secs) != 1 {
		t.Fatalf("search after daemon ingest: %v %v", secs, err)
	}
}

func TestHiddenAndDirEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	os.WriteFile(filepath.Join(dir, ".hidden.html"), []byte(`<html><body><h1>H</h1></body></html>`), 0o644)
	os.MkdirAll(filepath.Join(dir, "subdir"), 0o755)
	for i := 0; i < 2; i++ {
		n, err := d.ScanOnce()
		if err != nil || n != 0 {
			t.Fatalf("scan = %d %v", n, err)
		}
	}
}

// TestPartialWriteNotIngested is the mid-copy scenario: a file still
// growing between scans must not be stored truncated.  Only once its
// size/mtime hold still across two scans is it ingested — complete.
func TestPartialWriteNotIngested(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	path := filepath.Join(dir, "slow.html")

	// First half lands; scan observes it.
	if err := os.WriteFile(path, []byte(`<html><body><h1>Slow Copy</h1><p>first half`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := d.ScanOnce(); err != nil || n != 0 {
		t.Fatalf("scan during copy ingested %d (%v)", n, err)
	}
	// The copy continues: size changes, so the next scan must hold off.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(` second half</p></body></html>`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n, err := d.ScanOnce(); err != nil || n != 0 {
		t.Fatalf("scan after growth ingested %d (%v)", n, err)
	}
	// Now the file is stable: the next scan ingests the complete bytes.
	n, err := d.ScanOnce()
	if err != nil || n != 1 {
		t.Fatalf("stable scan = %d %v", n, err)
	}
	secs, err := store.ContentSearch("second")
	if err != nil || len(secs) != 1 {
		t.Fatalf("full content not stored: %d sections, %v", len(secs), err)
	}
	if !strings.Contains(secs[0].Content, "second half") {
		t.Fatalf("stored content truncated: %q", secs[0].Content)
	}
}

// TestRenameFailureDoesNotReingest is the duplicate-ingestion scenario:
// when the move to .processed/ fails, the document must still be stored
// exactly once, the failure surfaced, and no later scan may store it
// again.
func TestRenameFailureDoesNotReingest(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	var failures []error
	d.OnIngest = func(name string, docID uint64, err error) {
		if err != nil {
			failures = append(failures, err)
		}
	}
	// Sabotage the archive folder: replace it with a plain file so the
	// move to .processed/ fails and the document stays in the folder.
	p := filepath.Join(dir, processedDir)
	if err := os.RemoveAll(p); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stuck.html"),
		[]byte(`<html><body><h1>Stuck</h1><p>once only</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := scanUntilStable(t, d); n != 1 {
		t.Fatalf("ingested = %d", n)
	}
	if store.NumDocuments() != 1 {
		t.Fatalf("docs = %d", store.NumDocuments())
	}
	if len(failures) == 0 {
		t.Fatal("stuck archive was not surfaced")
	}
	if !strings.Contains(failures[0].Error(), "archive") {
		t.Fatalf("unexpected failure: %v", failures[0])
	}
	// A stored document is not a failed ingest: the file must stay in
	// the drop folder awaiting the archive retry, not be quarantined.
	if _, err := os.Stat(filepath.Join(dir, "stuck.html")); err != nil {
		t.Fatal("stuck file left the drop folder")
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "stuck.html")); !os.IsNotExist(err) {
		t.Fatal("stored document was quarantined to .failed")
	}
	// The audit note still lands.
	if _, err := os.Stat(filepath.Join(dir, failedDir, "stuck.html.err")); err != nil {
		t.Fatal("archive-failure note missing")
	}
	// The file is stuck in the drop folder, but later scans must never
	// store it again.
	for i := 0; i < 3; i++ {
		if n, err := d.ScanOnce(); err != nil || n != 0 {
			t.Fatalf("rescan %d = %d %v", i, n, err)
		}
	}
	if store.NumDocuments() != 1 {
		t.Fatalf("document re-ingested: docs = %d", store.NumDocuments())
	}
	// Restore the archive folder: the pending move completes and the
	// tracking entry drains.
	if err := os.Remove(filepath.Join(dir, processedDir)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, processedDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if n, err := d.ScanOnce(); err != nil || n != 0 {
		t.Fatalf("drain scan = %d %v", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, processedDir, "stuck.html")); err != nil {
		t.Fatal("stuck file not archived after the folder came back")
	}
	if store.NumDocuments() != 1 {
		t.Fatalf("archive retry re-ingested: docs = %d", store.NumDocuments())
	}
}

// TestScanBatchesLargeDrops verifies a multi-batch scan ingests
// everything and the batch knob is honored.
func TestScanBatchesLargeDrops(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	d.BatchSize = 4
	d.Workers = 2
	for i := 0; i < 10; i++ {
		name := filepath.Join(dir, string(rune('a'+i))+".txt")
		if err := os.WriteFile(name, []byte("TITLE\n\nbody text\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := scanUntilStable(t, d); n != 10 {
		t.Fatalf("ingested = %d", n)
	}
	if store.NumDocuments() != 10 {
		t.Fatalf("docs = %d", store.NumDocuments())
	}
}

// faultStore opens a durable store over a FaultFS so tests can inject
// device errors, returning the store and the fault handle.
func faultStore(t *testing.T) (*xmlstore.Store, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(nil)
	db, err := ordbms.Open(ordbms.Options{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

// manualClock pins the daemon to a test-controlled clock so backoff
// waits are jumped over instead of slept through.
func manualClock(d *Daemon) *time.Time {
	cur := time.Now()
	d.now = func() time.Time { return cur }
	return &cur
}

// TestTransientFailureRetriedThenRecovers: a one-off WAL fsync failure
// must not quarantine the document.  The daemon backs off, the store
// heals via checkpoint, and the retry ingests the file normally.
func TestTransientFailureRetriedThenRecovers(t *testing.T) {
	dir := t.TempDir()
	store, ffs := faultStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clock := manualClock(d)
	if err := os.WriteFile(filepath.Join(dir, "doc.html"),
		[]byte(`<html><body><h1>T</h1><p>retry me</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The commit fsync fails exactly once: transient by definition.
	ffs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "*.nmlog", Times: 1})
	if n := scanUntilStable(t, d); n != 0 {
		t.Fatalf("ingested through a failed commit: %d", n)
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "doc.html")); !os.IsNotExist(err) {
		t.Fatal("transient failure was quarantined")
	}
	retries, _ := d.RetryStats()
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
	// An immediate rescan finds the file still backing off.
	if n, err := d.ScanOnce(); err != nil || n != 0 {
		t.Fatalf("backoff scan = %d %v", n, err)
	}
	if _, backoffs := d.RetryStats(); backoffs == 0 {
		t.Fatal("backoff skip not counted")
	}
	// The fault is spent; a checkpoint rebuilds the WAL and restores
	// write service.  Jump past the backoff and retry.
	if err := store.DB().Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	*clock = clock.Add(time.Minute)
	n, err := d.ScanOnce()
	if err != nil || n != 1 {
		t.Fatalf("retry scan = %d %v", n, err)
	}
	ing, failed := d.Stats()
	if ing != 1 || failed != 0 {
		t.Fatalf("stats = %d %d, want 1 0", ing, failed)
	}
	if _, err := os.Stat(filepath.Join(dir, processedDir, "doc.html")); err != nil {
		t.Fatal("retried file not archived")
	}
}

// TestTransientExhaustsRetriesThenQuarantines: a store that stays
// degraded eventually exhausts the retry budget and the file is
// quarantined like any other failure.
func TestTransientExhaustsRetriesThenQuarantines(t *testing.T) {
	dir := t.TempDir()
	store, ffs := faultStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d.MaxRetries = 2
	clock := manualClock(d)
	if err := os.WriteFile(filepath.Join(dir, "doomed.html"),
		[]byte(`<html><body><h1>D</h1><p>no luck</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Every WAL fsync fails: the store degrades and stays degraded.
	ffs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "*.nmlog"})
	if n := scanUntilStable(t, d); n != 0 {
		t.Fatalf("ingested through a failed commit: %d", n)
	}
	for i := 0; i < 2; i++ {
		*clock = clock.Add(time.Minute)
		if n, err := d.ScanOnce(); err != nil || n != 0 {
			t.Fatalf("retry scan %d = %d %v", i, n, err)
		}
	}
	retries, _ := d.RetryStats()
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	if _, failed := d.Stats(); failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "doomed.html")); err != nil {
		t.Fatal("exhausted file not quarantined")
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "doomed.html.err")); err != nil {
		t.Fatal("error note missing")
	}
}

// TestPermanentFailureNotRetried: an unconvertible file gains nothing
// from retries, so it is quarantined on the first attempt.
func TestPermanentFailureNotRetried(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blob.bin"),
		[]byte{0, 1, 2, 0xFF, 0, 0, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := scanUntilStable(t, d); n != 0 {
		t.Fatalf("ingested = %d", n)
	}
	retries, backoffs := d.RetryStats()
	if retries != 0 || backoffs != 0 {
		t.Fatalf("retry stats = %d %d, want 0 0", retries, backoffs)
	}
	if _, failed := d.Stats(); failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "blob.bin")); err != nil {
		t.Fatal("permanent failure not quarantined immediately")
	}
}

func TestQuarantineFailureIsCounted(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Binary garbage has no converter, so ingest fails and the daemon
	// tries to quarantine.  Replace .failed/ with a regular file so the
	// quarantine move itself fails.
	if err := os.WriteFile(filepath.Join(dir, "blob.bin"),
		[]byte{0, 1, 2, 0xFF, 0, 0, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, failedDir)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, failedDir), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := scanUntilStable(t, d); n != 0 {
		t.Fatalf("ingested = %d", n)
	}
	if _, failed := d.Stats(); failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if got := d.QuarantineFails(); got != 1 {
		t.Fatalf("QuarantineFails = %d, want 1", got)
	}
	// The broken file is still in the drop folder, not quarantined.
	if _, err := os.Stat(filepath.Join(dir, "blob.bin")); err != nil {
		t.Fatal("file vanished despite failed quarantine")
	}
}
