package daemon

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netmark/internal/ordbms"
	"netmark/internal/xmlstore"
)

func newStore(t testing.TB) *xmlstore.Store {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanOnceIngestsAndMoves(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.html"),
		[]byte(`<html><body><h1>T</h1><p>x</p></body></html>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.txt"),
		[]byte("HEADING\n\nplain body\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := d.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ingested = %d", n)
	}
	if store.NumDocuments() != 2 {
		t.Fatalf("store docs = %d", store.NumDocuments())
	}
	// Files moved out of the drop folder.
	if _, err := os.Stat(filepath.Join(dir, "a.html")); !os.IsNotExist(err) {
		t.Fatal("a.html still in drop folder")
	}
	if _, err := os.Stat(filepath.Join(dir, processedDir, "a.html")); err != nil {
		t.Fatal("a.html not archived")
	}
	// Second scan finds nothing.
	n, err = d.ScanOnce()
	if err != nil || n != 0 {
		t.Fatalf("rescan = %d %v", n, err)
	}
}

func TestScanOnceRecordsFailures(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, err := New(dir, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Binary garbage has no converter.
	if err := os.WriteFile(filepath.Join(dir, "blob.bin"),
		[]byte{0, 1, 2, 0xFF, 0, 0, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := d.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("ingested = %d", n)
	}
	ing, failed := d.Stats()
	if ing != 0 || failed != 1 {
		t.Fatalf("stats = %d %d", ing, failed)
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "blob.bin")); err != nil {
		t.Fatal("failed file not quarantined")
	}
	if _, err := os.Stat(filepath.Join(dir, failedDir, "blob.bin.err")); err != nil {
		t.Fatal("error note missing")
	}
}

func TestOnIngestCallback(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	var calls []string
	d.OnIngest = func(name string, docID uint64, err error) {
		calls = append(calls, name)
		if err == nil && docID == 0 {
			t.Error("success without docID")
		}
	}
	os.WriteFile(filepath.Join(dir, "x.html"), []byte(`<html><body><h1>A</h1><p>b</p></body></html>`), 0o644)
	d.ScanOnce()
	if len(calls) != 1 || calls[0] != "x.html" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestRunLoopIngests(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	os.WriteFile(filepath.Join(dir, "live.html"),
		[]byte(`<html><body><h1>Live</h1><p>dropped while running</p></body></html>`), 0o644)

	deadline := time.After(3 * time.Second)
	for store.NumDocuments() == 0 {
		select {
		case <-deadline:
			t.Fatal("daemon never picked up the file")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	secs, err := store.ContextSearch("Live")
	if err != nil || len(secs) != 1 {
		t.Fatalf("search after daemon ingest: %v %v", secs, err)
	}
}

func TestHiddenAndDirEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t)
	d, _ := New(dir, store, time.Second)
	os.WriteFile(filepath.Join(dir, ".hidden.html"), []byte(`<html><body><h1>H</h1></body></html>`), 0o644)
	os.MkdirAll(filepath.Join(dir, "subdir"), 0o755)
	n, err := d.ScanOnce()
	if err != nil || n != 0 {
		t.Fatalf("scan = %d %v", n, err)
	}
}
