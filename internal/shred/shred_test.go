package shred

import (
	"fmt"
	"testing"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
)

func newStore(t testing.TB) *Store {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parse(t testing.TB, src string) *sgml.Node {
	t.Helper()
	doc, err := sgml.ParseString(src, sgml.ModeXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestShredCreatesPerElementTables(t *testing.T) {
	s := newStore(t)
	if _, err := s.StoreDocument("a.xml", parse(t,
		`<report><title>T</title><body>B</body></report>`)); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() != 3 { // report, title, body
		t.Fatalf("tables = %d", s.TableCount())
	}
	// Same vocabulary: no new tables.
	ddl := s.DDLCount()
	if _, err := s.StoreDocument("b.xml", parse(t,
		`<report><title>T2</title><body>B2</body></report>`)); err != nil {
		t.Fatal(err)
	}
	if s.DDLCount() != ddl {
		t.Fatal("repeat vocabulary caused DDL")
	}
	// New vocabulary: DDL required — the schema-dependence NETMARK avoids.
	if _, err := s.StoreDocument("c.xml", parse(t,
		`<memo><heading>H</heading></memo>`)); err != nil {
		t.Fatal(err)
	}
	if s.DDLCount() <= ddl {
		t.Fatal("new vocabulary did not cause DDL")
	}
	if s.TableCount() != 5 {
		t.Fatalf("tables = %d", s.TableCount())
	}
}

func TestShredFindByText(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf(`<doc><para>common text %d</para><note>other</note></doc>`, i)
		if _, err := s.StoreDocument(fmt.Sprintf("d%d.xml", i), parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.FindByText("para", "common")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("para hits = %d", n)
	}
	n, err = s.FindByTextAnywhere("other")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("anywhere hits = %d", n)
	}
	if _, err := s.FindByText("ghost", "x"); err == nil {
		t.Fatal("unknown element accepted")
	}
}

func TestShredSanitize(t *testing.T) {
	cases := map[string]string{
		"Para":     "para",
		"ns:tag":   "ns_tag",
		"weird-1":  "weird_1",
		"":         "_anon",
		"UPPER_A9": "upper_a9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestShredAttrsAndStructure(t *testing.T) {
	s := newStore(t)
	if _, err := s.StoreDocument("a.xml", parse(t,
		`<r><child k="v">text</child></r>`)); err != nil {
		t.Fatal(err)
	}
	tbl := s.db.Table("SHRED_ELEM_child")
	if tbl == nil {
		t.Fatal("child relation missing")
	}
	found := false
	tbl.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		if row[5].Str == "text" && row[6].Str == "k=v" && row[2].Str == "r" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("shredded row incomplete")
	}
}

func TestShredRejectsNoRoot(t *testing.T) {
	s := newStore(t)
	if _, err := s.StoreDocument("x.xml", parse(t, `<!-- only a comment -->`)); err == nil {
		t.Fatal("rootless document accepted")
	}
}
