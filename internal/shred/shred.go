// Package shred implements the storage baseline NETMARK's universal
// schema is compared against: schema-aware XML shredding in the style of
// Shanmugasundaram et al. [10], where "any XML documents to be stored are
// 'shredded' into relational tables" with **different relations for
// different XML element types**.
//
// The consequence the paper attacks is reproduced faithfully: storing a
// document whose element vocabulary has not been seen before requires
// DDL (new tables), so the table count grows with the corpus's element
// diversity, while NETMARK's XML/DOC pair stays at two.
package shred

import (
	"fmt"
	"strings"
	"sync"

	"netmark/internal/ordbms"
	"netmark/internal/sgml"
)

// Store shreds documents into per-element-type relations.
type Store struct {
	db *ordbms.DB

	mu     sync.Mutex
	tables map[string]*ordbms.Table // guarded by mu; element name -> relation
	docs   *ordbms.Table
	nextID uint64 // guarded by mu
	ddl    int    // guarded by mu; DDL statements issued (the schema-maintenance cost)
}

var shredDocSchema = ordbms.MustSchema(
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "filename", Type: ordbms.TypeString},
	ordbms.Column{Name: "rootelem", Type: ordbms.TypeString},
)

// elemSchema is the relation shape for one element type: identity,
// document, parent linkage by (element table, id), ordinal and text.
var elemSchema = ordbms.MustSchema(
	ordbms.Column{Name: "id", Type: ordbms.TypeInt},
	ordbms.Column{Name: "docid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "parentelem", Type: ordbms.TypeString},
	ordbms.Column{Name: "parentid", Type: ordbms.TypeInt},
	ordbms.Column{Name: "ordinal", Type: ordbms.TypeInt},
	ordbms.Column{Name: "text", Type: ordbms.TypeString},
	ordbms.Column{Name: "attrs", Type: ordbms.TypeString},
)

// Open attaches a shredding store to a database.
func Open(db *ordbms.DB) (*Store, error) {
	s := &Store{db: db, tables: make(map[string]*ordbms.Table), nextID: 1}
	if s.docs = db.Table("SHRED_DOCS"); s.docs == nil {
		t, err := db.CreateTable("SHRED_DOCS", shredDocSchema)
		if err != nil {
			return nil, err
		}
		s.docs = t
		s.ddl++
	}
	// Reattach existing element tables.
	for _, name := range db.TableNames() {
		if strings.HasPrefix(name, "SHRED_ELEM_") {
			s.tables[strings.TrimPrefix(name, "SHRED_ELEM_")] = db.Table(name)
		}
	}
	return s, nil
}

// DDLCount returns how many CREATE TABLE statements the store has issued
// — the Fig 1 schema-cost counter for the baseline.
func (s *Store) DDLCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ddl
}

// TableCount returns the number of element relations.
func (s *Store) TableCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables)
}

// tableFor returns (creating if needed) the relation for an element type.
func (s *Store) tableFor(elem string) (*ordbms.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[elem]; ok {
		return t, nil
	}
	t, err := s.db.CreateTable("SHRED_ELEM_"+elem, elemSchema)
	if err != nil {
		return nil, err
	}
	if err := t.CreateIndex("docid"); err != nil {
		return nil, err
	}
	if err := t.CreateIndex("text"); err != nil {
		return nil, err
	}
	s.tables[elem] = t
	s.ddl += 3 // CREATE TABLE + two CREATE INDEX
	return t, nil
}

// StoreDocument shreds a parsed tree.  Element names are sanitised to
// table-name-safe form; text content is concatenated per element.
func (s *Store) StoreDocument(name string, tree *sgml.Node) (uint64, error) {
	root := tree
	if root.Kind == sgml.DocumentNode {
		for c := root.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == sgml.ElementNode {
				root = c
				break
			}
		}
	}
	if root.Kind != sgml.ElementNode {
		return 0, fmt.Errorf("shred: no root element in %q", name)
	}
	s.mu.Lock()
	docID := s.nextID
	s.nextID++
	s.mu.Unlock()

	var walk func(n *sgml.Node, parentElem string, parentID uint64, ord int) error
	walk = func(n *sgml.Node, parentElem string, parentID uint64, ord int) error {
		elem := sanitize(n.Name)
		t, err := s.tableFor(elem)
		if err != nil {
			return err
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		s.mu.Unlock()
		text := directText(n)
		var attrs []string
		for _, a := range n.Attrs {
			attrs = append(attrs, a.Name+"="+a.Value)
		}
		_, err = t.Insert(ordbms.Row{
			ordbms.I(int64(id)),
			ordbms.I(int64(docID)),
			ordbms.S(parentElem),
			ordbms.I(int64(parentID)),
			ordbms.I(int64(ord)),
			ordbms.S(text),
			ordbms.S(strings.Join(attrs, " ")),
		})
		if err != nil {
			return err
		}
		cord := 0
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind != sgml.ElementNode {
				continue
			}
			if err := walk(c, elem, id, cord); err != nil {
				return err
			}
			cord++
		}
		return nil
	}
	if err := walk(root, "", 0, 0); err != nil {
		return 0, err
	}
	_, err := s.docs.Insert(ordbms.Row{
		ordbms.I(int64(docID)),
		ordbms.S(name),
		ordbms.S(sanitize(root.Name)),
	})
	if err != nil {
		return 0, err
	}
	return docID, nil
}

// FindByText scans one element relation for rows whose text contains the
// needle (the baseline has no cross-relation text index; a query that
// does not know the element type must visit every relation — the cost
// the universal table avoids).
func (s *Store) FindByText(elem, needle string) (int, error) {
	s.mu.Lock()
	t, ok := s.tables[sanitize(elem)]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("shred: no relation for element %q", elem)
	}
	needle = strings.ToLower(needle)
	count := 0
	err := t.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		if strings.Contains(strings.ToLower(row[5].Str), needle) {
			count++
		}
		return true
	})
	return count, err
}

// FindByTextAnywhere searches every element relation (the schema-unaware
// query path).
func (s *Store) FindByTextAnywhere(needle string) (int, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.Unlock()
	total := 0
	for _, n := range names {
		c, err := s.FindByText(n, needle)
		if err != nil {
			return total, err
		}
		total += c
	}
	return total, nil
}

// directText concatenates the immediate text children of an element.
func directText(n *sgml.Node) string {
	var parts []string
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == sgml.TextNode && strings.TrimSpace(c.Data) != "" {
			parts = append(parts, strings.TrimSpace(c.Data))
		}
	}
	return strings.Join(parts, " ")
}

// sanitize maps an element name to a table-name-safe identifier.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_anon"
	}
	return sb.String()
}
