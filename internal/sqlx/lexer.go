// Package sqlx provides a SQL subset over the ordbms engine — the
// administrative face of the "intelligent storage" component.  NETMARK
// itself never needs SQL (the XML store drives the heaps directly), but
// the paper's substrate is an ORDBMS, and inspection tooling, the
// shredding baseline and downstream users do:
//
//	CREATE TABLE t (id INT, name TEXT, score FLOAT, ok BOOL)
//	CREATE INDEX ON t (name)
//	INSERT INTO t VALUES (1, 'ada', 99.5, TRUE), (2, 'bob', 7, FALSE)
//	SELECT name, score FROM t WHERE score >= 50 ORDER BY score DESC LIMIT 10
//	SELECT d.name, COUNT(*) FROM t JOIN d ON t.id = d.id GROUP BY d.name
//	DELETE FROM t WHERE ok = FALSE
//
// The planner uses a B-tree index for equality and range predicates on
// indexed columns and falls back to heap scans otherwise.
package sqlx

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol // ( ) , . * = != < <= > >=
)

type token struct {
	kind tokKind
	text string // keywords upper-cased
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "BY": true,
	"DESC": true, "ASC": true, "LIMIT": true, "JOIN": true,
	"GROUP": true, "AND": true, "OR": true, "NOT": true, "LIKE": true,
	"DELETE": true, "UPDATE": true, "SET": true,
	"INT": true, "FLOAT": true, "TEXT": true, "BOOL": true, "BYTES": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"AS": true,
}

// lex tokenizes a statement.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, token{tkNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlx: unterminated string at %d", start)
			}
			toks = append(toks, token{tkString, sb.String(), start})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tkKeyword, up, start})
			} else {
				toks = append(toks, token{tkIdent, word, start})
			}
		case c == '!' || c == '<' || c == '>':
			start := i
			i++
			if i < len(src) && src[i] == '=' {
				i++
			}
			toks = append(toks, token{tkSymbol, src[start:i], start})
		case strings.IndexByte("(),.*=;", c) >= 0:
			if c == ';' {
				i++
				continue
			}
			toks = append(toks, token{tkSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlx: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tkEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
