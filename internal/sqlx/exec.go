package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"netmark/internal/ordbms"
)

// DB executes SQL against an ordbms engine.
type DB struct {
	eng *ordbms.DB
}

// New wraps an engine.
func New(eng *ordbms.DB) *DB { return &DB{eng: eng} }

// Result is a statement's outcome.
type Result struct {
	// Columns of the result set (SELECT only).
	Columns []string
	// Rows of the result set (SELECT only).
	Rows []ordbms.Row
	// Affected rows (INSERT/DELETE).
	Affected int64
	// Plan describes the access path chosen ("index-eq(name)",
	// "index-range(id)", "scan", "join-index", "join-scan").
	Plan string
}

// Exec parses and executes one statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *CreateTableStmt:
		schema, err := ordbms.NewSchema(st.Columns...)
		if err != nil {
			return nil, err
		}
		if _, err := db.eng.CreateTable(st.Table, schema); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		t := db.eng.Table(st.Table)
		if t == nil {
			return nil, fmt.Errorf("sqlx: no table %q", st.Table)
		}
		if err := t.CreateIndex(st.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *InsertStmt:
		return db.execInsert(st)
	case *SelectStmt:
		return db.execSelect(st)
	case *DeleteStmt:
		return db.execDelete(st)
	}
	return nil, fmt.Errorf("sqlx: unhandled statement %T", stmt)
}

func (db *DB) execInsert(st *InsertStmt) (*Result, error) {
	t := db.eng.Table(st.Table)
	if t == nil {
		return nil, fmt.Errorf("sqlx: no table %q", st.Table)
	}
	n := int64(0)
	for _, row := range st.Rows {
		// Coerce int literals into float columns.
		coerced := make(ordbms.Row, len(row))
		copy(coerced, row)
		schema := t.Schema()
		if len(row) == schema.Arity() {
			for i := range coerced {
				if coerced[i].Type == ordbms.TypeInt && schema.Columns[i].Type == ordbms.TypeFloat {
					coerced[i] = ordbms.F(float64(coerced[i].Int))
				}
			}
		}
		if _, err := t.Insert(coerced); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// boundRow is a row with its provenance for name resolution.
type boundRow struct {
	tables []string     // table name per segment
	rows   []ordbms.Row // row per segment
}

// resolve finds a column value across the bound tables.
func (db *DB) resolve(br boundRow, ref ColRef) (ordbms.Value, error) {
	for i, tn := range br.tables {
		if ref.Table != "" && ref.Table != tn {
			continue
		}
		t := db.eng.Table(tn)
		ci := t.Schema().ColIndex(ref.Column)
		if ci >= 0 {
			return br.rows[i][ci], nil
		}
		if ref.Table != "" {
			return ordbms.Null(), fmt.Errorf("sqlx: no column %q in table %q", ref.Column, ref.Table)
		}
	}
	return ordbms.Null(), fmt.Errorf("sqlx: unknown column %q", ref)
}

// evalExpr evaluates a filter against a bound row.
func (db *DB) evalExpr(e Expr, br boundRow) (bool, error) {
	switch e := e.(type) {
	case *CmpExpr:
		v, err := db.resolve(br, e.Col)
		if err != nil {
			return false, err
		}
		return cmpValues(v, e.Op, e.Val)
	case *LogicExpr:
		l, err := db.evalExpr(e.Left, br)
		if err != nil {
			return false, err
		}
		if e.Op == "AND" && !l {
			return false, nil
		}
		if e.Op == "OR" && l {
			return true, nil
		}
		return db.evalExpr(e.Right, br)
	case *NotExpr:
		v, err := db.evalExpr(e.Inner, br)
		return !v, err
	}
	return false, fmt.Errorf("sqlx: unhandled expression %T", e)
}

func cmpValues(v ordbms.Value, op string, lit ordbms.Value) (bool, error) {
	if op == "LIKE" {
		if v.Type != ordbms.TypeString {
			return false, nil
		}
		return likeMatch(strings.ToLower(v.Str), strings.ToLower(lit.Str)), nil
	}
	if v.IsNull() || lit.IsNull() {
		return false, nil // SQL three-valued logic collapsed to false
	}
	c := v.Compare(lit)
	switch op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return false, fmt.Errorf("sqlx: unknown operator %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match.
	n, m := len(s), len(pattern)
	dp := make([]bool, n+1)
	dp[0] = true
	for j := 0; j < m; j++ {
		pc := pattern[j]
		prevDiag := dp[0]
		if pc == '%' {
			for i := 1; i <= n; i++ {
				dp[i] = dp[i] || dp[i-1]
			}
			continue
		}
		dp0 := dp[0]
		dp[0] = false
		for i := 1; i <= n; i++ {
			cur := dp[i]
			match := prevDiag && (pc == '_' || s[i-1] == pc)
			dp[i] = match
			prevDiag = cur
		}
		_ = dp0
	}
	return dp[n]
}

// indexablePred extracts an index-usable predicate from the top-level
// AND chain: (column, op, literal) where column is unqualified or
// belongs to `table`.
func indexablePred(e Expr, table string, db *DB) *CmpExpr {
	switch e := e.(type) {
	case *CmpExpr:
		if e.Op == "LIKE" || e.Op == "!=" {
			return nil
		}
		if e.Col.Table != "" && e.Col.Table != table {
			return nil
		}
		t := db.eng.Table(table)
		if t == nil || t.Index(e.Col.Column) == nil {
			return nil
		}
		return e
	case *LogicExpr:
		if e.Op != "AND" {
			return nil
		}
		if p := indexablePred(e.Left, table, db); p != nil {
			return p
		}
		return indexablePred(e.Right, table, db)
	}
	return nil
}

// scanCandidates yields base-table rows via the best access path.
func (db *DB) scanCandidates(table string, where Expr) ([]ordbms.Row, string, error) {
	t := db.eng.Table(table)
	if t == nil {
		return nil, "", fmt.Errorf("sqlx: no table %q", table)
	}
	if pred := indexablePred(where, table, db); pred != nil {
		ix := t.Index(pred.Col.Column)
		var rids []ordbms.RowID
		var plan string
		switch pred.Op {
		case "=":
			rids = ix.Lookup(pred.Val)
			plan = "index-eq(" + pred.Col.Column + ")"
		case "<", "<=":
			lo := minValueFor(pred.Val.Type)
			rids = ix.Range(lo, pred.Val)
			plan = "index-range(" + pred.Col.Column + ")"
		case ">", ">=":
			hi := maxValueFor(pred.Val.Type)
			rids = ix.Range(pred.Val, hi)
			plan = "index-range(" + pred.Col.Column + ")"
		}
		if plan != "" {
			rows := make([]ordbms.Row, 0, len(rids))
			for _, rid := range rids {
				row, err := t.Fetch(rid)
				if err != nil {
					if err == ordbms.ErrRecordDeleted {
						continue
					}
					return nil, "", err
				}
				rows = append(rows, row)
			}
			return rows, plan, nil
		}
	}
	var rows []ordbms.Row
	err := t.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		rows = append(rows, row.Clone())
		return true
	})
	return rows, "scan", err
}

func minValueFor(t ordbms.Type) ordbms.Value {
	switch t {
	case ordbms.TypeInt:
		return ordbms.I(-1 << 62)
	case ordbms.TypeFloat:
		return ordbms.F(-1e308)
	case ordbms.TypeString:
		return ordbms.S("")
	default:
		return ordbms.Null()
	}
}

func maxValueFor(t ordbms.Type) ordbms.Value {
	switch t {
	case ordbms.TypeInt:
		return ordbms.I(1<<62 - 1)
	case ordbms.TypeFloat:
		return ordbms.F(1e308)
	case ordbms.TypeString:
		return ordbms.S("￿￿￿￿")
	default:
		return ordbms.Null()
	}
}

func (db *DB) execSelect(st *SelectStmt) (*Result, error) {
	// Bind base rows (with optional join).
	baseRows, plan, err := db.scanCandidates(st.From, st.Where)
	if err != nil {
		return nil, err
	}
	var bound []boundRow
	if st.Join == nil {
		for _, r := range baseRows {
			bound = append(bound, boundRow{tables: []string{st.From}, rows: []ordbms.Row{r}})
		}
	} else {
		joined, jplan, err := db.joinRows(st, baseRows)
		if err != nil {
			return nil, err
		}
		bound = joined
		plan += "+" + jplan
	}
	// Filter.
	if st.Where != nil {
		kept := bound[:0]
		for _, br := range bound {
			ok, err := db.evalExpr(st.Where, br)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, br)
			}
		}
		bound = kept
	}

	hasAgg := false
	for _, it := range st.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	var res *Result
	if hasAgg || !st.GroupBy.IsZero() {
		res, err = db.aggregate(st, bound)
	} else {
		res, err = db.project(st, bound)
	}
	if err != nil {
		return nil, err
	}
	res.Plan = plan

	// ORDER BY over the projected result when the column is in the
	// output; otherwise order pre-projection is unsupported for
	// simplicity.
	if !st.OrderBy.IsZero() {
		oi := -1
		for i, c := range res.Columns {
			if c == st.OrderBy.Column || c == st.OrderBy.String() {
				oi = i
				break
			}
		}
		if oi < 0 {
			return nil, fmt.Errorf("sqlx: ORDER BY column %q must appear in SELECT list", st.OrderBy)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			c := res.Rows[i][oi].Compare(res.Rows[j][oi])
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit > 0 && len(res.Rows) > st.Limit {
		res.Rows = res.Rows[:st.Limit]
	}
	return res, nil
}

// joinRows performs the inner equi-join, probing the inner table's index
// when available.
func (db *DB) joinRows(st *SelectStmt, baseRows []ordbms.Row) ([]boundRow, string, error) {
	inner := db.eng.Table(st.Join.Table)
	if inner == nil {
		return nil, "", fmt.Errorf("sqlx: no table %q", st.Join.Table)
	}
	// Determine which side of ON belongs to the outer table.
	outerRef, innerRef := st.Join.Left, st.Join.Right
	if outerRef.Table == st.Join.Table || innerRef.Table == st.From {
		outerRef, innerRef = innerRef, outerRef
	}
	outer := db.eng.Table(st.From)
	oi := outer.Schema().ColIndex(outerRef.Column)
	if oi < 0 {
		return nil, "", fmt.Errorf("sqlx: join column %q not in %q", outerRef.Column, st.From)
	}
	ii := inner.Schema().ColIndex(innerRef.Column)
	if ii < 0 {
		return nil, "", fmt.Errorf("sqlx: join column %q not in %q", innerRef.Column, st.Join.Table)
	}

	var out []boundRow
	if ix := inner.Index(innerRef.Column); ix != nil {
		for _, orow := range baseRows {
			for _, rid := range ix.Lookup(orow[oi]) {
				irow, err := inner.Fetch(rid)
				if err != nil {
					if err == ordbms.ErrRecordDeleted {
						continue
					}
					return nil, "", err
				}
				out = append(out, boundRow{
					tables: []string{st.From, st.Join.Table},
					rows:   []ordbms.Row{orow, irow},
				})
			}
		}
		return out, "join-index(" + innerRef.Column + ")", nil
	}
	// Nested loop with an in-memory hash of the inner table.
	type key string
	hash := make(map[key][]ordbms.Row)
	err := inner.Scan(func(_ ordbms.RowID, row ordbms.Row) bool {
		hash[key(row[ii].String())] = append(hash[key(row[ii].String())], row.Clone())
		return true
	})
	if err != nil {
		return nil, "", err
	}
	for _, orow := range baseRows {
		for _, irow := range hash[key(orow[oi].String())] {
			out = append(out, boundRow{
				tables: []string{st.From, st.Join.Table},
				rows:   []ordbms.Row{orow, irow},
			})
		}
	}
	return out, "join-hash", nil
}

func (db *DB) project(st *SelectStmt, bound []boundRow) (*Result, error) {
	res := &Result{}
	// Column headers.
	for _, it := range st.Items {
		switch {
		case it.Star:
			for _, tn := range tablesOf(st) {
				for _, c := range db.eng.Table(tn).Schema().Columns {
					res.Columns = append(res.Columns, c.Name)
				}
			}
		case it.Alias != "":
			res.Columns = append(res.Columns, it.Alias)
		default:
			res.Columns = append(res.Columns, it.Col.String())
		}
	}
	for _, br := range bound {
		var row ordbms.Row
		for _, it := range st.Items {
			if it.Star {
				for _, r := range br.rows {
					row = append(row, r...)
				}
				continue
			}
			v, err := db.resolve(br, it.Col)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func tablesOf(st *SelectStmt) []string {
	if st.Join != nil {
		return []string{st.From, st.Join.Table}
	}
	return []string{st.From}
}

func (db *DB) aggregate(st *SelectStmt, bound []boundRow) (*Result, error) {
	type acc struct {
		count int64
		sum   float64
		min   ordbms.Value
		max   ordbms.Value
		key   ordbms.Value
	}
	groups := map[string]*acc{}
	var order []string
	for _, br := range bound {
		gk := ""
		var kv ordbms.Value
		if !st.GroupBy.IsZero() {
			v, err := db.resolve(br, st.GroupBy)
			if err != nil {
				return nil, err
			}
			gk = v.String()
			kv = v
		}
		a, ok := groups[gk]
		if !ok {
			a = &acc{min: ordbms.Null(), max: ordbms.Null(), key: kv}
			groups[gk] = a
			order = append(order, gk)
		}
		a.count++
		// For SUM/AVG/MIN/MAX we need the aggregated column per item;
		// handled below per item, so stash the boundRow rows by group.
		_ = a
	}
	// Re-walk per item to compute value aggregates.
	perGroupRows := map[string][]boundRow{}
	for _, br := range bound {
		gk := ""
		if !st.GroupBy.IsZero() {
			v, err := db.resolve(br, st.GroupBy)
			if err != nil {
				return nil, err
			}
			gk = v.String()
		}
		perGroupRows[gk] = append(perGroupRows[gk], br)
	}

	res := &Result{}
	for _, it := range st.Items {
		switch {
		case it.Alias != "":
			res.Columns = append(res.Columns, it.Alias)
		case it.Agg != "":
			if it.Col.IsZero() {
				res.Columns = append(res.Columns, "count")
			} else {
				res.Columns = append(res.Columns, strings.ToLower(it.Agg)+"("+it.Col.String()+")")
			}
		default:
			res.Columns = append(res.Columns, it.Col.String())
		}
	}
	for _, gk := range order {
		a := groups[gk]
		var row ordbms.Row
		for _, it := range st.Items {
			if it.Agg == "" {
				if st.GroupBy.IsZero() || it.Col.String() != st.GroupBy.String() && it.Col.Column != st.GroupBy.Column {
					return nil, fmt.Errorf("sqlx: non-aggregated column %q requires GROUP BY it", it.Col)
				}
				row = append(row, a.key)
				continue
			}
			if it.Agg == "COUNT" {
				row = append(row, ordbms.I(a.count))
				continue
			}
			// Value aggregates over the group's rows.
			var sum float64
			n := int64(0)
			mn, mx := ordbms.Null(), ordbms.Null()
			for _, br := range perGroupRows[gk] {
				v, err := db.resolve(br, it.Col)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue
				}
				f := v.Float
				if v.Type == ordbms.TypeInt {
					f = float64(v.Int)
				}
				sum += f
				n++
				if mn.IsNull() || v.Compare(mn) < 0 {
					mn = v
				}
				if mx.IsNull() || v.Compare(mx) > 0 {
					mx = v
				}
			}
			switch it.Agg {
			case "SUM":
				row = append(row, ordbms.F(sum))
			case "AVG":
				if n == 0 {
					row = append(row, ordbms.Null())
				} else {
					row = append(row, ordbms.F(sum/float64(n)))
				}
			case "MIN":
				row = append(row, mn)
			case "MAX":
				row = append(row, mx)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (db *DB) execDelete(st *DeleteStmt) (*Result, error) {
	t := db.eng.Table(st.Table)
	if t == nil {
		return nil, fmt.Errorf("sqlx: no table %q", st.Table)
	}
	var victims []ordbms.RowID
	err := t.Scan(func(rid ordbms.RowID, row ordbms.Row) bool {
		if st.Where != nil {
			ok, e := db.evalExpr(st.Where, boundRow{tables: []string{st.Table}, rows: []ordbms.Row{row}})
			if e != nil || !ok {
				return true
			}
		}
		victims = append(victims, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, rid := range victims {
		if err := t.Delete(rid); err != nil && err != ordbms.ErrRecordDeleted {
			return nil, err
		}
	}
	return &Result{Affected: int64(len(victims))}, nil
}
