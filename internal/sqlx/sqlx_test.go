package sqlx

import (
	"strings"
	"testing"

	"netmark/internal/ordbms"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	eng, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func mustExec(t testing.TB, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func seeded(t testing.TB) *DB {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE people (id INT, name TEXT, score FLOAT, active BOOL)`)
	mustExec(t, db, `INSERT INTO people VALUES
		(1, 'ada', 99.5, TRUE),
		(2, 'bob', 42, TRUE),
		(3, 'cyd', 77.25, FALSE),
		(4, 'dee', 42, TRUE),
		(5, 'eve', 10, FALSE)`)
	return db
}

func TestCreateInsertSelectAll(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT * FROM people`)
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Plan != "scan" {
		t.Fatalf("plan = %s", res.Plan)
	}
}

func TestSelectProjectionAndWhere(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT name, score FROM people WHERE score > 50`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Float <= 50 {
			t.Fatalf("filter failed: %v", r)
		}
	}
	if res.Columns[0] != "name" || res.Columns[1] != "score" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestWhereLogicAndNot(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT id FROM people WHERE active = TRUE AND score = 42`)
	if len(res.Rows) != 2 {
		t.Fatalf("AND rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT id FROM people WHERE score = 99.5 OR name = 'eve'`)
	if len(res.Rows) != 2 {
		t.Fatalf("OR rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT id FROM people WHERE NOT (active = TRUE)`)
	if len(res.Rows) != 2 {
		t.Fatalf("NOT rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT id FROM people WHERE name != 'ada' AND (score < 42 OR score > 90)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 5 {
		t.Fatalf("nested rows = %v", res.Rows)
	}
}

func TestLike(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT name FROM people WHERE name LIKE 'a%'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ada" {
		t.Fatalf("LIKE prefix = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT name FROM people WHERE name LIKE '%e%'`)
	if len(res.Rows) != 2 { // dee, eve
		t.Fatalf("LIKE contains = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT name FROM people WHERE name LIKE '_o_'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "bob" {
		t.Fatalf("LIKE underscore = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT name, score FROM people ORDER BY score DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "ada" || res.Rows[1][0].Str != "cyd" {
		t.Fatalf("order = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT name FROM people ORDER BY name LIMIT 3`)
	if res.Rows[0][0].Str != "ada" || res.Rows[2][0].Str != "cyd" {
		t.Fatalf("asc order = %v", res.Rows)
	}
}

func TestIndexPlans(t *testing.T) {
	db := seeded(t)
	mustExec(t, db, `CREATE INDEX ON people (name)`)
	mustExec(t, db, `CREATE INDEX ON people (score)`)
	res := mustExec(t, db, `SELECT id FROM people WHERE name = 'bob'`)
	if res.Plan != "index-eq(name)" {
		t.Fatalf("plan = %s", res.Plan)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT id FROM people WHERE score >= 77`)
	if res.Plan != "index-range(score)" {
		t.Fatalf("plan = %s", res.Plan)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("range rows = %v", res.Rows)
	}
	// Index plan and scan plan agree.
	scan := mustExec(t, db, `SELECT id FROM people WHERE active = TRUE AND score >= 77`)
	if len(scan.Rows) != 1 {
		t.Fatalf("residual filter over index: %v", scan.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM people`)
	if res.Rows[0][0].Int != 5 {
		t.Fatalf("count = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT SUM(score), AVG(score), MIN(score), MAX(score) FROM people`)
	r := res.Rows[0]
	if r[0].Float != 270.75 {
		t.Fatalf("sum = %v", r[0])
	}
	if r[1].Float != 54.15 {
		t.Fatalf("avg = %v", r[1])
	}
	if r[2].Float != 10 || r[3].Float != 99.5 {
		t.Fatalf("min/max = %v %v", r[2], r[3])
	}
}

func TestGroupBy(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `SELECT active, COUNT(*), SUM(score) FROM people GROUP BY active`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	byActive := map[bool][2]float64{}
	for _, r := range res.Rows {
		byActive[r[0].Bool] = [2]float64{float64(r[1].Int), r[2].Float}
	}
	if byActive[true][0] != 3 || byActive[true][1] != 183.5 {
		t.Fatalf("active group = %v", byActive[true])
	}
	if byActive[false][0] != 2 || byActive[false][1] != 87.25 {
		t.Fatalf("inactive group = %v", byActive[false])
	}
}

func TestGroupByRejectsBareColumns(t *testing.T) {
	db := seeded(t)
	if _, err := db.Exec(`SELECT name, COUNT(*) FROM people GROUP BY active`); err == nil {
		t.Fatal("bare non-grouped column accepted")
	}
}

func TestJoin(t *testing.T) {
	db := seeded(t)
	mustExec(t, db, `CREATE TABLE grades (pid INT, grade TEXT)`)
	mustExec(t, db, `INSERT INTO grades VALUES (1, 'A'), (2, 'B'), (2, 'B+'), (9, 'X')`)
	res := mustExec(t, db, `SELECT people.name, grades.grade FROM people JOIN grades ON people.id = grades.pid`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "join-hash") {
		t.Fatalf("plan = %s", res.Plan)
	}
	// With an index on the inner join column, the plan switches.
	mustExec(t, db, `CREATE INDEX ON grades (pid)`)
	res = mustExec(t, db, `SELECT people.name, grades.grade FROM people JOIN grades ON people.id = grades.pid`)
	if !strings.Contains(res.Plan, "join-index(pid)") {
		t.Fatalf("plan = %s", res.Plan)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("indexed join rows = %v", res.Rows)
	}
	// Join + where + order.
	res = mustExec(t, db, `SELECT people.name, grades.grade FROM people JOIN grades ON people.id = grades.pid WHERE grades.grade LIKE 'B%' ORDER BY grades.grade`)
	if len(res.Rows) != 2 || res.Rows[0][1].Str != "B" {
		t.Fatalf("join filter = %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	db := seeded(t)
	res := mustExec(t, db, `DELETE FROM people WHERE active = FALSE`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	left := mustExec(t, db, `SELECT COUNT(*) FROM people`)
	if left.Rows[0][0].Int != 3 {
		t.Fatalf("remaining = %v", left.Rows)
	}
	// Unconditional delete.
	res = mustExec(t, db, `DELETE FROM people`)
	if res.Affected != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestInsertCoercesIntToFloat(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE m (v FLOAT)`)
	mustExec(t, db, `INSERT INTO m VALUES (42)`)
	res := mustExec(t, db, `SELECT v FROM m`)
	if res.Rows[0][0].Type != ordbms.TypeFloat || res.Rows[0][0].Float != 42 {
		t.Fatalf("coercion = %v", res.Rows[0][0])
	}
}

func TestStringEscapes(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE s (v TEXT)`)
	mustExec(t, db, `INSERT INTO s VALUES ('it''s quoted')`)
	res := mustExec(t, db, `SELECT v FROM s`)
	if res.Rows[0][0].Str != "it's quoted" {
		t.Fatalf("escape = %q", res.Rows[0][0].Str)
	}
}

func TestParseErrors(t *testing.T) {
	db := seeded(t)
	bad := []string{
		``,
		`SELEKT * FROM people`,
		`SELECT FROM people`,
		`SELECT * FROM`,
		`SELECT * FROM people WHERE`,
		`SELECT * FROM people WHERE name`,
		`SELECT * FROM people LIMIT -1`,
		`SELECT * FROM people ORDER BY`,
		`INSERT INTO people`,
		`INSERT INTO people VALUES 1, 2`,
		`CREATE TABLE t (x WIBBLE)`,
		`SELECT * FROM people WHERE name LIKE 5`,
		`SELECT SUM(*) FROM people`,
		`SELECT * FROM people extra`,
		`SELECT * FROM people WHERE name = 'unterminated`,
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := seeded(t)
	for _, sql := range []string{
		`SELECT * FROM ghost`,
		`SELECT ghostcol FROM people`,
		`SELECT * FROM people WHERE ghost = 1`,
		`INSERT INTO ghost VALUES (1)`,
		`DELETE FROM ghost`,
		`CREATE INDEX ON ghost (x)`,
		`SELECT people.name FROM people JOIN ghost ON people.id = ghost.id`,
		`SELECT name FROM people ORDER BY score`,
	} {
		if _, err := db.Exec(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE n (id INT, v TEXT)`)
	mustExec(t, db, `INSERT INTO n VALUES (1, 'x'), (2, NULL)`)
	// NULL never matches comparisons.
	res := mustExec(t, db, `SELECT id FROM n WHERE v = 'x'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT id FROM n WHERE v != 'x'`)
	if len(res.Rows) != 0 {
		t.Fatalf("null compared equal: %v", res.Rows)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "hell", false},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Fatalf("likeMatch(%q,%q) = %v", c.s, c.p, got)
		}
	}
}

func BenchmarkSelectIndexEq(b *testing.B) {
	db := newDB(b)
	mustExec(b, db, `CREATE TABLE t (id INT, name TEXT)`)
	mustExec(b, db, `CREATE INDEX ON t (id)`)
	for i := 0; i < 200; i++ {
		mustExec(b, db, `INSERT INTO t VALUES (`+itoa(i)+`, 'row')`)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`SELECT name FROM t WHERE id = 57`); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
