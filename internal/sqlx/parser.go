package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"netmark/internal/ordbms"
)

// ---- AST ------------------------------------------------------------

// Stmt is a parsed statement.
type Stmt interface{ isStmt() }

// CreateTableStmt declares a table.
type CreateTableStmt struct {
	Table   string
	Columns []ordbms.Column
}

// CreateIndexStmt declares a secondary index.
type CreateIndexStmt struct {
	Table  string
	Column string
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]ordbms.Value
}

// SelectStmt is a (optionally joined, grouped) query.
type SelectStmt struct {
	// Items are output expressions: column refs or aggregates.
	Items []SelectItem
	From  string
	// Join, when set, adds one inner join.
	Join *JoinClause
	// Where is the optional filter.
	Where Expr
	// GroupBy column reference ("" = none).
	GroupBy ColRef
	// OrderBy column reference; Desc reverses.
	OrderBy ColRef
	Desc    bool
	// Limit caps output rows (0 = unlimited).
	Limit int
}

// SelectItem is one output expression.
type SelectItem struct {
	// Star marks SELECT *.
	Star bool
	// Col is a column reference when Agg == "".
	Col ColRef
	// Agg is COUNT/SUM/AVG/MIN/MAX; COUNT may have Star arg.
	Agg string
	// Alias from AS.
	Alias string
}

// ColRef is a (possibly table-qualified) column name.
type ColRef struct {
	Table  string
	Column string
}

// IsZero reports an unset reference.
func (c ColRef) IsZero() bool { return c.Column == "" }

func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// JoinClause is an inner equi-join.
type JoinClause struct {
	Table string
	Left  ColRef
	Right ColRef
}

// DeleteStmt removes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*CreateTableStmt) isStmt() {}
func (*CreateIndexStmt) isStmt() {}
func (*InsertStmt) isStmt()      {}
func (*SelectStmt) isStmt()      {}
func (*DeleteStmt) isStmt()      {}

// Expr is a boolean filter expression.
type Expr interface{ isExpr() }

// CmpExpr compares a column to a literal.
type CmpExpr struct {
	Col ColRef
	Op  string // = != < <= > >= LIKE
	Val ordbms.Value
}

// LogicExpr combines two expressions.
type LogicExpr struct {
	Op          string // AND OR
	Left, Right Expr
}

// NotExpr negates.
type NotExpr struct{ Inner Expr }

func (*CmpExpr) isExpr()   {}
func (*LogicExpr) isExpr() {}
func (*NotExpr) isExpr()   {}

// ---- Parser ---------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses one statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlx: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(tkKeyword, "CREATE"):
		if p.accept(tkKeyword, "TABLE") {
			return p.parseCreateTable()
		}
		if p.accept(tkKeyword, "INDEX") {
			return p.parseCreateIndex()
		}
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	case p.accept(tkKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tkKeyword, "SELECT"):
		return p.parseSelect()
	case p.accept(tkKeyword, "DELETE"):
		return p.parseDelete()
	}
	return nil, p.errf("expected CREATE, INSERT, SELECT or DELETE")
}

func (p *parser) ident() (string, error) {
	if p.at(tkIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ordbms.Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		var typ ordbms.Type
		switch {
		case p.accept(tkKeyword, "INT"):
			typ = ordbms.TypeInt
		case p.accept(tkKeyword, "FLOAT"):
			typ = ordbms.TypeFloat
		case p.accept(tkKeyword, "TEXT"):
			typ = ordbms.TypeString
		case p.accept(tkKeyword, "BOOL"):
			typ = ordbms.TypeBool
		case p.accept(tkKeyword, "BYTES"):
			typ = ordbms.TypeBytes
		default:
			return nil, p.errf("expected column type, found %q", p.cur().text)
		}
		cols = append(cols, ordbms.Column{Name: cname, Type: typ})
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Table: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex() (Stmt, error) {
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: table, Column: col}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []ordbms.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tkSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) literal() (ordbms.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return ordbms.Null(), p.errf("bad number %q", t.text)
			}
			return ordbms.F(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return ordbms.Null(), p.errf("bad number %q", t.text)
		}
		return ordbms.I(n), nil
	case t.kind == tkString:
		p.next()
		return ordbms.S(t.text), nil
	case t.kind == tkKeyword && t.text == "TRUE":
		p.next()
		return ordbms.Bl(true), nil
	case t.kind == tkKeyword && t.text == "FALSE":
		p.next()
		return ordbms.Bl(false), nil
	case t.kind == tkKeyword && t.text == "NULL":
		p.next()
		return ordbms.Null(), nil
	}
	return ordbms.Null(), p.errf("expected literal, found %q", t.text)
}

func (p *parser) colRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tkSymbol, ".") {
		second, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	st := &SelectStmt{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.From = from
	if p.accept(tkKeyword, "JOIN") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.Join = &JoinClause{Table: jt, Left: left, Right: right}
	}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.GroupBy = c
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.OrderBy = c
		if p.accept(tkKeyword, "DESC") {
			st.Desc = true
		} else {
			p.accept(tkKeyword, "ASC")
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tkNumber {
			return nil, p.errf("expected LIMIT count")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tkSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	t := p.cur()
	if t.kind == tkKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text}
			if p.accept(tkSymbol, "*") {
				if t.text != "COUNT" {
					return SelectItem{}, p.errf("%s(*) is not valid", t.text)
				}
				item.Col = ColRef{}
			} else {
				c, err := p.colRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = c
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.optAlias()
			return item, nil
		}
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c, Alias: p.optAlias()}, nil
}

func (p *parser) optAlias() string {
	if p.accept(tkKeyword, "AS") {
		if p.at(tkIdent, "") {
			return p.next().text
		}
	}
	return ""
}

func (p *parser) parseDelete() (Stmt, error) {
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// parseExpr parses OR-level expressions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &LogicExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &LogicExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	if p.accept(tkSymbol, "(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	col, err := p.colRef()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.accept(tkSymbol, "="):
		op = "="
	case p.accept(tkSymbol, "!="):
		op = "!="
	case p.accept(tkSymbol, "<="):
		op = "<="
	case p.accept(tkSymbol, "<"):
		op = "<"
	case p.accept(tkSymbol, ">="):
		op = ">="
	case p.accept(tkSymbol, ">"):
		op = ">"
	case p.accept(tkKeyword, "LIKE"):
		op = "LIKE"
	default:
		return nil, p.errf("expected comparison operator, found %q", p.cur().text)
	}
	val, err := p.literal()
	if err != nil {
		return nil, err
	}
	if op == "LIKE" && val.Type != ordbms.TypeString {
		return nil, p.errf("LIKE needs a string pattern")
	}
	return &CmpExpr{Col: col, Op: op, Val: val}, nil
}
