// Package databank implements NETMARK's multi-source integration
// (§2.1.5): "an administrator creates a 'Databank' for an application.
// The databank specifies what sources are to be queried when a user fires
// a query to that application."
//
// Integration is performed on the fly at query time, with middleware
// "reduced to needing just a thin router capability across the various
// information sources" (Fig 8).  Each source declares its query
// capabilities; NETMARK pushes down whatever part of a query the source
// can evaluate and applies the residual itself — the paper's Lessons
// Learned example, where a content-only source receives the content
// portion of Context=Title&Content=Engine and NETMARK extracts the Title
// sections from the returned results.
package databank

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"netmark/internal/xdb"
)

// Capability declares which query features a source evaluates natively.
type Capability struct {
	Context bool // heading predicates
	Content bool // keyword predicates
	Phrase  bool // quoted adjacency
	Prefix  bool // trailing-* heading prefixes
}

// Full is the capability set of a NETMARK server.
var Full = Capability{Context: true, Content: true, Phrase: true, Prefix: true}

// ContentOnly is the capability set of a keyword-search-only legacy
// source, like the NASA Lessons Learned Information Server.
var ContentOnly = Capability{Content: true}

func (c Capability) String() string {
	var parts []string
	if c.Context {
		parts = append(parts, "context")
	}
	if c.Content {
		parts = append(parts, "content")
	}
	if c.Phrase {
		parts = append(parts, "phrase")
	}
	if c.Prefix {
		parts = append(parts, "prefix")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseCapability parses the String form back ("context+content").
func ParseCapability(s string) (Capability, error) {
	var c Capability
	if s == "" || s == "none" {
		return c, fmt.Errorf("databank: source must have at least one capability")
	}
	for _, p := range strings.Split(s, "+") {
		switch strings.TrimSpace(strings.ToLower(p)) {
		case "context":
			c.Context = true
		case "content":
			c.Content = true
		case "phrase":
			c.Phrase = true
		case "prefix":
			c.Prefix = true
		case "full":
			c = Full
		default:
			return c, fmt.Errorf("databank: unknown capability %q", p)
		}
	}
	return c, nil
}

// Source is one information source in a databank.
type Source interface {
	// Name identifies the source in results and errors.
	Name() string
	// Capabilities declares what the source can evaluate.
	Capabilities() Capability
	// Query evaluates a pushdown query.  The router guarantees the query
	// is within the declared capabilities.
	Query(ctx context.Context, q xdb.Query) (*xdb.Result, error)
}

// LocalSource adapts a local XDB engine as a full-capability source.
type LocalSource struct {
	name   string
	engine *xdb.Engine
}

// NewLocalSource wraps an engine.
func NewLocalSource(name string, engine *xdb.Engine) *LocalSource {
	return &LocalSource{name: name, engine: engine}
}

func (s *LocalSource) Name() string             { return s.name }
func (s *LocalSource) Capabilities() Capability { return Full }
func (s *LocalSource) Engine() *xdb.Engine      { return s.engine }

// Query executes locally.
func (s *LocalSource) Query(ctx context.Context, q xdb.Query) (*xdb.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.engine.Execute(q)
}

// LegacySource simulates a search interface with restricted capabilities
// — the paper's NASA Lessons Learned Information Server, which "allows
// only 'Content search' kinds of queries".  It rejects any query feature
// it did not declare, so tests prove the router never leaks residual
// predicates to the source.
type LegacySource struct {
	name   string
	caps   Capability
	engine *xdb.Engine
}

// NewLegacySource wraps an engine behind a restricted capability set.
func NewLegacySource(name string, caps Capability, engine *xdb.Engine) *LegacySource {
	return &LegacySource{name: name, caps: caps, engine: engine}
}

func (s *LegacySource) Name() string             { return s.name }
func (s *LegacySource) Capabilities() Capability { return s.caps }

// Query enforces the capability contract, then executes.
func (s *LegacySource) Query(ctx context.Context, q xdb.Query) (*xdb.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case q.Context != "" && !s.caps.Context:
		return nil, fmt.Errorf("databank: source %s cannot evaluate context predicates", s.name)
	case q.Content != "" && !s.caps.Content:
		return nil, fmt.Errorf("databank: source %s cannot evaluate content predicates", s.name)
	case q.Phrase && !s.caps.Phrase:
		return nil, fmt.Errorf("databank: source %s cannot evaluate phrase queries", s.name)
	case q.ContextPrefix && !s.caps.Prefix:
		return nil, fmt.Errorf("databank: source %s cannot evaluate prefix queries", s.name)
	}
	return s.engine.Execute(q)
}

// HTTPSource queries a remote NETMARK server over the paper's
// URL-appended query protocol and decodes the XML wire format.
type HTTPSource struct {
	name    string
	baseURL string
	caps    Capability
	client  *http.Client
}

// NewHTTPSource builds a remote source.  baseURL points at the server's
// /xdb endpoint root (e.g. http://host:port).
func NewHTTPSource(name, baseURL string, caps Capability) *HTTPSource {
	return &HTTPSource{name: name, baseURL: strings.TrimRight(baseURL, "/"), caps: caps, client: &http.Client{}}
}

func (s *HTTPSource) Name() string             { return s.name }
func (s *HTTPSource) Capabilities() Capability { return s.caps }

// Query sends the pushdown query to the remote server.
func (s *HTTPSource) Query(ctx context.Context, q xdb.Query) (*xdb.Result, error) {
	u := s.baseURL + "/xdb?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("databank: source %s: %w", s.name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("databank: source %s: %s: %s", s.name, resp.Status, truncate(string(body), 200))
	}
	return xdb.ParseResultXML(string(body))
}

// DiscoverCapabilities asks a remote server what it supports via the
// /capabilities endpoint.
func DiscoverCapabilities(ctx context.Context, baseURL string) (Capability, error) {
	u := strings.TrimRight(baseURL, "/") + "/capabilities"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Capability{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return Capability{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return Capability{}, err
	}
	return ParseCapability(strings.TrimSpace(string(body)))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
