package databank

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// Databank is a declared integration application: a name and the sources
// its queries fan out to.  Creating one is the paper's entire assembly
// process for a new integration application — no schemas, no mappings.
type Databank struct {
	name        string
	mu          sync.RWMutex
	sources     []Source // guarded by mu
	timeout     time.Duration
	maxParallel int
}

// Option configures a databank.
type Option func(*Databank)

// WithTimeout bounds each multi-source query.
func WithTimeout(d time.Duration) Option {
	return func(b *Databank) { b.timeout = d }
}

// WithMaxParallel caps concurrent source queries (0 = unbounded).
func WithMaxParallel(n int) Option {
	return func(b *Databank) { b.maxParallel = n }
}

// New creates an empty databank.
func New(name string, opts ...Option) *Databank {
	b := &Databank{name: name, timeout: 30 * time.Second}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name returns the databank name.
func (b *Databank) Name() string { return b.name }

// AddSource registers a source.
func (b *Databank) AddSource(s Source) {
	b.mu.Lock()
	b.sources = append(b.sources, s)
	b.mu.Unlock()
}

// Sources lists registered sources.
func (b *Databank) Sources() []Source {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Source(nil), b.sources...)
}

// SourceResult is one source's contribution to a merged result.
type SourceResult struct {
	Source   string
	Plan     Plan
	Sections []xmlstore.Section
	Docs     []*xmlstore.DocInfo
	Err      error
	Elapsed  time.Duration
}

// Merged is the union of all source results for one query.
type Merged struct {
	Query     xdb.Query
	PerSource []SourceResult
	Elapsed   time.Duration
}

// Sections returns all sections across sources, tagged stably by source
// order then document order.
func (m *Merged) Sections() []xmlstore.Section {
	var out []xmlstore.Section
	for _, sr := range m.PerSource {
		out = append(out, sr.Sections...)
	}
	return out
}

// Docs returns all document-level results across sources.
func (m *Merged) Docs() []*xmlstore.DocInfo {
	var out []*xmlstore.DocInfo
	for _, sr := range m.PerSource {
		out = append(out, sr.Docs...)
	}
	return out
}

// Errs returns per-source failures (partial results are still usable).
func (m *Merged) Errs() map[string]error {
	out := make(map[string]error)
	for _, sr := range m.PerSource {
		if sr.Err != nil {
			out[sr.Source] = sr.Err
		}
	}
	return out
}

// Query fans the query out to every source in parallel — the thin-router
// data path of Fig 8.  Each source gets its own goroutine, its own
// decomposed plan, and residual filtering on the way back.  A failing
// source yields an error entry, not a failed query.
func (b *Databank) Query(ctx context.Context, q xdb.Query) (*Merged, error) {
	if q.IsZero() {
		return nil, fmt.Errorf("databank: empty query")
	}
	sources := b.Sources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("databank %s: no sources", b.name)
	}
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	start := time.Now()
	results := make([]SourceResult, len(sources))

	var sem chan struct{}
	if b.maxParallel > 0 {
		sem = make(chan struct{}, b.maxParallel)
	}
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			results[i] = b.querySource(ctx, src, q)
		}(i, src)
	}
	wg.Wait()
	return &Merged{Query: q, PerSource: results, Elapsed: time.Since(start)}, nil
}

// QuerySequential is the ablation path: same semantics, one source at a
// time (what a naive router without goroutine fan-out would do).
func (b *Databank) QuerySequential(ctx context.Context, q xdb.Query) (*Merged, error) {
	if q.IsZero() {
		return nil, fmt.Errorf("databank: empty query")
	}
	sources := b.Sources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("databank %s: no sources", b.name)
	}
	start := time.Now()
	results := make([]SourceResult, len(sources))
	for i, src := range sources {
		results[i] = b.querySource(ctx, src, q)
	}
	return &Merged{Query: q, PerSource: results, Elapsed: time.Since(start)}, nil
}

func (b *Databank) querySource(ctx context.Context, src Source, q xdb.Query) SourceResult {
	sr := SourceResult{Source: src.Name()}
	t0 := time.Now()
	defer func() { sr.Elapsed = time.Since(t0) }()

	plan, err := Decompose(q, src.Capabilities())
	if err != nil {
		sr.Err = err
		return sr
	}
	sr.Plan = plan
	res, err := src.Query(ctx, plan.Pushdown)
	if err != nil {
		sr.Err = err
		return sr
	}
	if q.DocsOnly {
		sr.Docs = res.Docs
		return sr
	}
	sr.Sections = plan.ApplyResidual(q, res.Sections)
	return sr
}

// Registry holds the named databanks of a NETMARK deployment.
type Registry struct {
	mu    sync.RWMutex
	banks map[string]*Databank // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{banks: make(map[string]*Databank)}
}

// Add registers a databank; replacing an existing name is an error.
func (r *Registry) Add(b *Databank) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.banks[b.Name()]; dup {
		return fmt.Errorf("databank: %q already registered", b.Name())
	}
	r.banks[b.Name()] = b
	return nil
}

// Get returns a databank by name, or nil.
func (r *Registry) Get(name string) *Databank {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.banks[name]
}

// Remove deletes a databank.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	delete(r.banks, name)
	r.mu.Unlock()
}

// Names lists registered databanks in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.banks))
	for n := range r.banks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Spec is the declarative JSON form of a databank — the administrator's
// entire artifact for assembling an integration application (compare the
// mediator's per-source schemas plus view mappings).
type Spec struct {
	Name    string       `json:"name"`
	Sources []SourceSpec `json:"sources"`
	// TimeoutSeconds bounds multi-source queries (default 30).
	TimeoutSeconds int `json:"timeout_seconds,omitempty"`
}

// SourceSpec declares one source.
type SourceSpec struct {
	// Type: "local", "legacy" or "http".
	Type string `json:"type"`
	Name string `json:"name"`
	// URL for http sources.
	URL string `json:"url,omitempty"`
	// Capabilities in "context+content" form; empty means full.
	Capabilities string `json:"capabilities,omitempty"`
}

// ParseSpec decodes a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("databank: bad spec: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("databank: spec needs a name")
	}
	if len(s.Sources) == 0 {
		return nil, fmt.Errorf("databank: spec %q has no sources", s.Name)
	}
	return &s, nil
}

// ArtifactCount is the integration-cost accounting hook for Fig 1: one
// artifact for the databank itself plus one per source entry.  No
// schemas, no view definitions, no mappings.
func (s *Spec) ArtifactCount() int { return 1 + len(s.Sources) }

// Build instantiates the spec.  The resolver maps local/legacy source
// names to engines (http sources need no resolver).
func (s *Spec) Build(resolve func(name string) (*xdb.Engine, error)) (*Databank, error) {
	opts := []Option{}
	if s.TimeoutSeconds > 0 {
		opts = append(opts, WithTimeout(time.Duration(s.TimeoutSeconds)*time.Second))
	}
	b := New(s.Name, opts...)
	for _, ss := range s.Sources {
		caps := Full
		if ss.Capabilities != "" {
			var err error
			caps, err = ParseCapability(ss.Capabilities)
			if err != nil {
				return nil, err
			}
		}
		switch ss.Type {
		case "local":
			eng, err := resolve(ss.Name)
			if err != nil {
				return nil, err
			}
			b.AddSource(NewLocalSource(ss.Name, eng))
		case "legacy":
			eng, err := resolve(ss.Name)
			if err != nil {
				return nil, err
			}
			b.AddSource(NewLegacySource(ss.Name, caps, eng))
		case "http":
			if ss.URL == "" {
				return nil, fmt.Errorf("databank: http source %q needs url", ss.Name)
			}
			b.AddSource(NewHTTPSource(ss.Name, ss.URL, caps))
		default:
			return nil, fmt.Errorf("databank: unknown source type %q", ss.Type)
		}
	}
	return b, nil
}
