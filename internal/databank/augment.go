package databank

import (
	"fmt"

	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// Plan is the result of query decomposition against one source: the
// pushdown part the source evaluates natively and the residual predicates
// NETMARK applies to the returned results.
//
// This is the paper's query augmentation: "NETMARK will pass on to the
// original source whatever portions of the query it can process [...]
// Further processing is then done in NETMARK" (§2.1.5).
type Plan struct {
	Source   string
	Pushdown xdb.Query
	// Residual predicates applied by the router.
	ResidualContext bool
	ResidualContent bool
	ResidualPhrase  bool
}

// HasResidual reports whether the router must post-process.
func (p Plan) HasResidual() bool {
	return p.ResidualContext || p.ResidualContent || p.ResidualPhrase
}

// Decompose splits a query against a capability set.
//
// Rules:
//   - Predicates the source supports are pushed down.
//   - A context predicate against a content-only source is converted to a
//     content query on the heading terms (best effort — the heading text
//     almost always appears in the section), and the exact context match
//     is kept as a residual.
//   - A phrase against a source without phrase support degrades to an AND
//     of terms pushdown with a residual phrase check.
//   - A prefix context against a source without prefix support cannot be
//     narrowed; the pushdown keeps only the content part and the prefix
//     match is residual.
func Decompose(q xdb.Query, caps Capability) (Plan, error) {
	if !caps.Context && !caps.Content {
		return Plan{}, fmt.Errorf("databank: source supports neither context nor content queries")
	}
	p := Plan{Pushdown: q}

	// Phrase degradation.
	if q.Phrase && !caps.Phrase {
		p.Pushdown.Phrase = false
		p.ResidualPhrase = true
	}

	// Context handling.
	if q.Context != "" {
		switch {
		case caps.Context && q.ContextPrefix && !caps.Prefix:
			// Exact-match-only source: cannot push a prefix; keep the
			// context residual and push nothing for it.
			p.Pushdown.Context = ""
			p.Pushdown.ContextPrefix = false
			p.ResidualContext = true
		case !caps.Context:
			// Content-only source: degrade context to content keywords.
			p.Pushdown.Context = ""
			p.Pushdown.ContextPrefix = false
			p.ResidualContext = true
			if p.Pushdown.Content == "" {
				p.Pushdown.Content = q.Context
				p.Pushdown.Phrase = false
			}
		}
	}

	// Content handling.
	if q.Content != "" && !caps.Content {
		// Context-only source: push the context, verify content here.
		p.Pushdown.Content = ""
		p.Pushdown.Phrase = false
		p.ResidualContent = true
	}

	// Limits cannot be pushed when a residual filter may discard rows.
	if p.HasResidual() {
		p.Pushdown.Limit = 0
	}
	if p.Pushdown.IsZero() {
		return Plan{}, fmt.Errorf("databank: nothing pushable for this source (query %q, caps %s)", q.Encode(), caps)
	}
	return p, nil
}

// ApplyResidual filters the source's sections by the residual predicates.
func (p Plan) ApplyResidual(q xdb.Query, secs []xmlstore.Section) []xmlstore.Section {
	if !p.HasResidual() {
		return secs
	}
	// Filter into a fresh slice: secs may be a cached engine result shared
	// with concurrent queries, so compacting it in place would corrupt it.
	out := make([]xmlstore.Section, 0, len(secs))
	for _, s := range secs {
		if p.ResidualContext && !xdb.SectionMatchesContext(s, q) {
			continue
		}
		if (p.ResidualContent || p.ResidualPhrase) && !xdb.SectionMatchesContent(s, q) {
			continue
		}
		out = append(out, s)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}
