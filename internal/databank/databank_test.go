package databank

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netmark/internal/ordbms"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

func newEngine(t testing.TB) *xdb.Engine {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return xdb.NewEngine(s)
}

func loadDoc(t testing.TB, e *xdb.Engine, name, data string) {
	t.Helper()
	if _, err := e.Store().StoreRaw(name, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

// lessonsEngine builds the paper's Lessons Learned source: records with
// Title sections, some mentioning "Engine".
func lessonsEngine(t testing.TB) *xdb.Engine {
	e := newEngine(t)
	loadDoc(t, e, "lesson1.html", `<html><body>
	<h2>Title</h2><p>Engine turbopump cavitation lesson</p>
	<h2>Lesson</h2><p>Inspect the engine turbopump before each flight.</p></body></html>`)
	loadDoc(t, e, "lesson2.html", `<html><body>
	<h2>Title</h2><p>Thermal tile adhesion lesson</p>
	<h2>Lesson</h2><p>Tile bonding procedures for the orbiter.</p></body></html>`)
	loadDoc(t, e, "lesson3.html", `<html><body>
	<h2>Title</h2><p>Avionics grounding lesson</p>
	<h2>Lesson</h2><p>The engine bay harness requires double grounding.</p></body></html>`)
	return e
}

func TestDecomposeFullCapability(t *testing.T) {
	q := xdb.Query{Context: "Title", Content: "Engine"}
	p, err := Decompose(q, Full)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasResidual() {
		t.Fatalf("full capability should have no residual: %+v", p)
	}
	if p.Pushdown != q {
		t.Fatalf("pushdown changed: %+v", p.Pushdown)
	}
}

// TestDecomposeLessonsLearnedExample is the paper's §2.1.5 worked
// example: Context=Title&Content=Engine against a content-only source
// pushes only the content portion; the Title extraction is residual.
func TestDecomposeLessonsLearnedExample(t *testing.T) {
	q := xdb.Query{Context: "Title", Content: "Engine"}
	p, err := Decompose(q, ContentOnly)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pushdown.Context != "" {
		t.Fatalf("context leaked to source: %+v", p.Pushdown)
	}
	if p.Pushdown.Content != "Engine" {
		t.Fatalf("content pushdown = %q", p.Pushdown.Content)
	}
	if !p.ResidualContext {
		t.Fatal("context must be residual")
	}
	if p.ResidualContent {
		t.Fatal("content should not be residual")
	}
}

func TestDecomposeContextOnlyToContentOnlySource(t *testing.T) {
	q := xdb.Query{Context: "Budget"}
	p, err := Decompose(q, ContentOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Best effort: heading terms become content keywords.
	if p.Pushdown.Content != "Budget" || p.Pushdown.Context != "" {
		t.Fatalf("pushdown = %+v", p.Pushdown)
	}
	if !p.ResidualContext {
		t.Fatal("context must be verified residually")
	}
}

func TestDecomposePhraseDegradation(t *testing.T) {
	q := xdb.Query{Content: "technology gap", Phrase: true}
	caps := Capability{Content: true} // no phrase support
	p, err := Decompose(q, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pushdown.Phrase {
		t.Fatal("phrase leaked to source")
	}
	if !p.ResidualPhrase {
		t.Fatal("phrase must be residual")
	}
}

func TestDecomposeLimitWithheldUnderResidual(t *testing.T) {
	q := xdb.Query{Context: "Title", Content: "Engine", Limit: 1}
	p, err := Decompose(q, ContentOnly)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pushdown.Limit != 0 {
		t.Fatal("limit must not be pushed when residual filtering may discard rows")
	}
}

func TestDecomposeImpossible(t *testing.T) {
	if _, err := Decompose(xdb.Query{Context: "A"}, Capability{}); err == nil {
		t.Fatal("no-capability source accepted")
	}
}

func TestDecomposeContextOnlySource(t *testing.T) {
	// A source that can only evaluate context predicates: the content
	// part becomes residual.
	caps := Capability{Context: true}
	q := xdb.Query{Context: "Title", Content: "Engine"}
	p, err := Decompose(q, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pushdown.Content != "" || p.Pushdown.Context != "Title" {
		t.Fatalf("pushdown = %+v", p.Pushdown)
	}
	if !p.ResidualContent || p.ResidualContext {
		t.Fatalf("residuals = %+v", p)
	}
}

func TestDecomposePrefixWithoutPrefixSupport(t *testing.T) {
	caps := Capability{Context: true, Content: true}
	q := xdb.Query{Context: "Tech", ContextPrefix: true, Content: "gap"}
	p, err := Decompose(q, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pushdown.Context != "" || p.Pushdown.ContextPrefix {
		t.Fatalf("prefix leaked to exact-match source: %+v", p.Pushdown)
	}
	if !p.ResidualContext {
		t.Fatal("prefix must be residual")
	}
	if p.Pushdown.Content != "gap" {
		t.Fatalf("content pushdown lost: %+v", p.Pushdown)
	}
}

func TestApplyResidualHonoursLimit(t *testing.T) {
	q := xdb.Query{Context: "T", Limit: 2}
	p := Plan{ResidualContext: true}
	secs := []xmlstore.Section{
		{Context: "T"}, {Context: "other"}, {Context: "T"}, {Context: "T"},
	}
	got := p.ApplyResidual(q, secs)
	if len(got) != 2 {
		t.Fatalf("limit after residual = %d", len(got))
	}
	for _, s := range got {
		if s.Context != "T" {
			t.Fatalf("residual let through %q", s.Context)
		}
	}
}

// TestAugmentationLessonsLearned runs the full §2.1.5 flow end to end:
// the content-only source returns every section whose record mentions
// Engine; the router extracts only the Title sections.
func TestAugmentationLessonsLearned(t *testing.T) {
	lessons := lessonsEngine(t)
	bank := New("anomaly-integration")
	bank.AddSource(NewLegacySource("lessons-learned", ContentOnly, lessons))

	q := xdb.Query{Context: "Title", Content: "Engine"}
	m, err := bank.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Errs()) != 0 {
		t.Fatalf("errors: %v", m.Errs())
	}
	secs := m.Sections()
	// lesson1 has Engine in its Title; lesson3 mentions engine only in
	// the Lesson section, so its Title section does not match the content
	// predicate... but wait: the content pushdown returns sections from
	// both, and the residual filters Title+Engine.  lesson1's Title
	// section contains "Engine"; lesson3's Title section does not.
	if len(secs) != 1 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0].DocName != "lesson1.html" || secs[0].Context != "Title" {
		t.Fatalf("wrong section: %+v", secs[0])
	}
	// The plan recorded the decomposition.
	if !m.PerSource[0].Plan.ResidualContext {
		t.Fatal("plan should record residual context")
	}
}

func TestMultiSourceFanOutMergesAll(t *testing.T) {
	bank := New("multi")
	for i := 0; i < 5; i++ {
		e := newEngine(t)
		loadDoc(t, e, fmt.Sprintf("s%d.html", i), fmt.Sprintf(
			`<html><body><h1>Status</h1><p>unit %d nominal</p></body></html>`, i))
		bank.AddSource(NewLocalSource(fmt.Sprintf("source-%d", i), e))
	}
	m, err := bank.Query(context.Background(), xdb.Query{Context: "Status"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sections()) != 5 {
		t.Fatalf("sections = %d", len(m.Sections()))
	}
	names := map[string]bool{}
	for _, sr := range m.PerSource {
		names[sr.Source] = true
		if sr.Err != nil {
			t.Fatalf("source %s: %v", sr.Source, sr.Err)
		}
	}
	if len(names) != 5 {
		t.Fatalf("sources answered = %d", len(names))
	}
}

func TestParallelAndSequentialAgree(t *testing.T) {
	bank := New("agree")
	for i := 0; i < 4; i++ {
		e := newEngine(t)
		loadDoc(t, e, fmt.Sprintf("d%d.html", i),
			`<html><body><h1>Common</h1><p>shared term here</p></body></html>`)
		bank.AddSource(NewLocalSource(fmt.Sprintf("src%d", i), e))
	}
	q := xdb.Query{Context: "Common", Content: "shared"}
	par, err := bank.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := bank.QuerySequential(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Sections()) != len(seq.Sections()) {
		t.Fatalf("parallel %d != sequential %d", len(par.Sections()), len(seq.Sections()))
	}
	// Per-source order is stable, so contents must align.
	ps, ss := par.Sections(), seq.Sections()
	for i := range ps {
		if ps[i].DocName != ss[i].DocName || ps[i].Context != ss[i].Context {
			t.Fatalf("result order diverged at %d", i)
		}
	}
}

// slowSource delays to make parallelism observable.
type slowSource struct {
	name  string
	delay time.Duration
	inner Source
	calls *atomic.Int64
}

func (s *slowSource) Name() string             { return s.name }
func (s *slowSource) Capabilities() Capability { return s.inner.Capabilities() }
func (s *slowSource) Query(ctx context.Context, q xdb.Query) (*xdb.Result, error) {
	if s.calls != nil {
		s.calls.Add(1)
	}
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Query(ctx, q)
}

func TestParallelFanOutIsConcurrent(t *testing.T) {
	bank := New("slow")
	const n = 6
	const delay = 40 * time.Millisecond
	for i := 0; i < n; i++ {
		e := newEngine(t)
		loadDoc(t, e, "d.html", `<html><body><h1>S</h1><p>x</p></body></html>`)
		bank.AddSource(&slowSource{name: fmt.Sprintf("slow%d", i), delay: delay,
			inner: NewLocalSource(fmt.Sprintf("slow%d", i), e)})
	}
	start := time.Now()
	if _, err := bank.Query(context.Background(), xdb.Query{Context: "S"}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Duration(n)*delay/2 {
		t.Fatalf("fan-out not parallel: %v for %d sources of %v each", elapsed, n, delay)
	}
}

func TestSourceFailureIsPartial(t *testing.T) {
	good := newEngine(t)
	loadDoc(t, good, "ok.html", `<html><body><h1>S</h1><p>fine</p></body></html>`)
	bank := New("partial")
	bank.AddSource(NewLocalSource("good", good))
	bank.AddSource(failingSource{})
	m, err := bank.Query(context.Background(), xdb.Query{Context: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sections()) != 1 {
		t.Fatalf("good source result lost: %d", len(m.Sections()))
	}
	errs := m.Errs()
	if len(errs) != 1 || errs["boom"] == nil {
		t.Fatalf("errors = %v", errs)
	}
}

type failingSource struct{}

func (failingSource) Name() string             { return "boom" }
func (failingSource) Capabilities() Capability { return Full }
func (failingSource) Query(context.Context, xdb.Query) (*xdb.Result, error) {
	return nil, errors.New("source exploded")
}

func TestQueryTimeout(t *testing.T) {
	e := newEngine(t)
	loadDoc(t, e, "d.html", `<html><body><h1>S</h1><p>x</p></body></html>`)
	bank := New("timeout", WithTimeout(20*time.Millisecond))
	bank.AddSource(&slowSource{name: "veryslow", delay: 500 * time.Millisecond,
		inner: NewLocalSource("veryslow", e)})
	start := time.Now()
	m, err := bank.Query(context.Background(), xdb.Query{Context: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("timeout not enforced")
	}
	if len(m.Errs()) != 1 {
		t.Fatalf("expected timeout error, got %v", m.Errs())
	}
}

func TestMaxParallelRespected(t *testing.T) {
	// With maxParallel=1 the total time is ~n*delay.
	bank := New("capped", WithMaxParallel(1))
	const n = 3
	const delay = 30 * time.Millisecond
	for i := 0; i < n; i++ {
		e := newEngine(t)
		loadDoc(t, e, "d.html", `<html><body><h1>S</h1><p>x</p></body></html>`)
		bank.AddSource(&slowSource{name: fmt.Sprintf("s%d", i), delay: delay,
			inner: NewLocalSource(fmt.Sprintf("s%d", i), e)})
	}
	start := time.Now()
	if _, err := bank.Query(context.Background(), xdb.Query{Context: "S"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Duration(n)*delay {
		t.Fatalf("cap violated: %v < %v", elapsed, time.Duration(n)*delay)
	}
}

func TestLegacySourceRejectsOutOfContract(t *testing.T) {
	e := lessonsEngine(t)
	src := NewLegacySource("lessons", ContentOnly, e)
	if _, err := src.Query(context.Background(), xdb.Query{Context: "Title"}); err == nil {
		t.Fatal("legacy source accepted a context query")
	}
	if _, err := src.Query(context.Background(), xdb.Query{Content: "x", Phrase: true}); err == nil {
		t.Fatal("legacy source accepted a phrase query")
	}
	if _, err := src.Query(context.Background(), xdb.Query{Content: "engine"}); err != nil {
		t.Fatalf("in-contract query rejected: %v", err)
	}
}

func TestCapabilityStringRoundTrip(t *testing.T) {
	for _, c := range []Capability{Full, ContentOnly, {Context: true}, {Content: true, Phrase: true}} {
		got, err := ParseCapability(c.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if _, err := ParseCapability(""); err == nil {
		t.Fatal("empty capability accepted")
	}
	if _, err := ParseCapability("telepathy"); err == nil {
		t.Fatal("unknown capability accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(New("beta")); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("alpha")); err == nil {
		t.Fatal("duplicate accepted")
	}
	if names := r.Names(); strings.Join(names, ",") != "alpha,beta" {
		t.Fatalf("names = %v", names)
	}
	if r.Get("alpha") == nil || r.Get("missing") != nil {
		t.Fatal("Get broken")
	}
	r.Remove("alpha")
	if r.Get("alpha") != nil {
		t.Fatal("Remove broken")
	}
}

func TestSpecParseAndBuild(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "anomaly-tracking",
		"timeout_seconds": 10,
		"sources": [
			{"type": "local", "name": "tracker-a"},
			{"type": "legacy", "name": "lessons", "capabilities": "content"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.ArtifactCount() != 3 {
		t.Fatalf("artifacts = %d", spec.ArtifactCount())
	}
	engines := map[string]*xdb.Engine{
		"tracker-a": newEngine(t),
		"lessons":   lessonsEngine(t),
	}
	loadDoc(t, engines["tracker-a"], "a.html",
		`<html><body><h2>Title</h2><p>Engine anomaly 42</p></body></html>`)
	bank, err := spec.Build(func(name string) (*xdb.Engine, error) {
		e, ok := engines[name]
		if !ok {
			return nil, fmt.Errorf("no engine %s", name)
		}
		return e, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := bank.Query(context.Background(), xdb.Query{Context: "Title", Content: "Engine"})
	if err != nil {
		t.Fatal(err)
	}
	// tracker-a's Title has Engine; lessons1's Title has Engine.
	if len(m.Sections()) != 2 {
		t.Fatalf("sections = %v", m.Sections())
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		`{}`,
		`{"name":"x"}`,
		`{"name":"x","sources":[{"type":"warp","name":"y"}]}`,
		`{"name":"x","sources":[{"type":"http","name":"y"}]}`,
		`not json`,
	}
	for _, s := range bad {
		spec, err := ParseSpec([]byte(s))
		if err != nil {
			continue
		}
		if _, err := spec.Build(func(string) (*xdb.Engine, error) { return newEngine(t), nil }); err == nil {
			t.Fatalf("spec %q accepted", s)
		}
	}
}

func TestDocsOnlyAcrossSources(t *testing.T) {
	bank := New("docs")
	for i := 0; i < 3; i++ {
		e := newEngine(t)
		loadDoc(t, e, fmt.Sprintf("doc%d.html", i),
			`<html><body><h1>T</h1><p>keyword present</p></body></html>`)
		bank.AddSource(NewLocalSource(fmt.Sprintf("s%d", i), e))
	}
	m, err := bank.Query(context.Background(), xdb.Query{Content: "keyword", DocsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Docs()) != 3 {
		t.Fatalf("docs = %d", len(m.Docs()))
	}
}
