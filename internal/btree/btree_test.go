package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func strCmp(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestEmptyTree(t *testing.T) {
	tr := New[int, string](intCmp)
	if tr.Len() != 0 || tr.Keys() != 0 {
		t.Fatalf("empty tree: len=%d keys=%d", tr.Len(), tr.Keys())
	}
	if got := tr.Get(42); got != nil {
		t.Fatalf("Get on empty = %v", got)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty should report !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty should report !ok")
	}
}

func TestInsertGetSingle(t *testing.T) {
	tr := New[int, string](intCmp)
	tr.Insert(1, "one")
	if got := tr.Get(1); len(got) != 1 || got[0] != "one" {
		t.Fatalf("Get(1) = %v", got)
	}
	if tr.Get(2) != nil {
		t.Fatal("Get(2) should be nil")
	}
}

func TestDuplicateKeysAccumulate(t *testing.T) {
	tr := New[string, int](strCmp)
	for i := 0; i < 10; i++ {
		tr.Insert("k", i)
	}
	got := tr.Get("k")
	if len(got) != 10 {
		t.Fatalf("want 10 values, got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order broken at %d: %v", i, got)
		}
	}
	if tr.Keys() != 1 || tr.Len() != 10 {
		t.Fatalf("keys=%d len=%d", tr.Keys(), tr.Len())
	}
}

func TestSplitsPreserveAllKeys(t *testing.T) {
	tr := NewWithOrder[int, int](intCmp, 4) // tiny order forces many splits
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Insert(k, k*10)
	}
	if tr.Keys() != n {
		t.Fatalf("keys = %d, want %d", tr.Keys(), n)
	}
	for k := 0; k < n; k++ {
		got := tr.Get(k)
		if len(got) != 1 || got[0] != k*10 {
			t.Fatalf("Get(%d) = %v", k, got)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a deep tree with order 4, height=%d", tr.Height())
	}
}

func TestAscendSorted(t *testing.T) {
	tr := NewWithOrder[int, int](intCmp, 5)
	perm := rand.New(rand.NewSource(2)).Perm(500)
	for _, k := range perm {
		tr.Insert(k, k)
	}
	var keys []int
	tr.Ascend(func(k int, _ []int) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend out of order")
	}
	if len(keys) != 500 {
		t.Fatalf("Ascend visited %d keys", len(keys))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int, int](intCmp)
	for i := 0; i < 100; i++ {
		tr.Insert(i, i)
	}
	count := 0
	tr.Ascend(func(int, []int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendRangeInclusive(t *testing.T) {
	tr := NewWithOrder[int, int](intCmp, 4)
	for i := 0; i < 200; i += 2 { // even keys only
		tr.Insert(i, i)
	}
	var got []int
	tr.AscendRange(10, 20, func(k int, _ []int) bool {
		got = append(got, k)
		return true
	})
	want := []int{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Bounds not present in the tree.
	got = got[:0]
	tr.AscendRange(11, 19, func(k int, _ []int) bool {
		got = append(got, k)
		return true
	})
	want = []int{12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("range with absent bounds = %v, want %v", got, want)
	}
}

func TestDeleteValueAndKey(t *testing.T) {
	tr := New[string, int](strCmp)
	tr.Insert("a", 1)
	tr.Insert("a", 2)
	tr.Insert("b", 3)
	if n := tr.Delete("a", func(v int) bool { return v == 1 }); n != 1 {
		t.Fatalf("Delete removed %d", n)
	}
	if got := tr.Get("a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after delete Get(a) = %v", got)
	}
	if n := tr.DeleteKey("a"); n != 1 {
		t.Fatalf("DeleteKey removed %d", n)
	}
	if tr.Contains("a") {
		t.Fatal("a should be gone")
	}
	if !tr.Contains("b") {
		t.Fatal("b should remain")
	}
	if tr.Keys() != 1 || tr.Len() != 1 {
		t.Fatalf("keys=%d len=%d", tr.Keys(), tr.Len())
	}
}

func TestDeleteAbsentKey(t *testing.T) {
	tr := New[int, int](intCmp)
	tr.Insert(1, 1)
	if n := tr.DeleteKey(99); n != 0 {
		t.Fatalf("deleting absent key removed %d", n)
	}
}

func TestMinMax(t *testing.T) {
	tr := NewWithOrder[int, int](intCmp, 4)
	for _, k := range []int{50, 10, 90, 30, 70} {
		tr.Insert(k, k)
	}
	if mn, _ := tr.Min(); mn != 10 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 90 {
		t.Fatalf("Max = %d", mx)
	}
}

func TestPrefixScan(t *testing.T) {
	tr := New[string, int](strCmp)
	words := []string{"alpha", "alphabet", "beta", "alp", "gamma", "alpine"}
	for i, w := range words {
		tr.Insert(w, i)
	}
	var got []string
	tr.AscendPrefixFunc("alp",
		func(k string) bool { return len(k) >= 3 && k[:3] == "alp" },
		func(k string, _ []int) bool {
			got = append(got, k)
			return true
		})
	want := []string{"alp", "alpha", "alphabet", "alpine"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan = %v, want %v", got, want)
		}
	}
}

// Property: a tree behaves exactly like a reference map across a random
// mixed workload of inserts and deletes.
func TestQuickAgainstReferenceMap(t *testing.T) {
	f := func(ops []int16) bool {
		tr := NewWithOrder[int, int](intCmp, 6)
		ref := make(map[int][]int)
		seq := 0
		for _, op := range ops {
			k := int(op) % 64
			if op%3 == 0 && len(ref[k]) > 0 {
				tr.DeleteKey(k)
				delete(ref, k)
				continue
			}
			tr.Insert(k, seq)
			ref[k] = append(ref[k], seq)
			seq++
		}
		// Compare every key.
		for k, want := range ref {
			got := tr.Get(k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		// Tree must not invent keys.
		if tr.Keys() != len(ref) {
			return false
		}
		// Ascend order must be sorted and complete.
		var keys []int
		tr.Ascend(func(k int, _ []int) bool { keys = append(keys, k); return true })
		return sort.IntsAreSorted(keys) && len(keys) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: range scans agree with a sorted reference slice.
func TestQuickRangeScan(t *testing.T) {
	f := func(keys []uint8, lo, hi uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := NewWithOrder[int, int](intCmp, 4)
		seen := make(map[int]bool)
		for _, k := range keys {
			if !seen[int(k)] {
				tr.Insert(int(k), int(k))
				seen[int(k)] = true
			}
		}
		var want []int
		for k := range seen {
			if k >= int(lo) && k <= int(hi) {
				want = append(want, k)
			}
		}
		sort.Ints(want)
		var got []int
		tr.AscendRange(int(lo), int(hi), func(k int, _ []int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New[int, int](intCmp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(i, i)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	tr := New[int, int](intCmp)
	r := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(r.Int(), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int, int](intCmp)
	for i := 0; i < 100000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(i % 100000)
	}
}

// TestBuilderMatchesInsert builds trees of many sizes and orders via the
// bulk Builder and verifies they are indistinguishable from insert-built
// trees: same lookups, ranges, ascents, and continued mutability.
func TestBuilderMatchesInsert(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	for _, order := range []int{4, 8, 64} {
		for _, n := range []int{0, 1, 2, 3, 5, 17, 64, 65, 1000} {
			b := NewBuilder[int, int](cmp, order)
			want := NewWithOrder[int, int](cmp, order)
			for k := 0; k < n; k++ {
				vals := []int{k * 10}
				if k%3 == 0 {
					vals = append(vals, k*10+1)
				}
				b.Append(k*2, vals)
				for _, v := range vals {
					want.Insert(k*2, v)
				}
			}
			got := b.Tree()
			if got.Keys() != want.Keys() || got.Len() != want.Len() {
				t.Fatalf("order=%d n=%d: keys/len = %d/%d, want %d/%d",
					order, n, got.Keys(), got.Len(), want.Keys(), want.Len())
			}
			for k := -1; k <= n*2+1; k++ {
				g, w := got.Get(k), want.Get(k)
				if len(g) != len(w) {
					t.Fatalf("order=%d n=%d: Get(%d) = %v, want %v", order, n, k, g, w)
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("order=%d n=%d: Get(%d) = %v, want %v", order, n, k, g, w)
					}
				}
			}
			var ks []int
			got.Ascend(func(k int, _ []int) bool { ks = append(ks, k); return true })
			for i := 1; i < len(ks); i++ {
				if ks[i-1] >= ks[i] {
					t.Fatalf("order=%d n=%d: ascend out of order at %d", order, n, i)
				}
			}
			if len(ks) != n {
				t.Fatalf("order=%d n=%d: ascend saw %d keys", order, n, len(ks))
			}
			// The built tree must keep accepting inserts and deletes.
			got.Insert(1, 999) // odd key, never built
			if vs := got.Get(1); len(vs) != 1 || vs[0] != 999 {
				t.Fatalf("order=%d n=%d: post-build insert lost", order, n)
			}
			if n > 2 {
				if removed := got.DeleteKey(2); removed == 0 {
					t.Fatalf("order=%d n=%d: post-build delete found nothing", order, n)
				}
				if got.Get(2) != nil {
					t.Fatalf("order=%d n=%d: deleted key still present", order, n)
				}
			}
		}
	}
}
