// Package btree provides an in-memory B+tree used for the engine's
// secondary indexes (the NETMARK "NETMARK generated schema" keeps B-tree
// indexes on NODENAME, NODETYPE and DOC_ID, and the catalog rebuilds them
// from the heap on open).
//
// Keys are ordered by a caller-supplied comparison; duplicate keys are
// supported, with values accumulated per key in insertion order.  Leaves
// are linked for range scans.
package btree

// Tree is a B+tree from K to a list of V.  It is not safe for concurrent
// use; callers (the ordbms index layer) serialise access.
type Tree[K any, V any] struct {
	cmp    func(a, b K) int
	order  int // max children per interior node
	root   node[K, V]
	height int
	keys   int // distinct key count
	size   int // total value count
}

type node[K any, V any] interface{ isNode() }

type leaf[K any, V any] struct {
	keys []K
	vals [][]V
	next *leaf[K, V]
	prev *leaf[K, V]
}

type interior[K any, V any] struct {
	// keys[i] is the smallest key in children[i+1]'s subtree.
	keys     []K
	children []node[K, V]
}

func (*leaf[K, V]) isNode()     {}
func (*interior[K, V]) isNode() {}

// DefaultOrder is the fan-out used by New.
const DefaultOrder = 64

// New creates an empty tree with the default order.
func New[K any, V any](cmp func(a, b K) int) *Tree[K, V] {
	return NewWithOrder[K, V](cmp, DefaultOrder)
}

// NewWithOrder creates an empty tree with the given maximum fan-out
// (minimum 4).
func NewWithOrder[K any, V any](cmp func(a, b K) int, order int) *Tree[K, V] {
	if order < 4 {
		order = 4
	}
	return &Tree[K, V]{cmp: cmp, order: order, root: &leaf[K, V]{}, height: 1}
}

// Len returns the total number of stored values.
func (t *Tree[K, V]) Len() int { return t.size }

// Keys returns the number of distinct keys.
func (t *Tree[K, V]) Keys() int { return t.keys }

// Height returns the tree height (1 = just a leaf).
func (t *Tree[K, V]) Height() int { return t.height }

// search returns the index of the first key in keys that is >= k, using
// binary search.
func (t *Tree[K, V]) searchKeys(keys []K, k K) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c := t.cmp(keys[mid], k)
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(keys) && t.cmp(keys[lo], k) == 0
	return lo, found
}

// childIndex returns which child of an interior node covers k.
func (t *Tree[K, V]) childIndex(n *interior[K, V], k K) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cmp(n.keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds v under k.
func (t *Tree[K, V]) Insert(k K, v V) {
	splitKey, right := t.insert(t.root, k, v)
	if right != nil {
		newRoot := &interior[K, V]{
			keys:     []K{splitKey},
			children: []node[K, V]{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
	t.size++
}

// insert descends to the leaf, inserts, and propagates splits upward.
// Returns a non-nil right sibling and its separator key when n split.
func (t *Tree[K, V]) insert(n node[K, V], k K, v V) (K, node[K, V]) {
	var zero K
	switch n := n.(type) {
	case *leaf[K, V]:
		i, found := t.searchKeys(n.keys, k)
		if found {
			n.vals[i] = append(n.vals[i], v)
			return zero, nil
		}
		n.keys = append(n.keys, zero)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []V{v}
		t.keys++
		if len(n.keys) < t.order {
			return zero, nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &leaf[K, V]{
			keys: append([]K(nil), n.keys[mid:]...),
			vals: append([][]V(nil), n.vals[mid:]...),
			next: n.next,
			prev: n,
		}
		if n.next != nil {
			n.next.prev = right
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = right
		return right.keys[0], right

	case *interior[K, V]:
		ci := t.childIndex(n, k)
		splitKey, newChild := t.insert(n.children[ci], k, v)
		if newChild == nil {
			return zero, nil
		}
		n.keys = append(n.keys, zero)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = splitKey
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = newChild
		if len(n.children) <= t.order {
			return zero, nil
		}
		// Split interior.
		midKey := len(n.keys) / 2
		up := n.keys[midKey]
		right := &interior[K, V]{
			keys:     append([]K(nil), n.keys[midKey+1:]...),
			children: append([]node[K, V](nil), n.children[midKey+1:]...),
		}
		n.keys = n.keys[:midKey:midKey]
		n.children = n.children[: midKey+1 : midKey+1]
		return up, right
	}
	return zero, nil
}

// Get returns the values stored under k (nil when absent).  The returned
// slice must not be modified.
func (t *Tree[K, V]) Get(k K) []V {
	l, i, found := t.findLeaf(k)
	if !found {
		return nil
	}
	return l.vals[i]
}

// Contains reports whether k is present.
func (t *Tree[K, V]) Contains(k K) bool {
	_, _, found := t.findLeaf(k)
	return found
}

func (t *Tree[K, V]) findLeaf(k K) (*leaf[K, V], int, bool) {
	n := t.root
	for {
		switch nn := n.(type) {
		case *interior[K, V]:
			n = nn.children[t.childIndex(nn, k)]
		case *leaf[K, V]:
			i, found := t.searchKeys(nn.keys, k)
			return nn, i, found
		}
	}
}

// Delete removes all values equal to v (per eq) under k.  It returns the
// number of values removed.  Keys left empty are removed from the leaf;
// structural rebalancing is deliberately lazy (nodes are not merged),
// which keeps deletes O(log n) and is harmless for index workloads where
// deletes are a small fraction of inserts.
func (t *Tree[K, V]) Delete(k K, eq func(V) bool) int {
	l, i, found := t.findLeaf(k)
	if !found {
		return 0
	}
	kept := l.vals[i][:0]
	removed := 0
	for _, v := range l.vals[i] {
		if eq(v) {
			removed++
		} else {
			kept = append(kept, v)
		}
	}
	l.vals[i] = kept
	t.size -= removed
	if len(kept) == 0 {
		copy(l.keys[i:], l.keys[i+1:])
		l.keys = l.keys[:len(l.keys)-1]
		copy(l.vals[i:], l.vals[i+1:])
		l.vals = l.vals[:len(l.vals)-1]
		t.keys--
	}
	return removed
}

// DeleteKey removes a key and all its values, returning how many values
// were removed.
func (t *Tree[K, V]) DeleteKey(k K) int {
	return t.Delete(k, func(V) bool { return true })
}

// Ascend walks keys in ascending order calling fn(k, values); returning
// false stops the walk.
func (t *Tree[K, V]) Ascend(fn func(k K, vals []V) bool) {
	l := t.firstLeaf()
	for l != nil {
		for i, k := range l.keys {
			if !fn(k, l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

// AscendRange walks keys in [lo, hi] inclusive.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, vals []V) bool) {
	l, i, _ := t.findLeaf(lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if t.cmp(l.keys[i], hi) > 0 {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// AscendPrefixFunc walks keys starting at lo while pred(k) holds.  It is
// used for string-prefix scans.
func (t *Tree[K, V]) AscendPrefixFunc(lo K, pred func(k K) bool, fn func(k K, vals []V) bool) {
	l, i, _ := t.findLeaf(lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if !pred(l.keys[i]) {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

func (t *Tree[K, V]) firstLeaf() *leaf[K, V] {
	n := t.root
	for {
		switch nn := n.(type) {
		case *interior[K, V]:
			n = nn.children[0]
		case *leaf[K, V]:
			return nn
		}
	}
}

// Min returns the smallest key (ok=false when empty).
func (t *Tree[K, V]) Min() (K, bool) {
	l := t.firstLeaf()
	var zero K
	if len(l.keys) == 0 {
		return zero, false
	}
	return l.keys[0], true
}

// Max returns the largest key (ok=false when empty).
func (t *Tree[K, V]) Max() (K, bool) {
	n := t.root
	for {
		switch nn := n.(type) {
		case *interior[K, V]:
			n = nn.children[len(nn.children)-1]
		case *leaf[K, V]:
			var zero K
			if len(nn.keys) == 0 {
				// Lazy deletion can empty a leaf that still hangs off an
				// interior node; fall back to a full walk.
				var last K
				ok := false
				t.Ascend(func(k K, _ []V) bool { last, ok = k, true; return true })
				if !ok {
					return zero, false
				}
				return last, true
			}
			return nn.keys[len(nn.keys)-1], true
		}
	}
}

// Builder constructs a tree from keys fed in strictly ascending order in
// O(n), bypassing per-insert descent, splits, and copying.  Snapshot
// loaders use it: checkpointed indexes are serialised in tree order, so
// reloading them need not pay n log n re-insertion.
type Builder[K any, V any] struct {
	cmp   func(a, b K) int
	order int
	fill  int // keys per leaf / children per interior while building
	leaf  *leaf[K, V]
	prev  *leaf[K, V]
	// level 0 collects (minKey, leaf) pairs; build folds them upward.
	minKeys []K
	nodes   []node[K, V]
	keys    int
	size    int
}

// NewBuilder starts a bulk build with the given comparison and order
// (minimum 4, as NewWithOrder).
func NewBuilder[K any, V any](cmp func(a, b K) int, order int) *Builder[K, V] {
	if order < 4 {
		order = 4
	}
	// Three-quarter fill leaves room for later inserts without immediate
	// splits while keeping the tree shallow.
	fill := (order * 3) / 4
	if fill < 2 {
		fill = 2
	}
	return &Builder[K, V]{cmp: cmp, order: order, fill: fill}
}

// Append adds the next key with its values.  Keys must arrive in strictly
// ascending order; vals is retained (not copied) exactly as Insert would
// have accumulated it.
func (b *Builder[K, V]) Append(k K, vals []V) {
	if b.leaf == nil {
		b.leaf = &leaf[K, V]{
			keys: make([]K, 0, b.fill),
			vals: make([][]V, 0, b.fill),
			prev: b.prev,
		}
		if b.prev != nil {
			b.prev.next = b.leaf
		}
		b.minKeys = append(b.minKeys, k)
		b.nodes = append(b.nodes, b.leaf)
	}
	b.leaf.keys = append(b.leaf.keys, k)
	b.leaf.vals = append(b.leaf.vals, vals)
	b.keys++
	b.size += len(vals)
	if len(b.leaf.keys) == b.fill {
		b.prev = b.leaf
		b.leaf = nil
	}
}

// Tree finishes the build and returns the tree.  The builder must not be
// used afterwards.
func (b *Builder[K, V]) Tree() *Tree[K, V] {
	t := &Tree[K, V]{cmp: b.cmp, order: b.order, keys: b.keys, size: b.size}
	if len(b.nodes) == 0 {
		t.root = &leaf[K, V]{}
		t.height = 1
		return t
	}
	minKeys, nodes := b.minKeys, b.nodes
	t.height = 1
	for len(nodes) > 1 {
		var upKeys []K
		var upNodes []node[K, V]
		for i := 0; i < len(nodes); {
			end := i + b.fill
			if end > len(nodes) {
				end = len(nodes)
			}
			if len(nodes)-end == 1 {
				// Never leave a single orphan child for the final chunk: an
				// interior node needs at least two children (fill >= 3, so
				// this chunk keeps at least two as well).
				end--
			}
			in := &interior[K, V]{
				keys:     append([]K(nil), minKeys[i+1:end]...),
				children: append([]node[K, V](nil), nodes[i:end]...),
			}
			upKeys = append(upKeys, minKeys[i])
			upNodes = append(upNodes, in)
			i = end
		}
		minKeys, nodes = upKeys, upNodes
		t.height++
	}
	t.root = nodes[0]
	return t
}
