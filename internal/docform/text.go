package docform

import (
	"strings"

	"netmark/internal/sgml"
)

// textConverter upmarks plain-text reports — the substitute for the
// paper's PDF text extraction.  It recognises the heading conventions of
// enterprise reports:
//
//	ALL-CAPS LINES
//	1. Numbered headings      (also 2.3, 4.1.2 Heading)
//	Underlined headings
//	=====================
//
// Form feeds are treated as page breaks and dropped.
type textConverter struct{}

func (textConverter) Name() string           { return "text" }
func (textConverter) Extensions() []string   { return []string{"txt", "text", "rpt", "report"} }
func (textConverter) Sniff(data []byte) bool { return looksPrintable(data) }

func (textConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	text := strings.ReplaceAll(string(data), "\f", "\n")
	lines := strings.Split(text, "\n")
	doc := newDocument("")

	var content *sgml.Node
	var para []string
	flushPara := func() {
		if len(para) == 0 {
			return
		}
		if content == nil {
			content = section(doc, "Preamble", 0)
		}
		addPara(content, strings.Join(para, " "))
		para = para[:0]
	}

	for i := 0; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			flushPara()
			continue
		}
		// Underlined heading: a line followed by ==== or ----.
		if i+1 < len(lines) {
			u := strings.TrimSpace(lines[i+1])
			if len(u) >= 3 && (strings.Trim(u, "=") == "" || strings.Trim(u, "-") == "") && len(trimmed) <= 100 {
				flushPara()
				content = section(doc, trimmed, 1)
				i++ // skip underline
				continue
			}
		}
		if h, lvl := headingFromLine(trimmed); h != "" {
			flushPara()
			content = section(doc, h, lvl)
			continue
		}
		para = append(para, trimmed)
	}
	flushPara()
	if doc.FirstChild == nil {
		section(doc, name, 0)
	}
	// Title: first section heading.
	if ctx := doc.Find("context"); ctx != nil {
		doc.SetAttr("title", ctx.Text())
	}
	return doc, nil
}

// headingFromLine returns the heading text and level when the line looks
// like a heading, or "".
func headingFromLine(line string) (string, int) {
	// Numbered: "3. Title", "2.1 Title", "4.1.2. Title".
	if h, depth := splitNumberedHeading(line); h != "" {
		return h, depth
	}
	// ALL CAPS (at least 3 letters, no lowercase, not too long).
	if len(line) <= 80 {
		letters, lower := 0, 0
		for _, r := range line {
			switch {
			case r >= 'a' && r <= 'z':
				lower++
			case r >= 'A' && r <= 'Z':
				letters++
			}
		}
		if letters >= 3 && lower == 0 {
			return strings.TrimSpace(line), 1
		}
	}
	return "", 0
}

func splitNumberedHeading(line string) (string, int) {
	i := 0
	depth := 0
	for i < len(line) {
		// A run of digits...
		start := i
		for i < len(line) && line[i] >= '0' && line[i] <= '9' {
			i++
		}
		if i == start {
			return "", 0
		}
		depth++
		// ...optionally followed by a dot and either more digits or the
		// heading text.
		if i < len(line) && line[i] == '.' {
			i++
			if i < len(line) && line[i] >= '0' && line[i] <= '9' {
				continue
			}
		}
		break
	}
	rest := strings.TrimSpace(line[i:])
	// The remainder must look like a title: non-empty, reasonably short,
	// starts with a letter.
	if rest == "" || len(rest) > 100 {
		return "", 0
	}
	r := rune(rest[0])
	if !(r >= 'A' && r <= 'Z') && !(r >= 'a' && r <= 'z') {
		return "", 0
	}
	// Reject sentences that merely start with a number ("5 of the 12
	// engines..."): require either the dot form ("1. Title") or a
	// capitalised short phrase.
	if !strings.Contains(line[:i], ".") && (len(strings.Fields(rest)) > 8 || !(r >= 'A' && r <= 'Z')) {
		return "", 0
	}
	return rest, depth
}
