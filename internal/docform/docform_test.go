package docform

import (
	"strings"
	"testing"

	"netmark/internal/sgml"
)

// sections returns (context, content-text) pairs from a converted doc.
func sections(doc *sgml.Node) [][2]string {
	var out [][2]string
	for _, sec := range doc.FindAll("section") {
		ctx := sec.Find("context")
		content := sec.Find("content")
		var c, b string
		if ctx != nil {
			c = ctx.Text()
		}
		if content != nil {
			b = content.Text()
		}
		out = append(out, [2]string{c, b})
	}
	return out
}

func TestHTMLConvertSections(t *testing.T) {
	html := `<html><head><title>Test Report</title></head><body>
	<h1>Introduction</h1><p>This paper describes systems.</p>
	<h2>Budget</h2><p>Total of $4M requested.</p><table><tr><td>q1</td></tr></table>
	<h2>Conclusions</h2><p>It works.</p>
	</body></html>`
	doc, meta, err := Convert("report.html", []byte(html))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "html" || meta.Title != "Test Report" {
		t.Fatalf("meta = %+v", meta)
	}
	secs := sections(doc)
	if len(secs) != 3 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0][0] != "Introduction" || !strings.Contains(secs[0][1], "describes systems") {
		t.Fatalf("intro = %v", secs[0])
	}
	if secs[1][0] != "Budget" || !strings.Contains(secs[1][1], "$4M") {
		t.Fatalf("budget = %v", secs[1])
	}
	// Table markup survives for SIMULATION classification.
	if doc.Find("table") == nil {
		t.Fatal("table dropped during upmark")
	}
}

func TestHTMLPreambleOnlyWhenContentPrecedesHeading(t *testing.T) {
	doc, _, err := Convert("x.html", []byte(`<html><body><p>front</p><h1>A</h1><p>body</p></body></html>`))
	if err != nil {
		t.Fatal(err)
	}
	secs := sections(doc)
	if len(secs) != 2 || secs[0][0] != "Preamble" {
		t.Fatalf("sections = %v", secs)
	}
	doc2, _, err := Convert("y.html", []byte(`<html><body><h1>A</h1><p>body</p></body></html>`))
	if err != nil {
		t.Fatal(err)
	}
	secs2 := sections(doc2)
	if len(secs2) != 1 || secs2[0][0] != "A" {
		t.Fatalf("no-preamble sections = %v", secs2)
	}
}

func TestHTMLNestedContainers(t *testing.T) {
	doc, _, err := Convert("n.html", []byte(
		`<html><body><div><h2>Inside Div</h2><p>text</p></div></body></html>`))
	if err != nil {
		t.Fatal(err)
	}
	secs := sections(doc)
	if len(secs) != 1 || secs[0][0] != "Inside Div" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestTextConvertHeadingHeuristics(t *testing.T) {
	src := `PROPOSAL SUMMARY

This proposal requests funding.

1. Technical Approach

We will build a system.

2.1 Schedule

Six months.

Risk Assessment
===============

Low overall risk.
`
	doc, meta, err := Convert("prop.txt", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "text" {
		t.Fatalf("format = %s", meta.Format)
	}
	secs := sections(doc)
	var heads []string
	for _, s := range secs {
		heads = append(heads, s[0])
	}
	want := []string{"PROPOSAL SUMMARY", "Technical Approach", "Schedule", "Risk Assessment"}
	if len(heads) != len(want) {
		t.Fatalf("headings = %v, want %v", heads, want)
	}
	for i := range want {
		if heads[i] != want[i] {
			t.Fatalf("headings = %v, want %v", heads, want)
		}
	}
	if !strings.Contains(secs[2][1], "Six months") {
		t.Fatalf("schedule content = %q", secs[2][1])
	}
}

func TestTextNumberedHeadingNotSentence(t *testing.T) {
	src := "INTRO\n\n5 of the 12 engines failed during testing phases across the year.\n"
	doc, _, err := Convert("r.txt", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	secs := sections(doc)
	if len(secs) != 1 {
		t.Fatalf("sentence mistaken for heading: %v", secs)
	}
}

func TestRTFConvert(t *testing.T) {
	rtf := `{\rtf1\ansi
{\fonttbl{\f0 Times New Roman;}}
{\b Executive Summary}\par
This document summarises the {\b key} findings.\par
{\b Budget Details}\par
We request \'244M for the program.\par
}`
	doc, meta, err := Convert("memo.rtf", []byte(rtf))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "rtf" {
		t.Fatalf("format = %s", meta.Format)
	}
	secs := sections(doc)
	if len(secs) != 2 {
		t.Fatalf("sections = %v", secs)
	}
	if secs[0][0] != "Executive Summary" || secs[1][0] != "Budget Details" {
		t.Fatalf("headings = %v", secs)
	}
	if !strings.Contains(secs[1][1], "$4M") {
		t.Fatalf("hex escape lost: %q", secs[1][1])
	}
	// Inline bold inside a body paragraph becomes <intense>, not a
	// heading.
	if doc.Find("intense") == nil {
		t.Fatal("inline bold lost")
	}
}

func TestRTFFontSizeHeading(t *testing.T) {
	rtf := `{\rtf1
{\fs36 Large Title}\par
\fs24 Body text at normal size here, long enough to dominate the size histogram of the document.\par
More body text to reinforce the base size calculation.\par
}`
	doc, _, err := Convert("m.rtf", []byte(rtf))
	if err != nil {
		t.Fatal(err)
	}
	secs := sections(doc)
	if len(secs) == 0 || secs[0][0] != "Large Title" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestRTFDestinationGroupsSkipped(t *testing.T) {
	rtf := `{\rtf1{\fonttbl{\f0 Helvetica;}}{\info{\author Secret}}Body only.\par}`
	doc, _, err := Convert("d.rtf", []byte(rtf))
	if err != nil {
		t.Fatal(err)
	}
	text := doc.Text()
	if strings.Contains(text, "Helvetica") || strings.Contains(text, "Secret") {
		t.Fatalf("destination group leaked: %q", text)
	}
	if !strings.Contains(text, "Body only.") {
		t.Fatalf("body lost: %q", text)
	}
}

func TestRTFUnicodeEscape(t *testing.T) {
	rtf := `{\rtf1 {\b Title}\par Range \u8211 ? is \u176 ?C wide.\par}`
	doc, _, err := Convert("u.rtf", []byte(rtf))
	if err != nil {
		t.Fatal(err)
	}
	text := doc.Text()
	if !strings.Contains(text, "\u2013") || !strings.Contains(text, "\u00b0C") {
		t.Fatalf("unicode escapes lost: %q", text)
	}
}

func TestSlidesAsteriskBullets(t *testing.T) {
	deck := "=== Topics\n* first\n* second\n"
	doc, _, err := Convert("d.slides", []byte(deck))
	if err != nil {
		t.Fatal(err)
	}
	items := doc.FindAll("item")
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
}

func TestTextFormFeedPageBreaks(t *testing.T) {
	src := "PAGE ONE\n\nbody one\n\fPAGE TWO\n\nbody two\n"
	doc, _, err := Convert("p.txt", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	secs := sections(doc)
	if len(secs) != 2 || secs[0][0] != "PAGE ONE" || secs[1][0] != "PAGE TWO" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestCSVConvert(t *testing.T) {
	csvData := `Title,Division,Amount
Mars Probe,Science,4000000
Station Module,Engineering,9500000`
	doc, meta, err := Convert("proposals.csv", []byte(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "csv" {
		t.Fatalf("format = %s", meta.Format)
	}
	recs := doc.FindAll("record")
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	secs := sections(doc)
	if len(secs) != 6 {
		t.Fatalf("sections = %d (%v)", len(secs), secs)
	}
	// Context=Division must pair with the right values.
	var divisions []string
	for _, s := range secs {
		if s[0] == "Division" {
			divisions = append(divisions, s[1])
		}
	}
	if len(divisions) != 2 || divisions[0] != "Science" || divisions[1] != "Engineering" {
		t.Fatalf("divisions = %v", divisions)
	}
}

func TestCSVRaggedRows(t *testing.T) {
	csvData := "a,b,c\n1,2\n3,4,5,6\n"
	doc, _, err := Convert("r.csv", []byte(csvData))
	if err != nil {
		t.Fatal(err)
	}
	recs := doc.FindAll("record")
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// Extra cells get synthesized column names.
	secs := sections(doc)
	foundSynth := false
	for _, s := range secs {
		if s[0] == "column4" {
			foundSynth = true
		}
	}
	if !foundSynth {
		t.Fatalf("ragged extra column lost: %v", secs)
	}
}

func TestSlidesConvert(t *testing.T) {
	deck := `=== Mission Overview
- Launch in 2027
- Two year cruise
Notes on trajectory.

=== Risks
- Radiation exposure
- Budget overrun`
	doc, meta, err := Convert("brief.slides", []byte(deck))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "slides" {
		t.Fatalf("format = %s", meta.Format)
	}
	secs := sections(doc)
	if len(secs) != 2 || secs[0][0] != "Mission Overview" || secs[1][0] != "Risks" {
		t.Fatalf("sections = %v", secs)
	}
	if !strings.Contains(secs[0][1], "Launch in 2027") || !strings.Contains(secs[0][1], "trajectory") {
		t.Fatalf("slide content = %q", secs[0][1])
	}
	items := doc.FindAll("item")
	if len(items) != 4 {
		t.Fatalf("items = %d", len(items))
	}
}

func TestXMLPassThrough(t *testing.T) {
	src := `<?xml version="1.0"?><inventory><part id="1"><name>Valve</name></part></inventory>`
	doc, meta, err := Convert("parts.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != "xml" {
		t.Fatalf("format = %s", meta.Format)
	}
	if doc.Find("inventory") == nil && doc.Name != "document" {
		t.Fatal("xml structure lost")
	}
	if doc.Find("part") == nil {
		t.Fatal("part element lost")
	}
}

func TestXMLNormalizedPassThrough(t *testing.T) {
	src := `<document title="Pre"><section><context>A</context><content><para>x</para></content></section></document>`
	doc, meta, err := Convert("pre.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "document" {
		t.Fatalf("root = %s", doc.Name)
	}
	if meta.Title != "Pre" {
		t.Fatalf("title = %s", meta.Title)
	}
	secs := sections(doc)
	if len(secs) != 1 || secs[0][0] != "A" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestDetectByExtension(t *testing.T) {
	cases := map[string]string{
		"a.html":   "html",
		"b.rtf":    "rtf",
		"c.csv":    "csv",
		"d.txt":    "text",
		"e.slides": "slides",
		"f.xml":    "xml",
		"g.doc":    "rtf", // .doc routed to the Word substitute
	}
	for name, want := range cases {
		c, err := Detect(name, []byte("x,y\n1,2\n"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != want {
			t.Fatalf("Detect(%s) = %s, want %s", name, c.Name(), want)
		}
	}
}

func TestDetectBySniffing(t *testing.T) {
	cases := []struct {
		data string
		want string
	}{
		{`{\rtf1 hello}`, "rtf"},
		{`<!DOCTYPE html><html></html>`, "html"},
		{`<?xml version="1.0"?><r/>`, "xml"},
		{"=== Slide\n- b", "slides"},
		{"col1,col2\nv1,v2\n", "csv"},
		{"just plain prose with no structure", "text"},
	}
	for _, c := range cases {
		conv, err := Detect("unknown.bin", []byte(c.data))
		if err != nil {
			t.Fatalf("%q: %v", c.data, err)
		}
		if conv.Name() != c.want {
			t.Fatalf("Detect(%q) = %s, want %s", c.data, conv.Name(), c.want)
		}
	}
}

func TestDetectRejectsBinary(t *testing.T) {
	if _, err := Detect("blob.bin", []byte{0, 1, 2, 3, 0xFF, 0, 0}); err == nil {
		t.Fatal("binary garbage accepted")
	}
}

func TestEveryConverterSurvivesEmptyInput(t *testing.T) {
	for _, name := range []string{"a.html", "a.rtf", "a.csv", "a.txt", "a.slides", "a.xml"} {
		conv, err := Detect(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		doc, err := conv.Convert(name, nil)
		if name == "a.xml" {
			// XML requires a root element; error is acceptable.
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if doc == nil {
			t.Fatalf("%s: nil doc", name)
		}
	}
}

func TestConvertProducesUniformShape(t *testing.T) {
	// Every upmarking converter must emit <document> with sections
	// carrying <context> before <content> — the invariant the store's
	// traversal relies on.
	inputs := map[string]string{
		"a.html":   `<html><body><h1>H</h1><p>b</p></body></html>`,
		"a.txt":    "HEADING\n\nbody\n",
		"a.rtf":    `{\rtf1 {\b H}\par body\par}`,
		"a.csv":    "c1,c2\nv1,v2\n",
		"a.slides": "=== H\n- b\n",
	}
	for name, data := range inputs {
		doc, _, err := Convert(name, []byte(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if doc.Name != "document" {
			t.Fatalf("%s root = %s", name, doc.Name)
		}
		for _, sec := range doc.FindAll("section") {
			kids := sec.ChildElements()
			if len(kids) < 2 || kids[0].Name != "context" || kids[1].Name != "content" {
				t.Fatalf("%s: malformed section %v", name, kids)
			}
		}
	}
}
