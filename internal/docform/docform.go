// Package docform implements NETMARK's automated "upmark" stage: "We
// have developed parsers for a wide variety of document formats (such as
// Word, PDF, HTML, Powerpoint and others) that automatically structure
// and 'upmark' a document into XML based on the formatting information in
// the document" (§4).
//
// Proprietary binary formats are substituted with open equivalents that
// carry the same formatting signals the paper's parsers exploit:
//
//	HTML        -> heading tags (h1..h6)
//	RTF subset  -> bold/large-font runs (the Word substitute)
//	Plain text  -> ALL-CAPS / numbered / underlined headings (the PDF
//	               text-extraction substitute)
//	CSV         -> header row + records (the spreadsheet substitute)
//	Slide text  -> slide-per-heading decks (the PowerPoint substitute)
//	XML         -> stored as-is (schema-less generic path)
//
// Every converter emits the same normalized shape — sections of
// <context> (the heading) and <content> (what follows it) — which is
// exactly the structure NETMARK's context/content search operates on.
package docform

import (
	"fmt"
	"path/filepath"
	"strings"

	"netmark/internal/sgml"
)

// Meta is what the DOC table stores about a converted document.
type Meta struct {
	FileName string
	Format   string
	Title    string
	Size     int
}

// Converter turns one source format into the normalized document tree.
type Converter interface {
	// Name is the short format name stored in the DOC table.
	Name() string
	// Extensions lists filename extensions (without dot) this converter
	// claims.
	Extensions() []string
	// Sniff reports whether the content looks like this format.
	Sniff(data []byte) bool
	// Convert parses data into a document tree.  The returned node is
	// the <document> element.
	Convert(name string, data []byte) (*sgml.Node, error)
}

// converters in registration order; order matters for sniffing
// (more specific formats first).
var converters []Converter

// Register appends a converter to the registry.
func Register(c Converter) { converters = append(converters, c) }

func init() {
	Register(rtfConverter{})
	Register(htmlConverter{})
	Register(xmlConverter{})
	Register(csvConverter{})
	Register(slideConverter{})
	Register(textConverter{}) // fallback: sniffs everything printable
}

// Formats lists the registered format names.
func Formats() []string {
	out := make([]string, len(converters))
	for i, c := range converters {
		out[i] = c.Name()
	}
	return out
}

// Detect picks the converter for a file by extension, then by sniffing.
func Detect(name string, data []byte) (Converter, error) {
	ext := strings.TrimPrefix(strings.ToLower(filepath.Ext(name)), ".")
	if ext != "" {
		for _, c := range converters {
			for _, e := range c.Extensions() {
				if e == ext {
					return c, nil
				}
			}
		}
	}
	for _, c := range converters {
		if c.Sniff(data) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("docform: no converter for %q", name)
}

// Convert detects the format and converts, returning the normalized
// document tree and its metadata.
func Convert(name string, data []byte) (*sgml.Node, Meta, error) {
	c, err := Detect(name, data)
	if err != nil {
		return nil, Meta{}, err
	}
	doc, err := c.Convert(name, data)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("docform: convert %q as %s: %w", name, c.Name(), err)
	}
	meta := Meta{
		FileName: name,
		Format:   c.Name(),
		Title:    documentTitle(doc, name),
		Size:     len(data),
	}
	return doc, meta, nil
}

// documentTitle extracts the title attribute or falls back to the first
// context, then the file name.
func documentTitle(doc *sgml.Node, name string) string {
	if t, ok := doc.Attr("title"); ok && t != "" {
		return t
	}
	if ctx := doc.Find("context"); ctx != nil {
		return ctx.Text()
	}
	return filepath.Base(name)
}

// newDocument builds the normalized <document> element.
func newDocument(title string) *sgml.Node {
	d := sgml.NewElement("document")
	if title != "" {
		d.SetAttr("title", title)
	}
	return d
}

// section appends a <section><context>..</context><content/></section>
// to parent and returns the content element.
func section(parent *sgml.Node, heading string, level int) *sgml.Node {
	sec := sgml.NewElement("section")
	if level > 0 {
		sec.SetAttr("level", fmt.Sprintf("%d", level))
	}
	ctx := sgml.NewElement("context")
	ctx.AppendChild(sgml.NewText(heading))
	sec.AppendChild(ctx)
	content := sgml.NewElement("content")
	sec.AppendChild(content)
	parent.AppendChild(sec)
	return content
}

// addPara appends a <para> with text to content, skipping blanks.
func addPara(content *sgml.Node, text string) {
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	p := sgml.NewElement("para")
	p.AppendChild(sgml.NewText(text))
	content.AppendChild(p)
}

// looksPrintable reports whether data is plausibly text.
func looksPrintable(data []byte) bool {
	if len(data) == 0 {
		return true
	}
	n := len(data)
	if n > 1024 {
		n = 1024
	}
	bad := 0
	for _, b := range data[:n] {
		if b == 0 {
			return false
		}
		if b < 32 && b != '\n' && b != '\r' && b != '\t' && b != '\f' {
			bad++
		}
	}
	return bad*20 < n
}
