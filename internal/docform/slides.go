package docform

import (
	"bytes"
	"strings"

	"netmark/internal/sgml"
)

// slideConverter upmarks slide decks — the PowerPoint substitute.  The
// format is the widely used plain-text deck convention:
//
//	=== Slide Title
//	- bullet one
//	- bullet two
//	  free text
//	=== Next Slide
//
// Each slide title is a CONTEXT; bullets and notes are its content.
type slideConverter struct{}

func (slideConverter) Name() string         { return "slides" }
func (slideConverter) Extensions() []string { return []string{"slides", "ppt", "deck"} }
func (slideConverter) Sniff(data []byte) bool {
	return bytes.HasPrefix(bytes.TrimSpace(head1k(data)), []byte("==="))
}

func (slideConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	doc := newDocument("")
	var content *sgml.Node
	var list *sgml.Node
	slideNo := 0
	for _, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "==="):
			title := strings.TrimSpace(strings.TrimLeft(trimmed, "= "))
			if title == "" {
				title = "(untitled slide)"
			}
			slideNo++
			content = section(doc, title, 1)
			content.Parent.SetAttr("slide", itoa(slideNo))
			list = nil
		case strings.HasPrefix(trimmed, "- "), strings.HasPrefix(trimmed, "* "):
			if content == nil {
				content = section(doc, "Preamble", 0)
			}
			if list == nil {
				list = sgml.NewElement("list")
				content.AppendChild(list)
			}
			item := sgml.NewElement("item")
			item.AppendChild(sgml.NewText(strings.TrimSpace(trimmed[2:])))
			list.AppendChild(item)
		case trimmed == "":
			list = nil
		default:
			if content == nil {
				content = section(doc, "Preamble", 0)
			}
			list = nil
			addPara(content, trimmed)
		}
	}
	if doc.FirstChild == nil {
		section(doc, name, 0)
	}
	if ctx := doc.Find("context"); ctx != nil {
		doc.SetAttr("title", ctx.Text())
	}
	return doc, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
