package docform

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"

	"netmark/internal/sgml"
)

// csvConverter upmarks spreadsheets (the paper: "data that can well be
// stored in spreadsheets").  The header row provides field names; every
// data row becomes a <record> whose cells are context/content sections —
// so a context search for a column name (Context=Division) returns that
// column's values, exactly the relational-to-context mapping the NASA
// applications rely on.
type csvConverter struct{}

func (csvConverter) Name() string         { return "csv" }
func (csvConverter) Extensions() []string { return []string{"csv", "tsv", "xls"} }
func (csvConverter) Sniff(data []byte) bool {
	head := head1k(data)
	if !looksPrintable(head) {
		return false
	}
	lines := bytes.Split(head, []byte("\n"))
	if len(lines) < 2 {
		return false
	}
	c0 := bytes.Count(lines[0], []byte(","))
	c1 := bytes.Count(lines[1], []byte(","))
	return c0 >= 1 && c0 == c1
}

func (csvConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	comma := ','
	if strings.HasSuffix(strings.ToLower(name), ".tsv") {
		comma = '\t'
	}
	r := csv.NewReader(bytes.NewReader(data))
	r.Comma = comma
	r.FieldsPerRecord = -1 // ragged rows tolerated
	r.LazyQuotes = true
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("docform: csv: %w", err)
	}
	doc := newDocument(name)
	if len(rows) == 0 {
		section(doc, name, 0)
		return doc, nil
	}
	header := rows[0]
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	sheet := sgml.NewElement("sheet")
	sheet.SetAttr("columns", fmt.Sprintf("%d", len(header)))
	doc.AppendChild(sheet)
	for ri, row := range rows[1:] {
		rec := sgml.NewElement("record")
		rec.SetAttr("index", fmt.Sprintf("%d", ri+1))
		sheet.AppendChild(rec)
		for ci, cell := range row {
			col := fmt.Sprintf("column%d", ci+1)
			if ci < len(header) && header[ci] != "" {
				col = header[ci]
			}
			content := section(rec, col, 0)
			addPara(content, cell)
		}
	}
	return doc, nil
}
