package docform

import (
	"bytes"
	"strconv"
	"strings"

	"netmark/internal/sgml"
)

// rtfConverter upmarks a subset of RTF — the stand-in for the paper's
// Word parser.  It exploits the same formatting signals a Word parser
// would: a paragraph rendered entirely bold, or in a font size at least
// four points above the document base, is a heading; everything else is
// body text.
//
// Supported RTF constructs: groups {...}, \par paragraph breaks, \b/\b0
// bold toggles, \fsN font size (half-points), \'hh hex escapes, \u N
// unicode escapes, and the standard destination groups (\fonttbl,
// \colortbl, \info, \stylesheet) which are skipped.
type rtfConverter struct{}

func (rtfConverter) Name() string         { return "rtf" }
func (rtfConverter) Extensions() []string { return []string{"rtf", "doc"} }
func (rtfConverter) Sniff(data []byte) bool {
	return bytes.HasPrefix(bytes.TrimSpace(data), []byte(`{\rtf`))
}

// rtfState is the formatting state stack entry.
type rtfState struct {
	bold     bool
	fontSize int // half-points
	skip     bool
}

// rtfRun is a text run with its formatting.
type rtfRun struct {
	text     string
	bold     bool
	fontSize int
}

func (rtfConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	runsByPara := parseRTF(string(data))

	// Base font size = most common size across runs (0 when unspecified).
	base := baseFontSize(runsByPara)

	doc := newDocument("")
	var content *sgml.Node
	for _, runs := range runsByPara {
		text := strings.TrimSpace(joinRuns(runs))
		if text == "" {
			continue
		}
		if isRTFHeading(runs, base) && len(text) <= 120 {
			content = section(doc, text, 1)
			continue
		}
		if content == nil {
			content = section(doc, "Preamble", 0)
		}
		// Preserve bold runs as <intense> for the INTENSE node class.
		para := sgml.NewElement("para")
		for _, r := range runs {
			t := r.text
			if strings.TrimSpace(t) == "" {
				if t != "" {
					para.AppendChild(sgml.NewText(" "))
				}
				continue
			}
			if r.bold {
				in := sgml.NewElement("intense")
				in.AppendChild(sgml.NewText(t))
				para.AppendChild(in)
			} else {
				para.AppendChild(sgml.NewText(t))
			}
		}
		if para.FirstChild != nil {
			content.AppendChild(para)
		}
	}
	if doc.FirstChild == nil {
		section(doc, name, 0)
	}
	if ctx := doc.Find("context"); ctx != nil {
		doc.SetAttr("title", ctx.Text())
	}
	return doc, nil
}

func joinRuns(runs []rtfRun) string {
	var sb strings.Builder
	for _, r := range runs {
		sb.WriteString(r.text)
	}
	return sb.String()
}

func baseFontSize(paras [][]rtfRun) int {
	counts := map[int]int{}
	for _, runs := range paras {
		for _, r := range runs {
			if strings.TrimSpace(r.text) != "" {
				counts[r.fontSize] += len(r.text)
			}
		}
	}
	best, bestN := 0, -1
	for sz, n := range counts {
		if n > bestN {
			best, bestN = sz, n
		}
	}
	return best
}

// isRTFHeading: every non-space run is bold, or the dominant font size is
// at least 8 half-points above base.
func isRTFHeading(runs []rtfRun, base int) bool {
	anyText := false
	allBold := true
	maxSize := 0
	for _, r := range runs {
		if strings.TrimSpace(r.text) == "" {
			continue
		}
		anyText = true
		if !r.bold {
			allBold = false
		}
		if r.fontSize > maxSize {
			maxSize = r.fontSize
		}
	}
	if !anyText {
		return false
	}
	if allBold {
		return true
	}
	return base > 0 && maxSize >= base+8
}

// rtfDestinations are groups whose content is metadata, not text.
var rtfDestinations = map[string]bool{
	"fonttbl": true, "colortbl": true, "stylesheet": true, "info": true,
	"pict": true, "header": true, "footer": true, "generator": true,
}

// parseRTF tokenizes the RTF source into paragraphs of formatted runs.
func parseRTF(src string) [][]rtfRun {
	var paras [][]rtfRun
	var cur []rtfRun
	var text strings.Builder

	state := rtfState{fontSize: 24} // RTF default: 12pt = 24 half-points
	var stack []rtfState

	flushRun := func() {
		if text.Len() == 0 {
			return
		}
		cur = append(cur, rtfRun{text: text.String(), bold: state.bold, fontSize: state.fontSize})
		text.Reset()
	}
	flushPara := func() {
		flushRun()
		if len(cur) > 0 {
			paras = append(paras, cur)
			cur = nil
		}
	}

	i := 0
	for i < len(src) {
		c := src[i]
		switch c {
		case '{':
			flushRun()
			stack = append(stack, state)
			i++
			// Destination group? peek for \word or \*\word.
			j := i
			if j < len(src) && src[j] == '\\' {
				k := j + 1
				if k < len(src) && src[k] == '*' {
					k++
					if k < len(src) && src[k] == '\\' {
						k++
					}
				}
				w := readWord(src, k)
				if rtfDestinations[w] || (j+1 < len(src) && src[j+1] == '*') {
					state.skip = true
				}
			}
		case '}':
			flushRun()
			if len(stack) > 0 {
				state = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
			i++
		case '\\':
			i++
			if i >= len(src) {
				break
			}
			switch src[i] {
			case '\\', '{', '}':
				if !state.skip {
					text.WriteByte(src[i])
				}
				i++
			case '\'':
				// \'hh hex escape
				if i+2 < len(src) {
					if v, err := strconv.ParseUint(src[i+1:i+3], 16, 8); err == nil && !state.skip {
						text.WriteByte(byte(v))
					}
					i += 3
				} else {
					i = len(src)
				}
			case '~':
				if !state.skip {
					text.WriteByte(' ')
				}
				i++
			default:
				word := readWord(src, i)
				i += len(word)
				// Optional numeric parameter.
				num, numLen, hasNum := readNum(src, i)
				i += numLen
				// A single space after a control word is part of it.
				if i < len(src) && src[i] == ' ' {
					i++
				}
				switch word {
				case "par", "line":
					if !state.skip {
						flushPara()
					}
				case "b":
					flushRun()
					state.bold = !hasNum || num != 0
				case "fs":
					flushRun()
					if hasNum {
						state.fontSize = int(num)
					}
				case "u":
					if hasNum && !state.skip {
						text.WriteRune(rune(num))
					}
					// RTF \u is followed by a fallback char; skip one.
					if i < len(src) && src[i] != '\\' && src[i] != '{' && src[i] != '}' {
						i++
					}
				case "tab":
					if !state.skip {
						text.WriteByte(' ')
					}
				}
			}
		case '\r', '\n':
			i++
		default:
			if !state.skip {
				text.WriteByte(c)
			}
			i++
		}
	}
	flushPara()
	return paras
}

func readWord(src string, i int) string {
	start := i
	for i < len(src) && ((src[i] >= 'a' && src[i] <= 'z') || (src[i] >= 'A' && src[i] <= 'Z')) {
		i++
	}
	return src[start:i]
}

func readNum(src string, i int) (int64, int, bool) {
	start := i
	if i < len(src) && src[i] == '-' {
		i++
	}
	for i < len(src) && src[i] >= '0' && src[i] <= '9' {
		i++
	}
	if i == start || (i == start+1 && src[start] == '-') {
		return 0, 0, false
	}
	v, err := strconv.ParseInt(src[start:i], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return v, i - start, true
}
