package docform

import (
	"bytes"
	"fmt"

	"netmark/internal/sgml"
)

// xmlConverter is the generic schema-less path: arbitrary XML is stored
// as-is with no upmarking — "a means to generically store any XML or
// HTML document without requiring a new schema for a new document
// (type)" (§2.1.1).  Already-normalized documents pass through.
type xmlConverter struct{}

func (xmlConverter) Name() string         { return "xml" }
func (xmlConverter) Extensions() []string { return []string{"xml"} }
func (xmlConverter) Sniff(data []byte) bool {
	head := bytes.TrimSpace(head1k(data))
	return bytes.HasPrefix(head, []byte("<?xml")) ||
		(bytes.HasPrefix(head, []byte("<")) && !bytes.HasPrefix(bytes.ToLower(head), []byte("<!doctype html")))
}

func (xmlConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	tree, err := sgml.ParseString(string(data), sgml.ModeXML)
	if err != nil {
		return nil, err
	}
	// Find the root element (skip prolog).
	var root *sgml.Node
	for c := tree.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == sgml.ElementNode {
			root = c
			break
		}
	}
	if root == nil {
		return nil, fmt.Errorf("docform: %s: no root element", name)
	}
	if root.Name == "document" {
		// Already normalized.
		detach(root)
		return root, nil
	}
	// Wrap the arbitrary tree so downstream code always sees <document>.
	doc := newDocument("")
	if t := root.Find("title"); t != nil {
		doc.SetAttr("title", t.Text())
	} else if t, ok := root.Attr("title"); ok {
		doc.SetAttr("title", t)
	}
	detach(root)
	doc.AppendChild(root)
	return doc, nil
}

func detach(n *sgml.Node) {
	if n.Parent != nil {
		n.Parent.RemoveChild(n)
	}
}
