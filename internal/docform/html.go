package docform

import (
	"bytes"
	"strings"

	"netmark/internal/sgml"
)

// htmlConverter upmarks web documents: each h1..h6 starts a section; the
// nodes between headings become the section content (tables, lists and
// emphasis survive as markup so the store can classify them SIMULATION
// and INTENSE).
type htmlConverter struct{}

func (htmlConverter) Name() string         { return "html" }
func (htmlConverter) Extensions() []string { return []string{"html", "htm", "xhtml"} }
func (htmlConverter) Sniff(data []byte) bool {
	head := bytes.ToLower(head1k(data))
	return bytes.Contains(head, []byte("<!doctype html")) ||
		bytes.Contains(head, []byte("<html")) ||
		bytes.Contains(head, []byte("<body"))
}

func head1k(data []byte) []byte {
	if len(data) > 1024 {
		return data[:1024]
	}
	return data
}

var headingLevel = map[string]int{
	"h1": 1, "h2": 2, "h3": 3, "h4": 4, "h5": 5, "h6": 6,
}

func (htmlConverter) Convert(name string, data []byte) (*sgml.Node, error) {
	tree, err := sgml.ParseString(string(data), sgml.ModeHTML)
	if err != nil {
		return nil, err
	}
	title := ""
	if t := tree.Find("title"); t != nil {
		title = t.Text()
	}
	doc := newDocument(title)

	// The content root is <body> when present, else the whole document.
	body := tree.Find("body")
	if body == nil {
		body = tree
	}

	// Front matter before the first heading goes into an implicit
	// "Preamble" section only if non-empty.
	var content *sgml.Node
	ensureContent := func() *sgml.Node {
		if content == nil {
			content = section(doc, "Preamble", 0)
		}
		return content
	}

	var walk func(n *sgml.Node)
	walk = func(n *sgml.Node) {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == sgml.ElementNode {
				if lvl, isHeading := headingLevel[c.Name]; isHeading {
					heading := c.Text()
					if heading == "" {
						heading = "(untitled)"
					}
					content = section(doc, heading, lvl)
					continue
				}
				switch c.Name {
				case "script", "style", "head", "title":
					continue
				case "div", "span", "main", "article", "header", "footer", "nav":
					// Transparent containers: recurse so nested headings
					// still split sections.
					walk(c)
					continue
				}
				// Content element: clone the subtree into the current
				// section, dropping empty text.
				if strings.TrimSpace(c.Text()) == "" && c.Find("img") == nil {
					continue
				}
				ensureContent().AppendChild(c.Clone())
				continue
			}
			if c.Kind == sgml.TextNode && strings.TrimSpace(c.Data) != "" {
				addPara(ensureContent(), c.Data)
			}
		}
	}
	walk(body)

	if doc.FirstChild == nil {
		// A pathological page with no content at all: preserve the title.
		section(doc, titleOr(title, name), 0)
	}
	return doc, nil
}

func titleOr(title, fallback string) string {
	if title != "" {
		return title
	}
	return fallback
}
