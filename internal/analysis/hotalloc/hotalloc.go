// Package hotalloc enforces the performance tier's core contract: a
// function tagged `netmarkvet:hotpath` — and every module function it
// transitively calls — must not perform hidden heap allocations.  The
// repo's read paths (node-cache hits, posting-list iterator steps,
// FetchView row decodes, SGML serialization) earn their latency by
// staying allocation-free in steady state; one careless make, fmt
// call, or escaping closure silently re-adds a per-hit allocation that
// benchmarks only catch after the fact.
//
// What counts as a hidden allocation is decided by the inference in
// internal/analysis (FuncSummary.Allocs): make and map/slice literals,
// escaping &composites / new / capturing closures, string<->[]byte
// conversions, go statements, known-allocating stdlib calls, and
// fmt.*/errors.* off the error path, plus `append` past a provable
// pre-sized cap.  Sites inside error-handling blocks are exempt, and
// `netmarkvet:allocok — <why>` (line or function doc) is the reasoned
// escape hatch; an allocok'd call also excuses the subtree behind it.
package hotalloc

import (
	"go/token"

	"netmark/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reports hidden heap allocations in netmarkvet:hotpath functions and their module callees",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	summ := pass.Mod.Summaries()
	reported := make(map[token.Pos]bool)
	for _, fs := range hotRoots(pass, summ) {
		root := analysis.DisplayName(fs.Fn)
		for _, site := range fs.Allocs {
			if !reported[site.Pos] {
				reported[site.Pos] = true
				pass.Reportf(site.Pos, "hot path %s performs hidden allocation: %s", root, site.What)
			}
		}
		walkHotCalls(pass, summ, fs, root, make(map[*analysis.FuncSummary]bool), reported)
	}
	return nil
}

// hotRoots returns the hotpath-tagged functions declared in the
// package under analysis, in declaration order.
func hotRoots(pass *analysis.Pass, summ *analysis.Summaries) []*analysis.FuncSummary {
	var roots []*analysis.FuncSummary
	summ.Funcs(func(fs *analysis.FuncSummary) {
		if fs.HotPath && !fs.AllocOK && fs.Pkg == pass.Loaded {
			roots = append(roots, fs)
		}
	})
	sortSummaries(roots)
	return roots
}

func sortSummaries(roots []*analysis.FuncSummary) {
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].Decl.Pos() < roots[j-1].Decl.Pos(); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
}

// walkHotCalls closes over fs's statically resolved module calls,
// reporting each reached callee's allocation sites.  Callees that are
// themselves hotpath roots are skipped (they report under their own
// name); allocok'd callees and severed (allocok'd call) edges are the
// escape hatch.
func walkHotCalls(pass *analysis.Pass, summ *analysis.Summaries, fs *analysis.FuncSummary,
	root string, seen map[*analysis.FuncSummary]bool, reported map[token.Pos]bool) {
	for _, edge := range fs.HotCalls {
		cs := summ.Of(edge.Callee)
		if cs == nil || cs.AllocOK || cs.HotPath || seen[cs] {
			continue
		}
		seen[cs] = true
		for _, site := range cs.Allocs {
			if !reported[site.Pos] {
				reported[site.Pos] = true
				pass.Reportf(site.Pos, "hidden allocation in %s, reached from hot path %s: %s",
					analysis.DisplayName(cs.Fn), root, site.What)
			}
		}
		walkHotCalls(pass, summ, cs, root, seen, reported)
	}
}
