package hotalloc_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, ".", "a", hotalloc.Analyzer)
}
