package a

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

type cache struct {
	slots []uint64
	cb    func() int
}

func check(x int) error {
	if x < 0 {
		return errors.New("negative")
	}
	return nil
}

// —— known good ——————————————————————————————————————————————

// Sum is a flat scalar loop: nothing allocates.
// netmarkvet:hotpath
func Sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// LocalClosure captures xs but is only ever called, so it stays on the
// stack.
// netmarkvet:hotpath
func LocalClosure(xs []int) int {
	f := func(i int) int { return xs[i] }
	return f(0) + f(len(xs)-1)
}

// FillDst appends into a caller-provided slice: the cap is the
// caller's contract, not a hidden growth.
// netmarkvet:hotpath
func FillDst(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// PresizedLocal appends within a cap it made itself — the make is the
// declared warmup allocation.
// netmarkvet:hotpath
func PresizedLocal(n int) int {
	buf := make([]int, 0, n) // netmarkvet:allocok — one-time warmup buffer
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return len(buf)
}

// ErrPath builds its error only after something already went wrong.
// netmarkvet:hotpath
func ErrPath(x int) error {
	if err := check(x); err != nil {
		return fmt.Errorf("check %d: %w", x, err)
	}
	return nil
}

// ErrCase fails out of a switch case: the default clause ends in a
// non-nil error return, so its formatting is an error path too.
// netmarkvet:hotpath
func ErrCase(kind byte, x int) (int, error) {
	switch kind {
	case 0:
		return x, nil
	case 1:
		return -x, nil
	default:
		return 0, fmt.Errorf("unknown kind %d", kind)
	}
}

// SortSearch hands a non-capturing comparison to the stdlib, which
// does not retain it.
// netmarkvet:hotpath
func SortSearch(xs []int, want int) int {
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= want })
}

// StackComposite keeps the composite local: no escape, no alloc.
// netmarkvet:hotpath
func StackComposite(a, b int) int {
	p := struct{ x, y int }{a, b}
	return p.x + p.y
}

// warmSlow is the annotated slow path PresizedHit falls back to; the
// allocok'd call below excuses its whole subtree.
func warmSlow(c *cache) uint64 {
	c.slots = make([]uint64, 16)
	return c.slots[0]
}

// PresizedHit is a cache probe whose miss path is excused.
// netmarkvet:hotpath
func PresizedHit(c *cache) uint64 {
	if len(c.slots) > 0 {
		return c.slots[0]
	}
	return warmSlow(c) // netmarkvet:allocok — cold miss fills the cache once
}

// flatHelper is clean, so calling it transitively is clean.
func flatHelper(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// ViaHelper reaches only allocation-free module code.
// netmarkvet:hotpath
func ViaHelper(xs []uint64) uint64 {
	return flatHelper(xs) + Sum(xs)
}

// —— known bad ———————————————————————————————————————————————

// BadMake allocates on every call.
// netmarkvet:hotpath
func BadMake() []int {
	return make([]int, 8) // want `hot path BadMake performs hidden allocation: make allocates`
}

// BadMapLit allocates a map per call.
// netmarkvet:hotpath
func BadMapLit(k string) int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	return m[k]
}

// BadSliceLit allocates its backing array.
// netmarkvet:hotpath
func BadSliceLit() int {
	xs := []int{1, 2, 3} // want `slice literal allocates`
	return xs[1]
}

// BadConv copies the byte slice into a fresh string.
// netmarkvet:hotpath
func BadConv(b []byte) string {
	return string(b) // want `conversion \[\]byte -> string copies`
}

// BadSprintf formats on the steady-state path.
// netmarkvet:hotpath
func BadSprintf(x int) string {
	return fmt.Sprintf("%d", x) // want `call to fmt.Sprintf allocates`
}

// BadReplacer rebuilds stdlib machinery per call.
// netmarkvet:hotpath
func BadReplacer(s string) string {
	r := strings.NewReplacer("&", "&amp;") // want `call to strings.NewReplacer allocates`
	return r.Replace(s)
}

// BadGrowingAppend has no provable cap.
// netmarkvet:hotpath
func BadGrowingAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want `append beyond a provable pre-sized cap may grow`
	}
	return out
}

// BadEscapingComposite returns a pointer to its literal.
// netmarkvet:hotpath
func BadEscapingComposite(x, y int) *struct{ a, b int } {
	return &struct{ a, b int }{x, y} // want `escaping &composite literal allocates`
}

// BadEscapingClosure stores a capturing closure into a field.
// netmarkvet:hotpath
func BadEscapingClosure(c *cache, x int) {
	c.cb = func() int { return x } // want `escaping capturing closure allocates`
}

// BadGo spawns a goroutine per call.
// netmarkvet:hotpath
func BadGo(ch chan int) {
	go func() { ch <- 1 }() // want `go statement allocates a goroutine`
}

// allocHelper hides the allocation one call away.
func allocHelper(n int) []uint64 {
	return make([]uint64, n) // want `hidden allocation in allocHelper, reached from hot path BadTransitive: make allocates`
}

// BadTransitive reaches allocHelper's make through the module call
// graph.
// netmarkvet:hotpath
func BadTransitive(n int) []uint64 {
	return allocHelper(n)
}
