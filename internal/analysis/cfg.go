package analysis

// Control-flow graphs over go/ast.  The dataflow analyzers (ackorder,
// genbump) need "on every path" / "on some path" answers that the
// source-order LockWalker cannot give: a fact established inside one
// branch must survive the join, and loops must reach a fixed point.
// FuncCFG explodes a function body into basic blocks whose Nodes are
// the simple statements and control expressions in evaluation order;
// analyzers run a worklist over Blocks in reverse postorder.
//
// The graph is deliberately modest:
//
//   - Function literals are NOT inlined; the FuncLit expression appears
//     as a node and analyzers decide whether to recurse.
//   - defer/go statements appear as ordinary nodes at their syntactic
//     position; an analyzer that cares about at-return effects inspects
//     the recorded Defers list.
//   - goto is treated as terminating (edge to Exit) — the repo style
//     bans it, and a conservative edge errs toward silence.
//   - panic(...) and calls to os.Exit / log.Fatal* end their block with
//     an edge to Exit.

import (
	"go/ast"
	"go/types"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // every return/panic path leads here; carries no nodes
	// Defers lists every defer statement in the body (outermost
	// function only, source order).  Deferred calls run on the Exit
	// edge; analyzers that model at-return effects replay these.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal run of straight-line nodes.
type Block struct {
	Index int
	// Nodes holds simple statements (assign, expr, incdec, decl, send,
	// defer, go, return) and the control expressions of branches
	// (if-cond, for-cond, switch-tag, range-x) in evaluation order.
	Nodes []ast.Node
	Succs []*Block
}

type cfgBuilder struct {
	g    *CFG
	cur  *Block // nil while the current point is unreachable
	info *types.Info
	// break/continue targets, innermost last; label "" matches the
	// innermost enclosing loop/switch.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *Block
}

// FuncCFG builds the CFG for a function body.  info may be nil; it is
// only used to recognise terminating calls (os.Exit, log.Fatal*).
func FuncCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, info: info}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.jump(g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump wires the current block to dst and leaves the point unreachable.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock begins dst as the new current block.
func (b *cfgBuilder) startBlock(dst *Block) { b.cur = dst }

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		// An unlabeled break/continue binds to the innermost target
		// (labeled or not); a labeled one walks out to the match.
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return b.g.Exit // unknown label: conservative
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.cur == nil && !isLabeledOrBlock(s) {
		// Unreachable straight-line code: skip (nothing joins back).
		return
	}
	switch v := s.(type) {
	case *ast.BlockStmt:
		if b.cur == nil {
			return
		}
		b.stmts(v.List)
	case *ast.LabeledStmt:
		// Start a fresh block so a labeled loop's break/continue can
		// target it; goto labels are not wired (see package doc).
		next := b.newBlock()
		b.jump(next)
		b.startBlock(next)
		b.stmt(v.Stmt, v.Label.Name)
	case *ast.ReturnStmt:
		b.add(v)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		switch v.Tok.String() {
		case "break":
			b.jump(b.findTarget(b.breaks, labelName(v)))
		case "continue":
			b.jump(b.findTarget(b.continues, labelName(v)))
		case "goto":
			b.jump(b.g.Exit)
		case "fallthrough":
			// Handled by the switch lowering (clause bodies are chained);
			// reaching here means a malformed tree — ignore.
		}
	case *ast.IfStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		b.add(v.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		head.Succs = append(head.Succs, thenB)
		b.startBlock(thenB)
		b.stmts(v.Body.List)
		b.jump(after)
		if v.Else != nil {
			elseB := b.newBlock()
			head.Succs = append(head.Succs, elseB)
			b.startBlock(elseB)
			b.stmt(v.Else, "")
			b.jump(after)
		} else {
			head.Succs = append(head.Succs, after)
		}
		b.startBlock(after)
	case *ast.ForStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if v.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.startBlock(head)
		if v.Cond != nil {
			b.add(v.Cond)
			head.Succs = append(head.Succs, after)
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.pushLoop(label, after, post)
		b.startBlock(body)
		b.stmts(v.Body.List)
		b.popLoop()
		b.jump(post)
		if v.Post != nil {
			b.startBlock(post)
			b.add(v.Post)
			b.jump(head)
		}
		b.startBlock(after)
	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.startBlock(head)
		b.add(v) // the range clause itself (X eval + key/value assign)
		head.Succs = append(head.Succs, after)
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.pushLoop(label, after, head)
		b.startBlock(body)
		b.stmts(v.Body.List)
		b.popLoop()
		b.jump(head)
		b.startBlock(after)
	case *ast.SwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		if v.Tag != nil {
			b.add(v.Tag)
		}
		b.switchClauses(v.Body, label, nil)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		b.switchClauses(v.Body, label, v.Assign)
	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, after})
		any := false
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			clause := b.newBlock()
			head.Succs = append(head.Succs, clause)
			b.startBlock(clause)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmts(cc.Body)
			b.jump(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if !any {
			head.Succs = append(head.Succs, after)
		}
		b.cur = nil
		b.startBlock(after)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, v)
		b.add(v)
	case *ast.ExprStmt:
		b.add(v)
		if b.terminates(v.X) {
			b.jump(b.g.Exit)
		}
	default:
		// Assign, IncDec, Send, Decl, Go, Empty: straight-line.
		b.add(s)
	}
}

// switchClauses lowers (type)switch bodies.  assign is the type-switch
// assign statement, recorded at the head of every clause.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string, assign ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blocks = append(blocks, b.newBlock())
	}
	for i, cc := range clauses {
		head.Succs = append(head.Succs, blocks[i])
		b.startBlock(blocks[i])
		if assign != nil {
			b.add(assign)
		}
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmts(cc.Body)
		if b.cur != nil && i+1 < len(blocks) && endsInFallthrough(cc.Body) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = nil
	b.startBlock(after)
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
	b.continues = append(b.continues, branchTarget{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// terminates reports whether a call expression never returns.
func (b *cfgBuilder) terminates(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		if fn, ok := b.info.ObjectOf(fun.Sel).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln",
				"log.Panic", "log.Panicf", "log.Panicln", "runtime.Goexit":
				return true
			}
		}
	}
	return false
}

func labelName(v *ast.BranchStmt) string {
	if v.Label != nil {
		return v.Label.Name
	}
	return ""
}

func isLabeledOrBlock(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.LabeledStmt:
		return true
	}
	return false
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	if ls, ok := last.(*ast.LabeledStmt); ok {
		last = ls.Stmt
	}
	br, ok := last.(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// RPO returns the blocks reachable from Entry in reverse postorder —
// the iteration order that makes forward dataflow converge fastest.
func (g *CFG) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Preds returns the predecessor lists of every block (indexed like
// Blocks).
func (g *CFG) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}
