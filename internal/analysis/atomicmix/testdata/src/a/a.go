// Package a is the atomicmix golden corpus.
package a

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	ops   uint64 // accessed via sync/atomic: every access must be atomic
	safe  atomic.Uint64
	plain uint64 // never touched atomically: plain access is fine

	mu      sync.Mutex
	guarded uint64 // mutex-guarded, never atomic
}

// --- known good ---------------------------------------------------------

func (c *counters) goodAtomicEverywhere() uint64 {
	atomic.AddUint64(&c.ops, 1)
	return atomic.LoadUint64(&c.ops)
}

func (c *counters) goodWrapperType() uint64 {
	c.safe.Add(1)
	return c.safe.Load()
}

func (c *counters) goodPlainField() uint64 {
	c.plain++
	return c.plain
}

func (c *counters) goodMutexField() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.guarded++
	return c.guarded
}

// --- known bad ----------------------------------------------------------

func (c *counters) badPlainRead() uint64 {
	return c.ops // want `non-atomic access to field ops`
}

func (c *counters) badPlainWrite() {
	c.ops = 0 // want `non-atomic access to field ops`
}

func (c *counters) badPlainIncrement() {
	c.ops++ // want `non-atomic access to field ops`
}
