// Package atomicmix flags mixed atomic/plain access: once any code
// touches a struct field through sync/atomic (atomic.AddUint64(&s.n, 1),
// atomic.LoadUint64(&s.n), …), every access to that field must be
// atomic.  A single plain read of an atomically-written counter is a
// data race and — worse — can tear or be hoisted by the compiler.
// Fields of the sync/atomic wrapper types (atomic.Uint64 etc.) are
// inherently safe and need no checking; this pass exists for the legacy
// &field call style.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"netmark/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "reports non-atomic accesses to fields that are accessed atomically elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find every field whose address flows into a sync/atomic
	// call, and remember those call argument positions as sanctioned.
	atomicFields := make(map[types.Object]token.Pos) // field -> first atomic use
	sanctioned := make(map[*ast.SelectorExpr]bool)   // &x.f inside atomic.*(...)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := info.ObjectOf(sel.Sel)
				if obj == nil || !isStructField(obj) {
					continue
				}
				sanctioned[sel] = true
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = sel.Pos()
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must not exist.
	var diags []analysis.Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			obj := info.ObjectOf(sel.Sel)
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicFields[obj]; isAtomic {
				diags = append(diags, analysis.Diagnostic{
					Pos: sel.Sel.Pos(),
					Message: "non-atomic access to field " + obj.Name() +
						", which is accessed via sync/atomic elsewhere in this package",
				})
			}
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}
