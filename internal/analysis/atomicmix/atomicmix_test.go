package atomicmix_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, ".", "a", atomicmix.Analyzer)
}
