// Package analysis is netmarkvet's in-tree static-analysis framework:
// a deliberately small mirror of the golang.org/x/tools/go/analysis API
// built on nothing but the standard library's go/ast and go/types, so
// the repo's invariant checkers need no external module.  An Analyzer
// receives one fully type-checked package per Run call and reports
// Diagnostics; cmd/netmarkvet drives every registered analyzer over
// every package in the module and fails the build on any finding.
//
// The analyzers communicate with the code they check through comment
// annotations (see CONTRIBUTING.md for the full convention):
//
//	// guarded by <mu>            on a struct field: every access must
//	//                            hold the sibling mutex field <mu>
//	// netmarkvet:hot             on a mutex field: no blocking calls
//	//                            (I/O, channels, sleeps) while held
//	// netmarkvet:lockorder <n>   on a mutex field: acquisition rank;
//	//                            locks must be taken in ascending rank
//	// netmarkvet:cow             on a slice field published to readers
//	//                            copy-on-write: never mutated in place
//	// netmarkvet:mutator         on a function: may reassign cow fields
//	// netmarkvet:persistence     on its own line in a package doc:
//	//                            fsyncrename and vfsonly apply (all
//	//                            file I/O through internal/vfs)
//	// netmarkvet:ignore <names>  on a function: suppress the named
//	//                            analyzers inside it (document why!)
//	// netmarkvet:commit          on a function: makes prior writes
//	//                            durable (WAL sync/commit) — ackorder
//	//                            seed
//	// netmarkvet:mutates         on a function: mutates persistent
//	//                            store state — ackorder seed
//	// netmarkvet:errsink         on a function: passing an error to it
//	//                            counts as handling it (errflow)
//	// netmarkvet:gen <counter>   on a guarded field: mutations must
//	//                            bump the sibling counter before the
//	//                            guard is released (genbump)
//	// netmarkvet:snap            on a field: must be referenced by both
//	//                            snapshot encode and decode (snapcover)
//	// netmarkvet:snap-encode     on a function: snapshot encode root
//	// netmarkvet:snap-decode     on a function: snapshot decode root
//	// netmarkvet:hotpath         on a function: performance-tier root;
//	//                            it and the module functions it calls
//	//                            must stay free of hidden allocations
//	//                            (hotalloc) and interface boxing
//	//                            (boxcheck)
//	// netmarkvet:allocok <why>   on a site's line (or the line above),
//	//                            or a function doc: excuse the
//	//                            allocation — always with a reason
//	// netmarkvet:arena           on a pooled/reused buffer field:
//	//                            aliases derived from it must not be
//	//                            retained past the fill/decode scope
//	//                            (aliascap)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// netmarkvet:ignore annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run checks one package, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Loaded is the package being analyzed; Mod is the module it was
	// loaded with.  The dataflow analyzers reach interprocedural
	// summaries through pass.Mod.Summaries().
	Loaded *Package
	Mod    *Module
	// Report records one finding.  Findings inside a function annotated
	// "netmarkvet:ignore <analyzer>" are dropped by the driver.
	Report func(d Diagnostic)
}

// Reportf is the fmt-style convenience wrapper over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.  Analyzer is filled in by
// RunAnalyzers; Message carries the "analyzer: " prefix after the run
// so existing consumers (analysistest, the text printer) need no
// change.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// RunAnalyzers applies every analyzer to pkg and returns the surviving
// diagnostics sorted by position.  Findings positioned inside a
// function whose doc comment carries "netmarkvet:ignore <name>" (or a
// bare "netmarkvet:ignore") are suppressed — the escape hatch for
// single-goroutine setup paths the intra-procedural passes cannot see.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersTimed(pkg, analyzers, nil)
}

// RunAnalyzersTimed is RunAnalyzers with a per-analyzer duration
// callback (nil to skip timing) — the driver's -v accounting.
func RunAnalyzersTimed(pkg *Package, analyzers []*Analyzer, timed func(name string, d time.Duration)) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg)
	mod := pkg.Mod
	if mod == nil {
		mod = singleton(pkg)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Loaded:    pkg,
			Mod:       mod,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		err := a.Run(pass)
		if timed != nil {
			timed(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			if !ignores.covers(a.Name, d.Pos) {
				out = append(out, Diagnostic{Pos: d.Pos, Message: a.Name + ": " + d.Message, Analyzer: a.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// ignoreSpan is one function body covered by a netmarkvet:ignore.
type ignoreSpan struct {
	start, end token.Pos
	names      map[string]bool // nil = all analyzers
}

type ignoreSet []ignoreSpan

func (s ignoreSet) covers(analyzer string, pos token.Pos) bool {
	for _, sp := range s {
		if pos >= sp.start && pos <= sp.end && (sp.names == nil || sp.names[analyzer]) {
			return true
		}
	}
	return false
}

func collectIgnores(pkg *Package) ignoreSet {
	var out ignoreSet
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			names := parseIgnore(fd.Doc.Text())
			if names == nil {
				continue
			}
			sp := ignoreSpan{start: fd.Pos(), end: fd.End()}
			if len(names) > 0 {
				sp.names = make(map[string]bool, len(names))
				for _, n := range names {
					sp.names[n] = true
				}
			}
			out = append(out, sp)
		}
	}
	return out
}
