// Package vfsonly makes the internal/vfs routing rule a permanent
// gate.  In packages whose doc comment carries `netmarkvet:persistence`,
// every durable file operation must go through a vfs.FS so fault-
// injection tests (FaultFS schedules, the chaos suite) can reach it; a
// direct os.Open/os.Rename/os.WriteFile call is a durable path the
// fault layer cannot see, and whatever failure handling sits behind it
// is untestable.
//
// Only filesystem *operations* are flagged.  Pure classifiers and
// constants — os.IsNotExist, os.IsExist, os.O_CREATE, fs.FileMode —
// carry no I/O and stay legal, as do os.Getenv and friends.  A
// deliberate exception (a path that must bypass the vfs, e.g. opening
// the vfs's own backing file) carries
// `// netmarkvet:ignore vfsonly — <why>` on the enclosing function.
package vfsonly

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the vfsonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "vfsonly",
	Doc:  "reports direct os.* file operations in persistence packages that must route I/O through internal/vfs",
	Run:  run,
}

// fileOps are the os functions that touch the filesystem.  Anything in
// this set inside a persistence package is a hole in the fault layer.
var fileOps = map[string]bool{
	"Open":       true,
	"OpenFile":   true,
	"Create":     true,
	"CreateTemp": true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"ReadFile":   true,
	"WriteFile":  true,
	"ReadDir":    true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"Stat":       true,
	"Lstat":      true,
	"Truncate":   true,
	"Chmod":      true,
	"Chtimes":    true,
	"Link":       true,
	"Symlink":    true,
	"Readlink":   true,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if !facts.Persistence {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, isPkg := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
			if !isPkg || pkg.Imported().Path() != "os" {
				return true
			}
			if fileOps[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"direct os.%s in persistence package — route file I/O through internal/vfs so fault injection can reach it",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
