// Package b carries no persistence annotation: a drop-folder daemon,
// say, whose files are user artifacts rather than durable engine state.
// vfsonly must stay silent here even for bare os calls.
package b

import "os"

func archive(oldp, newp string) error {
	return os.Rename(oldp, newp)
}

func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}
