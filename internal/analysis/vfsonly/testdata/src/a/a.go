// Package a is the vfsonly golden corpus: a persistence package whose
// file I/O must route through internal/vfs, not call os directly.
//
// netmarkvet:persistence
package a

import (
	"os"
	"path/filepath"
)

// fsLike stands in for vfs.FS in this corpus (the corpus is loaded
// standalone, without the real module's imports).
type fsLike interface {
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
}

// --- known good ---------------------------------------------------------

// goodThroughVFS does its I/O through the injected filesystem.
func goodThroughVFS(fsys fsLike, dir string) ([]byte, error) {
	return fsys.ReadFile(filepath.Join(dir, "catalog.json"))
}

// goodClassifiersAndConstants: os error classifiers and open-flag
// constants carry no I/O and stay legal.
func goodClassifiersAndConstants(fsys fsLike, dir string) int {
	if _, err := fsys.ReadFile(filepath.Join(dir, "x")); os.IsNotExist(err) {
		return os.O_RDWR | os.O_CREATE
	}
	return 0
}

// netmarkvet:ignore vfsonly — bootstrap path that constructs the vfs
// itself and so cannot route through one.
func goodIgnoredBootstrap(path string) error {
	_, err := os.Stat(path)
	return err
}

// --- known bad ----------------------------------------------------------

func badDirectOpen(path string) error {
	f, err := os.Open(path) // want `direct os.Open in persistence package`
	if err != nil {
		return err
	}
	return f.Close()
}

func badDirectWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os.WriteFile in persistence package`
}

func badDirectRename(oldp, newp string) error {
	return os.Rename(oldp, newp) // want `direct os.Rename in persistence package`
}

func badDirectRemoveAndMkdir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os.MkdirAll in persistence package`
		return err
	}
	return os.Remove(filepath.Join(dir, "stale")) // want `direct os.Remove in persistence package`
}
