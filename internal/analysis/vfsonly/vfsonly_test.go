package vfsonly_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/vfsonly"
)

func TestVfsonly(t *testing.T) {
	analysistest.Run(t, ".", "a", vfsonly.Analyzer)
}

func TestNotPersistencePackageIsExempt(t *testing.T) {
	analysistest.Run(t, ".", "b", vfsonly.Analyzer)
}
