package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// LockKind distinguishes shared from exclusive acquisition.
type LockKind int

const (
	LockNone  LockKind = iota
	LockRead           // RLock
	LockWrite          // Lock
)

// Held is the set of mutexes held at a program point, keyed by the
// canonical path of the expression they were locked through (see
// ExprKey).  Values record the strongest mode held.
type Held map[string]heldLock

type heldLock struct {
	Kind LockKind
	// Obj is the types.Object of the mutex field when the lock
	// expression ends in a field selector (nil for plain variables);
	// lockscope resolves hot/order annotations through it.
	Obj types.Object
}

// Holds reports whether key is held at all.
func (h Held) Holds(key string) bool { return h[key].Kind != LockNone }

// HoldsWrite reports whether key is held exclusively.
func (h Held) HoldsWrite(key string) bool { return h[key].Kind == LockWrite }

func (h Held) clone() Held {
	c := make(Held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// ExprKey renders an expression as a canonical access path rooted at a
// variable's identity: "obj0xc000.ctxMu", "obj0xc000.shards.[].mu".
// Index components collapse to "[]" — two different elements of one
// container share a key, a deliberate imprecision that errs toward
// believing a lock is held.  ok is false for expressions with no stable
// root (calls, literals), which the lock passes skip.
func ExprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(v)
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("obj%p", obj), true
	case *ast.SelectorExpr:
		base, ok := ExprKey(info, v.X)
		if !ok {
			// X may itself be a package qualifier (pkg.Var).
			if id, isIdent := v.X.(*ast.Ident); isIdent {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					obj := info.ObjectOf(v.Sel)
					if obj == nil {
						return "", false
					}
					return fmt.Sprintf("obj%p", obj), true
				}
			}
			return "", false
		}
		return base + "." + v.Sel.Name, true
	case *ast.ParenExpr:
		return ExprKey(info, v.X)
	case *ast.StarExpr:
		return ExprKey(info, v.X)
	case *ast.UnaryExpr:
		return ExprKey(info, v.X)
	case *ast.IndexExpr:
		base, ok := ExprKey(info, v.X)
		if !ok {
			return "", false
		}
		return base + ".[]", true
	}
	return "", false
}

// RootIdent returns the leftmost identifier of an access path, or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isMutexType reports whether t (after pointer indirection) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// LockCall is the exported form of lockCall for analyzers that track
// critical sections themselves (genbump's CFG dataflow).
func LockCall(info *types.Info, call *ast.CallExpr) (mu ast.Expr, kind LockKind, release bool, ok bool) {
	return lockCall(info, call)
}

// lockCall classifies a call expression as a mutex operation.  It
// returns the mutex expression (the receiver of Lock/Unlock), the mode,
// and whether the call releases rather than acquires.
func lockCall(info *types.Info, call *ast.CallExpr) (mu ast.Expr, kind LockKind, release bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, LockNone, false, false
	}
	var k LockKind
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		k, release = LockWrite, false
	case "RLock", "TryRLock":
		k, release = LockRead, false
	case "Unlock":
		k, release = LockWrite, true
	case "RUnlock":
		k, release = LockRead, true
	default:
		return nil, LockNone, false, false
	}
	tv, found := info.Types[sel.X]
	if !found || !isMutexType(tv.Type) {
		return nil, LockNone, false, false
	}
	return sel.X, k, release, true
}

// mutexFieldObj returns the types.Object of the field the mutex
// expression ends in (s.ctxMu -> ctxMu's object), or nil.
func mutexFieldObj(info *types.Info, mu ast.Expr) types.Object {
	for {
		switch v := mu.(type) {
		case *ast.ParenExpr:
			mu = v.X
		case *ast.StarExpr:
			mu = v.X
		case *ast.SelectorExpr:
			return info.ObjectOf(v.Sel)
		case *ast.Ident:
			return info.ObjectOf(v)
		default:
			return nil
		}
	}
}

// LockEvent is delivered to the walk callback on every acquisition.
type LockEvent struct {
	Call *ast.CallExpr
	Key  string
	Kind LockKind
	Obj  types.Object // mutex field object, nil for plain variables
}

// LockWalker streams a function body in source order, maintaining the
// held-lock set.
//
// The flow model is deliberately simple and errs toward silence:
// statements in a block are processed in order; Lock/RLock adds to the
// set, Unlock/RUnlock removes, and a deferred unlock leaves the lock
// held to the end of the function.  Nested blocks (if/for/switch/select
// bodies) are walked with a copy of the set, so acquisitions inside a
// branch do not leak past it.  Function literals inherit the held set
// at their syntactic position — they are overwhelmingly synchronous
// callbacks here — except goroutine bodies (`go func(){...}`), which
// start empty.
type LockWalker struct {
	Info *types.Info
	// OnNode is called for every expression node with the current held
	// set (shared map: do not retain).
	OnNode func(n ast.Node, held Held)
	// OnLock is called for every acquisition with the held set as it
	// was before the acquisition.
	OnLock func(ev LockEvent, held Held)
}

// Walk processes one function body.
func (w *LockWalker) Walk(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w.stmts(body.List, make(Held))
}

func (w *LockWalker) stmts(list []ast.Stmt, held Held) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *LockWalker) stmt(s ast.Stmt, held Held) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		w.stmts(v.List, held)
	case *ast.ExprStmt:
		w.expr(v.X, held)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			w.expr(e, held)
		}
		for _, e := range v.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(v.X, held)
	case *ast.SendStmt:
		w.expr(v.Chan, held)
		w.expr(v.Value, held)
		if w.OnNode != nil {
			w.OnNode(v, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// function; a deferred anything-else is analyzed with the held
		// set at the defer site (close enough: it runs at return, when
		// non-deferred unlocks have usually fired, but treating it as
		// "now" errs toward believing locks are held).
		if _, _, release, ok := lockCall(w.Info, v.Call); ok && release {
			for _, a := range v.Call.Args {
				w.expr(a, held)
			}
			return
		}
		w.expr(v.Call, held)
	case *ast.GoStmt:
		for _, a := range v.Call.Args {
			w.expr(a, held)
		}
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, make(Held)) // new goroutine: nothing held
		} else {
			w.expr(v.Call.Fun, held)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		w.expr(v.Cond, held)
		w.stmts(v.Body.List, held.clone())
		if v.Else != nil {
			w.stmt(v.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if v.Init != nil {
			w.stmt(v.Init, inner)
		}
		if v.Cond != nil {
			w.expr(v.Cond, inner)
		}
		w.stmts(v.Body.List, inner)
		if v.Post != nil {
			w.stmt(v.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(v.X, held)
		if w.OnNode != nil {
			w.OnNode(v, held)
		}
		w.stmts(v.Body.List, held.clone())
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		if v.Tag != nil {
			w.expr(v.Tag, held)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, e := range cc.List {
					w.expr(e, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		w.stmt(v.Assign, held)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if w.OnNode != nil {
			w.OnNode(v, held)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				// The comm op itself is part of the select (already
				// reported as one blocking point); only its operands
				// are walked.
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					w.expr(comm.Chan, inner)
					w.expr(comm.Value, inner)
				case *ast.ExprStmt:
					if un, ok := comm.X.(*ast.UnaryExpr); ok {
						w.expr(un.X, inner)
					} else {
						w.expr(comm.X, inner)
					}
				case *ast.AssignStmt:
					for _, e := range comm.Rhs {
						if un, ok := e.(*ast.UnaryExpr); ok {
							w.expr(un.X, inner)
						} else {
							w.expr(e, inner)
						}
					}
					for _, e := range comm.Lhs {
						w.expr(e, inner)
					}
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, held)
	}
}

// expr walks an expression in evaluation order, applying lock
// transitions for mutex calls and reporting every node to OnNode.
func (w *LockWalker) expr(e ast.Expr, held Held) {
	if e == nil {
		return
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		if mu, kind, release, ok := lockCall(w.Info, v); ok {
			key, keyOK := ExprKey(w.Info, mu)
			if keyOK {
				if release {
					delete(held, key)
				} else {
					if w.OnLock != nil {
						w.OnLock(LockEvent{Call: v, Key: key, Kind: kind, Obj: mutexFieldObj(w.Info, mu)}, held)
					}
					prev := held[key]
					if kind > prev.Kind {
						held[key] = heldLock{Kind: kind, Obj: mutexFieldObj(w.Info, mu)}
					}
				}
			}
			// Still surface the receiver path so guarded-field checks
			// see accesses buried in the mutex expression (rare).
			return
		}
		w.expr(v.Fun, held)
		for _, a := range v.Args {
			w.expr(a, held)
		}
		if w.OnNode != nil {
			w.OnNode(v, held)
		}
	case *ast.FuncLit:
		w.stmts(v.Body.List, held.clone())
	case *ast.SelectorExpr:
		w.expr(v.X, held)
		if w.OnNode != nil {
			w.OnNode(v, held)
		}
	case *ast.ParenExpr:
		w.expr(v.X, held)
	case *ast.StarExpr:
		w.expr(v.X, held)
	case *ast.UnaryExpr:
		w.expr(v.X, held)
		if v.Op.String() == "<-" && w.OnNode != nil {
			w.OnNode(v, held)
		}
	case *ast.BinaryExpr:
		w.expr(v.X, held)
		w.expr(v.Y, held)
	case *ast.IndexExpr:
		w.expr(v.X, held)
		w.expr(v.Index, held)
	case *ast.IndexListExpr:
		w.expr(v.X, held)
		for _, ix := range v.Indices {
			w.expr(ix, held)
		}
	case *ast.SliceExpr:
		w.expr(v.X, held)
		w.expr(v.Low, held)
		w.expr(v.High, held)
		w.expr(v.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(v.X, held)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(v.Key, held)
		w.expr(v.Value, held)
	}
}

// LocalRoots returns the variables fn creates itself — `s := &Store{…}`,
// `s := new(Store)`, or `var s Store`.  Accesses rooted at them are
// exempt from guard checks: nothing else can see the value yet.
func LocalRoots(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	roots := make(map[types.Object]bool)
	if fn.Body == nil {
		return roots
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if creationExpr(v.Rhs[i]) {
					if obj := info.ObjectOf(id); obj != nil {
						roots[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(v.Values) == 0 && v.Type != nil {
				for _, id := range v.Names {
					if obj := info.ObjectOf(id); obj != nil {
						roots[obj] = true
					}
				}
			}
			for i, id := range v.Names {
				if i < len(v.Values) && creationExpr(v.Values[i]) {
					if obj := info.ObjectOf(id); obj != nil {
						roots[obj] = true
					}
				}
			}
		}
		return true
	})
	return roots
}

func creationExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := v.X.(*ast.CompositeLit)
		return v.Op.String() == "&" && isLit
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// FuncDisplayName renders a function's name for diagnostics
// ("(*Store).Stats", "Open").
func FuncDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var sb strings.Builder
	sb.WriteString("(")
	t := fn.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		sb.WriteString("*")
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		sb.WriteString(id.Name)
	}
	sb.WriteString(").")
	sb.WriteString(fn.Name.Name)
	return sb.String()
}
