package boxcheck_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/boxcheck"
)

func TestBoxcheck(t *testing.T) {
	analysistest.Run(t, ".", "a", boxcheck.Analyzer)
}
