// Package boxcheck reports implicit concrete→interface conversions
// inside `netmarkvet:hotpath` functions and the module functions they
// transitively call.  Boxing is the stealthiest allocation Go has: an
// innocent-looking call argument, assignment, return, map store, or
// channel send against an interface type heap-allocates a copy of the
// value — invisible in the source, visible in allocs/op.
//
// Pointer-shaped values (pointers, maps, chans, funcs) are exempt:
// they fit the interface data word without allocating.  Untyped nil
// and interface→interface conversions never box.  Sites inside
// error-handling blocks and sites excused by `netmarkvet:allocok —
// <why>` are skipped, the same exemptions as hotalloc.
package boxcheck

import (
	"go/token"

	"netmark/internal/analysis"
)

// Analyzer is the boxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "boxcheck",
	Doc:  "reports implicit concrete-to-interface boxing in netmarkvet:hotpath functions and their module callees",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	summ := pass.Mod.Summaries()
	reported := make(map[token.Pos]bool)
	var roots []*analysis.FuncSummary
	summ.Funcs(func(fs *analysis.FuncSummary) {
		if fs.HotPath && !fs.AllocOK && fs.Pkg == pass.Loaded {
			roots = append(roots, fs)
		}
	})
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].Decl.Pos() < roots[j-1].Decl.Pos(); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	for _, fs := range roots {
		root := analysis.DisplayName(fs.Fn)
		for _, site := range fs.Boxes {
			if !reported[site.Pos] {
				reported[site.Pos] = true
				pass.Reportf(site.Pos, "hot path %s boxes: %s", root, site.What)
			}
		}
		walk(pass, summ, fs, root, make(map[*analysis.FuncSummary]bool), reported)
	}
	return nil
}

func walk(pass *analysis.Pass, summ *analysis.Summaries, fs *analysis.FuncSummary,
	root string, seen map[*analysis.FuncSummary]bool, reported map[token.Pos]bool) {
	for _, edge := range fs.HotCalls {
		cs := summ.Of(edge.Callee)
		if cs == nil || cs.AllocOK || cs.HotPath || seen[cs] {
			continue
		}
		seen[cs] = true
		for _, site := range cs.Boxes {
			if !reported[site.Pos] {
				reported[site.Pos] = true
				pass.Reportf(site.Pos, "boxing in %s, reached from hot path %s: %s",
					analysis.DisplayName(cs.Fn), root, site.What)
			}
		}
		walk(pass, summ, cs, root, seen, reported)
	}
}
