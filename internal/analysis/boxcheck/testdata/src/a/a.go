package a

type row struct{ id, gen uint64 }

type sink struct {
	vals map[string]interface{}
	ch   chan interface{}
}

func take(v interface{}) bool { return v != nil }

func takePtr(p *row) bool { return p != nil }

// —— known good ——————————————————————————————————————————————

// PassPtr hands over a pointer: pointer-shaped, no box.
// netmarkvet:hotpath
func PassPtr(r *row) bool {
	return take(r)
}

// PassIface re-hands an existing interface: no conversion.
// netmarkvet:hotpath
func PassIface(v interface{}) bool {
	return take(v)
}

// PassNil is untyped nil: no box.
// netmarkvet:hotpath
func PassNil() bool {
	return take(nil)
}

// Concrete stays concrete all the way.
// netmarkvet:hotpath
func Concrete(r *row) bool {
	return takePtr(r)
}

// ExcusedBox is a deliberate, documented exception.
// netmarkvet:hotpath
func ExcusedBox(r row) bool {
	return take(r) // netmarkvet:allocok — diagnostics-only slow branch
}

// —— known bad ———————————————————————————————————————————————

// BadArg boxes the struct into the interface parameter.
// netmarkvet:hotpath
func BadArg(r row) bool {
	return take(r) // want `argument boxes a.row into interface\{\}`
}

// BadAssign boxes at the assignment.
// netmarkvet:hotpath
func BadAssign(r row) interface{} {
	var v interface{}
	v = r // want `assignment boxes a.row into interface\{\}`
	return v
}

// BadDecl boxes at the declaration.
// netmarkvet:hotpath
func BadDecl(x uint64) bool {
	var v interface{} = x // want `declaration boxes uint64 into interface\{\}`
	return v != nil
}

// BadReturn boxes on the way out.
// netmarkvet:hotpath
func BadReturn(r row) interface{} {
	return r // want `return boxes a.row into interface\{\}`
}

// BadMapStore boxes into the map's interface element.
// netmarkvet:hotpath
func BadMapStore(s *sink, k string, r row) {
	s.vals[k] = r // want `assignment boxes a.row into interface\{\}`
}

// BadSend boxes into the channel's interface element.
// netmarkvet:hotpath
func BadSend(s *sink, r row) {
	s.ch <- r // want `channel send boxes a.row into interface\{\}`
}

// BadVariadic boxes each variadic element.
func sprint(vs ...interface{}) int { return len(vs) }

// netmarkvet:hotpath
func BadVariadic(x int) int {
	return sprint(x) // want `argument boxes int into interface\{\}`
}

// helperBox hides the boxing one call away.
func helperBox(x uint64) bool {
	return take(x) // want `boxing in helperBox, reached from hot path BadTransitive: argument boxes uint64 into interface\{\}`
}

// BadTransitive reaches helperBox's boxing through the call graph.
// netmarkvet:hotpath
func BadTransitive(x uint64) bool {
	return helperBox(x)
}
