package lockscope_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, ".", "a", lockscope.Analyzer)
}
