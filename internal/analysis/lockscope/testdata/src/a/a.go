// Package a is the lockscope golden corpus.
package a

import (
	"os"
	"sync"
	"time"
)

type engine struct {
	// ckptMu is the checkpoint barrier.
	// netmarkvet:lockorder 10
	ckptMu sync.RWMutex
	// mu is the table lock.
	// netmarkvet:lockorder 20
	mu sync.RWMutex
	// idxMu guards the derived index.
	// netmarkvet:hot netmarkvet:lockorder 30
	idxMu sync.RWMutex
	// statsMu guards counters.
	// netmarkvet:hot netmarkvet:lockorder 40
	statsMu sync.Mutex

	// coldMu has no annotations: blocking under it is allowed.
	coldMu sync.Mutex

	idx  map[string]int
	hits int
	ch   chan int
	f    *os.File
}

// --- known good ---------------------------------------------------------

func (e *engine) goodAscendingOrder() {
	e.ckptMu.RLock()
	e.mu.Lock()
	e.idxMu.Lock()
	e.idx["k"] = 1
	e.idxMu.Unlock()
	e.mu.Unlock()
	e.ckptMu.RUnlock()
}

func (e *engine) goodBlockingOutsideHotLock() error {
	e.idxMu.Lock()
	v := e.idx["k"]
	e.idxMu.Unlock()
	_ = v
	return e.f.Sync()
}

func (e *engine) goodBlockingUnderColdLock() error {
	e.coldMu.Lock()
	defer e.coldMu.Unlock()
	return e.f.Sync()
}

func (e *engine) goodNonBlockingSelect() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	select {
	case v := <-e.ch:
		e.hits += v
	default:
	}
}

func (e *engine) goodReacquireAfterRelease() {
	e.statsMu.Lock()
	e.hits++
	e.statsMu.Unlock()
	e.ckptMu.RLock()
	e.ckptMu.RUnlock()
}

// --- known bad ----------------------------------------------------------

func (e *engine) badSleepUnderHotLock() {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding hot lock idxMu`
}

func (e *engine) badFsyncUnderHotLock() error {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.f.Sync() // want `\(\*os\.File\)\.Sync while holding hot lock statsMu`
}

func (e *engine) badFileIOUnderHotLock() {
	e.idxMu.RLock()
	defer e.idxMu.RUnlock()
	_, _ = os.ReadFile("x") // want `os\.ReadFile while holding hot lock idxMu`
}

func (e *engine) badChannelSendUnderHotLock() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.ch <- 1 // want `channel send while holding hot lock statsMu`
}

func (e *engine) badChannelRecvUnderHotLock() int {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return <-e.ch // want `channel receive while holding hot lock statsMu`
}

func (e *engine) badBlockingSelectUnderHotLock() {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	select { // want `select while holding hot lock idxMu`
	case <-e.ch:
	}
}

func (e *engine) badOrderInversion() {
	e.statsMu.Lock()
	e.mu.Lock() // want `mu \(lockorder 20\) acquired while holding statsMu \(lockorder 40\)`
	e.mu.Unlock()
	e.statsMu.Unlock()
}

func (e *engine) badCkptAfterTable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ckptMu.RLock() // want `ckptMu \(lockorder 10\) acquired while holding mu \(lockorder 20\)`
	defer e.ckptMu.RUnlock()
}
