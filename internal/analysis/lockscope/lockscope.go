// Package lockscope enforces two scope rules on annotated mutexes:
//
//  1. No blocking operation — file or network I/O, fsync, channel
//     send/receive/select, time.Sleep, WaitGroup.Wait — while a
//     `netmarkvet:hot` mutex is held.  Hot locks sit on the serving
//     path; one fsync under a hot lock turns a microsecond critical
//     section into a multi-millisecond stall for every reader.
//  2. `netmarkvet:lockorder <n>` mutexes must be acquired in ascending
//     rank within a function.  The repo's documented order is
//     ckptMu(10) → store mu(20) → table mu(20) → derived-index
//     mus(30) → statsMu(40); taking a lower rank while holding a
//     higher one is the shape of every lock-inversion deadlock.
package lockscope

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the lockscope pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "reports blocking calls under hot locks and out-of-order lock acquisition",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if len(facts.Hot) == 0 && len(facts.Order) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, facts, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, facts *analysis.Facts, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	walker := &analysis.LockWalker{
		Info: info,
		OnLock: func(ev analysis.LockEvent, held analysis.Held) {
			rank, ranked := facts.Order[ev.Obj]
			if !ranked {
				return
			}
			for _, h := range held {
				hr, ok := facts.Order[h.Obj]
				if ok && hr > rank {
					pass.Reportf(ev.Call.Pos(),
						"%s (lockorder %d) acquired while holding %s (lockorder %d) in %s — documented order is ascending",
						ev.Obj.Name(), rank, h.Obj.Name(), hr, analysis.FuncDisplayName(fn))
				}
			}
		},
		OnNode: func(n ast.Node, held analysis.Held) {
			hot := hotHeld(facts, held)
			if hot == nil {
				return
			}
			if what := blockingOp(info, n); what != "" {
				pass.Reportf(n.Pos(), "%s while holding hot lock %s in %s",
					what, hot.Name(), analysis.FuncDisplayName(fn))
			}
		},
	}
	walker.Walk(fn.Body)
}

// hotHeld returns the annotation object of a hot mutex currently held.
func hotHeld(facts *analysis.Facts, held analysis.Held) types.Object {
	for _, h := range held {
		if h.Obj != nil && facts.Hot[h.Obj] {
			return h.Obj
		}
	}
	return nil
}

// blockingPackages are stdlib packages whose exported calls block on
// I/O.  Calls to same-module helpers are not classified (the pass is
// intra-procedural); annotate the helper's callers hot-free or ignore.
var blockingPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"os/exec":  true,
}

// nonBlockingOSFuncs are os-package calls that only touch process
// state, not the filesystem.
var nonBlockingOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true,
	"Getuid": true, "Geteuid": true, "Hostname": true, "Getwd": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "Expand": true,
	"ExpandEnv": true, "Getpagesize": true, "UserHomeDir": true,
}

// blockingOp classifies a node as a blocking operation and names it.
func blockingOp(info *types.Info, n ast.Node) string {
	switch v := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // has a default: non-blocking
			}
		}
		return "select"
	case *ast.UnaryExpr:
		if v.Op.String() == "<-" {
			return "channel receive"
		}
	case *ast.RangeStmt:
		if tv, ok := info.Types[v.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel"
			}
		}
	case *ast.CallExpr:
		return blockingCall(info, v)
	}
	return ""
}

func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Package-level calls: os.*, net.*, time.Sleep, ...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
			path := pkg.Imported().Path()
			name := sel.Sel.Name
			if path == "time" && name == "Sleep" {
				return "time.Sleep"
			}
			if blockingPackages[path] && !(path == "os" && nonBlockingOSFuncs[name]) {
				return path + "." + name
			}
			return ""
		}
	}
	// Method calls on blocking receivers: (*os.File).Sync/Write/...,
	// net.Conn methods, sync.WaitGroup.Wait.
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "os" && obj.Name() == "File":
		return "(*os.File)." + sel.Sel.Name
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" && sel.Sel.Name == "Wait":
		return "WaitGroup.Wait"
	case blockingPackages[obj.Pkg().Path()]:
		return obj.Pkg().Path() + "." + obj.Name() + "." + sel.Sel.Name
	}
	return ""
}
