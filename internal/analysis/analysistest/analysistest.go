// Package analysistest runs an analyzer over a golden testdata package
// and checks its diagnostics against `// want "regexp"` comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	s.count++ // want `not held`
//
// A want comment declares that the analyzer must report at least the
// listed diagnostics on that source line (each quoted regexp must match
// one diagnostic); any reported diagnostic on a line without a matching
// want — and any want without a matching diagnostic — fails the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"netmark/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// Run loads testdata/src/<pkg> relative to dir and applies the
// analyzers, comparing diagnostics against want comments.
func Run(t *testing.T, dir, pkg string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgDir := filepath.Join(dir, "testdata", "src", pkg)
	loader, err := analysis.NewLoader(pkgDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loaded, err := loader.LoadDir(pkgDir)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", pkgDir, err)
	}
	diags, err := analysis.RunAnalyzers(loaded, analyzers)
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}

	wants := collectWants(t, loaded)
	for _, d := range diags {
		pos := loaded.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.text)
		}
	}
}

// collectWants re-scans each file's raw comments for want directives.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: expr})
				}
			}
		}
	}
	return wants
}

// Sprint formats diagnostics for debugging helpers in analyzer tests.
func Sprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(&sb, "%s:%d:%d: %s\n", filepath.Base(pos.Filename), pos.Line, pos.Column, d.Message)
	}
	return sb.String()
}
