package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Facts is the package's annotation table, keyed by the types.Object of
// each annotated struct field so use sites resolve with one map probe.
type Facts struct {
	// Guards maps a guarded field to the name of the sibling mutex
	// field that must be held to touch it ("guarded by <mu>").
	Guards map[types.Object]string
	// Hot marks mutex fields that must never be held across blocking
	// operations ("netmarkvet:hot").
	Hot map[types.Object]bool
	// Order gives a mutex field's acquisition rank
	// ("netmarkvet:lockorder <n>"); locks must be taken in ascending
	// rank within one function.
	Order map[types.Object]int
	// Cow marks copy-on-write published slice fields
	// ("netmarkvet:cow").
	Cow map[types.Object]bool
	// Mutators holds the functions allowed to reassign cow fields
	// ("netmarkvet:mutator").
	Mutators map[*ast.FuncDecl]bool
	// Gen maps a guarded field to the name of the sibling generation
	// counter that every mutation must bump before the guard is
	// released ("netmarkvet:gen <counter>").
	Gen map[types.Object]string
	// Snap marks persistable fields that must round-trip through the
	// snapshot encode and decode paths ("netmarkvet:snap").
	Snap map[types.Object]bool
	// SnapEncode / SnapDecode hold the snapshot codec roots
	// ("netmarkvet:snap-encode" / "netmarkvet:snap-decode" on a
	// function): snapcover closes over their same-package callees.
	SnapEncode map[*ast.FuncDecl]bool
	SnapDecode map[*ast.FuncDecl]bool
	// Persistence reports whether any file's package doc opts the
	// package into the fsyncrename and vfsonly invariants.  The
	// "netmarkvet:persistence" tag must stand on a doc line of its own:
	// prose *mentioning* the tag (a tooling package documenting it, the
	// vfs boundary layer referring to it) must not opt a package in.
	Persistence bool
}

var (
	guardedRe   = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)
	lockorderRe = regexp.MustCompile(`\bnetmarkvet:lockorder\s+(\d+)\b`)
	ignoreRe    = regexp.MustCompile(`\bnetmarkvet:ignore\b([^\n]*)`)
	genRe       = regexp.MustCompile(`\bnetmarkvet:gen\s+(\w+)`)
	// "netmarkvet:snap" must not also match the snap-encode/snap-decode
	// function annotations, so the tag ends at whitespace or EOF.
	snapRe = regexp.MustCompile(`netmarkvet:snap(\s|$)`)
	// The persistence opt-in is a whole line, so documentation that
	// merely mentions the tag mid-sentence does not opt a package in.
	persistenceRe = regexp.MustCompile(`(?m)^\s*netmarkvet:persistence\s*$`)
)

// parseIgnore returns nil when text has no ignore annotation, an empty
// slice for a bare "netmarkvet:ignore" (all analyzers), or the analyzer
// names listed after it.
func parseIgnore(text string) []string {
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	rest := strings.TrimSpace(m[1])
	// Anything after "—" or "--" is prose explaining the suppression.
	for _, sep := range []string{"—", "--", "("} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = strings.TrimSpace(rest[:i])
		}
	}
	if rest == "" {
		return []string{}
	}
	return strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' })
}

// CollectFacts scans the package's struct declarations and function
// docs for netmarkvet annotations.
func CollectFacts(pass *Pass) *Facts {
	f := &Facts{
		Guards:     make(map[types.Object]string),
		Hot:        make(map[types.Object]bool),
		Order:      make(map[types.Object]int),
		Cow:        make(map[types.Object]bool),
		Mutators:   make(map[*ast.FuncDecl]bool),
		Gen:        make(map[types.Object]string),
		Snap:       make(map[types.Object]bool),
		SnapEncode: make(map[*ast.FuncDecl]bool),
		SnapDecode: make(map[*ast.FuncDecl]bool),
	}
	for _, file := range pass.Files {
		if file.Doc != nil && persistenceRe.MatchString(file.Doc.Text()) {
			f.Persistence = true
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := fieldCommentText(field)
				if text == "" {
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if m := guardedRe.FindStringSubmatch(text); m != nil {
						f.Guards[obj] = m[1]
					}
					if strings.Contains(text, "netmarkvet:hot") {
						f.Hot[obj] = true
					}
					if m := lockorderRe.FindStringSubmatch(text); m != nil {
						rank, _ := strconv.Atoi(m[1])
						f.Order[obj] = rank
					}
					if strings.Contains(text, "netmarkvet:cow") {
						f.Cow[obj] = true
					}
					if m := genRe.FindStringSubmatch(text); m != nil {
						f.Gen[obj] = m[1]
					}
					if snapRe.MatchString(text) {
						f.Snap[obj] = true
					}
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			doc := fd.Doc.Text()
			if strings.Contains(doc, "netmarkvet:mutator") {
				f.Mutators[fd] = true
			}
			if strings.Contains(doc, "netmarkvet:snap-encode") {
				f.SnapEncode[fd] = true
			}
			if strings.Contains(doc, "netmarkvet:snap-decode") {
				f.SnapDecode[fd] = true
			}
		}
	}
	return f
}

// fieldCommentText joins a struct field's doc comment and line comment.
func fieldCommentText(field *ast.Field) string {
	var sb strings.Builder
	if field.Doc != nil {
		sb.WriteString(field.Doc.Text())
	}
	if field.Comment != nil {
		sb.WriteString(field.Comment.Text())
	}
	return sb.String()
}
