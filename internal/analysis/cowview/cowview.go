// Package cowview protects copy-on-write published state.  A
// `netmarkvet:cow` field is a slice whose header readers capture under
// a lock and then read without one (textindex posting-list blocks/tail/
// dead and the views over them).  The storage behind a captured header
// must therefore never change:
//
//   - writing an element in place (x.f[i] = v), copy(x.f, …), or
//     x.f[i]++ is an error everywhere — including mutation methods,
//     which must build a fresh slice and swap it in;
//   - reassigning the field (x.f = …, x.f = append(x.f, …)) is only
//     legal inside functions annotated `// netmarkvet:mutator`, the
//     designated mutation methods that run under the writer lock.
//
// Appending through a reassignment is allowed in mutators because
// captured views read only their own length: growth beyond the captured
// len either reallocates or touches capacity the view never sees.
package cowview

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the cowview pass.
var Analyzer = &analysis.Analyzer{
	Name: "cowview",
	Doc:  "reports in-place mutation of copy-on-write published slice fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if len(facts.Cow) == 0 {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			isMutator := facts.Mutators[fn]
			local := analysis.LocalRoots(info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range v.Lhs {
						checkLHS(pass, facts, info, fn, lhs, isMutator, local)
					}
				case *ast.IncDecStmt:
					checkLHS(pass, facts, info, fn, v.X, isMutator, local)
				case *ast.CallExpr:
					if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "copy" && len(v.Args) == 2 {
						if sel, obj := cowSelector(facts, info, v.Args[0]); sel != nil {
							pass.Reportf(sel.Sel.Pos(),
								"copy into copy-on-write field %s in %s — captured views share this storage; build a new slice",
								obj.Name(), analysis.FuncDisplayName(fn))
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkLHS inspects one assignment target.
func checkLHS(pass *analysis.Pass, facts *analysis.Facts, info *types.Info,
	fn *ast.FuncDecl, lhs ast.Expr, isMutator bool, local map[types.Object]bool) {
	switch v := lhs.(type) {
	case *ast.IndexExpr:
		if sel, obj := cowSelector(facts, info, v.X); sel != nil {
			if rootIsLocal(info, local, sel) {
				return
			}
			pass.Reportf(sel.Sel.Pos(),
				"in-place element write to copy-on-write field %s in %s — captured views share this storage; build a new slice",
				obj.Name(), analysis.FuncDisplayName(fn))
		}
	case *ast.SelectorExpr:
		obj := info.ObjectOf(v.Sel)
		if obj == nil || !facts.Cow[obj] {
			return
		}
		if rootIsLocal(info, local, v) {
			return // freshly built value, not published yet
		}
		if !isMutator {
			pass.Reportf(v.Sel.Pos(),
				"reassignment of copy-on-write field %s outside a netmarkvet:mutator function (%s)",
				obj.Name(), analysis.FuncDisplayName(fn))
		}
	}
}

// cowSelector returns (selector, field object) when e is a selector of
// a cow-annotated field, possibly behind slicing/parens.
func cowSelector(facts *analysis.Facts, info *types.Info, e ast.Expr) (*ast.SelectorExpr, types.Object) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			obj := info.ObjectOf(v.Sel)
			if obj != nil && facts.Cow[obj] {
				return v, obj
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

func rootIsLocal(info *types.Info, local map[types.Object]bool, sel *ast.SelectorExpr) bool {
	root := analysis.RootIdent(sel.X)
	if root == nil {
		return false
	}
	obj := info.ObjectOf(root)
	return obj != nil && local[obj]
}
