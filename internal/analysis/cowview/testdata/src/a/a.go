// Package a is the cowview golden corpus, modelled on the textindex
// posting list: blocks/tail are published copy-on-write to captured
// views.
package a

type block struct {
	data []byte
	n    int
}

type postingList struct {
	blocks []block  // netmarkvet:cow — captured by views; replace, never mutate
	tail   []uint64 // netmarkvet:cow — captured by views; replace, never mutate
	live   int
}

type view struct {
	blocks []block
	tail   []uint64
}

// --- known good ---------------------------------------------------------

// capture publishes the current storage; reading cow fields is free.
func (pl *postingList) capture() view {
	return view{blocks: pl.blocks, tail: pl.tail}
}

// appendTail is a designated mutation method.
//
// netmarkvet:mutator
func (pl *postingList) appendTail(id uint64) {
	pl.tail = append(pl.tail, id)
	pl.live++
}

// rebuild swaps in freshly built storage.
//
// netmarkvet:mutator
func (pl *postingList) rebuild(ids []uint64) {
	nt := make([]uint64, len(ids))
	copy(nt, ids)
	pl.tail = nt
	pl.blocks = nil
}

// newList builds a fresh, unpublished value: assignments are fine.
func newList(ids []uint64) *postingList {
	pl := &postingList{}
	pl.tail = ids
	return pl
}

// --- known bad ----------------------------------------------------------

// badInPlaceWrite mutates storage a view may have captured — even
// though it is a mutator, in-place writes are never legal.
//
// netmarkvet:mutator
func (pl *postingList) badInPlaceWrite(i int, id uint64) {
	pl.tail[i] = id // want `in-place element write to copy-on-write field tail`
}

func (pl *postingList) badInPlaceIncrement(i int) {
	pl.tail[i]++ // want `in-place element write to copy-on-write field tail`
}

func (pl *postingList) badCopyInto(ids []uint64) {
	copy(pl.tail, ids) // want `copy into copy-on-write field tail`
}

// badReassignOutsideMutator swaps storage without being designated.
func (pl *postingList) badReassignOutsideMutator(ids []uint64) {
	pl.tail = ids // want `reassignment of copy-on-write field tail outside a netmarkvet:mutator`
}

func (pl *postingList) badAppendOutsideMutator(id uint64) {
	pl.tail = append(pl.tail, id) // want `reassignment of copy-on-write field tail outside a netmarkvet:mutator`
}
