package cowview_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/cowview"
)

func TestCowview(t *testing.T) {
	analysistest.Run(t, ".", "a", cowview.Analyzer)
}
