package analysis

// Flow-insensitive allocation, boxing, and escape inference — the
// machinery behind the performance tier (hotalloc, boxcheck, aliascap).
//
// The inference answers three questions about each module function:
//
//  1. Which expressions perform hidden heap allocations?  (Allocs)
//  2. Which expressions box a concrete value into an interface?  (Boxes)
//  3. Which parameters leak — may be retained past the call — and which
//     return values alias a parameter or an arena buffer?  (LeaksParam,
//     ReturnsParam, ReturnsArena, ArenaParam)
//
// Like every summary in this package, the inference errs toward
// silence: an unresolvable call contributes nothing, a conversion is
// assumed to copy, and composite literals / closures only count as
// allocations when they provably escape (returned, stored into a field
// or global, sent on a channel, or passed to a module callee that
// leaks the parameter).  This deliberately mirrors the compiler's
// escape analysis: a non-capturing closure or a &T{} that stays local
// is stack-allocated and must not be flagged.
//
// Sites inside error-handling blocks (an if whose condition tests an
// error-typed value) are exempt everywhere: a hot path's steady state
// is the non-error path, and building an error is the right thing to
// do once something already went wrong.
//
// The escape hatch is `netmarkvet:allocok` (always with a reason): on
// a site's own line or the line directly above it suppresses that
// site; on a function's doc comment it excuses the whole function and
// the calls it makes.  A call on an allocok line also severs the
// hotpath traversal edge, so one annotated slow-path call excuses the
// whole subtree behind it.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocSite is one hidden-allocation (or boxing) site inside a
// function body.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// CallEdge is one statically resolved same-module call, recorded for
// the hotpath transitive closure.  Calls excused by an allocok line do
// not produce edges.
type CallEdge struct {
	Pos    token.Pos
	Callee *types.Func
}

// stdlibAllocs lists standard-library calls that always allocate.
// Functions that merely *may* allocate (strings.ToLower on an already-
// lower string, strconv.Itoa on a cached small int) are left out: the
// inference errs toward silence.
var stdlibAllocs = map[string]string{
	"strings.NewReplacer": "builds a Replacer",
	"strings.NewReader":   "allocates a Reader",
	"strings.Repeat":      "builds a new string",
	"strings.Split":       "allocates the result slice",
	"strings.SplitN":      "allocates the result slice",
	"strings.SplitAfter":  "allocates the result slice",
	"strings.Fields":      "allocates the result slice",
	"strings.Join":        "builds a new string",
	"strings.Map":         "builds a new string",
	"bytes.NewBuffer":     "allocates a Buffer",
	"bytes.NewReader":     "allocates a Reader",
	"bytes.Split":         "allocates the result slice",
	"bytes.Fields":        "allocates the result slice",
	"bytes.Join":          "builds a new slice",
	"bytes.Repeat":        "builds a new slice",
	"sort.Slice":          "boxes its slice argument and allocates the closure",
	"sort.SliceStable":    "boxes its slice argument and allocates the closure",
	"regexp.Compile":      "compiles a machine",
	"regexp.MustCompile":  "compiles a machine",
	"io.ReadAll":          "grows a result buffer",
	"os.ReadFile":         "allocates the file contents",
}

// allocOKLines returns the set of source lines in fd's file excused by
// a netmarkvet:allocok comment: the comment's own line (trailing form)
// and the line after it (standalone form above the site).
func allocOKLines(pkg *Package, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "netmarkvet:allocok") {
				continue
			}
			// The marker excuses its own line (trailing comments) and
			// the line after its comment group (leading comments, which
			// may wrap across several lines before the code they excuse).
			lines[pkg.Fset.Position(c.Pos()).Line] = true
			lines[pkg.Fset.Position(cg.End()).Line+1] = true
		}
	}
	return lines
}

// fileOf returns the *ast.File containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// buildParents maps every node inside root to its parent node.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// errCondition reports whether an if condition tests an error-typed
// value — the gate for the error-path exemption.
func errCondition(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[e]; ok && tv.Value == nil && tv.Type != nil && isErrorType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// errPathSpans returns the position ranges of error-path blocks: the
// body of `if err != nil`-shaped statements, and any if-body that
// fails out by returning a non-nil error (`if x < 0 { return
// errors.New(...) }`).  A hot path's steady state never enters them.
func errPathSpans(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IfStmt:
			if (st.Cond != nil && errCondition(info, st.Cond)) || failsOut(info, st.Body.List) {
				spans = append(spans, [2]token.Pos{st.Body.Pos(), st.Body.End()})
			}
		case *ast.CaseClause:
			// A switch case that fails out (default: return fmt.Errorf...)
			// is an error path like an if-body that does.
			if failsOut(info, st.Body) {
				spans = append(spans, [2]token.Pos{st.Colon, st.End()})
			}
		}
		return true
	})
	return spans
}

// failsOut reports whether a statement list ends with a return
// carrying a non-nil error value.
func failsOut(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	ret, ok := list[len(list)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		tv, ok := info.Types[r]
		if ok && tv.Type != nil && isErrorType(tv.Type) && !tv.IsNil() {
			return true
		}
	}
	return false
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, sp := range spans {
		if pos >= sp[0] && pos <= sp[1] {
			return true
		}
	}
	return false
}

// pointerShaped reports whether a value of type t is represented as a
// single pointer word, so storing it in an interface needs no box
// allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// aliasable reports whether a value of type t can carry an alias of
// the memory it was derived from (pointers, slices, and aggregates
// containing them).  Plain scalars and strings cannot: copying them
// severs the alias (string contents are immutable and our conversions
// copy).
func aliasable(t types.Type) bool {
	return aliasableDepth(t, 0)
}

func aliasableDepth(t types.Type, depth int) bool {
	if depth > 6 {
		return true // give up conservatively on deep nesting
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasableDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return aliasableDepth(u.Elem(), depth+1)
	}
	return false
}

// isPkgLevelVar reports whether obj is a package-level variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// taintSet tracks which local objects may alias tainted memory.
type taintSet map[types.Object]bool

// seedFunc reports whether an expression is a direct taint source
// (e.g. a selector of an arena field, a call returning an arena
// alias).  nil means only the pre-seeded objects are sources.
type seedFunc func(e ast.Expr) bool

// exprTainted reports whether e may alias tainted memory under ts and
// seed.  Conversions are assumed to copy (string(b), []byte(s)) and
// sever taint — the documented bias toward silence.
func aliasTainted(info *types.Info, ts taintSet, seed seedFunc, s *Summaries, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if seed != nil && seed(e) {
		return true
	}
	switch v := e.(type) {
	case *ast.Ident:
		return ts[info.ObjectOf(v)]
	case *ast.ParenExpr:
		return aliasTainted(info, ts, seed, s, v.X)
	case *ast.StarExpr:
		return aliasTainted(info, ts, seed, s, v.X)
	case *ast.SelectorExpr:
		// A field of a tainted struct aliases it.
		return aliasTainted(info, ts, seed, s, v.X)
	case *ast.IndexExpr:
		// An element of a tainted slice is an alias only if the element
		// type can carry one (buf[i] on []uint64 yields a value).
		if tv, ok := info.Types[e]; ok && tv.Type != nil && !aliasable(tv.Type) {
			return false
		}
		return aliasTainted(info, ts, seed, s, v.X)
	case *ast.SliceExpr:
		return aliasTainted(info, ts, seed, s, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			// &x[i] aliases x even when the element is a scalar.
			return addrBaseTainted(info, ts, seed, s, v.X)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if aliasTainted(info, ts, seed, s, el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
			return false // conversion: assumed to copy
		}
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && info.Uses[id] == nil && id.Name == "append" {
			// append result aliases arg 0; spread/element args only
			// taint it when the element type can carry an alias.
			if len(v.Args) > 0 && aliasTainted(info, ts, seed, s, v.Args[0]) {
				return true
			}
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !aliasable(sl.Elem()) {
					return false
				}
			}
			for _, a := range v.Args[1:] {
				if aliasTainted(info, ts, seed, s, a) {
					return true
				}
			}
			return false
		}
		if fs := s.Of(CalleeFunc(info, v)); fs != nil {
			if fs.ReturnsArena && seed != nil {
				return true
			}
			for i, a := range v.Args {
				if i < len(fs.ReturnsParam) && fs.ReturnsParam[i] && aliasTainted(info, ts, seed, s, a) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// addrBaseTainted is exprTainted for address-of operands, where even a
// scalar element carries the alias.
func addrBaseTainted(info *types.Info, ts taintSet, seed seedFunc, s *Summaries, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.IndexExpr:
		return aliasTainted(info, ts, seed, s, v.X) || addrBaseTainted(info, ts, seed, s, v.X)
	case *ast.SelectorExpr:
		return aliasTainted(info, ts, seed, s, v.X)
	}
	return aliasTainted(info, ts, seed, s, e)
}

// localTaint computes the fixed point of taint over fd's local
// variables, starting from the pre-seeded objects in ts and the seed
// predicate.  It mutates and returns ts.
func localTaint(pkg *Package, fd *ast.FuncDecl, ts taintSet, seed seedFunc, s *Summaries) taintSet {
	info := pkg.Info
	for iter := 0; iter < 8; iter++ {
		changed := false
		taintObj := func(obj types.Object) {
			if obj != nil && !ts[obj] && !isPkgLevelVar(obj) {
				ts[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					var rhs ast.Expr
					if len(v.Rhs) == len(v.Lhs) {
						rhs = v.Rhs[i]
					} else if len(v.Rhs) == 1 {
						rhs = v.Rhs[0]
					}
					if rhs == nil || !aliasTainted(info, ts, seed, s, rhs) {
						continue
					}
					switch l := unparen(lhs).(type) {
					case *ast.Ident:
						taintObj(info.ObjectOf(l))
					case *ast.IndexExpr:
						// Storing an alias into a local slice taints the
						// slice itself.
						if id, ok := unparen(l.X).(*ast.Ident); ok {
							taintObj(info.ObjectOf(id))
						}
					}
				}
			case *ast.RangeStmt:
				if aliasTainted(info, ts, seed, s, v.X) {
					if id, ok := v.Value.(*ast.Ident); ok && id.Name != "_" {
						if tv, ok := info.Types[v.X]; ok && tv.Type != nil {
							if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !aliasable(sl.Elem()) {
								break
							}
						}
						taintObj(info.ObjectOf(id))
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return ts
}

// sinkRec is one place a tainted value is retained past the function.
type sinkRec struct {
	Pos  token.Pos
	Desc string
}

// sinkOpts tunes findSinks per caller.
type sinkOpts struct {
	// allowArena permits stores back into arena-tagged fields (the
	// refill `it.buf = decode(...)` is the arena's purpose).
	allowArena bool
	// paramStores treats stores into parameter-reachable memory
	// (p[i] = x, *p = x) as sinks — used by aliascap, where handing an
	// alias to the caller's memory retains it.
	paramStores bool
}

// findSinks walks fd for places a tainted value escapes: stores into
// fields or globals, channel sends, passing to a module callee that
// leaks the parameter, and goroutines capturing tainted state.
// Returns are not sinks here — they propagate through ReturnsParam /
// ReturnsArena instead.
func findSinks(pkg *Package, fd *ast.FuncDecl, ts taintSet, seed seedFunc, s *Summaries, opts sinkOpts) []sinkRec {
	info := pkg.Info
	var sinks []sinkRec
	tainted := func(e ast.Expr) bool { return aliasTainted(info, ts, seed, s, e) }
	paramObjs := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				paramObjs[info.ObjectOf(name)] = true
			}
		}
	}
	sinkLHS := func(lhs ast.Expr) (string, bool) {
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(l); isPkgLevelVar(obj) {
				return "stored into package variable " + l.Name, true
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
				if opts.allowArena && s.ArenaFields[sel.Obj()] {
					return "", false
				}
				return "stored into field " + sel.Obj().Name(), true
			}
			if obj := info.ObjectOf(l.Sel); isPkgLevelVar(obj) {
				return "stored into package variable " + l.Sel.Name, true
			}
		case *ast.IndexExpr:
			if obj := writtenField(info, l); obj != nil {
				if opts.allowArena && s.ArenaFields[obj] {
					return "", false
				}
				return "stored into field " + obj.Name(), true
			}
			if id, ok := unparen(l.X).(*ast.Ident); ok {
				obj := info.ObjectOf(id)
				if isPkgLevelVar(obj) {
					return "stored into package variable " + id.Name, true
				}
				if opts.paramStores && paramObjs[obj] {
					return "stored into caller-visible memory via parameter " + id.Name, true
				}
			}
		case *ast.StarExpr:
			if id, ok := unparen(l.X).(*ast.Ident); ok {
				obj := info.ObjectOf(id)
				if opts.paramStores && paramObjs[obj] {
					return "stored through pointer parameter " + id.Name, true
				}
			}
		}
		return "", false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				var rhs ast.Expr
				if len(v.Rhs) == len(v.Lhs) {
					rhs = v.Rhs[i]
				} else if len(v.Rhs) == 1 {
					rhs = v.Rhs[0]
				}
				if rhs == nil || !tainted(rhs) {
					continue
				}
				if desc, bad := sinkLHS(lhs); bad {
					sinks = append(sinks, sinkRec{Pos: v.Pos(), Desc: desc})
				}
			}
		case *ast.SendStmt:
			if tainted(v.Value) {
				sinks = append(sinks, sinkRec{Pos: v.Pos(), Desc: "sent on a channel"})
			}
		case *ast.CallExpr:
			fs := s.Of(CalleeFunc(info, v))
			if fs == nil {
				return true
			}
			sig := funcSig(fs.Fn)
			for i, a := range v.Args {
				if !tainted(a) {
					continue
				}
				pi := i
				if sig.Variadic() && pi >= sig.Params().Len()-1 {
					pi = sig.Params().Len() - 1
				}
				if pi < len(fs.LeaksParam) && fs.LeaksParam[pi] {
					sinks = append(sinks, sinkRec{Pos: a.Pos(), Desc: "passed to " + displayFuncName(fs.Fn) + ", which retains it"})
				}
			}
		case *ast.GoStmt:
			goTainted := false
			for _, a := range v.Call.Args {
				if tainted(a) {
					goTainted = true
				}
			}
			if fl, ok := unparen(v.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && ts[info.Uses[id]] {
						goTainted = true
						return false
					}
					return true
				})
			}
			if goTainted {
				sinks = append(sinks, sinkRec{Pos: v.Pos(), Desc: "captured by a goroutine"})
			}
		}
		return true
	})
	return sinks
}

// returnsTainted reports whether any return statement in fd returns a
// tainted expression.
func returnsTainted(pkg *Package, fd *ast.FuncDecl, ts taintSet, seed seedFunc, s *Summaries) bool {
	info := pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return true // returns inside closures are the closure's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if aliasTainted(info, ts, seed, s, r) {
				found = true
			}
		}
		return true
	})
	return found
}

// paramSeeds returns a taint set holding fd's aliasable parameters
// selected by keep (by index).
func paramSeeds(pkg *Package, fd *ast.FuncDecl, keep func(i int) bool) taintSet {
	ts := make(taintSet)
	i := 0
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if keep(i) {
					if obj := pkg.Info.ObjectOf(name); obj != nil {
						ts[obj] = true
					}
				}
				i++
			}
		}
	}
	return ts
}

// arenaSeed builds the seed predicate for arena taint in fs: selectors
// of arena-tagged fields and parameters marked ArenaParam by callers.
func arenaSeed(fs *FuncSummary, s *Summaries) (taintSet, seedFunc, bool) {
	info := fs.Pkg.Info
	ts := make(taintSet)
	any := false
	params := funcSig(fs.Fn).Params()
	for i := 0; i < params.Len() && i < len(fs.ArenaParam); i++ {
		if fs.ArenaParam[i] {
			ts[params.At(i)] = true
			any = true
		}
	}
	seed := func(e ast.Expr) bool {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selection, ok := info.Selections[sel]
		return ok && selection.Kind() == types.FieldVal && s.ArenaFields[selection.Obj()]
	}
	// Cheap pre-scan: does the body mention an arena source at all?
	if !any {
		ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
			if any {
				return false
			}
			if e, ok := n.(ast.Expr); ok && seed(e) {
				any = true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if cs := s.Of(CalleeFunc(info, call)); cs != nil && cs.ReturnsArena {
					any = true
				}
			}
			return true
		})
	}
	return ts, seed, any
}

// typeLabel formats t with bare package names (a.row, not the full
// import path) for readable diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// DisplayName renders fn for diagnostics: "(*T).Method" or "Func".
func DisplayName(fn *types.Func) string { return displayFuncName(fn) }

// ArenaLeaks reports the places fs retains an alias derived from a
// netmarkvet:arena buffer (directly, through an arena-returning
// callee, or through a parameter some caller passes an arena alias
// in).  Sites on netmarkvet:allocok lines are excused.
func ArenaLeaks(fs *FuncSummary, s *Summaries) []AllocSite {
	if len(s.ArenaFields) == 0 || fs.AllocOK {
		return nil
	}
	ts, seed, any := arenaSeed(fs, s)
	if !any {
		return nil
	}
	localTaint(fs.Pkg, fs.Decl, ts, seed, s)
	file := fileOf(fs.Pkg, fs.Decl.Pos())
	var okLines map[int]bool
	if file != nil {
		okLines = allocOKLines(fs.Pkg, file)
	}
	var out []AllocSite
	for _, sk := range findSinks(fs.Pkg, fs.Decl, ts, seed, s, sinkOpts{allowArena: true, paramStores: true}) {
		if okLines[fs.Pkg.Fset.Position(sk.Pos).Line] {
			continue
		}
		out = append(out, AllocSite{Pos: sk.Pos, What: sk.Desc})
	}
	return out
}

// collectAllocFacts fills fs.Allocs, fs.Boxes, and fs.HotCalls from
// the function body.  Runs once, after the summary fixed point, so
// leak facts of callees are final.
func collectAllocFacts(fs *FuncSummary, s *Summaries) {
	pkg, info := fs.Pkg, fs.Pkg.Info
	if fs.AllocOK {
		return // function-level escape hatch: no sites, no edges
	}
	file := fileOf(pkg, fs.Decl.Pos())
	if file == nil {
		return
	}
	okLines := allocOKLines(pkg, file)
	excused := func(pos token.Pos) bool { return okLines[pkg.Fset.Position(pos).Line] }
	errSpans := errPathSpans(info, fs.Decl.Body)
	parents := buildParents(fs.Decl.Body)
	presized := presizedSlices(pkg, fs.Decl)
	skip := func(pos token.Pos) bool { return excused(pos) || inSpans(errSpans, pos) }
	addAlloc := func(pos token.Pos, what string) {
		if !skip(pos) {
			fs.Allocs = append(fs.Allocs, AllocSite{Pos: pos, What: what})
		}
	}
	addBox := func(pos token.Pos, what string) {
		if !skip(pos) {
			fs.Boxes = append(fs.Boxes, AllocSite{Pos: pos, What: what})
		}
	}

	ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			collectCallFacts(fs, s, v, parents, presized, skip, addAlloc, addBox)
		case *ast.CompositeLit:
			tv, ok := info.Types[v]
			if !ok || tv.Type == nil {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				addAlloc(v.Pos(), "map literal allocates")
			case *types.Slice:
				addAlloc(v.Pos(), "slice literal allocates")
			case *types.Struct, *types.Array:
				// Value literal: only an alloc when its address escapes,
				// handled at the &T{} site.
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := unparen(v.X).(*ast.CompositeLit); ok {
					if escapes(fs, s, v, parents) {
						_ = cl
						addAlloc(v.Pos(), "escaping &composite literal allocates")
					}
				}
			}
		case *ast.FuncLit:
			if closureCaptures(pkg, fs.Decl, v) && escapes(fs, s, v, parents) {
				addAlloc(v.Pos(), "escaping capturing closure allocates")
			}
		case *ast.GoStmt:
			addAlloc(v.Pos(), "go statement allocates a goroutine")
		}
		if n != nil {
			collectBoxFacts(fs, s, n, addBox)
		}
		return true
	})
}

// collectCallFacts handles one call expression: builtins (make, new,
// append), conversions, stdlib allocators, fmt/errors, and module call
// edges for the hotpath closure.
func collectCallFacts(fs *FuncSummary, s *Summaries, call *ast.CallExpr, parents map[ast.Node]ast.Node,
	presized map[types.Object]bool, skip func(token.Pos) bool,
	addAlloc func(token.Pos, string), addBox func(token.Pos, string)) {
	info := fs.Pkg.Info

	// Conversions: string <-> []byte / []rune copy; conversions into an
	// interface type box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) != 1 {
			return
		}
		from := info.Types[call.Args[0]].Type
		if types.IsInterface(to.Underlying()) {
			if from != nil && !types.IsInterface(from.Underlying()) && !pointerShaped(from) {
				addBox(call.Pos(), fmt.Sprintf("conversion of %s to interface boxes", typeLabel(from)))
			}
			return
		}
		if from == nil {
			return
		}
		if convCopies(from, to) {
			// m[string(b)] is elided by the compiler.
			if idx, ok := parents[call].(*ast.IndexExpr); ok && idx.Index == call {
				if btv, ok := info.Types[idx.X]; ok && btv.Type != nil {
					if _, isMap := btv.Type.Underlying().(*types.Map); isMap {
						return
					}
				}
			}
			addAlloc(call.Pos(), fmt.Sprintf("conversion %s -> %s copies", typeLabel(from), typeLabel(to)))
		}
		return
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				addAlloc(call.Pos(), "make allocates")
			case "new":
				if escapes(fs, s, call, parents) {
					addAlloc(call.Pos(), "escaping new(T) allocates")
				}
			case "append":
				if len(call.Args) > 0 && !appendPresized(info, call.Args[0], presized) {
					addAlloc(call.Pos(), "append beyond a provable pre-sized cap may grow")
				}
			}
			return
		}
	}

	fn := CalleeFunc(info, call)
	if fn == nil {
		return // function value / interface method: silence
	}
	if cs := s.Of(fn); cs != nil {
		if cs != fs && !skip(call.Pos()) {
			fs.HotCalls = append(fs.HotCalls, CallEdge{Pos: call.Pos(), Callee: fn})
		}
		return
	}
	name := stdlibFuncName(fn)
	if why, ok := stdlibAllocs[name]; ok {
		addAlloc(call.Pos(), "call to "+name+" allocates ("+why+")")
		return
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			addAlloc(call.Pos(), "call to "+name+" allocates")
		}
	}
}

// convCopies reports whether a conversion from -> to copies memory:
// string <-> []byte / []rune.
func convCopies(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}

// collectBoxFacts records implicit concrete -> interface conversions:
// call arguments, assignments, variable declarations, returns, map
// stores, and channel sends.  Pointer-shaped values are exempt — they
// fit the interface word without allocating.
func collectBoxFacts(fs *FuncSummary, s *Summaries, n ast.Node, addBox func(token.Pos, string)) {
	info := fs.Pkg.Info
	boxed := func(pos token.Pos, to types.Type, from ast.Expr, ctx string) {
		if to == nil || !types.IsInterface(to.Underlying()) {
			return
		}
		ftv, ok := info.Types[from]
		if !ok || ftv.Type == nil {
			return
		}
		ft := ftv.Type
		if ftv.IsNil() || types.IsInterface(ft.Underlying()) || pointerShaped(ft) {
			return
		}
		addBox(pos, fmt.Sprintf("%s boxes %s into %s", ctx, typeLabel(ft), typeLabel(to)))
	}
	switch v := n.(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[v.Fun]; ok && (tv.IsType() || tv.Type == nil) {
			return // conversions handled in collectCallFacts
		}
		ftv, ok := info.Types[v.Fun]
		if !ok || ftv.Type == nil {
			return
		}
		sig, ok := ftv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		for i, a := range v.Args {
			pi := i
			if sig.Variadic() && pi >= sig.Params().Len()-1 {
				if v.Ellipsis != token.NoPos {
					continue // spread: no per-element boxing
				}
				pi = sig.Params().Len() - 1
			}
			if pi >= sig.Params().Len() {
				continue
			}
			pt := sig.Params().At(pi).Type()
			if sig.Variadic() && pi == sig.Params().Len()-1 {
				if sl, ok := pt.Underlying().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
			boxed(a.Pos(), pt, a, "argument")
		}
	case *ast.AssignStmt:
		if len(v.Lhs) != len(v.Rhs) {
			return
		}
		for i := range v.Lhs {
			ltv, ok := info.Types[v.Lhs[i]]
			if !ok {
				// := defines the LHS; no conversion happens.
				continue
			}
			boxed(v.Rhs[i].Pos(), ltv.Type, v.Rhs[i], "assignment")
		}
	case *ast.ValueSpec:
		if v.Type == nil {
			return
		}
		ttv, ok := info.Types[v.Type]
		if !ok {
			return
		}
		for _, val := range v.Values {
			boxed(val.Pos(), ttv.Type, val, "declaration")
		}
	case *ast.ReturnStmt:
		sig := funcSig(fs.Fn)
		if len(v.Results) != sig.Results().Len() {
			return
		}
		for i, r := range v.Results {
			boxed(r.Pos(), sig.Results().At(i).Type(), r, "return")
		}
	case *ast.SendStmt:
		if ctv, ok := info.Types[v.Chan]; ok && ctv.Type != nil {
			if ch, ok := ctv.Type.Underlying().(*types.Chan); ok {
				boxed(v.Value.Pos(), ch.Elem(), v.Value, "channel send")
			}
		}
	case *ast.IndexExpr:
		// Map stores are covered by the AssignStmt case via LHS types;
		// nothing to do here.
	}
}

// presizedSlices returns the local slice objects provably created with
// an explicit length or capacity in fd (append into them up to that
// cap does not grow).  Slice-typed parameters are included: their
// capacity is the caller's contract.
func presizedSlices(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	info := pkg.Info
	out := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				obj := info.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) < 2 {
				continue
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if lid, ok := unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.ObjectOf(lid); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// appendPresized reports whether the append base is a slice we can
// prove was pre-sized (a parameter or a local made with explicit
// len/cap).
func appendPresized(info *types.Info, base ast.Expr, presized map[types.Object]bool) bool {
	if id, ok := unparen(base).(*ast.Ident); ok {
		return presized[info.ObjectOf(id)]
	}
	return false
}

// closureCaptures reports whether fl references variables declared in
// the enclosing function (a capturing closure needs a heap cell when
// it escapes).
func closureCaptures(pkg *Package, fd *ast.FuncDecl, fl *ast.FuncLit) bool {
	info := pkg.Info
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || isPkgLevelVar(v) {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() >= fd.Pos() && v.Pos() < fl.Pos() {
			captures = true
		}
		return true
	})
	return captures
}

// escapes decides whether the value created at expr outlives the
// function, by the expression's syntactic context.  Bias toward
// silence: unknown callees and untracked contexts do not escape.
func escapes(fs *FuncSummary, s *Summaries, expr ast.Expr, parents map[ast.Node]ast.Node) bool {
	pkg, info := fs.Pkg, fs.Pkg.Info
	node := ast.Node(expr)
	for depth := 0; depth < 12; depth++ {
		parent := parents[node]
		if parent == nil {
			return false
		}
		switch p := parent.(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.CompositeLit, *ast.UnaryExpr:
			node = parent
			continue
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return p.Value == node
		case *ast.GoStmt:
			return true
		case *ast.DeferStmt:
			return false
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != node {
					continue
				}
				var lhs ast.Expr
				if len(p.Lhs) == len(p.Rhs) {
					lhs = p.Lhs[i]
				} else if len(p.Lhs) > 0 {
					lhs = p.Lhs[0]
				}
				switch l := unparen(lhs).(type) {
				case *ast.Ident:
					obj := info.ObjectOf(l)
					if obj == nil || isPkgLevelVar(obj) {
						return true
					}
					// Local: escapes if the local has any retention sink.
					ts := taintSet{obj: true}
					localTaint(pkg, fs.Decl, ts, nil, s)
					if len(findSinks(pkg, fs.Decl, ts, nil, s, sinkOpts{})) > 0 {
						return true
					}
					return returnsTainted(pkg, fs.Decl, ts, nil, s)
				default:
					return true // field, index, star: stored away
				}
			}
			return false
		case *ast.CallExpr:
			if p.Fun == node {
				return false // immediately invoked
			}
			fn := CalleeFunc(info, p)
			if fn == nil {
				return false // function value: silence
			}
			if cs := s.Of(fn); cs != nil {
				sig := funcSig(fn)
				for i, a := range p.Args {
					if a != node {
						continue
					}
					pi := i
					if sig.Variadic() && pi >= sig.Params().Len()-1 {
						pi = sig.Params().Len() - 1
					}
					if pi < len(cs.LeaksParam) && cs.LeaksParam[pi] {
						return true
					}
				}
				return false
			}
			return false // stdlib: assumed non-retaining (sort.Search etc.)
		default:
			return false
		}
	}
	return false
}
