// Package snapcover checks snapshot coverage: every persistable field
// tagged `netmarkvet:snap` must be referenced by both the snapshot
// encode path and the snapshot decode path.  "Added a field, forgot
// the snapshot" is the classic reopen-equivalence bug — the store
// works until the first restart, then silently comes back missing
// state — and it is invisible to tests that never restart.
//
// The paths are rooted at functions annotated `netmarkvet:snap-encode`
// and `netmarkvet:snap-decode` and closed over their same-package
// callees (cross-package state — the text index inside the XML store —
// carries its own annotations in its own package).  A reference is any
// selection or declaration-scope use of the field object inside the
// closure.
package snapcover

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the snapcover pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapcover",
	Doc:  "netmarkvet:snap fields must be referenced by both snapshot encode and decode paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if len(facts.Snap) == 0 {
		return nil
	}
	if len(facts.SnapEncode) == 0 || len(facts.SnapDecode) == 0 {
		for obj := range facts.Snap {
			pass.Reportf(obj.Pos(),
				"package has netmarkvet:snap fields but no netmarkvet:snap-%s root",
				missingRoot(facts))
			break // one finding per package is enough
		}
		return nil
	}
	encode := referencedFields(pass, closure(pass, facts.SnapEncode))
	decode := referencedFields(pass, closure(pass, facts.SnapDecode))
	for _, obj := range sortedFields(facts.Snap) {
		inEnc, inDec := encode[obj], decode[obj]
		switch {
		case !inEnc && !inDec:
			pass.Reportf(obj.Pos(),
				"snap field %s is referenced by neither the snapshot encode nor decode path",
				obj.Name())
		case !inEnc:
			pass.Reportf(obj.Pos(),
				"snap field %s is not referenced by the snapshot encode path (netmarkvet:snap-encode)",
				obj.Name())
		case !inDec:
			pass.Reportf(obj.Pos(),
				"snap field %s is not referenced by the snapshot decode path (netmarkvet:snap-decode)",
				obj.Name())
		}
	}
	return nil
}

func missingRoot(facts *analysis.Facts) string {
	if len(facts.SnapEncode) == 0 {
		return "encode"
	}
	return "decode"
}

// sortedFields orders the snap set by declaration position so
// diagnostics are deterministic.
func sortedFields(snap map[types.Object]bool) []types.Object {
	out := make([]types.Object, 0, len(snap))
	for obj := range snap {
		out = append(out, obj)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// closure expands the root set over same-package callees (including
// method values and function references, not just direct calls).
func closure(pass *analysis.Pass, roots map[*ast.FuncDecl]bool) map[*ast.FuncDecl]bool {
	// Index the package's declared functions by their object.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	out := make(map[*ast.FuncDecl]bool, len(roots))
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if out[fd] {
			return
		}
		out[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if callee, ok := decls[obj]; ok {
					visit(callee)
				}
			}
			return true
		})
	}
	for fd := range roots {
		visit(fd)
	}
	return out
}

// referencedFields collects every struct-field object referenced
// anywhere inside the function set.
func referencedFields(pass *analysis.Pass, funcs map[*ast.FuncDecl]bool) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for fd := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
					out[sel.Obj()] = true
				}
			case *ast.Ident:
				// Composite-literal keys and embedded uses resolve
				// through Uses.
				if obj := pass.TypesInfo.Uses[v]; obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	return out
}
