// Package b has snap fields but no codec roots at all: snapcover
// reports the missing root once rather than flagging every field.
package b

// T persists x but the package declares no snapshot encode path.
type T struct {
	// netmarkvet:snap
	x int // want `no netmarkvet:snap-encode root`
}
