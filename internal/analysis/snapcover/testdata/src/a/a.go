// Package a is the snapcover golden corpus: every netmarkvet:snap
// field must be referenced by both the snapshot encode and decode
// closures.
package a

// Store is the persistable stand-in.
type Store struct {
	// netmarkvet:snap
	nextID uint64
	// names round-trips through helpers on both sides.
	// netmarkvet:snap
	names map[uint64]string
	// netmarkvet:snap
	missingBoth int // want `referenced by neither the snapshot encode nor decode path`
	// netmarkvet:snap
	encodeOnly int // want `not referenced by the snapshot decode path`
	// netmarkvet:snap
	decodeOnly int // want `not referenced by the snapshot encode path`
	// scratch is derived at runtime and deliberately not tagged.
	scratch int
}

// encodeSnapshot serialises the store onto buf.
//
// netmarkvet:snap-encode
func (s *Store) encodeSnapshot(buf []byte) []byte {
	buf = appendUint(buf, s.nextID)
	buf = appendNames(buf, s.names)
	buf = appendUint(buf, uint64(s.encodeOnly))
	return buf
}

// applySnapshot installs decoded state.
//
// netmarkvet:snap-decode
func (s *Store) applySnapshot(data []byte) {
	s.nextID = readUint(data)
	s.installNames(data)
	s.decodeOnly = int(readUint(data))
	s.scratch = 0
}

func appendUint(buf []byte, v uint64) []byte { return append(buf, byte(v)) }

// appendNames is reached through the encode closure.
func appendNames(buf []byte, m map[uint64]string) []byte {
	for id := range m {
		buf = appendUint(buf, id)
	}
	return buf
}

func readUint(data []byte) uint64 {
	if len(data) == 0 {
		return 0
	}
	return uint64(data[0])
}

// installNames is reached through the decode closure.
func (s *Store) installNames(data []byte) {
	s.names = make(map[uint64]string)
}
