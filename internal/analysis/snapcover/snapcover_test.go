package snapcover_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/snapcover"
)

func TestSnapcover(t *testing.T) {
	analysistest.Run(t, ".", "a", snapcover.Analyzer)
}

func TestMissingRoot(t *testing.T) {
	analysistest.Run(t, ".", "b", snapcover.Analyzer)
}
