// Package ackorder checks the durability-before-ack protocol in HTTP
// handlers: any path through a handler that mutates the store must
// reach a WAL commit/sync before it writes a 2xx status.  Acking a
// client and then losing the write to a crash is the PR 2 DELETE bug —
// this pass generalizes that fix to every handler and every future
// endpoint.
//
// Mutation and commit facts come from the interprocedural summaries
// (netmarkvet:mutates / netmarkvet:commit seeds closed over the call
// graph), so a handler calling store.DeleteDocument → Table.Delete is
// recognized without annotating the handler itself.  An ack is an
// explicit WriteHeader with a constant 2xx status, or the first body
// write on the ResponseWriter (net/http's implicit 200) — directly or
// through a helper summarized as writing to its writer parameter.
// http.Error and a WriteHeader with a dynamic or non-2xx status are
// not acks (they end the response, so later body writes stop counting
// as implicit 200s).
//
// The check runs as a forward dataflow over the function CFG: the
// state tracks {mutated-uncommitted, header-written} per path, joins
// are unions, and a finding fires at any ack event reachable with an
// uncommitted mutation.
package ackorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the ackorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "ackorder",
	Doc:  "handler paths that mutate the store must commit the WAL before writing a 2xx status",
	Run:  run,
}

// Path state bits.  A state is one combination of the two; the
// dataflow value is the bitmask of reachable combinations.
const (
	stHeader = 1 << iota // response status already written
	stDirty              // store mutated, not yet committed
)

const numStates = 4

type stateSet uint8 // bit s set ⇔ path state s reachable

const entryState stateSet = 1 << 0 // clean, no header written

type evKind int

const (
	evMutate evKind = iota
	evCommit
	evAck2xx // explicit constant-2xx WriteHeader
	evWrite  // body write: an implicit 200 only while no header yet
	evHeader // non-success status write (http.Error, WriteHeader(5xx))
)

type event struct {
	kind evKind
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) error {
	summ := pass.Mod.Summaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if w := handlerWriter(pass, fd.Type); w != nil {
				checkHandler(pass, summ, fd.Body, w)
			}
			// Handlers written as literals (mux.HandleFunc("/x",
			// func(w, r) {...})) are checked the same way.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				fl, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if w := handlerWriter(pass, fl.Type); w != nil {
					checkHandler(pass, summ, fl.Body, w)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// handlerWriter returns the http.ResponseWriter parameter's object
// when ft is a handler signature — it declares both a ResponseWriter
// and a *http.Request parameter — else nil.
func handlerWriter(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	var writer types.Object
	hasReq := false
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if analysis.IsResponseWriter(obj.Type()) {
				writer = obj
			}
			if isHTTPRequestPtr(obj.Type()) {
				hasReq = true
			}
		}
	}
	if writer != nil && hasReq {
		return writer
	}
	return nil
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func checkHandler(pass *analysis.Pass, summ *analysis.Summaries, body *ast.BlockStmt, w types.Object) {
	g := analysis.FuncCFG(body, pass.TypesInfo)
	events := make([][]event, len(g.Blocks))
	for _, blk := range g.Blocks {
		events[blk.Index] = blockEvents(pass, summ, blk, w)
	}
	in := make([]stateSet, len(g.Blocks))
	out := make([]stateSet, len(g.Blocks))
	in[g.Entry.Index] = entryState
	rpo := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			s := in[blk.Index]
			if blk == g.Entry {
				s |= entryState
			}
			s = transfer(s, events[blk.Index], nil)
			if s != out[blk.Index] {
				out[blk.Index] = s
				changed = true
			}
			for _, succ := range blk.Succs {
				if in[succ.Index]|s != in[succ.Index] {
					in[succ.Index] |= s
					changed = true
				}
			}
		}
	}
	// Reporting pass over the settled states.
	reported := make(map[token.Pos]bool)
	report := func(ev event) {
		if reported[ev.pos] {
			return
		}
		reported[ev.pos] = true
		pass.Reportf(ev.pos,
			"handler acks with a 2xx (%s) while a store mutation is uncommitted: commit the WAL before writing the status",
			ev.what)
	}
	for _, blk := range rpo {
		s := in[blk.Index]
		if blk == g.Entry {
			s |= entryState
		}
		transfer(s, events[blk.Index], report)
	}
}

// transfer runs one block's events over a state set; report (when
// non-nil) fires for ack events reachable with an uncommitted
// mutation.
func transfer(s stateSet, evs []event, report func(event)) stateSet {
	for _, ev := range evs {
		switch ev.kind {
		case evMutate:
			s = mapStates(s, func(st uint8) uint8 { return st | stDirty })
		case evCommit:
			s = mapStates(s, func(st uint8) uint8 { return st &^ stDirty })
		case evHeader:
			s = mapStates(s, func(st uint8) uint8 { return st | stHeader })
		case evAck2xx:
			if report != nil && anyState(s, func(st uint8) bool { return st&stDirty != 0 }) {
				report(ev)
			}
			s = mapStates(s, func(st uint8) uint8 { return st | stHeader })
		case evWrite:
			if report != nil && anyState(s, func(st uint8) bool {
				return st&stDirty != 0 && st&stHeader == 0
			}) {
				report(ev)
			}
			s = mapStates(s, func(st uint8) uint8 { return st | stHeader })
		}
	}
	return s
}

func mapStates(s stateSet, f func(uint8) uint8) stateSet {
	var out stateSet
	for st := uint8(0); st < numStates; st++ {
		if s&(1<<st) != 0 {
			out |= 1 << f(st)
		}
	}
	return out
}

func anyState(s stateSet, f func(uint8) bool) bool {
	for st := uint8(0); st < numStates; st++ {
		if s&(1<<st) != 0 && f(st) {
			return true
		}
	}
	return false
}

// blockEvents extracts the ordered mutate/commit/ack events from one
// basic block.
func blockEvents(pass *analysis.Pass, summ *analysis.Summaries, blk *analysis.Block, w types.Object) []event {
	var evs []event
	info := pass.TypesInfo
	for _, n := range blk.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// Deferred calls run after the response is complete;
			// nothing they do can reorder the ack.
			continue
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if _, isLit := c.(*ast.FuncLit); isLit {
				return false // literals are analyzed as their own handlers
			}
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			evs = append(evs, callEvents(info, summ, call, w)...)
			return true
		})
	}
	return evs
}

// callEvents classifies one call.  A call can produce several events
// (a helper that both mutates and writes would mutate first).
func callEvents(info *types.Info, summ *analysis.Summaries, call *ast.CallExpr, w types.Object) []event {
	var evs []event
	callee := analysis.CalleeFunc(info, call)
	fs := summ.Of(callee)
	if fs != nil && fs.Mutates {
		evs = append(evs, event{kind: evMutate, pos: call.Pos()})
	}
	// Method calls on the writer itself.
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := analysis.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == w {
			switch sel.Sel.Name {
			case "WriteHeader":
				if len(call.Args) == 1 {
					if code, isConst := analysis.ConstStatusCode(info, call.Args[0]); isConst {
						if code >= 200 && code < 300 {
							return append(evs, event{kind: evAck2xx, pos: call.Pos(),
								what: "WriteHeader"})
						}
						return append(evs, event{kind: evHeader, pos: call.Pos()})
					}
					return append(evs, event{kind: evHeader, pos: call.Pos()})
				}
			case "Write", "WriteString":
				return append(evs, event{kind: evWrite, pos: call.Pos(),
					what: "body write"})
			}
		}
	}
	// The writer passed to a helper.
	for i, arg := range call.Args {
		id, ok := analysis.Unparen(arg).(*ast.Ident)
		if !ok || info.ObjectOf(id) != w {
			continue
		}
		if analysis.StdlibNonAck(callee) {
			return append(evs, event{kind: evHeader, pos: call.Pos()})
		}
		if idx, ok := analysis.StdlibWriterArg(callee); ok && i == idx {
			return append(evs, event{kind: evWrite, pos: call.Pos(),
				what: callee.Name()})
		}
		if fs != nil && i < len(fs.AcksParam) && fs.AcksParam[i] {
			return append(evs, event{kind: evWrite, pos: call.Pos(),
				what: callee.Name()})
		}
	}
	if fs != nil && fs.Commits {
		evs = append(evs, event{kind: evCommit, pos: call.Pos()})
	}
	return evs
}
