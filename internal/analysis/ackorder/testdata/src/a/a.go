// Package a is the ackorder golden corpus: handler paths that mutate
// the store must reach a commit before writing a 2xx status.  The
// known-bad cases seed the PR 2 DELETE bug — acking the client before
// the WAL made the mutation durable.
package a

import (
	"fmt"
	"net/http"
)

// Store is a stand-in persistent store.
type Store struct{ n int }

// Insert mutates persistent state.
//
// netmarkvet:mutates
func (s *Store) Insert(v string) error {
	s.n++
	return nil
}

// Commit makes prior mutations durable.
//
// netmarkvet:commit
func (s *Store) Commit() error { return nil }

// remove is recognized transitively: it calls the annotated mutator.
func (s *Store) remove(v string) error { return s.Insert(v) }

// writeOK writes a success body through w (an acking helper in the
// summary).
func writeOK(w http.ResponseWriter, msg string) {
	fmt.Fprintln(w, msg)
}

// --- known good ---------------------------------------------------------

func goodCommitThenAck(s *Store, w http.ResponseWriter, r *http.Request) {
	if err := s.Insert("x"); err != nil {
		http.Error(w, "insert failed", http.StatusInternalServerError)
		return
	}
	if err := s.Commit(); err != nil {
		http.Error(w, "commit failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func goodReadOnly(s *Store, w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, s.n)
}

func goodCommitThenHelperAck(s *Store, w http.ResponseWriter, r *http.Request) {
	if err := s.remove("x"); err != nil {
		http.Error(w, "remove failed", http.StatusInternalServerError)
		return
	}
	if err := s.Commit(); err != nil {
		http.Error(w, "commit failed", http.StatusInternalServerError)
		return
	}
	writeOK(w, "gone")
}

func goodErrorStatusIsNotAnAck(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintln(w, "failed") // body after a 5xx header: not an implicit 200
}

// --- known bad ----------------------------------------------------------

func badAckBeforeCommit(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	w.WriteHeader(http.StatusNoContent) // want `acks with a 2xx`
	_ = s.Commit()
}

func badNoCommitAtAll(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	w.WriteHeader(http.StatusOK) // want `acks with a 2xx`
}

func badImplicitAck(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	fmt.Fprintln(w, "ok") // want `acks with a 2xx`
}

func badHelperAck(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	writeOK(w, "ok") // want `acks with a 2xx`
}

func badTransitiveMutation(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.remove("x")
	w.WriteHeader(http.StatusNoContent) // want `acks with a 2xx`
}

func badOnOnePathOnly(s *Store, w http.ResponseWriter, r *http.Request) {
	if r.Method == "DELETE" {
		_ = s.Insert("x")
	}
	w.WriteHeader(http.StatusOK) // want `acks with a 2xx`
}

func badCommitOnOnePathOnly(s *Store, w http.ResponseWriter, r *http.Request) {
	_ = s.Insert("x")
	if r.Method == "DELETE" {
		_ = s.Commit()
	}
	w.WriteHeader(http.StatusOK) // want `acks with a 2xx`
}

// badLiteral seeds the violation inside a handler literal, the shape
// mux.HandleFunc registrations use.
func badLiteral(s *Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = s.Insert("x")
		w.WriteHeader(http.StatusOK) // want `acks with a 2xx`
	}
}
