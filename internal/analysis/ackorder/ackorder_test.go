package ackorder_test

import (
	"testing"

	"netmark/internal/analysis/ackorder"
	"netmark/internal/analysis/analysistest"
)

func TestAckorder(t *testing.T) {
	analysistest.Run(t, ".", "a", ackorder.Analyzer)
}
