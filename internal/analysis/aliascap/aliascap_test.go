package aliascap_test

import (
	"testing"

	"netmark/internal/analysis/aliascap"
	"netmark/internal/analysis/analysistest"
)

func TestAliascap(t *testing.T) {
	analysistest.Run(t, ".", "a", aliascap.Analyzer)
}
