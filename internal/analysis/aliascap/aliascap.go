// Package aliascap guards the lifetime contract of pooled and reused
// buffers.  A struct field tagged `netmarkvet:arena` (posting-list
// iterator decode scratch, page frames, fill buffers) is refilled in
// place; any subslice or pointer derived from it is valid only until
// the next fill.  Retaining such an alias — storing it into a
// non-arena field or global, sending it on a channel, capturing it in
// a goroutine, or handing it to a callee that retains its argument —
// is a use-after-reuse bug waiting for the next refill, the class of
// corruption the COW and cache machinery otherwise takes on faith.
//
// The taint is interprocedural: callees that return arena aliases
// (ReturnsArena) extend it through calls, and parameters that receive
// arena aliases from any caller (ArenaParam) are checked inside the
// callee too.  Copies sever the taint — string(b), append into a
// fresh slice, element reads of scalar slices — and a refill store
// back into an arena field is the arena's purpose, not a leak.
// `netmarkvet:allocok — <why>` on the line excuses a deliberate
// exception.
package aliascap

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the aliascap pass.
var Analyzer = &analysis.Analyzer{
	Name: "aliascap",
	Doc:  "reports aliases of netmarkvet:arena buffers retained past the fill/decode scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	summ := pass.Mod.Summaries()
	if summ == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fs := summ.Of(fn)
			if fs == nil {
				continue
			}
			for _, leak := range analysis.ArenaLeaks(fs, summ) {
				pass.Reportf(leak.Pos, "alias of netmarkvet:arena buffer escapes its fill/decode scope: %s", leak.What)
			}
		}
	}
	return nil
}
