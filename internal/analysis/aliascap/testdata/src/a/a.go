package a

type pool struct {
	// buf is the reused decode scratch, refilled in place each block.
	// netmarkvet:arena
	buf []byte
	// kept outlives the fill scope.
	kept []byte
}

var global []byte

// retain receives an arena alias from KeepViaCallee, so its own store
// is checked under the arena assumption too.
func retain(b []byte) { global = b } // want `stored into package variable global`

func read(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// —— known good ——————————————————————————————————————————————

// Refill stores back into the arena: that is the arena's purpose.
func (p *pool) Refill() {
	p.buf = append(p.buf[:0], 1, 2, 3)
}

// CopyOut severs the alias before handing it out.
func (p *pool) CopyOut() []byte {
	return append([]byte(nil), p.buf...)
}

// StringOut copies via the string conversion.
func (p *pool) StringOut() string {
	return string(p.buf)
}

// ScalarRead takes a value, not an alias.
func (p *pool) ScalarRead(i int) byte {
	return p.buf[i]
}

// Borrow passes the alias to a callee that only reads it.
func (p *pool) Borrow() byte {
	return read(p.buf[1:])
}

// Excused is a deliberate, documented exception.
func (p *pool) Excused() {
	global = p.buf // netmarkvet:allocok — test hook, reset before next fill
}

// view returns an arena alias; legal by itself, callers are tainted.
func (p *pool) view() []byte {
	return p.buf
}

// —— known bad ———————————————————————————————————————————————

// KeepField retains a subslice in a non-arena field.
func (p *pool) KeepField() {
	p.kept = p.buf[:2] // want `stored into field kept`
}

// KeepGlobal publishes the alias.
func (p *pool) KeepGlobal() {
	global = p.buf // want `stored into package variable global`
}

// KeepViaLocal launders the alias through a local first.
func (p *pool) KeepViaLocal() {
	b := p.buf[1:]
	global = b // want `stored into package variable global`
}

// KeepSend retains through a channel.
func (p *pool) KeepSend(ch chan []byte) {
	ch <- p.buf // want `sent on a channel`
}

// KeepViaCallee hands the alias to a retaining callee.
func (p *pool) KeepViaCallee() {
	retain(p.buf) // want `passed to retain, which retains it`
}

// KeepGo lets a goroutine outlive the fill scope with the alias.
func (p *pool) KeepGo() {
	b := p.buf
	go func() { read(b) }() // want `captured by a goroutine`
}

// KeepViaView retains what an arena-returning callee handed back.
func (p *pool) KeepViaView() {
	global = p.view() // want `stored into package variable global`
}

// spill receives an arena alias from KeepViaParam below, so its own
// store is checked too.
func spill(b []byte) {
	global = b // want `stored into package variable global`
}

// KeepViaParam leaks by passing to spill, whose body is checked under
// the arena assumption.
func (p *pool) KeepViaParam() {
	spill(p.buf) // want `passed to spill, which retains it`
}
