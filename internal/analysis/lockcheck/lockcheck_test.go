package lockcheck_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, ".", "a", lockcheck.Analyzer)
}
