// Package lockcheck flags accesses to `// guarded by <mu>` struct
// fields made without the named sibling mutex held on the path into the
// access.  Reads require the mutex in any mode; writes require it
// exclusively (a write under RLock is a data race the race detector
// only finds when two goroutines actually collide — this pass finds it
// on every CI run).
//
// The check is intra-procedural.  Three escapes keep it quiet on
// legitimate code, all documented in CONTRIBUTING.md:
//
//   - functions that create the struct value themselves (constructors)
//     are exempt for accesses rooted at the fresh value;
//   - functions whose name ends in "Locked" assert that their caller
//     holds the lock;
//   - single-goroutine setup paths carry an explicit
//     `// netmarkvet:ignore lockcheck — <why>` annotation.
package lockcheck

import (
	"go/ast"
	"strings"

	"netmark/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "reports accesses to `guarded by` fields without the guarding mutex held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if len(facts.Guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // contract: caller holds the lock
			}
			checkFunc(pass, facts, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, facts *analysis.Facts, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	local := analysis.LocalRoots(info, fn)
	writes := writeTargets(fn)
	walker := &analysis.LockWalker{
		Info: info,
		OnNode: func(n ast.Node, held analysis.Held) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fieldObj := info.ObjectOf(sel.Sel)
			if fieldObj == nil {
				return
			}
			muName, guarded := facts.Guards[fieldObj]
			if !guarded {
				return
			}
			if root := analysis.RootIdent(sel.X); root != nil {
				if obj := info.ObjectOf(root); obj != nil && local[obj] {
					return // value created in this function; not shared yet
				}
			}
			baseKey, ok := analysis.ExprKey(info, sel.X)
			if !ok {
				return // no stable path to name the mutex through
			}
			muKey := baseKey + "." + muName
			isWrite := writes[sel]
			switch {
			case !held.Holds(muKey):
				pass.Reportf(sel.Sel.Pos(), "%s of %s.%s without %s held (guarded by %s) in %s",
					accessWord(isWrite), exprString(sel.X), sel.Sel.Name, muName, muName,
					analysis.FuncDisplayName(fn))
			case isWrite && !held.HoldsWrite(muKey):
				pass.Reportf(sel.Sel.Pos(), "write to %s.%s with %s held only for reading in %s",
					exprString(sel.X), sel.Sel.Name, muName, analysis.FuncDisplayName(fn))
			}
		},
	}
	walker.Walk(fn.Body)
}

func accessWord(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// writeTargets marks every selector that is assigned to, incremented,
// or has its address taken — the accesses that need the guard held
// exclusively.
func writeTargets(fn *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		// x.f = v marks x.f; x.f[i] = v and x.f.g = v mark the inner
		// selector too — mutating through the field still needs the
		// exclusive guard.
		for {
			switch v := e.(type) {
			case *ast.SelectorExpr:
				out[v] = true
				return
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.ParenExpr:
				e = v.X
			default:
				return
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(v.X)
		case *ast.UnaryExpr:
			if v.Op.String() == "&" {
				mark(v.X)
			}
		}
		return true
	})
	return out
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "expr"
}
