// Package a is the lockcheck golden corpus: known-good locking idioms
// that must stay silent, and known-bad accesses that must be flagged.
package a

import "sync"

type store struct {
	mu    sync.RWMutex
	count int // guarded by mu

	statsMu sync.Mutex
	hits    uint64 // guarded by statsMu

	plain int // unguarded: never flagged
}

// --- known good ---------------------------------------------------------

func (s *store) goodLockUnlock() int {
	s.mu.Lock()
	v := s.count
	s.mu.Unlock()
	return v
}

func (s *store) goodDeferUnlock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

func (s *store) goodWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

func (s *store) goodTwoMutexes() {
	s.mu.Lock()
	s.count = 1
	s.mu.Unlock()
	s.statsMu.Lock()
	s.hits++
	s.statsMu.Unlock()
}

// goodConstructor touches fields of a value nothing else can see yet.
func newStore() *store {
	s := &store{}
	s.count = 1
	s.hits = 2
	return s
}

// countLocked asserts its caller holds mu.
func (s *store) countLocked() int {
	return s.count
}

func (s *store) goodClosureUnderLock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f := func() int { return s.count }
	return f()
}

func (s *store) goodUnguarded() int {
	return s.plain
}

// --- known bad ----------------------------------------------------------

func (s *store) badBareRead() int {
	return s.count // want `read of s\.count without mu held`
}

func (s *store) badBareWrite() {
	s.count = 7 // want `write of s\.count without mu held`
}

func (s *store) badAfterUnlock() int {
	s.mu.Lock()
	s.count = 1
	s.mu.Unlock()
	return s.count // want `read of s\.count without mu held`
}

func (s *store) badWrongMutex() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++ // want `write of s\.count without mu held`
}

func (s *store) badWriteUnderRLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.count = 2 // want `write to s\.count with mu held only for reading`
}

func (s *store) badGoroutineInheritsNothing() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.hits++ // want `write of s\.hits without statsMu held`
	}()
}

// badOtherInstance locks its own mutex but touches another value's
// guarded field: the path to the held mutex differs.
func (s *store) badOtherInstance(o *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return o.count // want `read of o\.count without mu held`
}
