// Package fsyncrename makes PR 4's hand-audited durability idiom a
// permanent gate.  In packages whose doc comment carries
// `netmarkvet:persistence`, every os.Rename that commits a durable file
// must follow the full sequence:
//
//	write temp file → f.Sync() → os.Rename(tmp, final) → fsync(dir)
//
// A rename without a preceding file fsync can commit a name pointing at
// unwritten bytes; a rename without a following directory fsync can
// vanish wholesale on power loss even though the data was synced.  The
// check is per function and positional: some fsync-ish call (a Sync
// method or a helper whose name contains "sync", e.g. writeFileSync)
// must precede the rename, and a directory-sync call (a helper whose
// name contains "syncdir"/"dirsync", or a Sync on a file opened from a
// directory path) must follow it.  Renames that are deliberately
// non-durable live outside persistence packages or carry
// `// netmarkvet:ignore fsyncrename — <why>`.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"netmark/internal/analysis"
)

// Analyzer is the fsyncrename pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc:  "reports os.Rename in persistence packages without fsync-before and directory-fsync-after",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	if !facts.Persistence {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// event positions within one function, in source order.
type events struct {
	syncs    []token.Pos // file-fsync-ish calls
	dirSyncs []token.Pos // directory-fsync-ish calls
	renames  []*ast.CallExpr
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var ev events
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch classify(info, call) {
		case evRename:
			ev.renames = append(ev.renames, call)
		case evSync:
			ev.syncs = append(ev.syncs, call.Pos())
		case evDirSync:
			ev.dirSyncs = append(ev.dirSyncs, call.Pos())
			// A dir sync is also an fsync for ordering purposes.
			ev.syncs = append(ev.syncs, call.Pos())
		}
		return true
	})
	for _, rename := range ev.renames {
		if !anyBefore(ev.syncs, rename.Pos()) {
			pass.Reportf(rename.Pos(),
				"os.Rename in persistence package without a preceding fsync in %s — the renamed file may not be durable",
				analysis.FuncDisplayName(fn))
		}
		if !anyAfter(ev.dirSyncs, rename.Pos()) {
			pass.Reportf(rename.Pos(),
				"os.Rename in persistence package without a following directory fsync in %s — the rename itself may not be durable",
				analysis.FuncDisplayName(fn))
		}
	}
}

type evKind int

const (
	evNone evKind = iota
	evRename
	evSync
	evDirSync
)

func classify(info *types.Info, call *ast.CallExpr) evKind {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				if pkg.Imported().Path() == "os" && name == "Rename" {
					return evRename
				}
				return evNone
			}
		}
		// Method calls: any .Sync() counts as a file fsync; name-based
		// dir-sync helpers as methods too.
		if name == "Sync" {
			return evSync
		}
		return nameKind(name)
	case *ast.Ident:
		return nameKind(fun.Name)
	}
	return evNone
}

// nameKind classifies helper functions by name: "syncDir"/"fsyncDir"/
// "dirSync" are directory fsyncs, anything else containing "sync" is a
// file fsync (writeFileSync, syncAll, …).
func nameKind(name string) evKind {
	n := strings.ToLower(name)
	if strings.Contains(n, "syncdir") || strings.Contains(n, "dirsync") || strings.Contains(n, "fsyncdir") {
		return evDirSync
	}
	if strings.Contains(n, "sync") {
		return evSync
	}
	return evNone
}

func anyBefore(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q > p {
			return true
		}
	}
	return false
}
