// Package b carries no persistence annotation: its renames are plain
// file moves (a drop-folder archive, say) and fsyncrename must stay
// silent even for bare renames.
package b

import "os"

func archive(oldp, newp string) error {
	return os.Rename(oldp, newp)
}
