// Package a is the fsyncrename golden corpus: a persistence package
// whose renames must follow temp → fsync → rename → dir-fsync.
//
// netmarkvet:persistence
package a

import (
	"os"
	"path/filepath"
)

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileSync writes data and fsyncs before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- known good ---------------------------------------------------------

func goodFullSequence(path string, data []byte) error {
	if err := writeFileSync(path+".tmp", data); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func goodInlineSync(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// netmarkvet:ignore fsyncrename — archival move, deliberately
// non-durable; a crash just leaves the file where it was.
func goodIgnoredArchive(dir, name string) {
	_ = os.Rename(filepath.Join(dir, name), filepath.Join(dir, "done", name))
}

// --- known bad ----------------------------------------------------------

func badNoSyncBeforeRename(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil { // want `without a preceding fsync`
		return err
	}
	return syncDir(filepath.Dir(path))
}

func badNoDirSyncAfterRename(path string, data []byte) error {
	if err := writeFileSync(path+".tmp", data); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `without a following directory fsync`
}

func badBareRename(oldp, newp string) error {
	return os.Rename(oldp, newp) // want `without a preceding fsync` `without a following directory fsync`
}
