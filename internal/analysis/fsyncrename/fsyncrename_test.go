package fsyncrename_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/fsyncrename"
)

func TestFsyncrename(t *testing.T) {
	analysistest.Run(t, ".", "a", fsyncrename.Analyzer)
}

func TestNotPersistencePackageIsExempt(t *testing.T) {
	analysistest.Run(t, ".", "b", fsyncrename.Analyzer)
}
