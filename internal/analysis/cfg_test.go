package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildCFG parses a single function body and builds its CFG with an
// empty (but non-nil) type info — enough for structural assertions.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	return FuncCFG(fd.Body, info)
}

// reachable walks Succs from Entry.
func reachable(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "x := 1\n_ = x")
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable in straight-line code")
	}
	if got := len(g.RPO()); got != len(seen) {
		t.Fatalf("RPO covers %d blocks, %d reachable", got, len(seen))
	}
}

func TestCFGIfJoins(t *testing.T) {
	g := buildCFG(t, `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// The condition block must have two successors (then / else), and
	// both arms must reach Exit through the join.
	var cond *Block
	for b := range reachable(g) {
		if len(b.Succs) == 2 {
			cond = b
			break
		}
	}
	if cond == nil {
		t.Fatal("no two-way branch block found for if/else")
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable through if/else join")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildCFG(t, `for i := 0; i < 3; i++ {
	_ = i
}`)
	// Some reachable block must have a successor with a smaller index —
	// the loop's back edge.
	back := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge found for the for loop")
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable after loop")
	}
}

func TestCFGReturnGoesToExit(t *testing.T) {
	g := buildCFG(t, `x := 1
if x > 0 {
	return
}
_ = x`)
	found := false
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Fatalf("return block succs = %v, want exit only", b.Succs)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no reachable block holds the return statement")
	}
}

func TestCFGRecordsDefers(t *testing.T) {
	g := buildCFG(t, `defer println("a")
defer println("b")`)
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
}

func TestCFGSwitchFanout(t *testing.T) {
	g := buildCFG(t, `x := 1
switch x {
case 1:
	x = 10
case 2:
	x = 20
default:
	x = 30
}
_ = x`)
	// The switch head must fan out to all three clauses.
	fan := 0
	for b := range reachable(g) {
		if len(b.Succs) > fan {
			fan = len(b.Succs)
		}
	}
	if fan < 3 {
		t.Fatalf("max fan-out %d, want >= 3 for a three-clause switch", fan)
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable after switch")
	}
}

func TestCFGPreds(t *testing.T) {
	g := buildCFG(t, `x := 1
if x > 0 {
	x = 2
}
_ = x`)
	preds := g.Preds()
	// The join block (and ultimately Exit) must have an inverse edge for
	// every forward edge.
	edges, inverse := 0, 0
	for b := range reachable(g) {
		edges += len(b.Succs)
	}
	for _, ps := range preds {
		inverse += len(ps)
	}
	if edges == 0 || inverse < edges {
		t.Fatalf("preds holds %d inverse edges for %d forward edges", inverse, edges)
	}
}
