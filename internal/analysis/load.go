package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("" for testdata packages outside the module)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Mod is the module the package was loaded into (set by
	// LoadModule); nil for standalone LoadDir loads, which get a
	// singleton module on first use.
	Mod *Module
}

// Loader parses and type-checks packages.  In-module imports
// ("netmark/...") are resolved against the module root directly;
// everything else goes through the standard library's source importer,
// so the loader works offline with no compiled export data.  One Loader
// shares a FileSet and an import cache across every package it loads.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std   types.Importer
	cache map[string]*types.Package
	// full caches the complete Package for module-local imports when
	// fullDeps is set, so every package is parsed and type-checked with
	// bodies exactly once per LoadModule — the loaded set doubles as
	// the module's analysis roots.
	fullDeps bool
	full     map[string]*Package
}

// NewLoader creates a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).  A dir outside any module — the
// analysistest testdata layout — yields a loader that resolves only
// standard-library imports.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:  token.NewFileSet(),
		cache: make(map[string]*types.Package),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	for d := abs; ; {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil {
			l.ModuleRoot = d
			l.ModulePath = modulePathOf(string(data))
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break // no module; stdlib-only resolution
		}
		d = parent
	}
	return l, nil
}

func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import resolves an import path for the type checker: module-local
// paths load from source under the module root, anything else falls
// back to the source importer (standard library).
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		pkg, err := l.load(dir, path, !l.fullDeps)
		if err != nil {
			return nil, err
		}
		if l.fullDeps {
			l.full[path] = pkg
		}
		l.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadModule parses and fully type-checks every package in dirs
// (module-relative or absolute), sharing one FileSet, one import
// cache, and one Module across them.  Unlike per-directory LoadDir
// calls — which type-check each module dependency a second time with
// bodies ignored — every package is checked exactly once with bodies,
// so the returned Module can compute interprocedural summaries and the
// whole-module load cost is paid once, not per analyzer target.
// Packages come back in dirs order.
func (l *Loader) LoadModule(dirs []string) (*Module, error) {
	l.fullDeps = true
	if l.full == nil {
		l.full = make(map[string]*Package)
	}
	defer func() { l.fullDeps = false }()
	mod := &Module{}
	for _, dir := range dirs {
		path := l.importPathOf(dir)
		if pkg, ok := l.full[path]; path != "" && ok {
			mod.Packages = append(mod.Packages, pkg)
			continue
		}
		pkg, err := l.load(dir, path, false)
		if err != nil {
			return nil, err
		}
		if path != "" {
			l.full[path] = pkg
			l.cache[path] = pkg.Types
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	for _, pkg := range mod.Packages {
		pkg.Mod = mod
	}
	return mod, nil
}

// importPathOf maps a directory to its in-module import path ("" when
// outside the module).
func (l *Loader) importPathOf(dir string) string {
	if l.ModulePath == "" {
		return ""
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and fully type-checks the package in dir (non-test
// files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.load(dir, l.importPathOf(dir), false)
}

func (l *Loader) load(dir, path string, depOnly bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		// Dependencies only need their exported API shape; skipping
		// their function bodies keeps loading a deep import graph cheap.
		IgnoreFuncBodies: depOnly,
		// Collect every type error instead of dying on the first, then
		// fail with the full list: analyzing a package that does not
		// type-check would silently miss accesses.
		Error: func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	name := path
	if name == "" {
		name = files[0].Name.Name
	}
	tpkg, _ := conf.Check(name, l.Fset, files, info)
	if len(typeErrs) > 0 {
		const max = 5
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], fmt.Sprintf("... and %d more", len(typeErrs)-max))
		}
		return nil, fmt.Errorf("analysis: typecheck %s:\n\t%s", dir, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
