package errflow_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, ".", "a", errflow.Analyzer)
}
