// Package a is the errflow golden corpus: errors from durability
// operations (Sync, Rename, Commit, *sync* helpers, and module
// functions that transitively return them) must reach the error
// return, an annotated sink, or another sanctioned escape.
package a

import (
	"fmt"
	"log"
	"net/http"
	"os"
)

// WAL is a stand-in durability primitive: Sync is recognized by name.
type WAL struct{ dirty bool }

// Sync flushes buffered records to stable storage.
func (w *WAL) Sync() error {
	w.dirty = false
	return nil
}

// flush returns the durability error to its caller, which makes flush
// itself a durability call for errflow (transitive DurableErr).
func flush(w *WAL) error {
	return w.Sync()
}

// recordFailure is the sanctioned out-of-band sink: it logs AND
// counts, by design, for paths with no caller to return to.
//
// netmarkvet:errsink
func recordFailure(err error) {
	log.Printf("durability failure: %v", err)
}

// wrap forwards its error parameter to the caller (a consuming
// parameter in the summary).
func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

type state struct{ lastErr error }

// --- known good ---------------------------------------------------------

func goodReturn(w *WAL) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return nil
}

func goodDirectReturn(a, b string) error {
	return os.Rename(a, b)
}

func goodWrapped(w *WAL) error {
	if err := w.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return nil
}

func goodSink(w *WAL) {
	if err := w.Sync(); err != nil {
		recordFailure(err)
	}
}

func goodConsumingHelper(w *WAL) error {
	return wrap(w.Sync())
}

func goodChannelEscape(w *WAL, errc chan error) {
	errc <- w.Sync()
}

func goodFieldEscape(w *WAL, s *state) {
	s.lastErr = w.Sync()
}

func goodPanic(w *WAL) {
	if err := w.Sync(); err != nil {
		panic(err)
	}
}

func goodFatal(w *WAL) {
	if err := w.Sync(); err != nil {
		log.Fatalf("cannot sync: %v", err)
	}
}

// --- known bad ----------------------------------------------------------

func badBareCall(w *WAL) {
	w.Sync() // want `error from durability call \(\*WAL\)\.Sync is dropped`
}

func badUnderscore(w *WAL) {
	_ = w.Sync() // want `is dropped`
}

func badOnlyLogged(w *WAL) {
	if err := w.Sync(); err != nil { // want `is dropped`
		log.Printf("sync failed: %v", err) // a bare log is not handling
	}
}

func badRename(a, b string) {
	_ = os.Rename(a, b) // want `error from durability call os\.Rename is dropped`
}

func badDeferred(w *WAL) error {
	defer w.Sync() // want `is dropped`
	return nil
}

func badTransitive(w *WAL) {
	flush(w) // want `error from durability call flush is dropped`
}

func badCheckedAndForgotten(w *WAL) error {
	err := w.Sync() // want `is dropped`
	if err != nil {
		// handled... by doing nothing
	}
	return nil
}

// result mirrors a batch slot that carries its own error.
type result struct{ err error }

// goodStoredInSlot parks the durability error in each result slot — an
// escape into a structure, not a drop.  Regression: a tainted RHS
// stored through a field/index LHS was once misread as dropped.
func goodStoredInSlot(w *WAL, results []result) {
	if err := w.Sync(); err != nil {
		for i := range results {
			if results[i].err == nil {
				results[i].err = err
			}
		}
	}
}

// goodHTTPError sends the durability error to the client as the
// response body — the error return of a handler that has none.
// Regression: net/http.Error was once treated as a bare log.
func goodHTTPError(w *WAL, rw http.ResponseWriter) {
	if err := w.Sync(); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
	}
}

// goodCallbackEscape hands the error to a func value.  The target is
// unanalyzable, so the engine assumes it is handled (bias toward
// silence).  Regression: dynamic calls were once misread as drops.
func goodCallbackEscape(w *WAL, onErr func(error)) {
	if err := w.Sync(); err != nil {
		onErr(err)
	}
}
