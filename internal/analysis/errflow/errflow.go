// Package errflow checks that errors produced on durability paths are
// never silently dropped.  A WAL append/commit, an fsync, a rename, or
// a snapshot write that fails and is discarded leaves the process
// believing data is durable when it is not — the worst class of
// storage bug, invisible until a crash.  Every call classified as a
// durability operation (os.Rename, Sync/SyncTo/Commit/
// WriteSnapshotFile methods, *sync* helpers, and any module function
// transitively returning such an error) must have its error reach the
// enclosing function's error return, an annotated netmarkvet:errsink,
// or another sanctioned escape (panic, storage into a field, a
// consuming callee).  `_ =`, a bare call statement, and a bare log are
// findings.
//
// Functions annotated netmarkvet:errsink are themselves exempt: they
// ARE the sanctioned sink (the daemon's quarantine logger), and their
// internal handling is by design log-and-count.
package errflow

import (
	"go/ast"
	"go/types"

	"netmark/internal/analysis"
)

// Analyzer is the errflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "durability-path errors must reach the error return or an annotated sink",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	summ := pass.Mod.Summaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fs := summ.Of(funcOf(pass, fd)); fs != nil && fs.ErrSink {
				continue // the annotated sink's own handling is exempt
			}
			checkFunc(pass, summ, fd)
		}
	}
	return nil
}

func funcOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

func checkFunc(pass *analysis.Pass, summ *analysis.Summaries, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, dur := analysis.DurabilityCall(pass.TypesInfo, call, summ)
		if !dur {
			return true
		}
		if analysis.ErrFate(pass.Loaded, fd, call, summ) == analysis.FateDropped {
			pass.Reportf(call.Pos(),
				"error from durability call %s is dropped in %s: it must reach the error return or a netmarkvet:errsink",
				name, analysis.FuncDisplayName(fd))
		}
		return true
	})
}
