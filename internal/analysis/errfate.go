package analysis

// Error-fate classification: given a call whose error result matters
// (a durability operation), decide whether that error reaches the
// enclosing function's error return or an annotated sink, or is
// silently dropped.  The engine is a flow-insensitive taint closure
// over local assignments with a source-position gate — precise enough
// for the repo's `err := op(); if err != nil { return err }` idiom,
// and deliberately biased toward silence everywhere else.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Fate is the outcome of error handling for one call site.
type Fate int

const (
	// FateDropped: the error never reaches a return, sink, or escape —
	// it is discarded (`_ =`, bare statement, or checked-and-forgotten).
	FateDropped Fate = iota
	// FateConsumed: the error escapes the function some sanctioned way
	// short of the error return: an annotated sink, a panic, storage
	// into a field/map/channel, or a callee that consumes it.
	FateConsumed
	// FateReturned: the error (possibly wrapped) reaches a return.
	FateReturned
)

// ErrFate classifies the handling of call's error result inside fn.
func ErrFate(pkg *Package, fn *ast.FuncDecl, call *ast.CallExpr, s *Summaries) Fate {
	parents := parentMap(fn)
	info := pkg.Info
	n := ast.Node(call)
	for {
		p := parents[n]
		if p == nil {
			return FateConsumed // detached (shouldn't happen): stay silent
		}
		switch pv := p.(type) {
		case *ast.ExprStmt:
			return FateDropped
		case *ast.ReturnStmt:
			return FateReturned
		case *ast.DeferStmt, *ast.GoStmt:
			// `defer w.Sync()` / `go w.Sync()`: result discarded.
			return FateDropped
		case *ast.AssignStmt:
			return assignFate(pkg, fn, pv, call, s)
		case *ast.ValueSpec:
			for i, val := range pv.Values {
				if containsNode(val, n) && i < len(pv.Names) {
					return lhsFate(pkg, fn, pv.Names[i], call, s)
				}
			}
			return FateConsumed
		case *ast.CallExpr:
			// Nested in another call's arguments (fmt.Errorf, a sink,
			// errors.Join...): the value flows into the outer call.  A
			// consuming callee settles it; otherwise the outer call's
			// own fate decides (return fmt.Errorf(...) is a return).
			if containsArg(pv, n) && callArgConsumes(info, pv, n, s) {
				return FateConsumed
			}
			n = p
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt,
			*ast.IndexExpr:
			return FateConsumed // escapes into a structure or channel
		case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt:
			// Compared or branched on directly; the value itself is
			// folded into control flow — treated as handled.
			return FateConsumed
		default:
			n = p
		}
	}
}

// assignFate resolves which LHS receives call's error result and
// classifies from there.
func assignFate(pkg *Package, fn *ast.FuncDecl, as *ast.AssignStmt, call *ast.CallExpr, s *Summaries) Fate {
	info := pkg.Info
	rhsIdx := -1
	for i, r := range as.Rhs {
		if containsNode(r, call) {
			rhsIdx = i
			break
		}
	}
	if rhsIdx < 0 {
		return FateConsumed
	}
	var lhs ast.Expr
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, err := f(): pick the LHS matching the error result's
		// position in the callee's result tuple.
		idx := errorResultIndex(info, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return FateConsumed
		}
		lhs = as.Lhs[idx]
	} else if rhsIdx < len(as.Lhs) {
		lhs = as.Lhs[rhsIdx]
	} else {
		return FateConsumed
	}
	switch v := unparen(lhs).(type) {
	case *ast.Ident:
		return lhsFate(pkg, fn, v, call, s)
	default:
		// Assigned into a field, map slot, or dereference: escapes.
		return FateConsumed
	}
}

func lhsFate(pkg *Package, fn *ast.FuncDecl, id *ast.Ident, call *ast.CallExpr, s *Summaries) Fate {
	if id.Name == "_" {
		return FateDropped
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return FateConsumed
	}
	return taintFate(pkg, fn, obj, call.Pos(), s)
}

// errorResultIndex finds which result of call is the error (for
// `v, err := f()` destructuring), or -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok {
		if isErrorType(tv.Type) {
			return 0
		}
		return -1
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return i
		}
	}
	return -1
}

// taintFate computes the fate of the error value held by seed after
// position after: taint closes over local assignments, and every
// tainted use is classified until a return (strongest) or a
// consumption is found.
func taintFate(pkg *Package, fn *ast.FuncDecl, seed types.Object, after token.Pos, s *Summaries) Fate {
	info := pkg.Info
	tainted := map[types.Object]bool{seed: true}
	// Close taint over assignments downstream of the source.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() < after {
				return true
			}
			for i, r := range as.Rhs {
				if !exprTainted(info, r, tainted) {
					continue
				}
				// With one RHS feeding many LHS only tuple-destructuring
				// applies, and a tainted call RHS is out of scope here;
				// positional pairing covers the repo idiom.
				if i < len(as.Lhs) {
					if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
						if obj := info.ObjectOf(id); obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	parents := parentMap(fn)
	fate := FateDropped
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fate == FateReturned {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !tainted[obj] {
			return true
		}
		switch classifyUse(info, parents, id, s) {
		case FateReturned:
			fate = FateReturned
		case FateConsumed:
			if fate == FateDropped {
				fate = FateConsumed
			}
		}
		return true
	})
	return fate
}

func exprTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// classifyUse walks up from one tainted identifier use and decides what
// that use does with the value.
func classifyUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, s *Summaries) Fate {
	n := ast.Node(id)
	for {
		p := parents[n]
		if p == nil {
			return FateDropped
		}
		switch pv := p.(type) {
		case *ast.ReturnStmt:
			return FateReturned
		case *ast.CallExpr:
			if containsArg(pv, n) {
				if callArgConsumes(info, pv, n, s) {
					return FateConsumed
				}
				// The callee's result may carry the value onward
				// (fmt.Errorf("%w", err), errors.Join, append): keep
				// walking up; a bare log dead-ends at its ExprStmt.
			}
			n = p
		case *ast.AssignStmt:
			// An RHS use stores the value somewhere: into a field, map
			// slot, or dereference it escapes; into a plain local it
			// merely propagates, and the taint closure already follows
			// that.  A use inside an LHS (an index expression, say) is
			// not a read of the value itself.
			for i, rhs := range pv.Rhs {
				if !containsNode(rhs, n) {
					continue
				}
				if i < len(pv.Lhs) {
					if _, isIdent := unparen(pv.Lhs[i]).(*ast.Ident); !isIdent {
						return FateConsumed // x.f = err / m[k] = err
					}
				}
				break
			}
			return FateDropped
		case *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			return FateConsumed
		case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause,
			*ast.TypeSwitchStmt, *ast.ForStmt:
			// err != nil and friends: inspection, not consumption.
			return FateDropped
		case *ast.ExprStmt, *ast.BlockStmt, *ast.ValueSpec:
			return FateDropped
		default:
			n = p
		}
	}
}

// callArgConsumes reports whether passing a tainted value as this call
// argument by itself counts as consumption: panic, a process-killing
// log, an annotated sink, or a callee parameter summarized as
// consuming.  false means "not settled here" — a bare log, or a
// wrapper whose result carries the value onward.
func callArgConsumes(info *types.Info, call *ast.CallExpr, arg ast.Node, s *Summaries) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	callee := CalleeFunc(info, call)
	if callee == nil {
		// A conversion's result still carries the value — not settled
		// here.  A dynamic call through a func value (or a builtin like
		// append) is unanalyzable: assume the target handles it, per
		// this engine's bias toward silence.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return false
		}
		return true
	}
	switch stdlibFuncName(callee) {
	case "log.Fatal", "log.Fatalf", "log.Fatalln",
		"log.Panic", "log.Panicf", "log.Panicln":
		return true // terminates the process with the error
	case "net/http.Error":
		return true // the error reaches the client as the response body
	}
	fs := s.Of(callee)
	if fs == nil {
		return false // stdlib non-terminating: a bare log
	}
	if fs.ErrSink {
		return true
	}
	for i, a := range call.Args {
		if containsNode(a, arg) {
			return i < len(fs.ConsumesErr) && fs.ConsumesErr[i]
		}
	}
	return false
}

// paramErrConsumed reports whether an error passed in param reaches a
// return, sink, or escape inside fn — the ConsumesErr summary bit.
func paramErrConsumed(pkg *Package, fn *ast.FuncDecl, param *types.Var, s *Summaries) bool {
	return taintFate(pkg, fn, param, fn.Pos(), s) != FateDropped
}

func containsArg(call *ast.CallExpr, n ast.Node) bool {
	for _, a := range call.Args {
		if containsNode(a, n) {
			return true
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

// parentMap builds child→parent links for every node under fn.
func parentMap(fn *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
