// Package a is the genbump golden corpus: every mutation of a field
// annotated `guarded by <mu>` + `netmarkvet:gen <counter>` must bump
// the sibling counter inside the same critical section.
package a

import "sync"

type cache struct {
	mu sync.Mutex
	// m is the cached view.
	// guarded by mu
	// netmarkvet:gen gen
	m map[string]int
	// gen fences m: readers revalidate against it.
	// guarded by mu
	gen uint64
}

// tree is a stand-in container: Insert/Delete are mutating by name.
type tree struct{ n int }

func (t *tree) Insert(k string, v int) { t.n++ }
func (t *tree) Delete(k string)        { t.n-- }
func (t *tree) Get(k string) int       { return t.n }

type store struct {
	mu sync.Mutex
	// idx is the derived index; per-key generations fence it.
	// guarded by mu
	// netmarkvet:gen gens
	idx tree
	// gens carries one generation per key; deleting an entry also
	// invalidates it.
	// guarded by mu
	gens map[string]uint64
	// guarded by mu
	next uint64
}

// --- known good ---------------------------------------------------------

func goodBumpAfter(c *cache, k string) {
	c.mu.Lock()
	delete(c.m, k)
	c.gen++
	c.mu.Unlock()
}

func goodBumpBefore(c *cache, k string) {
	c.mu.Lock()
	c.gen++
	delete(c.m, k)
	c.mu.Unlock()
}

func goodDeferUnlock(c *cache, k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
	c.gen++
}

func goodBothBranchesBump(c *cache, k string, drop bool) {
	c.mu.Lock()
	if drop {
		delete(c.m, k)
		c.gen++
	} else {
		c.m[k] = 1
		c.gen++
	}
	c.mu.Unlock()
}

// bumpLocked bumps on behalf of callers holding mu; the summary
// credits it interprocedurally.
func bumpLocked(c *cache) { c.gen++ }

func goodHelperBump(c *cache, k string, v int) {
	c.mu.Lock()
	c.m[k] = v
	bumpLocked(c)
	c.mu.Unlock()
}

func goodReadOnly(c *cache, k string) int {
	c.mu.Lock()
	v := c.m[k]
	c.mu.Unlock()
	return v
}

// goodConstructor mutates before publication: the guard is not held,
// so genbump stays out (nothing can observe staleness).
func goodConstructor() *cache {
	c := &cache{m: make(map[string]int)}
	c.m["seed"] = 1
	return c
}

func goodMapCounterAssign(s *store, k string) {
	s.mu.Lock()
	s.idx.Insert(k, 1)
	s.next++
	s.gens[k] = s.next
	s.mu.Unlock()
}

func goodMapCounterDelete(s *store, k string) {
	s.mu.Lock()
	s.idx.Delete(k)
	delete(s.gens, k)
	s.mu.Unlock()
}

// --- known bad ----------------------------------------------------------

func badNoBump(c *cache, k string, v int) {
	c.mu.Lock()
	c.m[k] = v // want `does not bump generation counter gen`
	c.mu.Unlock()
}

func badOneBranchMisses(c *cache, k string, drop bool) {
	c.mu.Lock()
	if drop {
		delete(c.m, k) // want `does not bump generation counter gen`
	} else {
		c.m[k] = 1
		c.gen++
	}
	c.mu.Unlock()
}

func badDeferUnlockNoBump(c *cache, k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, k) // want `does not bump generation counter gen`
}

func badMutatingMethod(s *store, k string) {
	s.mu.Lock()
	s.idx.Insert(k, 2) // want `does not bump generation counter gens`
	s.mu.Unlock()
}

func badBumpInEarlierSection(c *cache, k string, v int) {
	c.mu.Lock()
	c.gen++
	c.mu.Unlock()
	c.mu.Lock()
	c.m[k] = v // want `does not bump generation counter gen`
	c.mu.Unlock()
}
