// Package genbump checks cache-coherence generation protocols: a
// struct field annotated both `guarded by <mu>` and `netmarkvet:gen
// <counter>` must have every mutation paired with a bump of the
// sibling counter before the guarding mutex is released.  Readers key
// caches on the counter (xmlstore's context-key generations, the node
// cache's per-shard gen, textindex's per-term gens); a mutation that
// escapes its critical section without bumping leaves those caches
// serving stale data with nothing ever invalidating them.
//
// "Bump" is any write to the counter inside the same critical section
// — before or after the mutation; the protocol only requires that the
// section as a whole publishes a new generation.  Counters may be
// integers (gen++) or per-key maps (gens[k] = next; delete(gens, k)
// also counts: removing the entry invalidates every reader key derived
// from it).  Helpers called under the guard credit their counter
// writes through the interprocedural FieldWrites summary.
//
// The check is a forward dataflow over the function CFG.  The state
// carries (held guards, counters bumped this section, pending
// unbumped mutations); joins intersect held/bumped and union pendings,
// and findings fire when a guard is released — explicitly or at
// function exit for deferred unlocks — with pendings outstanding.
package genbump

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"netmark/internal/analysis"
)

// Analyzer is the genbump pass.
var Analyzer = &analysis.Analyzer{
	Name: "genbump",
	Doc:  "mutations of netmarkvet:gen-annotated state must bump the generation counter before the guard is released",
	Run:  run,
}

// genPair is one annotated (field, guard, counter) triple.
type genPair struct {
	field   types.Object
	counter types.Object
	muName  string
}

func run(pass *analysis.Pass) error {
	facts := analysis.CollectFacts(pass)
	pairs := collectPairs(pass, facts)
	if len(pairs) == 0 {
		return nil
	}
	counters := make(map[types.Object]bool, len(pairs))
	for _, p := range pairs {
		counters[p.counter] = true
	}
	summ := pass.Mod.Summaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, summ, fd, pairs, counters)
		}
	}
	return nil
}

// collectPairs resolves each netmarkvet:gen annotation against its
// guard annotation and the sibling counter field.
func collectPairs(pass *analysis.Pass, facts *analysis.Facts) map[types.Object]genPair {
	pairs := make(map[types.Object]genPair)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Index this struct's fields by name to resolve siblings.
			byName := make(map[string]types.Object)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						byName[name.Name] = obj
					}
				}
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					counterName, hasGen := facts.Gen[obj]
					if !hasGen {
						continue
					}
					muName, guarded := facts.Guards[obj]
					counter := byName[counterName]
					if !guarded || counter == nil {
						pass.Reportf(name.Pos(),
							"netmarkvet:gen on %s needs both a `guarded by <mu>` annotation and a sibling counter field %q",
							name.Name, counterName)
						continue
					}
					pairs[obj] = genPair{field: obj, counter: counter, muName: muName}
				}
			}
			return true
		})
	}
	return pairs
}

// pending is one mutation awaiting its counter bump.
type pending struct {
	muKey   string // guard key that must not be released first
	counter types.Object
	pos     token.Pos
	field   string
	mu      string
}

func (p pending) id() string {
	return fmt.Sprintf("%s|%p|%d", p.muKey, p.counter, p.pos)
}

// state is the dataflow value: which guards are held, which counters
// were bumped in the current critical section, which mutations are
// still unbumped.
type state struct {
	held    map[string]bool
	bumped  map[types.Object]bool
	pending map[string]pending
}

func newState() *state {
	return &state{
		held:    make(map[string]bool),
		bumped:  make(map[types.Object]bool),
		pending: make(map[string]pending),
	}
}

func (s *state) clone() *state {
	c := newState()
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.bumped {
		c.bumped[k] = true
	}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	return c
}

// join merges a predecessor's out-state into s: held and bumped
// intersect (a fact must hold on every path), pendings union (a
// violation on any path is a violation).
func join(s, o *state) *state {
	if s == nil {
		return o.clone()
	}
	for k := range s.held {
		if !o.held[k] {
			delete(s.held, k)
		}
	}
	for k := range s.bumped {
		if !o.bumped[k] {
			delete(s.bumped, k)
		}
	}
	for k, v := range o.pending {
		s.pending[k] = v
	}
	return s
}

func (s *state) key() string {
	parts := make([]string, 0, len(s.held)+len(s.bumped)+len(s.pending))
	for k := range s.held {
		parts = append(parts, "h:"+k)
	}
	for k := range s.bumped {
		parts = append(parts, fmt.Sprintf("b:%p", k))
	}
	for k := range s.pending {
		parts = append(parts, "p:"+k)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func checkFunc(pass *analysis.Pass, summ *analysis.Summaries, fd *ast.FuncDecl, pairs map[types.Object]genPair, counters map[types.Object]bool) {
	g := analysis.FuncCFG(fd.Body, pass.TypesInfo)
	w := &walker{pass: pass, summ: summ, pairs: pairs, counters: counters}
	events := make([][]genEvent, len(g.Blocks))
	for _, blk := range g.Blocks {
		events[blk.Index] = w.blockEvents(blk)
	}
	in := make([]*state, len(g.Blocks))
	rpo := g.RPO()
	in[g.Entry.Index] = newState()
	outKeys := make([]string, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if in[blk.Index] == nil {
				continue
			}
			out := in[blk.Index].clone()
			w.apply(out, events[blk.Index], nil)
			if k := out.key(); k != outKeys[blk.Index] {
				outKeys[blk.Index] = k
				changed = true
			}
			for _, succ := range blk.Succs {
				before := ""
				if in[succ.Index] != nil {
					before = in[succ.Index].key()
				}
				in[succ.Index] = join(in[succ.Index], out)
				if in[succ.Index].key() != before {
					changed = true
				}
			}
		}
	}
	// Reporting pass over settled in-states.
	reported := make(map[string]bool)
	report := func(p pending) {
		if reported[p.id()] {
			return
		}
		reported[p.id()] = true
		pass.Reportf(p.pos,
			"mutation of %s (guarded by %s) does not bump generation counter %s before %s is released in %s",
			p.field, p.mu, counterName(p.counter), p.mu, analysis.FuncDisplayName(fd))
	}
	for _, blk := range rpo {
		if in[blk.Index] == nil {
			continue
		}
		out := in[blk.Index].clone()
		w.apply(out, events[blk.Index], report)
		if blk == g.Exit {
			// Deferred unlocks release here: anything still pending
			// escaped its critical section unbumped.
			for _, p := range out.pending {
				report(p)
			}
		}
	}
}

func counterName(obj types.Object) string { return obj.Name() }

type genEvent struct {
	kind    genEvKind
	key     string       // guard key (acquire/release)
	counter types.Object // bump
	p       pending      // mutate
}

type genEvKind int

const (
	gevAcquire genEvKind = iota
	gevRelease
	gevBump
	gevMutate
)

type walker struct {
	pass     *analysis.Pass
	summ     *analysis.Summaries
	pairs    map[types.Object]genPair
	counters map[types.Object]bool
}

// apply runs one block's events over a state.
func (w *walker) apply(s *state, evs []genEvent, report func(pending)) {
	for _, ev := range evs {
		switch ev.kind {
		case gevAcquire:
			s.held[ev.key] = true
		case gevRelease:
			for id, p := range s.pending {
				if p.muKey == ev.key {
					if report != nil {
						report(p)
					}
					delete(s.pending, id)
				}
			}
			delete(s.held, ev.key)
			// Conservatively end every section's bump credit: bumps
			// never stay valid across a release boundary.
			for k := range s.bumped {
				delete(s.bumped, k)
			}
		case gevBump:
			s.bumped[ev.counter] = true
			for id, p := range s.pending {
				if p.counter == ev.counter {
					delete(s.pending, id)
				}
			}
		case gevMutate:
			if !s.held[ev.p.muKey] {
				// Guard not visibly held (constructor, *Locked helper):
				// lockcheck's territory, not ours.
				continue
			}
			if s.bumped[ev.p.counter] {
				continue
			}
			s.pending[ev.p.id()] = ev.p
		}
	}
}

// blockEvents extracts ordered lock/bump/mutate events from a block.
func (w *walker) blockEvents(blk *analysis.Block) []genEvent {
	var evs []genEvent
	for _, n := range blk.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// A deferred unlock holds the guard to function exit; the
			// Exit block reports leftovers.  Deferred bumps/mutations
			// are too rare to model.
			continue
		}
		ast.Inspect(n, func(c ast.Node) bool {
			switch v := c.(type) {
			case *ast.FuncLit:
				return false // separate function; analyzed via its decl? literals skipped
			case *ast.CallExpr:
				evs = append(evs, w.callEvents(v)...)
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					evs = append(evs, w.writeEvents(lhs)...)
				}
			case *ast.IncDecStmt:
				evs = append(evs, w.writeEvents(v.X)...)
			}
			return true
		})
	}
	return evs
}

// writeEvents classifies a write target as a bump and/or a mutation.
func (w *walker) writeEvents(lhs ast.Expr) []genEvent {
	obj := analysis.WrittenField(w.pass.TypesInfo, lhs)
	if obj == nil {
		return nil
	}
	return w.fieldEvents(obj, lhs)
}

// fieldEvents builds the events for touching field obj through the
// access expression at expr.
func (w *walker) fieldEvents(obj types.Object, at ast.Expr) []genEvent {
	var evs []genEvent
	if w.counters[obj] {
		evs = append(evs, genEvent{kind: gevBump, counter: obj})
	}
	if pair, ok := w.pairs[obj]; ok {
		if muKey, ok := w.guardKey(at, pair.muName); ok {
			evs = append(evs, genEvent{kind: gevMutate, p: pending{
				muKey:   muKey,
				counter: pair.counter,
				pos:     at.Pos(),
				field:   obj.Name(),
				mu:      pair.muName,
			}})
		}
	}
	return evs
}

// guardKey renders the canonical key of the guard protecting the
// access at expr: the base path of the access plus the mutex name
// (s.m → "obj….mu" for `guarded by mu`).
func (w *walker) guardKey(expr ast.Expr, muName string) (string, bool) {
	base := baseOf(expr)
	if base == nil {
		return "", false
	}
	key, ok := analysis.ExprKey(w.pass.TypesInfo, base)
	if !ok {
		return "", false
	}
	return key + "." + muName, true
}

// baseOf strips the field selector / index off an access path,
// returning the expression the guard hangs off: s.m[k] → s, s.gen → s.
func baseOf(expr ast.Expr) ast.Expr {
	e := analysis.Unparen(expr)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = analysis.Unparen(v.X)
		case *ast.StarExpr:
			e = analysis.Unparen(v.X)
		case *ast.SelectorExpr:
			return v.X
		default:
			return nil
		}
	}
}

// callEvents classifies a call: mutex ops, delete()/mutating methods
// on annotated fields, and helper calls credited with counter bumps.
func (w *walker) callEvents(call *ast.CallExpr) []genEvent {
	info := w.pass.TypesInfo
	if mu, _, release, ok := analysis.LockCall(info, call); ok {
		if key, keyOK := analysis.ExprKey(info, mu); keyOK {
			kind := gevAcquire
			if release {
				kind = gevRelease
			}
			return []genEvent{{kind: kind, key: key}}
		}
		return nil
	}
	var evs []genEvent
	// delete(s.f, k) and s.f.Insert(...) style mutations.
	if obj := analysis.MutatedField(info, call); obj != nil {
		var at ast.Expr
		switch fun := analysis.Unparen(call.Fun).(type) {
		case *ast.Ident: // delete builtin
			if len(call.Args) > 0 {
				at = call.Args[0]
			}
		case *ast.SelectorExpr:
			at = fun.X
		}
		if at != nil {
			evs = append(evs, w.fieldEvents(obj, at)...)
		}
	}
	// A helper called under the guard counts as a bump for every
	// counter it writes (interprocedural credit).
	if fs := w.summ.OfCall(info, call); fs != nil {
		for obj := range fs.FieldWrites {
			if w.counters[obj] {
				evs = append(evs, genEvent{kind: gevBump, counter: obj})
			}
		}
	}
	return evs
}
