package genbump_test

import (
	"testing"

	"netmark/internal/analysis/analysistest"
	"netmark/internal/analysis/genbump"
)

func TestGenbump(t *testing.T) {
	analysistest.Run(t, ".", "a", genbump.Analyzer)
}
